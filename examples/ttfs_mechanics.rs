//! A single-neuron walkthrough of the T2FSNN mechanics (the paper's
//! Fig. 2): the dynamic threshold, the fire phase, the dendrite decode,
//! and the precision/representable-range trade-off — no network required.
//!
//! ```sh
//! cargo run --release --example ttfs_mechanics
//! ```

use std::error::Error;

use t2fsnn::kernel::{ExpKernel, KernelParams};

fn main() -> Result<(), Box<dyn Error>> {
    let window = 20usize;
    let kernel = ExpKernel::new(KernelParams::new(6.0, 0.0), window);
    println!("fire window T = {window}, τ = 6, t_d = 0, θ0 = 1\n");

    // 1. The dynamic threshold θ(t) = θ0·ε(t) falls exponentially.
    println!("dynamic threshold over the fire phase:");
    print!("  t:      ");
    for t in 0..window {
        print!("{t:>6}");
    }
    println!();
    print!("  θ(t):   ");
    for t in 0..window {
        print!("{:>6.3}", kernel.eval(t as f32));
    }
    println!("\n");

    // 2. Three neurons with different membrane potentials encode to
    //    different spike times: larger value → earlier spike.
    println!("encoding (Eq. 7): membrane potential u → spike time:");
    for &u in &[0.9f32, 0.5, 0.15, 0.04, 0.01] {
        match kernel.encode(u, 1.0) {
            Some(t) => {
                let decoded = kernel.decode(t);
                println!(
                    "  u = {u:<5} fires at t = {t:<3} decodes to {decoded:.4} \
                     (error {:.4}, bound {:.4})",
                    (u - decoded).abs(),
                    kernel.precision_error_bound(decoded)
                );
            }
            None => println!(
                "  u = {u:<5} never crosses the threshold inside T — value lost \
                 (below ε(T−1) = {:.4})",
                kernel.eval((window - 1) as f32)
            ),
        }
    }

    // 3. The trade-off of Sec. III-B, numerically.
    println!("\nthe τ trade-off at T = {window}:");
    println!(
        "  {:>5} {:>16} {:>22}",
        "τ", "min representable", "precision error @ x=0.5"
    );
    for tau in [2.0f32, 6.0, 12.0, 18.0] {
        let k = ExpKernel::new(KernelParams::new(tau, 0.0), window);
        println!(
            "  {tau:>5} {:>16.5} {:>22.5}",
            k.min_representable(),
            k.precision_error_bound(0.5)
        );
    }
    println!("\nsmall τ reaches small values but quantizes coarsely; large τ is");
    println!("precise but cannot express small values inside the window. The");
    println!("paper's gradient-based optimization (see the kernel_optimization");
    println!("example) finds the balance from data.");

    // 4. A two-neuron chain: encode → dendrite decode → weighted sum →
    //    re-encode, the whole layer-to-layer story in miniature.
    println!("\ntwo-layer chain (w = [0.8, 0.4], b = 0.05):");
    let inputs = [0.7f32, 0.3];
    let weights = [0.8f32, 0.4];
    let mut u_next = 0.05f32;
    for (x, w) in inputs.iter().zip(&weights) {
        let t = kernel.encode(*x, 1.0).expect("representable");
        let psp = w * kernel.decode(t);
        println!("  input {x} spikes at t={t}; dendrite delivers w·ε(t) = {psp:.4}");
        u_next += psp;
    }
    let exact = 0.05 + 0.8 * 0.7 + 0.4 * 0.3;
    println!("  next-layer membrane: {u_next:.4} (exact DNN value {exact:.4})");
    let t_next = kernel.encode(u_next, 1.0).expect("representable");
    println!("  …which re-encodes to a spike at t = {t_next}");
    Ok(())
}
