//! Quickstart: train a CNN on a synthetic CIFAR-10-shaped task, convert it
//! to a T2FSNN with gradient-optimized kernels and early firing, and run
//! time-to-first-spike inference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::error::Error;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use t2fsnn::eval::{build_variant, Variant};
use t2fsnn::optimize::GoConfig;
use t2fsnn::KernelParams;
use t2fsnn_data::{DatasetSpec, SyntheticConfig};
use t2fsnn_dnn::architectures::{vgg_scaled, VggScale};
use t2fsnn_dnn::{evaluate, normalize_for_snn, train, TrainConfig};

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(42);

    // 1. A CIFAR-10-shaped synthetic dataset (see DESIGN.md §2 for the
    //    substitution rationale) and a scaled VGG.
    println!("== T2FSNN quickstart ==");
    let spec = DatasetSpec::cifar10_like();
    let data = SyntheticConfig::new(spec.clone(), 7).generate(320);
    let (train_set, test_set) = data.split(256);
    let mut dnn = vgg_scaled(&mut rng, &spec, VggScale::default());
    println!("network: {}", dnn.summary());

    // 2. Train the source DNN. The deep scaled VGG wants a cooler
    //    learning rate than the shallow-net default.
    println!("\ntraining the source DNN…");
    let report = train(
        &mut dnn,
        &train_set,
        &TrainConfig {
            epochs: 8,
            sgd: t2fsnn_dnn::SgdConfig {
                lr: 0.02,
                momentum: 0.9,
                weight_decay: 5e-4,
            },
            ..TrainConfig::default()
        },
        &mut rng,
    )?;
    let dnn_acc = evaluate(&mut dnn, &test_set, 32)?;
    println!(
        "  final train acc {:.1}%, test acc {:.1}%",
        report.final_accuracy() * 100.0,
        dnn_acc * 100.0
    );

    // 3. Data-based normalization (bounds activations to [0, 1], θ0 = 1).
    normalize_for_snn(&mut dnn, &train_set.images, 0.999)?;

    // 4. Convert to T2FSNN+GO+EF: kernels trained by SGD, early firing at
    //    T/2 — the paper's best variant.
    println!("\nconverting to T2FSNN+GO+EF (T = 32)…");
    let model = build_variant(
        &mut dnn,
        &train_set.images,
        32,
        Variant { go: true, ef: true },
        KernelParams::new(8.0, 0.0),
        &GoConfig::default(),
        &mut rng,
    )?;
    for (i, k) in model.kernels().iter().enumerate() {
        println!("  layer {i}: τ = {:.2}, t_d = {:.2}", k.tau, k.t_d);
    }

    // 5. Spiking inference: one spike per neuron, spike time = value.
    let run = model.run(&test_set.images, &test_set.labels)?;
    println!("\n== results ==");
    println!(
        "  accuracy        {:.1}% (DNN: {:.1}%)",
        run.accuracy * 100.0,
        dnn_acc * 100.0
    );
    println!("  latency         {} time steps", run.latency);
    println!("  spikes/image    {:.0}", run.spikes_per_image());
    println!(
        "  synops          {} adds, {} kernel mults",
        run.synop_adds, run.synop_mults
    );
    for layer in &run.layers {
        println!(
            "  {:>10}: {:>8} spikes, first at t = {:?}",
            layer.name,
            layer.count,
            layer.first_spike_global()
        );
    }
    Ok(())
}
