//! Reproduces the dynamics of the paper's Fig. 4: the three kernel losses
//! under gradient-based optimization from two different initial time
//! constants (τ = 2 and τ = 18, T = 20).
//!
//! The small-τ kernel starts precise *at small values* but imprecise
//! overall, so τ grows and `L_prec` falls; the large-τ kernel cannot
//! represent small values inside the window, so τ shrinks and `L_min`
//! falls — the trade-off of Sec. III-B resolved from both sides.
//!
//! ```sh
//! cargo run --release --example kernel_optimization
//! ```

use std::error::Error;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use t2fsnn::optimize::{optimize_kernel, GoConfig};
use t2fsnn::KernelParams;
use t2fsnn_data::{DatasetSpec, SyntheticConfig};
use t2fsnn_dnn::architectures::cnn_small;
use t2fsnn_dnn::layers::PoolKind;
use t2fsnn_dnn::{normalize_for_snn, train, weighted_layer_activations, TrainConfig};

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(4);

    // Ground truth z̄: real activations of a trained, normalized CNN —
    // exactly what the paper's layer-wise supervision uses.
    let spec = DatasetSpec::new("fig4", 1, 16, 16, 4);
    let data = SyntheticConfig::new(spec.clone(), 17).generate(192);
    let mut dnn = cnn_small(&mut rng, &spec, PoolKind::Avg);
    train(&mut dnn, &data, &TrainConfig::default(), &mut rng)?;
    normalize_for_snn(&mut dnn, &data.images, 0.999)?;
    let activations = weighted_layer_activations(&mut dnn, &data.images)?;
    let values: Vec<f32> = activations[0].1.iter().copied().collect();
    println!(
        "optimizing against {} activation values from layer `conv1_1`",
        values.len()
    );

    let config = GoConfig {
        passes: 4,
        record_every: 4096,
        ..GoConfig::default()
    };
    for tau0 in [2.0f32, 18.0] {
        println!("\n== τ0 = {tau0}, T = 20 ==");
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>7} {:>7}",
            "# data", "L_prec", "L_min", "L_max", "τ", "t_d"
        );
        let outcome = optimize_kernel(
            &values,
            KernelParams::new(tau0, 0.0),
            20,
            1.0,
            &config,
            &mut rng,
        )?;
        for sample in &outcome.history {
            println!(
                "{:>8} {:>12.3e} {:>12.3e} {:>12.3e} {:>7.2} {:>7.2}",
                sample.seen, sample.l_prec, sample.l_min, sample.l_max, sample.tau, sample.t_d
            );
        }
        println!(
            "final: τ = {:.2}, t_d = {:.2}",
            outcome.params.tau, outcome.params.t_d
        );
    }
    println!("\nCompare with Fig. 4: τ0=2 grows (L_prec falls), τ0=18 shrinks (L_min falls).");
    Ok(())
}
