//! Explores the paper's neuromorphic energy estimator
//! `E = spikes·E_dyn + latency·E_sta` (Table II) in isolation: how the
//! TrueNorth and SpiNNaker parameterizations reward spike- versus
//! latency-reduction differently.
//!
//! ```sh
//! cargo run --release --example energy_model
//! ```

use std::error::Error;

use t2fsnn_snn::energy::{EnergyModel, SPINNAKER, TRUENORTH};

fn row(model: &EnergyModel, label: &str, spikes: f64, latency: f64) {
    // Reference: a rate-coded run with 1.0 relative spikes and latency.
    let e = model.normalized(spikes, latency, 1.0, 1.0);
    println!("  {label:<38} {e:>8.3}");
}

fn main() -> Result<(), Box<dyn Error>> {
    println!("normalized energy = E_dyn·(spikes ratio) + E_sta·(latency ratio)\n");
    for model in [TRUENORTH, SPINNAKER] {
        println!(
            "{} (E_dyn = {}, E_sta = {}):",
            model.name, model.e_dyn, model.e_sta
        );
        row(&model, "rate baseline (1.0, 1.0)", 1.0, 1.0);
        row(
            &model,
            "burst-like: 0.11x spikes, 0.11x latency",
            0.11,
            0.11,
        );
        row(
            &model,
            "phase-like: 0.57x spikes, 0.15x latency",
            0.57,
            0.15,
        );
        row(
            &model,
            "T2FSNN-like: 0.001x spikes, 0.07x latency",
            0.001,
            0.07,
        );
        println!();
    }
    println!("Observations (match the paper's Table II):");
    println!("  * Under SpiNNaker's spike-heavy split (0.64/0.36), T2FSNN's");
    println!("    thousandfold spike cut dominates: energy ≈ 0.03.");
    println!("  * Under TrueNorth's static-heavy split (0.4/0.6), latency");
    println!("    matters more, so T2FSNN's win comes from early firing too.");

    // A miniature sweep: at what spike ratio does a scheme with 2x latency
    // still beat the baseline?
    println!("\nbreak-even spike ratio at 2x latency:");
    for model in [TRUENORTH, SPINNAKER] {
        // Solve e_dyn·s + e_sta·2 = 1 for s.
        let s = (1.0 - 2.0 * model.e_sta as f64) / model.e_dyn as f64;
        if s > 0.0 {
            println!("  {:<10} s < {s:.3}", model.name);
        } else {
            println!(
                "  {:<10} impossible — static energy alone already exceeds the baseline",
                model.name
            );
        }
    }
    Ok(())
}
