//! Compares the four neural coding schemes of the paper's Fig. 1 on the
//! same trained network: rate, phase, burst, and T2FSNN (TTFS).
//!
//! Prints a Table II-style summary: accuracy, latency, spikes and
//! normalized energy.
//!
//! ```sh
//! cargo run --release --example coding_comparison
//! ```

use std::error::Error;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use t2fsnn::eval::{build_variant, energy_table, CodingMeasurement, Variant};
use t2fsnn::optimize::GoConfig;
use t2fsnn::KernelParams;
use t2fsnn_data::{DatasetSpec, SyntheticConfig};
use t2fsnn_dnn::architectures::cnn_small;
use t2fsnn_dnn::layers::PoolKind;
use t2fsnn_dnn::{normalize_for_snn, train, TrainConfig};
use t2fsnn_snn::coding::{BurstCoding, Coding, PhaseCoding, RateCoding};
use t2fsnn_snn::{simulate, SimConfig, SnnNetwork};

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(11);

    // Train one source network everybody shares.
    let spec = DatasetSpec::new("demo-16x16", 1, 16, 16, 4);
    let data = SyntheticConfig::new(spec.clone(), 3).generate(256);
    let (train_set, test_set) = data.split(192);
    let mut dnn = cnn_small(&mut rng, &spec, PoolKind::Avg);
    train(&mut dnn, &train_set, &TrainConfig::default(), &mut rng)?;
    normalize_for_snn(&mut dnn, &train_set.images, 0.999)?;
    let snn = SnnNetwork::from_dnn(&dnn)?;

    // Baselines on the clock-driven simulator.
    let mut measurements = Vec::new();
    let runs: Vec<(Box<dyn Coding>, SimConfig)> = vec![
        (Box::new(RateCoding::new()), SimConfig::new(512, 32)),
        (Box::new(PhaseCoding::new(8)), SimConfig::new(128, 16)),
        (Box::new(BurstCoding::new(5)), SimConfig::new(128, 16)),
    ];
    for (mut coding, config) in runs {
        let outcome = simulate(
            &snn,
            coding.as_mut(),
            &test_set.images,
            &test_set.labels,
            &config,
        )?;
        measurements.push(CodingMeasurement::from_sim(&outcome, 0.01));
    }

    // The paper's method: T2FSNN+GO+EF.
    let model = build_variant(
        &mut dnn,
        &train_set.images,
        32,
        Variant { go: true, ef: true },
        KernelParams::new(8.0, 0.0),
        &GoConfig::default(),
        &mut rng,
    )?;
    let ttfs = model.run(&test_set.images, &test_set.labels)?;
    measurements.push(CodingMeasurement::from_ttfs("T2FSNN+GO+EF", &ttfs));

    // Table II-style output, energy normalized against rate coding.
    let reference = measurements[0].clone();
    let energy = energy_table(&measurements, &reference)?;
    println!(
        "{:<14} {:>9} {:>9} {:>13} {:>8} {:>8}",
        "coding", "acc (%)", "latency", "spikes/image", "TN", "SN"
    );
    for (m, e) in measurements.iter().zip(&energy) {
        println!(
            "{:<14} {:>9.1} {:>9} {:>13.0} {:>8.3} {:>8.3}",
            m.coding,
            m.accuracy * 100.0,
            m.latency,
            m.spikes_per_image(),
            e.truenorth,
            e.spinnaker
        );
    }
    println!("\n(TN/SN: energy normalized against rate coding — TrueNorth and");
    println!(" SpiNNaker parameters from the paper's Table II.)");
    Ok(())
}
