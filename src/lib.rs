//! Workspace umbrella crate for the T2FSNN reproduction (Park et al.,
//! DAC 2020: *T2FSNN: Deep Spiking Neural Networks with
//! Time-to-first-spike Coding*).
//!
//! This crate holds no logic of its own; it anchors the cross-crate
//! integration tests in `tests/` and the runnable walkthroughs in
//! `examples/`, and re-exports the six workspace crates under one roof
//! for convenience:
//!
//! ```
//! use t2fsnn_workspace::tensor::Tensor;
//!
//! let t = Tensor::zeros([2, 3]);
//! assert_eq!(t.numel(), 6);
//! ```
//!
//! Crate DAG (each layer may depend on the ones above it):
//!
//! ```text
//! t2fsnn-tensor          dense tensors, conv/matmul/pool ops
//!   └─ t2fsnn-data       synthetic datasets, stats
//!        └─ t2fsnn-dnn   layers, training, SNN-oriented normalization
//!             └─ t2fsnn-snn   IF neurons, codings, event-driven sim
//!                  └─ t2fsnn      TTFS kernels, conversion, evaluation
//!                       └─ t2fsnn-bench  scenarios, repro_* binaries
//! ```

/// Dense tensor substrate.
pub use t2fsnn_tensor as tensor;

/// Synthetic dataset generation and statistics.
pub use t2fsnn_data as data;

/// DNN layers, training, and normalization.
pub use t2fsnn_dnn as dnn;

/// Spiking substrate: neurons, codings, simulation.
pub use t2fsnn_snn as snn;

/// The T2FSNN core: kernels, conversion, evaluation.
pub use t2fsnn as core;

/// Benchmark scenarios and reporting.
pub use t2fsnn_bench as bench;
