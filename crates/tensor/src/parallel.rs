//! A small hand-rolled scoped thread pool for deterministic batch-level
//! parallelism (rayon is unavailable in this offline workspace).
//!
//! Design: the pool is a *configuration* (worker count) plus fork-join
//! primitives built on [`std::thread::scope`]. Worker threads live for
//! the duration of one parallel region and are joined before the call
//! returns — the only fully safe design under this crate's
//! `#![forbid(unsafe_code)]` (a persistent pool executing borrowed
//! closures needs lifetime-erasing `unsafe`, as in crossbeam). OS thread
//! spawn costs ~10 µs, which batch-level work items (whole images or
//! image chunks, typically ≥ 1 ms each) amortize comfortably.
//!
//! Determinism contract: work is split into *contiguous chunks in item
//! order* and results are reduced *in chunk index order*, so any
//! reduction a caller performs over the returned vector visits partial
//! results in the same order regardless of how many workers ran. Callers
//! whose per-item computation is independent of the chunking (true for
//! batch-parallel simulation and convolution, where images never
//! interact) therefore get bit-identical results for every worker count.
//!
//! The worker count comes from the `T2FSNN_THREADS` environment variable
//! when set (≥ 1), otherwise from [`std::thread::available_parallelism`].

use std::ops::Range;
use std::sync::OnceLock;

/// A scoped fork-join thread pool with a fixed worker count.
///
/// # Examples
///
/// ```
/// use t2fsnn_tensor::ThreadPool;
///
/// let pool = ThreadPool::new(3);
/// // Sum 0..100 in parallel chunks, reduced in deterministic order.
/// let partials = pool.run_chunks(100, |range| range.sum::<usize>());
/// assert_eq!(partials.iter().sum::<usize>(), 4950);
/// ```
#[derive(Debug, Clone)]
pub struct ThreadPool {
    workers: usize,
}

fn default_workers() -> usize {
    if let Ok(v) = std::env::var("T2FSNN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        eprintln!("[t2fsnn-tensor] ignoring invalid T2FSNN_THREADS={v:?} (want an integer ≥ 1)");
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl ThreadPool {
    /// Creates a pool that uses up to `workers` threads per parallel
    /// region (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        ThreadPool {
            workers: workers.max(1),
        }
    }

    /// The process-wide pool: `T2FSNN_THREADS` workers if set, otherwise
    /// one per available core. The environment variable is read once, on
    /// first use.
    pub fn global() -> &'static ThreadPool {
        static POOL: OnceLock<ThreadPool> = OnceLock::new();
        POOL.get_or_init(|| ThreadPool::new(default_workers()))
    }

    /// Maximum number of threads a parallel region may use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Splits `0..items` into at most `workers` contiguous, balanced,
    /// non-empty chunks (fewer when `items < workers`).
    pub fn chunk_ranges(&self, items: usize) -> Vec<Range<usize>> {
        let chunks = self.workers.min(items);
        if chunks == 0 {
            return Vec::new();
        }
        let base = items / chunks;
        let extra = items % chunks;
        let mut ranges = Vec::with_capacity(chunks);
        let mut start = 0;
        for i in 0..chunks {
            let len = base + usize::from(i < extra);
            ranges.push(start..start + len);
            start += len;
        }
        ranges
    }

    /// Runs `f` once per chunk of `0..items` (see [`Self::chunk_ranges`])
    /// and returns the results **in chunk order**. Chunk 0 runs on the
    /// calling thread; with one worker (or one chunk) everything runs
    /// inline with no thread spawned.
    ///
    /// A panic in any chunk propagates to the caller after all spawned
    /// threads have been joined (no detached threads, no deadlock).
    pub fn run_chunks<R: Send>(
        &self,
        items: usize,
        f: impl Fn(Range<usize>) -> R + Sync,
    ) -> Vec<R> {
        let ranges = self.chunk_ranges(items);
        if ranges.len() <= 1 {
            return ranges.into_iter().map(f).collect();
        }
        let mut iter = ranges.into_iter();
        let first = iter.next().expect("≥ 2 chunks");
        let rest: Vec<Range<usize>> = iter.collect();
        // Fork-join regions keep the caller's trace identity: workers
        // inherit the open span as parent, so their spans land in the
        // same request tree (chunk 0 runs inline and needs nothing).
        let tctx = crate::trace::capture_context();
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = rest
                .into_iter()
                .map(|range| {
                    scope.spawn(move || {
                        let _trace = crate::trace::install_context(tctx);
                        f(range)
                    })
                })
                .collect();
            let mut results = vec![f(first)];
            for handle in handles {
                match handle.join() {
                    Ok(r) => results.push(r),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            results
        })
    }

    /// Runs `f` once per task, moving each task into its worker, and
    /// returns the results **in task order**. Task 0 runs on the calling
    /// thread; with a single task everything runs inline. Intended for
    /// one task per chunk from [`Self::chunk_ranges`].
    ///
    /// A panic in any task propagates after all spawned threads joined.
    pub fn run_tasks<T: Send, R: Send>(&self, tasks: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
        if tasks.len() <= 1 {
            return tasks.into_iter().map(f).collect();
        }
        let f = &f;
        let tctx = crate::trace::capture_context();
        std::thread::scope(|scope| {
            let mut iter = tasks.into_iter();
            let first = iter.next().expect("≥ 2 tasks");
            let handles: Vec<_> = iter
                .map(|task| {
                    scope.spawn(move || {
                        let _trace = crate::trace::install_context(tctx);
                        f(task)
                    })
                })
                .collect();
            let mut results = vec![f(first)];
            for handle in handles {
                match handle.join() {
                    Ok(r) => results.push(r),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            results
        })
    }

    /// Parallel scatter over a `[items, item_len]`-shaped output buffer:
    /// calls `f(item_index, item_slice)` for every item, with items
    /// distributed over the workers in contiguous chunks. Item slices are
    /// disjoint, so this is deterministic for any worker count.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != items * item_len` implied by the slice
    /// (i.e. `out.len()` not divisible by `item_len`) or `item_len == 0`.
    pub fn scatter_items(
        &self,
        out: &mut [f32],
        item_len: usize,
        f: impl Fn(usize, &mut [f32]) + Sync,
    ) {
        assert!(item_len > 0, "item_len must be positive");
        assert!(
            out.len().is_multiple_of(item_len),
            "output length {} not divisible by item length {item_len}",
            out.len()
        );
        let items = out.len() / item_len;
        let ranges = self.chunk_ranges(items);
        if ranges.len() <= 1 {
            for (i, slot) in out.chunks_exact_mut(item_len).enumerate() {
                f(i, slot);
            }
            return;
        }
        // Carve the output into one disjoint &mut slice per chunk.
        let mut parts: Vec<(Range<usize>, &mut [f32])> = Vec::with_capacity(ranges.len());
        let mut remainder = out;
        for range in ranges {
            let (head, tail) = remainder.split_at_mut(range.len() * item_len);
            parts.push((range, head));
            remainder = tail;
        }
        let f = &f;
        let tctx = crate::trace::capture_context();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(parts.len().saturating_sub(1));
            let mut iter = parts.into_iter();
            let (first_range, first_slice) = iter.next().expect("≥ 2 chunks");
            for (range, slice) in iter {
                handles.push(scope.spawn(move || {
                    let _trace = crate::trace::install_context(tctx);
                    for (i, slot) in range.clone().zip(slice.chunks_exact_mut(item_len)) {
                        f(i, slot);
                    }
                }));
            }
            for (i, slot) in first_range.zip(first_slice.chunks_exact_mut(item_len)) {
                f(i, slot);
            }
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
    }
}

impl Default for ThreadPool {
    /// Same worker count as [`ThreadPool::global`].
    fn default() -> Self {
        ThreadPool::new(default_workers())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunk_ranges_cover_everything_in_order() {
        let pool = ThreadPool::new(3);
        for items in [0usize, 1, 2, 3, 7, 100] {
            let ranges = pool.chunk_ranges(items);
            assert!(ranges.len() <= 3);
            let mut expect = 0;
            for r in &ranges {
                assert_eq!(r.start, expect, "contiguous in order");
                assert!(!r.is_empty());
                expect = r.end;
            }
            assert_eq!(expect, items);
        }
    }

    #[test]
    fn run_chunks_returns_in_chunk_order() {
        let pool = ThreadPool::new(4);
        let results = pool.run_chunks(10, |r| r.start);
        let mut sorted = results.clone();
        sorted.sort_unstable();
        assert_eq!(results, sorted);
        assert_eq!(results.len(), 4);
    }

    #[test]
    fn run_chunks_executes_every_item_once() {
        let pool = ThreadPool::new(5);
        let counter = AtomicUsize::new(0);
        let totals = pool.run_chunks(1000, |r| {
            counter.fetch_add(r.len(), Ordering::Relaxed);
            r.sum::<usize>()
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(totals.iter().sum::<usize>(), 1000 * 999 / 2);
    }

    #[test]
    fn results_are_identical_for_any_worker_count() {
        // The determinism contract: same chunk-order reduction value no
        // matter how many workers run.
        let reduce = |pool: &ThreadPool| -> f32 {
            pool.run_chunks(37, |r| r.map(|i| (i as f32).sqrt()).sum::<f32>())
                .into_iter()
                .fold(0.0, |acc, x| acc + x)
        };
        // Chunk boundaries differ between pools, so partial sums differ,
        // but the serial fold of per-item values is what callers rely on:
        // compare per-item outputs instead.
        let per_item = |pool: &ThreadPool| -> Vec<f32> {
            let mut out = vec![0.0f32; 37];
            pool.scatter_items(&mut out, 1, |i, slot| slot[0] = (i as f32).sqrt());
            out
        };
        let serial = per_item(&ThreadPool::new(1));
        for workers in [2, 3, 8] {
            assert_eq!(per_item(&ThreadPool::new(workers)), serial);
        }
        // Sanity: the fold still computes a finite sum either way.
        assert!(reduce(&ThreadPool::new(1)).is_finite());
        assert!(reduce(&ThreadPool::new(4)).is_finite());
    }

    #[test]
    fn scatter_items_writes_disjoint_slices() {
        let pool = ThreadPool::new(3);
        let mut out = vec![0.0f32; 8 * 4];
        pool.scatter_items(&mut out, 4, |i, slot| {
            for (j, v) in slot.iter_mut().enumerate() {
                *v = (i * 4 + j) as f32;
            }
        });
        let expect: Vec<f32> = (0..32).map(|i| i as f32).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn nested_parallel_regions_complete() {
        // A worker thread may itself open a parallel region; with no
        // shared locks this must complete rather than deadlock.
        let outer = ThreadPool::new(2);
        let totals = outer.run_chunks(4, |r| {
            let inner = ThreadPool::new(2);
            inner
                .run_chunks(r.len() * 10, |ir| ir.len())
                .into_iter()
                .sum::<usize>()
        });
        assert_eq!(totals.iter().sum::<usize>(), 40);
    }

    #[test]
    fn sequential_reuse_and_drop_are_clean() {
        // Scoped workers are joined per region, so reuse and drop can
        // never leave a dangling worker (the "shutdown deadlock" class).
        let pool = ThreadPool::new(4);
        for _ in 0..50 {
            let n: usize = pool.run_chunks(16, |r| r.len()).into_iter().sum();
            assert_eq!(n, 16);
        }
    }

    #[test]
    fn worker_panic_propagates_after_join() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(|| {
            pool.run_chunks(8, |r| {
                if r.start > 0 {
                    panic!("worker boom");
                }
                r.len()
            })
        });
        assert!(result.is_err(), "panic must propagate, not hang");
    }

    #[test]
    fn zero_items_spawn_nothing() {
        let pool = ThreadPool::new(4);
        assert!(pool.run_chunks(0, |r| r.len()).is_empty());
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn scatter_items_validates_length() {
        ThreadPool::new(2).scatter_items(&mut [0.0; 7], 2, |_, _| {});
    }
}
