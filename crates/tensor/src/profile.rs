//! Lightweight opt-in per-phase/per-op wall-clock profiler.
//!
//! Enabled by setting `T2FSNN_PROFILE=1` (anything other than unset,
//! empty, or `0`): monotonic-clock spans are aggregated per key into a
//! process-global table, which `repro_fig6` and `bench_smoke` report at
//! exit. When disabled (the default), [`span`] is one relaxed atomic
//! load and records nothing — cheap enough to leave in per-step hot
//! paths.
//!
//! Keys are free-form `&'static str` labels, by convention
//! `area/what` (`sim/encode`, `op/conv_scatter_events`,
//! `train/backward`, …). Spans may **nest** — an `op/…` span usually
//! runs inside a `sim/…` or `ttfs/…` span — so the report shows
//! *inclusive* times per key, not a disjoint partition of wall clock.
//!
//! Aggregation is **per-thread with merge**: each span closes into a
//! thread-local table (no lock), which is merged into the process-global
//! table every [`FLUSH_EVERY`] closes, at thread exit, and whenever the
//! thread itself calls [`entries`]/[`flush`]/[`reset`]. Long-lived
//! threads that want their spans visible to *other* threads (e.g. a
//! server's batch executor feeding a `/metrics` endpoint) should call
//! [`flush`] at a natural boundary such as the end of a batch. Concurrent
//! recorders therefore never contend on a per-span lock, and a reader
//! sees every span flushed before its read — the hot path is one relaxed
//! atomic load when profiling is off, and lock-free when it is on.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Aggregated numbers of one span key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// The span key (`area/what`).
    pub key: &'static str,
    /// How many spans closed under this key.
    pub calls: u64,
    /// Total inclusive wall-clock, nanoseconds.
    pub nanos: u128,
}

fn table() -> &'static Mutex<HashMap<&'static str, (u64, u128)>> {
    static TABLE: OnceLock<Mutex<HashMap<&'static str, (u64, u128)>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Closed spans a thread accumulates locally before merging into the
/// global table: bounds both the lock rate (one global lock per this
/// many spans instead of per span) and how stale another thread's view
/// can get between explicit [`flush`]es.
const FLUSH_EVERY: u64 = 256;

/// Per-thread span aggregate; merged into the global table on drop
/// (thread exit) and by [`flush_local`].
#[derive(Default)]
struct LocalTable {
    map: HashMap<&'static str, (u64, u128)>,
    pending: u64,
}

impl LocalTable {
    fn merge_into_global(&mut self) {
        if self.map.is_empty() {
            return;
        }
        let mut table = table().lock().unwrap_or_else(|e| e.into_inner());
        for (key, (calls, nanos)) in self.map.drain() {
            let slot = table.entry(key).or_insert((0, 0));
            slot.0 += calls;
            slot.1 += nanos;
        }
        self.pending = 0;
    }
}

impl Drop for LocalTable {
    fn drop(&mut self) {
        self.merge_into_global();
    }
}

thread_local! {
    static LOCAL: RefCell<LocalTable> = RefCell::new(LocalTable::default());
}

/// Records one closed span: into the thread-local table when available,
/// straight into the global table during thread teardown (when the
/// thread-local has already been destroyed).
fn record(key: &'static str, nanos: u128) {
    let direct = LOCAL
        .try_with(|local| {
            let mut local = local.borrow_mut();
            let slot = local.map.entry(key).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += nanos;
            local.pending += 1;
            if local.pending >= FLUSH_EVERY {
                local.merge_into_global();
            }
        })
        .is_err();
    if direct {
        let mut table = table().lock().unwrap_or_else(|e| e.into_inner());
        let slot = table.entry(key).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += nanos;
    }
}

/// Merges the calling thread's local aggregate into the global table so
/// other threads (e.g. a metrics endpoint) can see it. Recording threads
/// flush implicitly every [`FLUSH_EVERY`] spans and at thread exit;
/// long-lived threads should call this at a natural boundary (end of a
/// batch, end of a run).
pub fn flush() {
    let _ = LOCAL.try_with(|local| local.borrow_mut().merge_into_global());
}

/// 0 = undecided, 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether profiling is active (`T2FSNN_PROFILE` set to something other
/// than `0`/empty; decided once on first use).
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => {
            let on = matches!(std::env::var("T2FSNN_PROFILE"),
                Ok(v) if !v.trim().is_empty() && v.trim() != "0");
            STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        s => s == 2,
    }
}

/// An open span; the elapsed time is recorded under `key` on drop.
/// Inert (no clock read, nothing recorded) when profiling is disabled.
#[must_use = "a span records its time when dropped — bind it to a variable"]
pub struct Span {
    open: Option<(&'static str, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((key, start)) = self.open.take() {
            record(key, start.elapsed().as_nanos());
        }
    }
}

/// Opens a span under `key`; time accrues until the returned guard
/// drops. A no-op unless [`enabled`].
#[inline]
pub fn span(key: &'static str) -> Span {
    Span {
        open: enabled().then(|| (key, Instant::now())),
    }
}

/// All recorded entries, sorted by total time descending. Flushes the
/// calling thread's local aggregate first; spans other live threads have
/// recorded but not yet flushed (fewer than [`FLUSH_EVERY`] since their
/// last merge) are not included until they flush.
pub fn entries() -> Vec<Entry> {
    flush();
    let table = table().lock().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<Entry> = table
        .iter()
        .map(|(&key, &(calls, nanos))| Entry { key, calls, nanos })
        .collect();
    out.sort_by(|a, b| b.nanos.cmp(&a.nanos).then(a.key.cmp(b.key)));
    out
}

/// Clears the table — both the calling thread's local aggregate and the
/// global table (spans still open keep their start time and record into
/// the fresh table when they close; other threads' unflushed locals
/// survive the reset and land on their next merge).
pub fn reset() {
    let _ = LOCAL.try_with(|local| {
        let mut local = local.borrow_mut();
        local.map.clear();
        local.pending = 0;
    });
    table().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Prints the aggregated spans to stderr under a header — a no-op when
/// profiling is disabled or nothing was recorded. Written to stderr so
/// harnesses that capture stdout (e.g. `bench_smoke` timing child
/// processes) still surface the breakdown.
pub fn eprint_report(header: &str) {
    if !enabled() {
        return;
    }
    let entries = entries();
    if entries.is_empty() {
        return;
    }
    eprintln!("[profile] {header} (inclusive wall-clock per key; spans nest)");
    for e in &entries {
        eprintln!(
            "[profile]   {:<28} {:>12.3} ms  ({} calls)",
            e.key,
            e.nanos as f64 / 1e6,
            e.calls
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test owns the global state: recording off → spans inert;
    /// recording on → spans aggregate per key (split tests would race on
    /// the process-global table under the parallel test harness).
    #[test]
    fn spans_are_inert_when_off_and_aggregate_when_on() {
        let was_on = enabled();
        STATE.store(1, Ordering::Relaxed);
        {
            let _s = span("test/disabled");
        }
        assert!(entries().iter().all(|e| e.key != "test/disabled"));

        STATE.store(2, Ordering::Relaxed);
        reset();
        {
            let _a = span("test/a");
            let _b = span("test/b");
        }
        {
            let _a = span("test/a");
        }
        let recorded = entries();
        let a = recorded.iter().find(|e| e.key == "test/a").unwrap();
        assert_eq!(a.calls, 2);
        let b = recorded.iter().find(|e| e.key == "test/b").unwrap();
        assert_eq!(b.calls, 1);

        // Concurrent recorders: spans land in per-thread tables that
        // merge into the global one — at thread exit for workers, via
        // the implicit flush in `entries()` for the calling thread — so
        // a post-join read sees every span exactly once.
        reset();
        std::thread::scope(|scope| {
            // Join explicitly: the exit-flush runs in the TLS destructor,
            // which `join()` waits for but scope's implicit wait (a
            // counter decremented before thread teardown) does not. The
            // ThreadPool joins all its workers explicitly too.
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        for _ in 0..300 {
                            let _s = span("test/worker");
                        }
                    })
                })
                .collect();
            for _ in 0..10 {
                let _s = span("test/worker");
            }
            for h in handles {
                h.join().unwrap();
            }
        });
        let recorded = entries();
        let w = recorded.iter().find(|e| e.key == "test/worker").unwrap();
        assert_eq!(w.calls, 4 * 300 + 10);

        reset();
        STATE.store(if was_on { 2 } else { 1 }, Ordering::Relaxed);
    }
}
