//! Lightweight opt-in per-phase/per-op wall-clock profiler — the
//! *aggregate* sink of [`crate::trace`]'s span sites.
//!
//! Enabled by `T2FSNN_PROFILE=1`: every [`crate::trace::span`] close is
//! aggregated per key into a process-global view that `repro_fig6` and
//! `bench_smoke` report at exit and `t2fsnn-serve` exposes on
//! `/metrics`. When disabled (the default), a span site is one relaxed
//! atomic load — the enablement word lives in [`crate::trace`] and is
//! shared with the flight recorder, so one check serves both sinks.
//!
//! Keys are free-form `&'static str` labels, by convention `area/what`
//! (`sim/encode`, `op/conv_scatter_events`, `train/backward`, …).
//! Spans may **nest** — an `op/…` span usually runs inside a `sim/…`
//! or `ttfs/…` span — so the report shows *inclusive* times per key,
//! not a disjoint partition of wall clock.
//!
//! Aggregation is **sharded per thread with global drain**: each
//! thread owns a registered shard (its own mutex, uncontended on the
//! hot path), and [`entries`] drains *every live thread's* shard plus
//! the residue of exited threads — a reader always sees every closed
//! span, no matter which thread recorded it and whether it flushed.
//! (The old design only merged the calling thread's table on read,
//! so a `/metrics` scrape missed whatever the batcher thread had
//! accumulated since its last explicit flush — that blind spot is
//! gone.)

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::trace;

/// Aggregated numbers of one span key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// The span key (`area/what`).
    pub key: &'static str,
    /// How many spans closed under this key.
    pub calls: u64,
    /// Total inclusive wall-clock, nanoseconds.
    pub nanos: u128,
}

/// Re-export: [`span`] returns the shared span guard from
/// [`crate::trace`] — one guard feeds both the aggregate table and the
/// flight recorder.
pub use crate::trace::Span;

type KeyMap = HashMap<&'static str, (u64, u128)>;

/// One thread's aggregate. The mutex is uncontended except while
/// [`entries`]/[`reset`] drain it.
#[derive(Default)]
struct Shard {
    map: Mutex<KeyMap>,
}

/// Residue of exited threads plus everything drained so far.
fn global() -> &'static Mutex<KeyMap> {
    static GLOBAL: OnceLock<Mutex<KeyMap>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Registry of live thread shards ([`Weak`] so exited threads don't
/// accumulate; pruned on every drain).
fn shards() -> &'static Mutex<Vec<Weak<Shard>>> {
    static SHARDS: OnceLock<Mutex<Vec<Weak<Shard>>>> = OnceLock::new();
    SHARDS.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn merge(into: &mut KeyMap, from: KeyMap) {
    for (key, (calls, nanos)) in from {
        let slot = into.entry(key).or_insert((0, 0));
        slot.0 += calls;
        slot.1 += nanos;
    }
}

/// Thread-local handle keeping the shard alive; on thread exit the
/// drop folds the shard's remainder into the global residue.
struct ShardHandle(Arc<Shard>);

impl Drop for ShardHandle {
    fn drop(&mut self) {
        let residue = std::mem::take(&mut *lock(&self.0.map));
        if !residue.is_empty() {
            merge(&mut lock(global()), residue);
        }
    }
}

thread_local! {
    static LOCAL: ShardHandle = {
        let shard = Arc::new(Shard::default());
        lock(shards()).push(Arc::downgrade(&shard));
        ShardHandle(shard)
    };
}

/// Records one closed span: into the calling thread's shard when
/// available, straight into the global residue during thread teardown
/// (when the thread-local has already been destroyed).
pub(crate) fn record(key: &'static str, nanos: u128) {
    let direct = LOCAL
        .try_with(|local| {
            let mut map = lock(&local.0.map);
            let slot = map.entry(key).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += nanos;
        })
        .is_err();
    if direct {
        let mut table = lock(global());
        let slot = table.entry(key).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += nanos;
    }
}

/// Drains every live shard into the global residue and prunes dead
/// shard registrations. Shard locks are held one at a time and never
/// together with the global lock.
fn drain_all() {
    let live: Vec<Arc<Shard>> = {
        let mut registry = lock(shards());
        registry.retain(|w| w.strong_count() > 0);
        registry.iter().filter_map(Weak::upgrade).collect()
    };
    let mut drained: KeyMap = HashMap::new();
    for shard in live {
        merge(&mut drained, std::mem::take(&mut *lock(&shard.map)));
    }
    if !drained.is_empty() {
        merge(&mut lock(global()), drained);
    }
}

/// Kept for call sites that want to bound staleness explicitly (the
/// serve batcher calls it per batch); readers no longer depend on it —
/// [`entries`] drains every live thread itself.
pub fn flush() {
    let _ = LOCAL.try_with(|local| {
        let residue = std::mem::take(&mut *lock(&local.0.map));
        if !residue.is_empty() {
            merge(&mut lock(global()), residue);
        }
    });
}

/// Whether profile aggregation is active (`T2FSNN_PROFILE=1`, decided
/// once on first use; overridable via [`set_enabled`]).
#[inline]
pub fn enabled() -> bool {
    trace::state() & trace::PROFILE_ON != 0
}

/// Turns profile aggregation on or off at runtime.
pub fn set_enabled(on: bool) {
    trace::set_profiling(on);
}

/// Opens a span under `key`; time accrues until the returned guard
/// drops. A no-op unless [`enabled`] (or the flight recorder is on —
/// the guard serves both sinks).
#[inline]
pub fn span(key: &'static str) -> Span {
    trace::span(key)
}

/// All recorded entries, sorted by total time descending. Drains every
/// live thread's shard first, so spans closed by *any* thread are
/// visible — including long-lived threads that never flushed.
pub fn entries() -> Vec<Entry> {
    drain_all();
    let table = lock(global());
    let mut out: Vec<Entry> = table
        .iter()
        .map(|(&key, &(calls, nanos))| Entry { key, calls, nanos })
        .collect();
    out.sort_by(|a, b| b.nanos.cmp(&a.nanos).then(a.key.cmp(b.key)));
    out
}

/// Clears the aggregate — every live shard and the global residue
/// (spans still open keep their start time and record into the fresh
/// table when they close).
pub fn reset() {
    drain_all();
    lock(global()).clear();
}

/// Prints the aggregated spans to stderr under a header — a no-op when
/// profiling is disabled or nothing was recorded. Written to stderr so
/// harnesses that capture stdout (e.g. `bench_smoke` timing child
/// processes) still surface the breakdown.
pub fn eprint_report(header: &str) {
    if !enabled() {
        return;
    }
    let entries = entries();
    if entries.is_empty() {
        return;
    }
    eprintln!("[profile] {header} (inclusive wall-clock per key; spans nest)");
    for e in &entries {
        eprintln!(
            "[profile]   {:<28} {:>12.3} ms  ({} calls)",
            e.key,
            e.nanos as f64 / 1e6,
            e.calls
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    fn lock_state() -> std::sync::MutexGuard<'static, ()> {
        match trace::test_lock().lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Recording off → spans inert; recording on → spans aggregate per
    /// key, merged across threads at exit (the trace test lock
    /// serializes every test that toggles the process-global state).
    #[test]
    fn spans_are_inert_when_off_and_aggregate_when_on() {
        let _g = lock_state();
        let was_on = enabled();
        set_enabled(false);
        {
            let _s = span("test/disabled");
        }
        assert!(entries().iter().all(|e| e.key != "test/disabled"));

        set_enabled(true);
        reset();
        {
            let _a = span("test/a");
            let _b = span("test/b");
        }
        {
            let _a = span("test/a");
        }
        let recorded = entries();
        let a = recorded.iter().find(|e| e.key == "test/a").unwrap();
        assert_eq!(a.calls, 2);
        let b = recorded.iter().find(|e| e.key == "test/b").unwrap();
        assert_eq!(b.calls, 1);

        // Concurrent recorders: per-thread shards, drained on read.
        reset();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        for _ in 0..300 {
                            let _s = span("test/worker");
                        }
                    })
                })
                .collect();
            for _ in 0..10 {
                let _s = span("test/worker");
            }
            for h in handles {
                h.join().unwrap();
            }
        });
        let recorded = entries();
        let w = recorded.iter().find(|e| e.key == "test/worker").unwrap();
        assert_eq!(w.calls, 4 * 300 + 10);

        reset();
        set_enabled(was_on);
    }

    /// Satellite regression test for the flush blind spot: spans closed
    /// on threads that are still alive (and have *not* flushed) must be
    /// visible to another thread's [`entries`] call, with nesting
    /// aggregated per key.
    #[test]
    fn entries_drains_live_unflushed_threads() {
        let _g = lock_state();
        let was_on = enabled();
        set_enabled(true);
        reset();

        // Two phases: (A) workers record nested spans, then park;
        // main reads while they are alive. (B) release and join.
        let recorded = Barrier::new(3);
        let release = Barrier::new(3);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    {
                        let _outer = span("test/drain_outer");
                        let _inner = span("test/drain_inner");
                    }
                    recorded.wait();
                    release.wait(); // stay alive across the read
                });
            }
            recorded.wait();
            let live = entries();
            let outer = live
                .iter()
                .find(|e| e.key == "test/drain_outer")
                .expect("live thread's spans visible without flush");
            let inner = live.iter().find(|e| e.key == "test/drain_inner").unwrap();
            assert_eq!(outer.calls, 2, "both live threads drained");
            assert_eq!(inner.calls, 2);
            assert!(
                inner.nanos <= outer.nanos,
                "nested span cannot exceed its enclosing span's inclusive time"
            );
            release.wait();
        });

        // After the threads exit, a second read must not double-count:
        // the drain moved their counts into the global residue and the
        // exit-merge found empty shards.
        let after = entries();
        let outer = after.iter().find(|e| e.key == "test/drain_outer").unwrap();
        assert_eq!(outer.calls, 2, "drain + exit-merge must not double-count");

        reset();
        set_enabled(was_on);
    }
}
