//! Lightweight opt-in per-phase/per-op wall-clock profiler.
//!
//! Enabled by setting `T2FSNN_PROFILE=1` (anything other than unset,
//! empty, or `0`): monotonic-clock spans are aggregated per key into a
//! process-global table, which `repro_fig6` and `bench_smoke` report at
//! exit. When disabled (the default), [`span`] is one relaxed atomic
//! load and records nothing — cheap enough to leave in per-step hot
//! paths.
//!
//! Keys are free-form `&'static str` labels, by convention
//! `area/what` (`sim/encode`, `op/conv_scatter_events`,
//! `train/backward`, …). Spans may **nest** — an `op/…` span usually
//! runs inside a `sim/…` or `ttfs/…` span — so the report shows
//! *inclusive* times per key, not a disjoint partition of wall clock.
//! Spans from worker threads land in the same table (a mutex guards it;
//! contention only exists in profiling runs).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Aggregated numbers of one span key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// The span key (`area/what`).
    pub key: &'static str,
    /// How many spans closed under this key.
    pub calls: u64,
    /// Total inclusive wall-clock, nanoseconds.
    pub nanos: u128,
}

fn table() -> &'static Mutex<HashMap<&'static str, (u64, u128)>> {
    static TABLE: OnceLock<Mutex<HashMap<&'static str, (u64, u128)>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// 0 = undecided, 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether profiling is active (`T2FSNN_PROFILE` set to something other
/// than `0`/empty; decided once on first use).
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => {
            let on = matches!(std::env::var("T2FSNN_PROFILE"),
                Ok(v) if !v.trim().is_empty() && v.trim() != "0");
            STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        s => s == 2,
    }
}

/// An open span; the elapsed time is recorded under `key` on drop.
/// Inert (no clock read, nothing recorded) when profiling is disabled.
#[must_use = "a span records its time when dropped — bind it to a variable"]
pub struct Span {
    open: Option<(&'static str, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((key, start)) = self.open.take() {
            let nanos = start.elapsed().as_nanos();
            let mut table = table().lock().unwrap_or_else(|e| e.into_inner());
            let slot = table.entry(key).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += nanos;
        }
    }
}

/// Opens a span under `key`; time accrues until the returned guard
/// drops. A no-op unless [`enabled`].
#[inline]
pub fn span(key: &'static str) -> Span {
    Span {
        open: enabled().then(|| (key, Instant::now())),
    }
}

/// All recorded entries, sorted by total time descending.
pub fn entries() -> Vec<Entry> {
    let table = table().lock().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<Entry> = table
        .iter()
        .map(|(&key, &(calls, nanos))| Entry { key, calls, nanos })
        .collect();
    out.sort_by(|a, b| b.nanos.cmp(&a.nanos).then(a.key.cmp(b.key)));
    out
}

/// Clears the table (spans still open keep their start time and record
/// into the fresh table when they close).
pub fn reset() {
    table().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Prints the aggregated spans to stderr under a header — a no-op when
/// profiling is disabled or nothing was recorded. Written to stderr so
/// harnesses that capture stdout (e.g. `bench_smoke` timing child
/// processes) still surface the breakdown.
pub fn eprint_report(header: &str) {
    if !enabled() {
        return;
    }
    let entries = entries();
    if entries.is_empty() {
        return;
    }
    eprintln!("[profile] {header} (inclusive wall-clock per key; spans nest)");
    for e in &entries {
        eprintln!(
            "[profile]   {:<28} {:>12.3} ms  ({} calls)",
            e.key,
            e.nanos as f64 / 1e6,
            e.calls
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test owns the global state: recording off → spans inert;
    /// recording on → spans aggregate per key (split tests would race on
    /// the process-global table under the parallel test harness).
    #[test]
    fn spans_are_inert_when_off_and_aggregate_when_on() {
        let was_on = enabled();
        STATE.store(1, Ordering::Relaxed);
        {
            let _s = span("test/disabled");
        }
        assert!(entries().iter().all(|e| e.key != "test/disabled"));

        STATE.store(2, Ordering::Relaxed);
        reset();
        {
            let _a = span("test/a");
            let _b = span("test/b");
        }
        {
            let _a = span("test/a");
        }
        let recorded = entries();
        let a = recorded.iter().find(|e| e.key == "test/a").unwrap();
        assert_eq!(a.calls, 2);
        let b = recorded.iter().find(|e| e.key == "test/b").unwrap();
        assert_eq!(b.calls, 1);
        reset();
        STATE.store(if was_on { 2 } else { 1 }, Ordering::Relaxed);
    }
}
