//! Error types for tensor operations.

use std::error::Error;
use std::fmt;

use crate::shape::Shape;

/// Error produced by fallible tensor operations.
///
/// Every public fallible function in this crate returns
/// `Result<_, TensorError>`. The variants carry enough context to print an
/// actionable message (the offending shapes or indices).
///
/// # Examples
///
/// ```
/// use t2fsnn_tensor::{Tensor, TensorError};
///
/// let a = Tensor::zeros([2, 3]);
/// let b = Tensor::zeros([4, 5]);
/// match a.add(&b) {
///     Err(TensorError::ShapeMismatch { .. }) => {}
///     _ => panic!("expected a shape mismatch"),
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand / first operand.
        lhs: Shape,
        /// Shape of the right-hand / second operand.
        rhs: Shape,
    },
    /// The requested shape does not match the number of elements available.
    InvalidReshape {
        /// Shape of the source tensor.
        from: Shape,
        /// Requested target shape.
        to: Shape,
    },
    /// A multi-dimensional index was out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// Shape of the indexed tensor.
        shape: Shape,
    },
    /// An operation-specific argument was invalid (e.g. a zero stride).
    InvalidArgument {
        /// Name of the operation that failed.
        op: &'static str,
        /// Human-readable explanation.
        message: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in `{op}`: {lhs} vs {rhs}")
            }
            TensorError::InvalidReshape { from, to } => {
                write!(
                    f,
                    "cannot reshape {from} ({} elements) into {to} ({} elements)",
                    from.numel(),
                    to.numel()
                )
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape}")
            }
            TensorError::InvalidArgument { op, message } => {
                write!(f, "invalid argument to `{op}`: {message}")
            }
        }
    }
}

impl Error for TensorError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let err = TensorError::ShapeMismatch {
            op: "add",
            lhs: Shape::new(&[2, 3]),
            rhs: Shape::new(&[4]),
        };
        let msg = err.to_string();
        assert!(msg.contains("add"));
        assert!(msg.contains("[2, 3]"));
        assert!(msg.contains("[4]"));
    }

    #[test]
    fn display_invalid_reshape_includes_element_counts() {
        let err = TensorError::InvalidReshape {
            from: Shape::new(&[2, 3]),
            to: Shape::new(&[7]),
        };
        let msg = err.to_string();
        assert!(msg.contains("6 elements"));
        assert!(msg.contains("7 elements"));
    }

    #[test]
    fn display_index_out_of_bounds() {
        let err = TensorError::IndexOutOfBounds {
            index: vec![5, 0],
            shape: Shape::new(&[2, 2]),
        };
        assert!(err.to_string().contains("[5, 0]"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<TensorError>();
    }
}
