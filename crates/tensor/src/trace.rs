//! Hierarchical span tracing with a bounded lock-free flight recorder.
//!
//! This module is the successor of the flat [`crate::profile`] table:
//! every `span(key)` site now feeds *two* sinks sharing one enablement
//! check —
//!
//! 1. the **profile aggregate** (per-key call count + total nanos,
//!    `T2FSNN_PROFILE=1`), unchanged in spirit from PR 4, and
//! 2. the **flight recorder** (`T2FSNN_TRACE=<path>`): a bounded ring
//!    of completed spans with parent/child links, per-thread ids,
//!    per-request trace ids, and wall-clock timestamps, exportable as
//!    Chrome trace-event JSON (`chrome://tracing` / Perfetto).
//!
//! **Cost contract.** When both sinks are off, a span site is a single
//! relaxed atomic load and an early return — no clock read, no TLS
//! touch, no allocation. The enablement decision is cached in one
//! atomic (`STATE`) holding both the profile and trace bits, so the
//! hot path never consults the environment twice.
//!
//! **Read-only contract.** Tracing observes; it never feeds back into
//! computation. The bit-identity property tests run the engines with
//! tracing+profiling on and off and compare outputs bit for bit
//! (`tests/trace_identity.rs` at the workspace root mirror the SIMD
//! on/off discipline).
//!
//! # Span model
//!
//! A [`span`] measures one region on one thread. Spans nest through a
//! thread-local parent stack: the span open while another opens is its
//! parent. A [`trace_scope`] tags every span opened inside it with a
//! *trace id* — the serve path allocates one per request ([`next_trace_id`])
//! so a single request's admission → queue → exec → respond tree can
//! be filtered out of the recorder. Work handed to the scoped thread
//! pool keeps its trace: [`capture_context`] at the fork point,
//! [`install_context`] inside each pool closure (wired in
//! [`crate::parallel`]).
//!
//! Spans for phases that are only known retroactively (queue wait
//! measured at dequeue) are recorded with [`record_complete`].
//!
//! # Flight recorder
//!
//! A fixed ring of `T2FSNN_TRACE_CAP` slots (default 65 536, ~64 B
//! each) written lock-free: a writer claims a ticket with one
//! `fetch_add`, then publishes through a per-slot seqlock (odd =
//! mid-write). A writer that finds its slot still claimed by a lapped
//! writer *drops* its event rather than spin — the recorder sheds
//! under wrap pressure, it never blocks the traced code. Readers
//! ([`snapshot`]) re-check the sequence around the field loads and
//! skip torn slots. The ring keeps the most recent events; older ones
//! are overwritten.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// `STATE` bit: the environment has been consulted.
pub(crate) const DECIDED: u8 = 1;
/// `STATE` bit: profile aggregation is on (`T2FSNN_PROFILE=1`).
pub(crate) const PROFILE_ON: u8 = 2;
/// `STATE` bit: flight recording is on (`T2FSNN_TRACE` nonempty).
pub(crate) const TRACE_ON: u8 = 4;

/// Combined enablement word — the only thing a disabled span site
/// reads.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Reads the combined state, deciding from the environment on first
/// use.
#[inline]
pub(crate) fn state() -> u8 {
    let s = STATE.load(Ordering::Relaxed);
    if s & DECIDED != 0 {
        s
    } else {
        decide()
    }
}

#[cold]
fn decide() -> u8 {
    let profile_on = std::env::var("T2FSNN_PROFILE").is_ok_and(|v| v == "1");
    let trace_on = std::env::var("T2FSNN_TRACE").is_ok_and(|v| !v.is_empty() && v != "0");
    let mut s = DECIDED;
    if profile_on {
        s |= PROFILE_ON;
    }
    if trace_on {
        s |= TRACE_ON;
        let _ = recorder();
        let _ = epoch();
    }
    // Racing threads compute the same value from the same environment;
    // keep whichever landed first so explicit setters are not undone.
    let _ = STATE.compare_exchange(0, s, Ordering::Relaxed, Ordering::Relaxed);
    STATE.load(Ordering::Relaxed)
}

/// Is the flight recorder on?
#[inline]
pub fn enabled() -> bool {
    state() & TRACE_ON != 0
}

/// Turns the flight recorder on or off at runtime (overrides the
/// `T2FSNN_TRACE` decision; the serve binary enables it at startup so
/// `/debug/trace` always has data).
pub fn set_enabled(on: bool) {
    state(); // force the DECIDED bit first
    if on {
        let _ = recorder();
        let _ = epoch();
        STATE.fetch_or(TRACE_ON, Ordering::Relaxed);
    } else {
        STATE.fetch_and(!TRACE_ON, Ordering::Relaxed);
    }
}

/// Turns profile aggregation on or off at runtime (the `profile`
/// module's setter delegates here — one state word serves both).
pub(crate) fn set_profiling(on: bool) {
    state();
    if on {
        STATE.fetch_or(PROFILE_ON, Ordering::Relaxed);
    } else {
        STATE.fetch_and(!PROFILE_ON, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Clock epoch — all recorder timestamps are nanos since this Instant.
// ---------------------------------------------------------------------

static EPOCH: OnceLock<Instant> = OnceLock::new();

#[inline]
fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

// ---------------------------------------------------------------------
// Key interning — `&'static str` → dense u32 id for the ring slots.
// ---------------------------------------------------------------------

fn key_registry() -> &'static Mutex<Vec<&'static str>> {
    static KEYS: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    KEYS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    /// Pointer-identity cache so interning a hot key is one HashMap
    /// probe, no global lock.
    static KEY_CACHE: RefCell<HashMap<usize, u32>> = RefCell::new(HashMap::new());
}

fn intern(key: &'static str) -> u32 {
    let ptr = key.as_ptr() as usize;
    KEY_CACHE
        .try_with(|cache| {
            if let Some(&id) = cache.borrow().get(&ptr) {
                return id;
            }
            let id = intern_slow(key);
            cache.borrow_mut().insert(ptr, id);
            id
        })
        .unwrap_or_else(|_| intern_slow(key))
}

fn intern_slow(key: &'static str) -> u32 {
    let mut keys = key_registry().lock().unwrap();
    if let Some(pos) = keys.iter().position(|k| *k == key) {
        return pos as u32;
    }
    keys.push(key);
    (keys.len() - 1) as u32
}

// ---------------------------------------------------------------------
// Thread identity + per-thread trace context.
// ---------------------------------------------------------------------

static NEXT_TID: AtomicU32 = AtomicU32::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

fn thread_names() -> &'static Mutex<Vec<(u32, String)>> {
    static NAMES: OnceLock<Mutex<Vec<(u32, String)>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

#[derive(Default)]
struct TraceCtx {
    tid: u32,
    trace_id: u64,
    parent: u64,
}

thread_local! {
    static CTX: RefCell<TraceCtx> = RefCell::new(TraceCtx::default());
}

fn ensure_tid(ctx: &mut TraceCtx) -> u32 {
    if ctx.tid == 0 {
        ctx.tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{}", ctx.tid));
        thread_names().lock().unwrap().push((ctx.tid, name));
    }
    ctx.tid
}

/// Allocates a fresh trace id (serve: one per request, one per batch).
/// Never returns 0 — 0 means "no trace".
pub fn next_trace_id() -> u64 {
    NEXT_TRACE.fetch_add(1, Ordering::Relaxed)
}

/// The trace id spans on this thread are currently tagged with (0 when
/// none or tracing is off).
pub fn current_trace_id() -> u64 {
    if state() & TRACE_ON == 0 {
        return 0;
    }
    CTX.try_with(|c| c.borrow().trace_id).unwrap_or(0)
}

/// Guard restoring the thread's previous trace context on drop
/// (returned by [`trace_scope`] and [`install_context`]).
pub struct TraceScope {
    prev_trace: u64,
    prev_parent: u64,
    active: bool,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let _ = CTX.try_with(|c| {
            let mut c = c.borrow_mut();
            c.trace_id = self.prev_trace;
            c.parent = self.prev_parent;
        });
    }
}

/// Tags every span opened on this thread (until the guard drops) with
/// `trace_id`, starting a fresh parent stack so the first span inside
/// becomes the trace's root.
pub fn trace_scope(trace_id: u64) -> TraceScope {
    if state() & TRACE_ON == 0 {
        return TraceScope {
            prev_trace: 0,
            prev_parent: 0,
            active: false,
        };
    }
    CTX.try_with(|c| {
        let mut c = c.borrow_mut();
        let scope = TraceScope {
            prev_trace: c.trace_id,
            prev_parent: c.parent,
            active: true,
        };
        c.trace_id = trace_id;
        c.parent = 0;
        scope
    })
    .unwrap_or(TraceScope {
        prev_trace: 0,
        prev_parent: 0,
        active: false,
    })
}

/// A snapshot of the calling thread's trace context, for handing work
/// to another thread. `Copy` so fork-join call sites can move it into
/// many closures.
#[derive(Clone, Copy)]
pub struct TraceContext {
    trace_id: u64,
    parent: u64,
    on: bool,
}

/// Captures the current thread's trace context (cheap no-op when
/// tracing is off). Pair with [`install_context`] in the receiving
/// thread so pool workers' spans keep the forker's trace id and nest
/// under its open span.
pub fn capture_context() -> TraceContext {
    if state() & TRACE_ON == 0 {
        return TraceContext {
            trace_id: 0,
            parent: 0,
            on: false,
        };
    }
    CTX.try_with(|c| {
        let c = c.borrow();
        TraceContext {
            trace_id: c.trace_id,
            parent: c.parent,
            on: true,
        }
    })
    .unwrap_or(TraceContext {
        trace_id: 0,
        parent: 0,
        on: false,
    })
}

/// Installs a captured context on the calling thread until the guard
/// drops.
pub fn install_context(tc: TraceContext) -> TraceScope {
    if !tc.on || state() & TRACE_ON == 0 {
        return TraceScope {
            prev_trace: 0,
            prev_parent: 0,
            active: false,
        };
    }
    CTX.try_with(|c| {
        let mut c = c.borrow_mut();
        let scope = TraceScope {
            prev_trace: c.trace_id,
            prev_parent: c.parent,
            active: true,
        };
        c.trace_id = tc.trace_id;
        c.parent = tc.parent;
        scope
    })
    .unwrap_or(TraceScope {
        prev_trace: 0,
        prev_parent: 0,
        active: false,
    })
}

// ---------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------

/// Measures the region from construction to drop. Obtain via [`span`]
/// / [`span_with_aux`]; inert (zero work beyond the constructor's one
/// atomic load) when both sinks are off.
#[must_use = "a span records its time when dropped — bind it to a variable"]
pub struct Span {
    key: &'static str,
    /// `None` only for inert spans — the disabled path must not even
    /// read the clock.
    start: Option<Instant>,
    /// Active sink bits (`PROFILE_ON` / `TRACE_ON`); 0 = inert.
    flags: u8,
    tid: u32,
    span_id: u64,
    parent: u64,
    trace_id: u64,
    start_ns: u64,
    aux: u64,
}

impl Span {
    #[inline]
    const fn inert() -> Span {
        Span {
            key: "",
            start: None,
            flags: 0,
            tid: 0,
            span_id: 0,
            parent: 0,
            trace_id: 0,
            start_ns: 0,
            aux: 0,
        }
    }

    /// Attaches an auxiliary value recorded with the span (serve uses
    /// it for batch sizes and cross-links). No-op when inert.
    pub fn set_aux(&mut self, aux: u64) {
        self.aux = aux;
    }

    /// The span's recorder id (0 when inert or profile-only) — pass as
    /// `parent` to [`record_complete`] to hang retro-spans under it.
    pub fn id(&self) -> u64 {
        self.span_id
    }
}

/// Opens a span for `key`. One relaxed atomic load when disabled.
#[inline]
pub fn span(key: &'static str) -> Span {
    span_with_aux(key, 0)
}

/// [`span`] with an auxiliary u64 recorded alongside (flight recorder
/// only; the profile aggregate ignores it).
#[inline]
pub fn span_with_aux(key: &'static str, aux: u64) -> Span {
    let s = state();
    if s & (PROFILE_ON | TRACE_ON) == 0 {
        return Span::inert();
    }
    open_span(key, aux, s)
}

fn open_span(key: &'static str, aux: u64, s: u8) -> Span {
    let start = Instant::now();
    if s & TRACE_ON == 0 {
        // Profile-only: aggregate by key on drop, no recorder record.
        let mut sp = Span::inert();
        sp.key = key;
        sp.start = Some(start);
        sp.flags = PROFILE_ON;
        return sp;
    }
    let opened = CTX.try_with(|c| {
        let mut c = c.borrow_mut();
        let tid = ensure_tid(&mut c);
        let span_id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
        let parent = c.parent;
        c.parent = span_id;
        (tid, c.trace_id, parent, span_id)
    });
    match opened {
        Ok((tid, trace_id, parent, span_id)) => Span {
            key,
            start: Some(start),
            flags: s & (PROFILE_ON | TRACE_ON),
            tid,
            span_id,
            parent,
            trace_id,
            start_ns: start.saturating_duration_since(epoch()).as_nanos() as u64,
            aux,
        },
        // TLS teardown: degrade to profile-only (or inert).
        Err(_) => {
            let mut sp = Span::inert();
            sp.key = key;
            sp.start = Some(start);
            sp.flags = s & PROFILE_ON;
            sp
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.flags == 0 {
            return;
        }
        let Some(start) = self.start else { return };
        let dur = start.elapsed();
        if self.flags & PROFILE_ON != 0 {
            crate::profile::record(self.key, dur.as_nanos());
        }
        if self.flags & TRACE_ON != 0 {
            // Pop the parent stack even if the ring drops the event.
            let _ = CTX.try_with(|c| c.borrow_mut().parent = self.parent);
            recorder().record(RawSpan {
                key_id: intern(self.key),
                tid: self.tid,
                span_id: self.span_id,
                parent: self.parent,
                trace_id: self.trace_id,
                start_ns: self.start_ns,
                dur_ns: dur.as_nanos() as u64,
                aux: self.aux,
            });
        }
    }
}

/// Records an already-elapsed region (phases only measurable
/// retroactively, e.g. queue wait observed at dequeue). `parent` 0
/// roots the span; returns the allocated span id (0 when tracing is
/// off) so callers can parent further retro-spans under it.
pub fn record_complete(
    key: &'static str,
    start: Instant,
    dur: Duration,
    trace_id: u64,
    parent: u64,
    aux: u64,
) -> u64 {
    if state() & TRACE_ON == 0 {
        return 0;
    }
    let tid = CTX
        .try_with(|c| ensure_tid(&mut c.borrow_mut()))
        .unwrap_or(0);
    let span_id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    recorder().record(RawSpan {
        key_id: intern(key),
        tid,
        span_id,
        parent,
        trace_id,
        start_ns: start.saturating_duration_since(epoch()).as_nanos() as u64,
        dur_ns: dur.as_nanos() as u64,
        aux,
    });
    span_id
}

// ---------------------------------------------------------------------
// Flight recorder ring.
// ---------------------------------------------------------------------

const SLOT_WORDS: usize = 7;

struct Slot {
    /// Seqlock word: 0 = never written, odd = writer mid-flight, even
    /// nonzero = stable (value `ticket * 2 + 2`).
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

struct RawSpan {
    key_id: u32,
    tid: u32,
    span_id: u64,
    parent: u64,
    trace_id: u64,
    start_ns: u64,
    dur_ns: u64,
    aux: u64,
}

struct Recorder {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl Recorder {
    fn with_capacity(cap: usize) -> Recorder {
        let cap = cap.clamp(16, 1 << 22);
        Recorder {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
        }
    }

    fn record(&self, r: RawSpan) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        let cur = slot.seq.load(Ordering::Relaxed);
        if cur & 1 == 1 {
            // A lapped writer still owns this slot — shed, never block.
            return;
        }
        if slot
            .seq
            .compare_exchange(cur, ticket * 2 + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        slot.words[0].store(
            u64::from(r.key_id) | (u64::from(r.tid) << 32),
            Ordering::Relaxed,
        );
        slot.words[1].store(r.span_id, Ordering::Relaxed);
        slot.words[2].store(r.parent, Ordering::Relaxed);
        slot.words[3].store(r.trace_id, Ordering::Relaxed);
        slot.words[4].store(r.start_ns, Ordering::Relaxed);
        slot.words[5].store(r.dur_ns, Ordering::Relaxed);
        slot.words[6].store(r.aux, Ordering::Relaxed);
        slot.seq.store(ticket * 2 + 2, Ordering::Release);
    }

    fn snapshot(&self) -> Vec<RawSpan> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                continue;
            }
            let words: [u64; SLOT_WORDS] =
                std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            std::sync::atomic::fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue; // torn by a concurrent writer — skip
            }
            out.push(RawSpan {
                key_id: (words[0] & 0xFFFF_FFFF) as u32,
                tid: (words[0] >> 32) as u32,
                span_id: words[1],
                parent: words[2],
                trace_id: words[3],
                start_ns: words[4],
                dur_ns: words[5],
                aux: words[6],
            });
        }
        out.sort_by_key(|r| (r.start_ns, r.span_id));
        out
    }

    fn clear(&self) {
        for slot in self.slots.iter() {
            slot.seq.store(0, Ordering::Relaxed);
        }
        self.head.store(0, Ordering::Relaxed);
    }
}

static RECORDER: OnceLock<Recorder> = OnceLock::new();

fn recorder() -> &'static Recorder {
    RECORDER.get_or_init(|| {
        let cap = std::env::var("T2FSNN_TRACE_CAP")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(65_536);
        Recorder::with_capacity(cap)
    })
}

// ---------------------------------------------------------------------
// Snapshot + Chrome trace-event export.
// ---------------------------------------------------------------------

/// One completed span drained from the flight recorder.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// The span site's key (`sim/fire`, `serve/request`, …).
    pub key: &'static str,
    /// Recorder-assigned thread ordinal (1-based).
    pub tid: u32,
    /// Unique span id.
    pub span_id: u64,
    /// Enclosing span's id, 0 for roots.
    pub parent_id: u64,
    /// Request/batch trace id from the enclosing [`trace_scope`], 0 if
    /// none.
    pub trace_id: u64,
    /// Start, nanos since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanos.
    pub dur_ns: u64,
    /// Site-provided auxiliary value (batch size, cross-link, …).
    pub aux: u64,
}

/// Drains a consistent copy of the flight recorder, oldest first.
/// Empty when tracing never ran.
pub fn snapshot() -> Vec<SpanEvent> {
    let Some(rec) = RECORDER.get() else {
        return Vec::new();
    };
    let keys = key_registry().lock().unwrap().clone();
    rec.snapshot()
        .into_iter()
        .filter_map(|r| {
            // A torn slot that slipped the seqlock check can carry a
            // garbage key id; drop it rather than export junk.
            let key = *keys.get(r.key_id as usize)?;
            Some(SpanEvent {
                key,
                tid: r.tid,
                span_id: r.span_id,
                parent_id: r.parent,
                trace_id: r.trace_id,
                start_ns: r.start_ns,
                dur_ns: r.dur_ns,
                aux: r.aux,
            })
        })
        .collect()
}

/// Resets the recorder (drops all retained events). Races benignly
/// with concurrent writers; meant for tests and the debug endpoint.
pub fn clear() {
    if let Some(rec) = RECORDER.get() {
        rec.clear();
    }
}

/// Escapes `s` into `out` as JSON string *contents* (no surrounding
/// quotes). Shared with the structured logger.
pub(crate) fn json_escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

/// Renders the current recorder contents as a Chrome trace-event JSON
/// document (`{"traceEvents":[...]}`): complete (`ph:"X"`) events in
/// microseconds plus thread-name metadata. Load it in Perfetto
/// (ui.perfetto.dev) or `chrome://tracing`.
pub fn chrome_trace_json() -> String {
    let events = snapshot();
    let names = thread_names().lock().unwrap().clone();
    let mut out = String::with_capacity(256 + events.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"t2fsnn\"}}",
    );
    for (tid, name) in &names {
        out.push_str(",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
        let _ = write!(out, "{tid}");
        out.push_str(",\"args\":{\"name\":\"");
        json_escape_into(&mut out, name);
        out.push_str("\"}}");
    }
    for e in &events {
        out.push_str(",{\"name\":\"");
        json_escape_into(&mut out, e.key);
        out.push_str("\",\"cat\":\"t2fsnn\",\"ph\":\"X\",\"pid\":1,\"tid\":");
        let _ = write!(out, "{}", e.tid);
        out.push_str(",\"ts\":");
        push_us(&mut out, e.start_ns);
        out.push_str(",\"dur\":");
        push_us(&mut out, e.dur_ns);
        let _ = write!(
            out,
            ",\"args\":{{\"trace\":{},\"span\":{},\"parent\":{}",
            e.trace_id, e.span_id, e.parent_id
        );
        if e.aux != 0 {
            let _ = write!(out, ",\"aux\":{}", e.aux);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Writes [`chrome_trace_json`] to `path`.
pub fn write_chrome_trace(path: &Path) -> std::io::Result<usize> {
    let events = snapshot().len();
    std::fs::write(path, chrome_trace_json())?;
    Ok(events)
}

/// The export path from `T2FSNN_TRACE`, when the value names a file
/// (`1` enables recording without an export file; empty/`0` disables).
pub fn env_trace_path() -> Option<PathBuf> {
    let v = std::env::var("T2FSNN_TRACE").ok()?;
    if v.is_empty() || v == "0" || v == "1" {
        return None;
    }
    Some(PathBuf::from(v))
}

/// End-of-run hook for the repro binaries: when `T2FSNN_TRACE` names a
/// file, writes the Chrome trace there and reports to stderr.
pub fn export_env_trace() {
    let Some(path) = env_trace_path() else {
        return;
    };
    match write_chrome_trace(&path) {
        Ok(n) => eprintln!(
            "[trace] wrote {n} spans to {} (Chrome trace JSON)",
            path.display()
        ),
        Err(e) => eprintln!("[trace] FAILED writing {}: {e}", path.display()),
    }
}

#[cfg(test)]
pub(crate) fn test_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::{Arc, Barrier};

    fn lock_state() -> std::sync::MutexGuard<'static, ()> {
        match test_lock().lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn spans_nest_and_carry_trace_ids() {
        let _g = lock_state();
        set_enabled(true);
        clear();
        let trace = next_trace_id();
        let (outer_id, inner_parent);
        {
            let _scope = trace_scope(trace);
            let outer = span("test/outer");
            outer_id = outer.span_id;
            {
                let inner = span_with_aux("test/inner", 7);
                inner_parent = inner.parent;
                assert_eq!(inner.trace_id, trace);
            }
        }
        set_enabled(false);
        assert_eq!(inner_parent, outer_id, "inner span must parent under outer");
        let events = snapshot();
        let outer = events
            .iter()
            .find(|e| e.key == "test/outer")
            .expect("outer recorded");
        let inner = events
            .iter()
            .find(|e| e.key == "test/inner")
            .expect("inner recorded");
        assert_eq!(outer.parent_id, 0, "scope root has no parent");
        assert_eq!(inner.parent_id, outer.span_id);
        assert_eq!(inner.aux, 7);
        assert_eq!(outer.trace_id, trace);
        assert_eq!(inner.trace_id, trace);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(outer.tid > 0);
    }

    #[test]
    fn ring_keeps_most_recent_and_sheds_under_wrap() {
        let rec = Recorder::with_capacity(16);
        for i in 0..100u64 {
            rec.record(RawSpan {
                key_id: 0,
                tid: 1,
                span_id: i + 1,
                parent: 0,
                trace_id: 0,
                start_ns: i,
                dur_ns: 1,
                aux: i,
            });
        }
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 16);
        for r in &snap {
            assert!(
                r.aux >= 84,
                "ring must retain the newest events, got aux {}",
                r.aux
            );
        }
    }

    #[test]
    fn concurrent_writers_never_corrupt_the_snapshot() {
        let rec = Arc::new(Recorder::with_capacity(32));
        let barrier = Arc::new(Barrier::new(4));
        let torn = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let rec = Arc::clone(&rec);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                for i in 0..2_000u64 {
                    // Every writer encodes its payload self-consistently:
                    // span_id == aux. A mixed write would break it.
                    let v = t * 1_000_000 + i;
                    rec.record(RawSpan {
                        key_id: 0,
                        tid: t as u32 + 1,
                        span_id: v,
                        parent: v,
                        trace_id: v,
                        start_ns: v,
                        dur_ns: v,
                        aux: v,
                    });
                }
            }));
        }
        for _ in 0..50 {
            for r in rec.snapshot() {
                if !(r.span_id == r.aux && r.span_id == r.trace_id) {
                    torn.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        for r in rec.snapshot() {
            assert_eq!(r.span_id, r.aux, "stable snapshot must be self-consistent");
        }
        assert_eq!(
            torn.load(Ordering::Relaxed),
            0,
            "seqlock let a torn record through"
        );
    }

    #[test]
    fn chrome_json_is_wellformed_and_escapes() {
        let _g = lock_state();
        set_enabled(true);
        clear();
        {
            let _s = span("test/chrome");
        }
        set_enabled(false);
        let json = chrome_trace_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"test/chrome\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"thread_name\""));
        let mut escaped = String::new();
        json_escape_into(&mut escaped, "a\"b\\c\nd\u{1}");
        assert_eq!(escaped, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn record_complete_is_linked_and_exported() {
        let _g = lock_state();
        set_enabled(true);
        clear();
        let t0 = Instant::now();
        let id = record_complete("test/retro", t0, Duration::from_micros(250), 99, 0, 5);
        assert_ne!(id, 0);
        let child = record_complete(
            "test/retro_child",
            t0,
            Duration::from_micros(100),
            99,
            id,
            0,
        );
        set_enabled(false);
        let events = snapshot();
        let retro = events.iter().find(|e| e.key == "test/retro").unwrap();
        let kid = events.iter().find(|e| e.key == "test/retro_child").unwrap();
        assert_eq!(retro.span_id, id);
        assert_eq!(retro.dur_ns, 250_000);
        assert_eq!(retro.trace_id, 99);
        assert_eq!(kid.parent_id, id);
        assert_eq!(kid.span_id, child);
    }

    #[test]
    fn disabled_sites_record_nothing() {
        let _g = lock_state();
        set_enabled(false);
        set_profiling(false);
        clear();
        {
            let _s = span("test/off");
        }
        assert!(
            snapshot().iter().all(|e| e.key != "test/off"),
            "disabled span leaked into the recorder"
        );
        assert_eq!(current_trace_id(), 0);
        let scope = trace_scope(5);
        assert!(!scope.active);
    }
}
