//! # t2fsnn-tensor
//!
//! Dense `f32` tensor substrate for the [T2FSNN (DAC 2020)] reproduction.
//!
//! This crate provides the single numeric container shared by the whole
//! workspace — the [`Tensor`] — together with the kernels a from-scratch
//! CNN + spiking-network simulator needs: [`ops::matmul`], im2col
//! [`ops::conv2d`] (with analytic backward passes), [`ops::max_pool2d`] /
//! [`ops::avg_pool2d`], activations, and random [`init`]ializers.
//!
//! It intentionally does *not* depend on any deep-learning framework; the
//! reproduction builds every substrate from scratch per its design brief.
//!
//! ## Quick example
//!
//! ```
//! use t2fsnn_tensor::{ops, Tensor};
//!
//! # fn main() -> Result<(), t2fsnn_tensor::TensorError> {
//! // A 1-image, 1-channel 4×4 input convolved with an edge-ish kernel.
//! let input = Tensor::from_fn([1, 1, 4, 4], |i| (i[2] + i[3]) as f32);
//! let weight = Tensor::from_vec([1, 1, 2, 2], vec![1.0, -1.0, -1.0, 1.0])?;
//! let bias = Tensor::zeros([1]);
//! let out = ops::conv2d(&input, &weight, &bias, ops::Conv2dSpec::new(1, 0))?;
//! assert_eq!(out.dims(), &[1, 1, 3, 3]);
//! # Ok(())
//! # }
//! ```
//!
//! [T2FSNN (DAC 2020)]: https://arxiv.org/abs/2003.11741

#![warn(missing_docs)]
// `deny` rather than `forbid`: the [`simd`] module (and only it) opts
// back in with a module-level `allow` for the `std::arch` intrinsic
// calls behind its runtime AVX2 dispatch. Everything else stays safe.
#![deny(unsafe_code)]

mod error;
mod events;
pub mod init;
pub mod log;
pub mod ops;
mod parallel;
pub mod perturb;
pub mod profile;
mod shape;
pub mod simd;
mod tensor;
pub mod trace;

pub use error::{Result, TensorError};
pub use events::SpikeBatch;
pub use parallel::ThreadPool;
pub use shape::Shape;
pub use tensor::Tensor;
