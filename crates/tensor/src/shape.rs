//! Tensor shapes and row-major stride arithmetic.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The dimensions of a tensor, stored outermost-first (row-major).
///
/// A `Shape` is a thin wrapper around a `Vec<usize>` that provides element
/// counting, stride computation and flat-index conversion. Scalars are
/// represented by the empty shape `[]` with one element.
///
/// # Examples
///
/// ```
/// use t2fsnn_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.flat_index(&[1, 2, 3]), Some(23));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Returns the dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Returns the number of dimensions (the rank).
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Returns the size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Returns the total number of elements (product of all dimensions).
    ///
    /// The empty shape (a scalar) has one element.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Returns row-major strides: `strides[i]` is the flat-index distance
    /// between consecutive elements along axis `i`.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat offset, or `None` if the
    /// index is out of bounds or has the wrong rank.
    pub fn flat_index(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.0.len() {
            return None;
        }
        let mut flat = 0usize;
        let strides = self.strides();
        for ((&i, &d), &s) in index.iter().zip(&self.0).zip(&strides) {
            if i >= d {
                return None;
            }
            flat += i * s;
        }
        Some(flat)
    }

    /// Converts a flat offset back to a multi-dimensional index, or `None`
    /// if the offset is out of range.
    pub fn multi_index(&self, mut flat: usize) -> Option<Vec<usize>> {
        if flat >= self.numel() {
            return None;
        }
        let strides = self.strides();
        let mut index = vec![0usize; self.0.len()];
        for (i, &s) in strides.iter().enumerate() {
            index[i] = flat / s;
            flat %= s;
        }
        Some(index)
    }

    /// Returns `true` if the shape has zero elements along any axis.
    pub fn is_empty(&self) -> bool {
        self.0.contains(&0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(&[]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.flat_index(&[]), Some(0));
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        let s = Shape::new(&[5]);
        assert_eq!(s.strides(), vec![1]);
    }

    #[test]
    fn flat_index_round_trips() {
        let s = Shape::new(&[2, 3, 4]);
        for flat in 0..s.numel() {
            let multi = s.multi_index(flat).expect("in range");
            assert_eq!(s.flat_index(&multi), Some(flat));
        }
    }

    #[test]
    fn flat_index_rejects_out_of_bounds() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.flat_index(&[2, 0]), None);
        assert_eq!(s.flat_index(&[0, 3]), None);
        assert_eq!(s.flat_index(&[0]), None);
        assert_eq!(s.multi_index(6), None);
    }

    #[test]
    fn zero_sized_axis_is_empty() {
        let s = Shape::new(&[2, 0, 3]);
        assert!(s.is_empty());
        assert_eq!(s.numel(), 0);
    }

    #[test]
    fn display_formats_like_a_list() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::new(&[]).to_string(), "[]");
    }

    #[test]
    fn conversions_from_arrays_and_vecs() {
        let a: Shape = [1, 2, 3].into();
        let b: Shape = vec![1, 2, 3].into();
        assert_eq!(a, b);
        assert_eq!(a.as_ref(), &[1, 2, 3]);
    }
}
