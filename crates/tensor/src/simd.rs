//! Runtime-dispatched SIMD slice primitives (AVX2) with always-available
//! scalar twins.
//!
//! Every primitive here vectorizes across an **independent-output axis
//! only**: each vector lane owns exactly one output element, performs the
//! same scalar IEEE-754 operations in the same order the scalar twin
//! performs for that element, and lanes never share an accumulator (and
//! no FMA contraction is used — every multiply and add is a separate
//! rounding, exactly as in scalar code). Results are therefore
//! **bit-identical** between the AVX2 and scalar paths, which is what
//! lets the spiking engine's canonical-accumulation-order contract (see
//! [`crate::ops::sparse`]) survive vectorization: per output element the
//! contribution *sequence* is untouched, only how many elements advance
//! per instruction changes.
//!
//! Dispatch is decided once at runtime: AVX2 must be detected via
//! `is_x86_feature_detected!` **and** the `T2FSNN_SIMD` environment
//! variable must not be `0` (the escape hatch for measuring the scalar
//! fallback on modern hardware). [`set_enabled`] can override the
//! decision at any time — flipping it mid-run is safe precisely because
//! both paths produce the same bits. The horizontal reductions in
//! [`dot`]/[`dot2`] keep eight fixed lane accumulators summed in lane
//! order, matching the scalar twin's eight-wide accumulator array.
//!
//! This is the only module in the crate allowed to use `unsafe` (the
//! crate is `deny(unsafe_code)`); every unsafe block is either an
//! `std::arch` intrinsic call guarded by the runtime AVX2 check or an
//! in-bounds pointer offset derived from a slice length computed in safe
//! code.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Whether the CPU supports the AVX2 kernels (cached detection).
pub fn available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// Dispatch state: 0 = undecided, 1 = scalar, 2 = AVX2.
static STATE: AtomicU8 = AtomicU8::new(0);

fn decide() -> u8 {
    let on = available()
        && !matches!(std::env::var("T2FSNN_SIMD"), Ok(v) if v.trim() == "0" || v.trim().eq_ignore_ascii_case("off"));
    let state = if on { 2 } else { 1 };
    // Racing first calls decide identically (env + CPUID are stable).
    STATE.store(state, Ordering::Relaxed);
    state
}

/// Whether the AVX2 kernels are currently dispatched to. Decided on
/// first use from [`available`] and `T2FSNN_SIMD` (`0`/`off` disables),
/// overridable via [`set_enabled`].
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => decide() == 2,
        s => s == 2,
    }
}

/// Forces SIMD dispatch on or off, returning the previous state.
/// Enabling on hardware without AVX2 support is ignored (stays scalar).
/// Safe to flip at any time — both paths are bit-identical — so tests
/// can compare the two back to back in one process.
pub fn set_enabled(on: bool) -> bool {
    let prev = enabled();
    let state = if on && available() { 2 } else { 1 };
    STATE.store(state, Ordering::Relaxed);
    prev
}

// ---------------------------------------------------------------------
// Scalar twins. These are the reference semantics: the AVX2 kernels
// below perform exactly these per-element operation sequences.
// ---------------------------------------------------------------------

fn axpy_scalar(out: &mut [f32], a: f32, b: &[f32]) {
    for (o, &bv) in out.iter_mut().zip(b) {
        *o += a * bv;
    }
}

#[allow(clippy::too_many_arguments)] // hot four-row microkernel; a struct would obscure it
fn axpy4_scalar(
    r0: &mut [f32],
    r1: &mut [f32],
    r2: &mut [f32],
    r3: &mut [f32],
    v: [f32; 4],
    b: &[f32],
) {
    for (((o0, o1), (o2, o3)), &bv) in r0
        .iter_mut()
        .zip(r1.iter_mut())
        .zip(r2.iter_mut().zip(r3.iter_mut()))
        .zip(b)
    {
        *o0 += v[0] * bv;
        *o1 += v[1] * bv;
        *o2 += v[2] * bv;
        *o3 += v[3] * bv;
    }
}

fn quad_axpy_scalar(out: &mut [f32], v: [f32; 4], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) {
    for ((((o, &w0), &w1), &w2), &w3) in out.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
        *o += v[0] * w0 + v[1] * w1 + v[2] * w2 + v[3] * w3;
    }
}

#[allow(clippy::too_many_arguments)] // the whole-block GEMM core; a struct would obscure it
fn gemm_block4_scalar(
    r0: &mut [f32],
    r1: &mut [f32],
    r2: &mut [f32],
    r3: &mut [f32],
    a0: &[f32],
    a1: &[f32],
    a2: &[f32],
    a3: &[f32],
    bd: &[f32],
    n: usize,
) {
    let k = a0.len().min(a1.len()).min(a2.len()).min(a3.len());
    for p in 0..k {
        let v = [a0[p], a1[p], a2[p], a3[p]];
        if v == [0.0; 4] {
            continue;
        }
        axpy4_scalar(r0, r1, r2, r3, v, &bd[p * n..(p + 1) * n]);
    }
}

#[allow(clippy::too_many_arguments)] // the whole-block Aᵀ·B core; a struct would obscure it
fn at_b_block4_scalar(
    out: &mut [f32],
    n: usize,
    a0: &[f32],
    a1: &[f32],
    a2: &[f32],
    a3: &[f32],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) {
    let m = a0.len().min(a1.len()).min(a2.len()).min(a3.len());
    for (i, orow) in out.chunks_exact_mut(n).enumerate().take(m) {
        let v = [a0[i], a1[i], a2[i], a3[i]];
        if v == [0.0; 4] {
            continue;
        }
        quad_axpy_scalar(orow, v, b0, b1, b2, b3);
    }
}

#[allow(clippy::too_many_arguments)] // the per-event scatter core; a struct would obscure it
fn scatter_rows_scalar(
    out: &mut [f32],
    o0: usize,
    o_step: isize,
    wt: &[f32],
    w0: usize,
    w_step: usize,
    rows: usize,
    len: usize,
    v: f32,
) {
    for r in 0..rows {
        let ostart = (o0 as isize + r as isize * o_step) as usize;
        let wstart = w0 + r * w_step;
        axpy_scalar(&mut out[ostart..ostart + len], v, &wt[wstart..wstart + len]);
    }
}

fn dot_scalar(x: &[f32], y: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    let chunks = x.len().min(y.len()) / 8;
    for c in 0..chunks {
        let xs = &x[c * 8..c * 8 + 8];
        let ys = &y[c * 8..c * 8 + 8];
        for l in 0..8 {
            acc[l] += xs[l] * ys[l];
        }
    }
    let mut tail = 0.0f32;
    for (xv, yv) in x[chunks * 8..].iter().zip(&y[chunks * 8..]) {
        tail += xv * yv;
    }
    acc.iter().sum::<f32>() + tail
}

fn dot2_scalar(x: &[f32], y0: &[f32], y1: &[f32]) -> (f32, f32) {
    let mut acc0 = [0.0f32; 8];
    let mut acc1 = [0.0f32; 8];
    let chunks = x.len().min(y0.len()).min(y1.len()) / 8;
    for c in 0..chunks {
        let xs = &x[c * 8..c * 8 + 8];
        let y0s = &y0[c * 8..c * 8 + 8];
        let y1s = &y1[c * 8..c * 8 + 8];
        for l in 0..8 {
            acc0[l] += xs[l] * y0s[l];
            acc1[l] += xs[l] * y1s[l];
        }
    }
    let mut t0 = 0.0f32;
    let mut t1 = 0.0f32;
    for ((xv, y0v), y1v) in x[chunks * 8..]
        .iter()
        .zip(&y0[chunks * 8..])
        .zip(&y1[chunks * 8..])
    {
        t0 += xv * y0v;
        t1 += xv * y1v;
    }
    (acc0.iter().sum::<f32>() + t0, acc1.iter().sum::<f32>() + t1)
}

fn add_scaled_scalar(out: &mut [f32], src: &[f32], scale: f32) {
    for (o, &s) in out.iter_mut().zip(src) {
        *o += s * scale;
    }
}

fn collect_ge_scalar(data: &[f32], threshold: f32, hits: &mut Vec<u32>) {
    for (j, &v) in data.iter().enumerate() {
        if v >= threshold {
            hits.push(j as u32);
        }
    }
}

fn normalize_scalar(out: &mut [f32], src: &[f32], mean: f32, inv_std: f32) {
    for (o, &v) in out.iter_mut().zip(src) {
        *o = (v - mean) * inv_std;
    }
}

fn affine_scalar(out: &mut [f32], src: &[f32], scale: f32, shift: f32) {
    for (o, &v) in out.iter_mut().zip(src) {
        *o = scale * v + shift;
    }
}

#[allow(clippy::too_many_arguments)] // mirrors the fused eval-mode loop 1:1
fn normalize_affine_scalar(
    out: &mut [f32],
    src: &[f32],
    mean: f32,
    inv_std: f32,
    scale: f32,
    shift: f32,
) {
    for (o, &v) in out.iter_mut().zip(src) {
        *o = scale * ((v - mean) * inv_std) + shift;
    }
}

fn bn_input_grad_scalar(
    out: &mut [f32],
    gout: &[f32],
    xhat: &[f32],
    scale: f32,
    m_dy: f32,
    m_dy_xh: f32,
) {
    for ((o, &g), &x) in out.iter_mut().zip(gout).zip(xhat) {
        *o = scale * (g - m_dy - x * m_dy_xh);
    }
}

// ---------------------------------------------------------------------
// AVX2 kernels. One lane = one output element; per lane the operation
// sequence is exactly the scalar twin's.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// `out[i] += a * b[i]`.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn axpy(out: &mut [f32], a: f32, b: &[f32]) {
        let n = out.len().min(b.len());
        let av = _mm256_set1_ps(a);
        let mut i = 0;
        // Two ymm per iteration: conv scatter rows are typically 24–96
        // floats, so the wider step keeps more loads in flight. Lanes
        // stay independent — per-element arithmetic is unchanged.
        while i + 16 <= n {
            let oa = _mm256_loadu_ps(out.as_ptr().add(i));
            let ob = _mm256_loadu_ps(out.as_ptr().add(i + 8));
            let ba = _mm256_loadu_ps(b.as_ptr().add(i));
            let bb = _mm256_loadu_ps(b.as_ptr().add(i + 8));
            _mm256_storeu_ps(
                out.as_mut_ptr().add(i),
                _mm256_add_ps(oa, _mm256_mul_ps(av, ba)),
            );
            _mm256_storeu_ps(
                out.as_mut_ptr().add(i + 8),
                _mm256_add_ps(ob, _mm256_mul_ps(av, bb)),
            );
            i += 16;
        }
        while i + 8 <= n {
            let ov = _mm256_loadu_ps(out.as_ptr().add(i));
            let bv = _mm256_loadu_ps(b.as_ptr().add(i));
            _mm256_storeu_ps(
                out.as_mut_ptr().add(i),
                _mm256_add_ps(ov, _mm256_mul_ps(av, bv)),
            );
            i += 8;
        }
        while i < n {
            out[i] += a * b[i];
            i += 1;
        }
    }

    /// Four-row axpy: `r{0..3}[i] += v{0..3} * b[i]`.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn axpy4(
        r0: &mut [f32],
        r1: &mut [f32],
        r2: &mut [f32],
        r3: &mut [f32],
        v: [f32; 4],
        b: &[f32],
    ) {
        let n = r0
            .len()
            .min(r1.len())
            .min(r2.len())
            .min(r3.len())
            .min(b.len());
        let v0 = _mm256_set1_ps(v[0]);
        let v1 = _mm256_set1_ps(v[1]);
        let v2 = _mm256_set1_ps(v[2]);
        let v3 = _mm256_set1_ps(v[3]);
        let mut i = 0;
        // Two ymm per row per iteration (16 lanes): matches what the
        // autovectorizer unrolls to and keeps more loads in flight.
        // Lanes stay independent, so per-element arithmetic (and
        // therefore the result) is unchanged.
        while i + 16 <= n {
            let ba = _mm256_loadu_ps(b.as_ptr().add(i));
            let bb = _mm256_loadu_ps(b.as_ptr().add(i + 8));
            let o0a = _mm256_loadu_ps(r0.as_ptr().add(i));
            let o0b = _mm256_loadu_ps(r0.as_ptr().add(i + 8));
            _mm256_storeu_ps(
                r0.as_mut_ptr().add(i),
                _mm256_add_ps(o0a, _mm256_mul_ps(v0, ba)),
            );
            _mm256_storeu_ps(
                r0.as_mut_ptr().add(i + 8),
                _mm256_add_ps(o0b, _mm256_mul_ps(v0, bb)),
            );
            let o1a = _mm256_loadu_ps(r1.as_ptr().add(i));
            let o1b = _mm256_loadu_ps(r1.as_ptr().add(i + 8));
            _mm256_storeu_ps(
                r1.as_mut_ptr().add(i),
                _mm256_add_ps(o1a, _mm256_mul_ps(v1, ba)),
            );
            _mm256_storeu_ps(
                r1.as_mut_ptr().add(i + 8),
                _mm256_add_ps(o1b, _mm256_mul_ps(v1, bb)),
            );
            let o2a = _mm256_loadu_ps(r2.as_ptr().add(i));
            let o2b = _mm256_loadu_ps(r2.as_ptr().add(i + 8));
            _mm256_storeu_ps(
                r2.as_mut_ptr().add(i),
                _mm256_add_ps(o2a, _mm256_mul_ps(v2, ba)),
            );
            _mm256_storeu_ps(
                r2.as_mut_ptr().add(i + 8),
                _mm256_add_ps(o2b, _mm256_mul_ps(v2, bb)),
            );
            let o3a = _mm256_loadu_ps(r3.as_ptr().add(i));
            let o3b = _mm256_loadu_ps(r3.as_ptr().add(i + 8));
            _mm256_storeu_ps(
                r3.as_mut_ptr().add(i),
                _mm256_add_ps(o3a, _mm256_mul_ps(v3, ba)),
            );
            _mm256_storeu_ps(
                r3.as_mut_ptr().add(i + 8),
                _mm256_add_ps(o3b, _mm256_mul_ps(v3, bb)),
            );
            i += 16;
        }
        while i + 8 <= n {
            let bv = _mm256_loadu_ps(b.as_ptr().add(i));
            let o0 = _mm256_loadu_ps(r0.as_ptr().add(i));
            _mm256_storeu_ps(
                r0.as_mut_ptr().add(i),
                _mm256_add_ps(o0, _mm256_mul_ps(v0, bv)),
            );
            let o1 = _mm256_loadu_ps(r1.as_ptr().add(i));
            _mm256_storeu_ps(
                r1.as_mut_ptr().add(i),
                _mm256_add_ps(o1, _mm256_mul_ps(v1, bv)),
            );
            let o2 = _mm256_loadu_ps(r2.as_ptr().add(i));
            _mm256_storeu_ps(
                r2.as_mut_ptr().add(i),
                _mm256_add_ps(o2, _mm256_mul_ps(v2, bv)),
            );
            let o3 = _mm256_loadu_ps(r3.as_ptr().add(i));
            _mm256_storeu_ps(
                r3.as_mut_ptr().add(i),
                _mm256_add_ps(o3, _mm256_mul_ps(v3, bv)),
            );
            i += 8;
        }
        while i < n {
            let bv = b[i];
            r0[i] += v[0] * bv;
            r1[i] += v[1] * bv;
            r2[i] += v[2] * bv;
            r3[i] += v[3] * bv;
            i += 1;
        }
    }

    /// `out[i] += v0·b0[i] + v1·b1[i] + v2·b2[i] + v3·b3[i]`
    /// (left-associated adds, no FMA — matching the scalar twin).
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn quad_axpy(
        out: &mut [f32],
        v: [f32; 4],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) {
        let n = out
            .len()
            .min(b0.len())
            .min(b1.len())
            .min(b2.len())
            .min(b3.len());
        let v0 = _mm256_set1_ps(v[0]);
        let v1 = _mm256_set1_ps(v[1]);
        let v2 = _mm256_set1_ps(v[2]);
        let v3 = _mm256_set1_ps(v[3]);
        let mut i = 0;
        while i + 8 <= n {
            let mut t = _mm256_mul_ps(v0, _mm256_loadu_ps(b0.as_ptr().add(i)));
            t = _mm256_add_ps(t, _mm256_mul_ps(v1, _mm256_loadu_ps(b1.as_ptr().add(i))));
            t = _mm256_add_ps(t, _mm256_mul_ps(v2, _mm256_loadu_ps(b2.as_ptr().add(i))));
            t = _mm256_add_ps(t, _mm256_mul_ps(v3, _mm256_loadu_ps(b3.as_ptr().add(i))));
            let ov = _mm256_loadu_ps(out.as_ptr().add(i));
            _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_add_ps(ov, t));
            i += 8;
        }
        while i < n {
            out[i] += v[0] * b0[i] + v[1] * b1[i] + v[2] * b2[i] + v[3] * b3[i];
            i += 1;
        }
    }

    /// Per-event conv scatter: `rows` equally-spaced row pairs — output
    /// row `o0 + r·o_step`, weight row `w0 + r·w_step`, each `len`
    /// floats — accumulated as `out += v · wt` via [`axpy`]. One
    /// dispatch covers an entire event's kernel rows.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime. Row bounds are
    /// checked through safe slicing (out-of-range rows panic).
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn scatter_rows(
        out: &mut [f32],
        o0: usize,
        o_step: isize,
        wt: &[f32],
        w0: usize,
        w_step: usize,
        rows: usize,
        len: usize,
        v: f32,
    ) {
        for r in 0..rows {
            let ostart = (o0 as isize + r as isize * o_step) as usize;
            let wstart = w0 + r * w_step;
            axpy(&mut out[ostart..ostart + len], v, &wt[wstart..wstart + len]);
        }
    }

    /// Whole four-row GEMM block: for every contraction index `p` in
    /// ascending order (with the all-zero skip), `r{0..3} += a{0..3}[p]
    /// · bd[p·n..]`. Hoisting the loop into one `target_feature` context
    /// lets the per-`p` [`axpy4`] inline (a per-`p` dispatch costs an
    /// atomic load and an un-inlinable call on the hottest loop).
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn gemm_block4(
        r0: &mut [f32],
        r1: &mut [f32],
        r2: &mut [f32],
        r3: &mut [f32],
        a0: &[f32],
        a1: &[f32],
        a2: &[f32],
        a3: &[f32],
        bd: &[f32],
        n: usize,
    ) {
        // Defensive clamps so the raw-pointer tile loads below are
        // in-bounds for any caller-supplied slice lengths.
        let n = n.min(r0.len()).min(r1.len()).min(r2.len()).min(r3.len());
        let k = a0
            .len()
            .min(a1.len())
            .min(a2.len())
            .min(a3.len())
            .min(bd.len().checked_div(n).unwrap_or(0));
        // Register-tiled core: a 4-row × 16-column tile of the output
        // lives in eight ymm accumulators across the whole contraction,
        // so each output element is loaded and stored **once** instead
        // of once per `p`. Per element the contributions still add in
        // ascending `p` order (each accumulator lane owns one element),
        // so results are bit-identical to the streaming form.
        let mut j = 0;
        while j + 16 <= n {
            let mut c0a = _mm256_loadu_ps(r0.as_ptr().add(j));
            let mut c0b = _mm256_loadu_ps(r0.as_ptr().add(j + 8));
            let mut c1a = _mm256_loadu_ps(r1.as_ptr().add(j));
            let mut c1b = _mm256_loadu_ps(r1.as_ptr().add(j + 8));
            let mut c2a = _mm256_loadu_ps(r2.as_ptr().add(j));
            let mut c2b = _mm256_loadu_ps(r2.as_ptr().add(j + 8));
            let mut c3a = _mm256_loadu_ps(r3.as_ptr().add(j));
            let mut c3b = _mm256_loadu_ps(r3.as_ptr().add(j + 8));
            for p in 0..k {
                let v = [a0[p], a1[p], a2[p], a3[p]];
                if v == [0.0; 4] {
                    continue;
                }
                let ba = _mm256_loadu_ps(bd.as_ptr().add(p * n + j));
                let bb = _mm256_loadu_ps(bd.as_ptr().add(p * n + j + 8));
                let v0 = _mm256_set1_ps(v[0]);
                c0a = _mm256_add_ps(c0a, _mm256_mul_ps(v0, ba));
                c0b = _mm256_add_ps(c0b, _mm256_mul_ps(v0, bb));
                let v1 = _mm256_set1_ps(v[1]);
                c1a = _mm256_add_ps(c1a, _mm256_mul_ps(v1, ba));
                c1b = _mm256_add_ps(c1b, _mm256_mul_ps(v1, bb));
                let v2 = _mm256_set1_ps(v[2]);
                c2a = _mm256_add_ps(c2a, _mm256_mul_ps(v2, ba));
                c2b = _mm256_add_ps(c2b, _mm256_mul_ps(v2, bb));
                let v3 = _mm256_set1_ps(v[3]);
                c3a = _mm256_add_ps(c3a, _mm256_mul_ps(v3, ba));
                c3b = _mm256_add_ps(c3b, _mm256_mul_ps(v3, bb));
            }
            _mm256_storeu_ps(r0.as_mut_ptr().add(j), c0a);
            _mm256_storeu_ps(r0.as_mut_ptr().add(j + 8), c0b);
            _mm256_storeu_ps(r1.as_mut_ptr().add(j), c1a);
            _mm256_storeu_ps(r1.as_mut_ptr().add(j + 8), c1b);
            _mm256_storeu_ps(r2.as_mut_ptr().add(j), c2a);
            _mm256_storeu_ps(r2.as_mut_ptr().add(j + 8), c2b);
            _mm256_storeu_ps(r3.as_mut_ptr().add(j), c3a);
            _mm256_storeu_ps(r3.as_mut_ptr().add(j + 8), c3b);
            j += 16;
        }
        if j < n {
            // Column remainder: stream the tail of each B row with the
            // 8-lane/scalar axpy (same per-element order).
            for p in 0..k {
                let v = [a0[p], a1[p], a2[p], a3[p]];
                if v == [0.0; 4] {
                    continue;
                }
                let brow = &bd[p * n + j..(p + 1) * n];
                axpy4(
                    &mut r0[j..],
                    &mut r1[j..],
                    &mut r2[j..],
                    &mut r3[j..],
                    v,
                    brow,
                );
            }
        }
    }

    /// Whole four-deep `Aᵀ·B` block: one sweep of the output matrix per
    /// four contraction rows, `out[i·n..] += Σ a{j}[i] · b{j}` (with the
    /// all-zero skip), dispatched once per block.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn at_b_block4(
        out: &mut [f32],
        n: usize,
        a0: &[f32],
        a1: &[f32],
        a2: &[f32],
        a3: &[f32],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) {
        let m = a0.len().min(a1.len()).min(a2.len()).min(a3.len());
        for (i, orow) in out.chunks_exact_mut(n).enumerate().take(m) {
            let v = [a0[i], a1[i], a2[i], a3[i]];
            if v == [0.0; 4] {
                continue;
            }
            quad_axpy(orow, v, b0, b1, b2, b3);
        }
    }

    /// Sums the eight lanes of `acc` in lane order (the scalar twins'
    /// `acc.iter().sum()` fold), *not* via `hadd` — order matters for
    /// bit-identity.
    #[target_feature(enable = "avx2")]
    unsafe fn lane_sum(acc: __m256) -> f32 {
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        lanes.iter().sum()
    }

    /// Eight-lane dot product with the scalar twin's lane layout.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(x: &[f32], y: &[f32]) -> f32 {
        let n = x.len().min(y.len());
        let chunks = n / 8;
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            let xs = _mm256_loadu_ps(x.as_ptr().add(c * 8));
            let ys = _mm256_loadu_ps(y.as_ptr().add(c * 8));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(xs, ys));
        }
        let mut tail = 0.0f32;
        for i in chunks * 8..n {
            tail += x[i] * y[i];
        }
        lane_sum(acc) + tail
    }

    /// Two dot products sharing the `x` operand.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot2(x: &[f32], y0: &[f32], y1: &[f32]) -> (f32, f32) {
        let n = x.len().min(y0.len()).min(y1.len());
        let chunks = n / 8;
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        for c in 0..chunks {
            let xs = _mm256_loadu_ps(x.as_ptr().add(c * 8));
            acc0 = _mm256_add_ps(
                acc0,
                _mm256_mul_ps(xs, _mm256_loadu_ps(y0.as_ptr().add(c * 8))),
            );
            acc1 = _mm256_add_ps(
                acc1,
                _mm256_mul_ps(xs, _mm256_loadu_ps(y1.as_ptr().add(c * 8))),
            );
        }
        let mut t0 = 0.0f32;
        let mut t1 = 0.0f32;
        for i in chunks * 8..n {
            t0 += x[i] * y0[i];
            t1 += x[i] * y1[i];
        }
        (lane_sum(acc0) + t0, lane_sum(acc1) + t1)
    }

    /// `out[r·len + i] += src[i] * scale` for every complete row `r` —
    /// the broadcast bias injection, one dispatch per tensor.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_scaled_rows(out: &mut [f32], src: &[f32], scale: f32) {
        let len = src.len();
        if len == 0 {
            return;
        }
        for row in out.chunks_exact_mut(len) {
            add_scaled(row, src, scale);
        }
    }

    /// `out[i] += src[i] * scale`.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn add_scaled(out: &mut [f32], src: &[f32], scale: f32) {
        let n = out.len().min(src.len());
        let sv = _mm256_set1_ps(scale);
        let mut i = 0;
        while i + 8 <= n {
            let ov = _mm256_loadu_ps(out.as_ptr().add(i));
            let s = _mm256_loadu_ps(src.as_ptr().add(i));
            _mm256_storeu_ps(
                out.as_mut_ptr().add(i),
                _mm256_add_ps(ov, _mm256_mul_ps(s, sv)),
            );
            i += 8;
        }
        while i < n {
            out[i] += src[i] * scale;
            i += 1;
        }
    }

    /// Appends every index with `data[j] >= threshold` in ascending
    /// order (NaN compares false, exactly like the scalar `>=`).
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn collect_ge(data: &[f32], threshold: f32, hits: &mut Vec<u32>) {
        let n = data.len();
        let tv = _mm256_set1_ps(threshold);
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_loadu_ps(data.as_ptr().add(i));
            // Ordered greater-equal: NaN lanes produce 0, like scalar `>=`.
            let mut mask = _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_GE_OQ>(v, tv)) as u32;
            while mask != 0 {
                let lane = mask.trailing_zeros();
                hits.push((i as u32) + lane);
                mask &= mask - 1;
            }
            i += 8;
        }
        while i < n {
            if data[i] >= threshold {
                hits.push(i as u32);
            }
            i += 1;
        }
    }

    /// `out[i] = (src[i] - mean) * inv_std`.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn normalize(out: &mut [f32], src: &[f32], mean: f32, inv_std: f32) {
        let n = out.len().min(src.len());
        let mv = _mm256_set1_ps(mean);
        let iv = _mm256_set1_ps(inv_std);
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_loadu_ps(src.as_ptr().add(i));
            _mm256_storeu_ps(
                out.as_mut_ptr().add(i),
                _mm256_mul_ps(_mm256_sub_ps(v, mv), iv),
            );
            i += 8;
        }
        while i < n {
            out[i] = (src[i] - mean) * inv_std;
            i += 1;
        }
    }

    /// `out[i] = scale * src[i] + shift` (mul then add, no FMA).
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn affine(out: &mut [f32], src: &[f32], scale: f32, shift: f32) {
        let n = out.len().min(src.len());
        let sv = _mm256_set1_ps(scale);
        let bv = _mm256_set1_ps(shift);
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_loadu_ps(src.as_ptr().add(i));
            _mm256_storeu_ps(
                out.as_mut_ptr().add(i),
                _mm256_add_ps(_mm256_mul_ps(sv, v), bv),
            );
            i += 8;
        }
        while i < n {
            out[i] = scale * src[i] + shift;
            i += 1;
        }
    }

    /// `out[i] = scale * ((src[i] - mean) * inv_std) + shift`.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn normalize_affine(
        out: &mut [f32],
        src: &[f32],
        mean: f32,
        inv_std: f32,
        scale: f32,
        shift: f32,
    ) {
        let n = out.len().min(src.len());
        let mv = _mm256_set1_ps(mean);
        let iv = _mm256_set1_ps(inv_std);
        let sv = _mm256_set1_ps(scale);
        let bv = _mm256_set1_ps(shift);
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_loadu_ps(src.as_ptr().add(i));
            let xh = _mm256_mul_ps(_mm256_sub_ps(v, mv), iv);
            _mm256_storeu_ps(
                out.as_mut_ptr().add(i),
                _mm256_add_ps(_mm256_mul_ps(sv, xh), bv),
            );
            i += 8;
        }
        while i < n {
            out[i] = scale * ((src[i] - mean) * inv_std) + shift;
            i += 1;
        }
    }

    /// `out[i] = scale * (gout[i] - m_dy - xhat[i] * m_dy_xh)`.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn bn_input_grad(
        out: &mut [f32],
        gout: &[f32],
        xhat: &[f32],
        scale: f32,
        m_dy: f32,
        m_dy_xh: f32,
    ) {
        let n = out.len().min(gout.len()).min(xhat.len());
        let sv = _mm256_set1_ps(scale);
        let mv = _mm256_set1_ps(m_dy);
        let mxv = _mm256_set1_ps(m_dy_xh);
        let mut i = 0;
        while i + 8 <= n {
            let g = _mm256_loadu_ps(gout.as_ptr().add(i));
            let x = _mm256_loadu_ps(xhat.as_ptr().add(i));
            // (g - m_dy) - x·m_dy_xh, then × scale — the scalar order.
            let inner = _mm256_sub_ps(_mm256_sub_ps(g, mv), _mm256_mul_ps(x, mxv));
            _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_mul_ps(sv, inner));
            i += 8;
        }
        while i < n {
            out[i] = scale * (gout[i] - m_dy - xhat[i] * m_dy_xh);
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------
// Dispatching entry points.
// ---------------------------------------------------------------------

/// `out[i] += a * b[i]` over `min(out.len(), b.len())` elements — the
/// contiguous axpy behind the scatter kernels and the GEMM remainder
/// rows. Rows shorter than 64 floats stay on the (autovectorized)
/// scalar twin: repeated accumulation into the same row is
/// store-forwarding-bound, and the un-inlinable AVX2 call costs more
/// than wide lanes recover (same measurement as
/// [`SCATTER_SIMD_FLOATS`]).
#[inline]
pub fn axpy(out: &mut [f32], a: f32, b: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if out.len() >= 64 && enabled() {
        // SAFETY: `enabled()` implies AVX2 was detected at runtime.
        unsafe { avx2::axpy(out, a, b) };
        return;
    }
    axpy_scalar(out, a, b);
}

/// Four-row axpy `r{0..3}[i] += v{0..3} * b[i]` — the blocked GEMM's
/// inner loop (`b` is streamed once per four output rows).
#[inline]
#[allow(clippy::too_many_arguments)] // hot four-row microkernel; a struct would obscure it
pub fn axpy4(
    r0: &mut [f32],
    r1: &mut [f32],
    r2: &mut [f32],
    r3: &mut [f32],
    v: [f32; 4],
    b: &[f32],
) {
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        // SAFETY: `enabled()` implies AVX2 was detected at runtime.
        unsafe { avx2::axpy4(r0, r1, r2, r3, v, b) };
        return;
    }
    axpy4_scalar(r0, r1, r2, r3, v, b);
}

/// `out[i] += v[0]·b0[i] + v[1]·b1[i] + v[2]·b2[i] + v[3]·b3[i]` — the
/// four-deep contraction block of `Aᵀ·B`.
#[inline]
pub fn quad_axpy(out: &mut [f32], v: [f32; 4], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        // SAFETY: `enabled()` implies AVX2 was detected at runtime.
        unsafe { avx2::quad_axpy(out, v, b0, b1, b2, b3) };
        return;
    }
    quad_axpy_scalar(out, v, b0, b1, b2, b3);
}

/// Per-event conv scatter: accumulates `rows` equally-spaced
/// `out[o0 + r·o_step..][..len] += v · wt[w0 + r·w_step..][..len]` rows
/// (ascending `r` — under the reversed-KW filter layout this is the
/// canonical tap order), with one dispatch per event instead of one per
/// kernel row.
///
/// Dispatches to AVX2 only for batches of at least
/// [`SCATTER_SIMD_FLOATS`] floats: consecutive events often accumulate
/// into the *same* output rows, so the scatter is bound by
/// store-to-load forwarding latency rather than vector width, and for
/// short rows the un-inlinable `target_feature` call costs more than
/// wide lanes recover (measured ~6 ns/event on the `event_scatter`
/// bench at 16 channels). Both paths are bit-identical, so the
/// threshold is purely a speed knob.
#[inline]
#[allow(clippy::too_many_arguments)] // the per-event scatter core; a struct would obscure it
pub fn scatter_rows(
    out: &mut [f32],
    o0: usize,
    o_step: isize,
    wt: &[f32],
    w0: usize,
    w_step: usize,
    rows: usize,
    len: usize,
    v: f32,
) {
    #[cfg(target_arch = "x86_64")]
    if rows * len >= SCATTER_SIMD_FLOATS && enabled() {
        // SAFETY: `enabled()` implies AVX2 was detected at runtime.
        unsafe { avx2::scatter_rows(out, o0, o_step, wt, w0, w_step, rows, len, v) };
        return;
    }
    scatter_rows_scalar(out, o0, o_step, wt, w0, w_step, rows, len, v);
}

/// Minimum per-event float count before [`scatter_rows`] pays for an
/// AVX2 dispatch (see there for the measurement).
pub const SCATTER_SIMD_FLOATS: usize = 256;

/// Whole four-row GEMM block (the core of `matmul`): for each ascending
/// contraction index `p`, skip if all four `a{j}[p]` are zero, else
/// [`axpy4`] row `bd[p·n..(p+1)·n]` into the four output rows. One
/// dispatch per block keeps the hot loop inside a single AVX2 context.
#[inline]
#[allow(clippy::too_many_arguments)] // the whole-block GEMM core; a struct would obscure it
pub fn gemm_block4(
    r0: &mut [f32],
    r1: &mut [f32],
    r2: &mut [f32],
    r3: &mut [f32],
    a0: &[f32],
    a1: &[f32],
    a2: &[f32],
    a3: &[f32],
    bd: &[f32],
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        // SAFETY: `enabled()` implies AVX2 was detected at runtime.
        unsafe { avx2::gemm_block4(r0, r1, r2, r3, a0, a1, a2, a3, bd, n) };
        return;
    }
    gemm_block4_scalar(r0, r1, r2, r3, a0, a1, a2, a3, bd, n);
}

/// Whole four-deep `Aᵀ·B` block: one sweep of `out` per four
/// contraction rows, `out[i·n..] += Σ_j a{j}[i] · b{j}` with the
/// all-zero skip, dispatched once per block.
#[inline]
#[allow(clippy::too_many_arguments)] // the whole-block Aᵀ·B core; a struct would obscure it
pub fn at_b_block4(
    out: &mut [f32],
    n: usize,
    a0: &[f32],
    a1: &[f32],
    a2: &[f32],
    a3: &[f32],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) {
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        // SAFETY: `enabled()` implies AVX2 was detected at runtime.
        unsafe { avx2::at_b_block4(out, n, a0, a1, a2, a3, b0, b1, b2, b3) };
        return;
    }
    at_b_block4_scalar(out, n, a0, a1, a2, a3, b0, b1, b2, b3);
}

/// Eight-lane dot product: eight fixed lane accumulators (lane `l` sums
/// `x[8c+l]·y[8c+l]`), a scalar tail, and a lane-order horizontal sum.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        // SAFETY: `enabled()` implies AVX2 was detected at runtime.
        return unsafe { avx2::dot(x, y) };
    }
    dot_scalar(x, y)
}

/// Two [`dot`]s sharing the `x` operand (`x` is read once per column
/// pair) — the `A·Bᵀ` kernel's inner loop. Truncates to the shortest
/// operand, like every primitive here.
#[inline]
pub fn dot2(x: &[f32], y0: &[f32], y1: &[f32]) -> (f32, f32) {
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        // SAFETY: `enabled()` implies AVX2 was detected at runtime; the
        // kernel clamps to the shortest operand's length.
        return unsafe { avx2::dot2(x, y0, y1) };
    }
    dot2_scalar(x, y0, y1)
}

/// `out[i] += src[i] * scale` — bias injection and tensor axpy.
#[inline]
pub fn add_scaled(out: &mut [f32], src: &[f32], scale: f32) {
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        // SAFETY: `enabled()` implies AVX2 was detected at runtime.
        unsafe { avx2::add_scaled(out, src, scale) };
        return;
    }
    add_scaled_scalar(out, src, scale);
}

/// Broadcast row axpy: `out[r·len + i] += src[i] * scale` for every
/// complete `len = src.len()` row of `out` — bias injection over a
/// whole position-major tensor with a single dispatch.
pub fn add_scaled_rows(out: &mut [f32], src: &[f32], scale: f32) {
    if src.is_empty() {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        // SAFETY: `enabled()` implies AVX2 was detected at runtime.
        unsafe { avx2::add_scaled_rows(out, src, scale) };
        return;
    }
    for row in out.chunks_exact_mut(src.len()) {
        add_scaled_scalar(row, src, scale);
    }
}

/// Appends to `hits` the indices `j` with `data[j] >= threshold`, in
/// ascending order (the fire-phase threshold scan: most blocks of eight
/// are entirely sub-threshold and are skipped with one compare+mask).
/// `hits` is *not* cleared — callers reuse it across images.
#[inline]
pub fn collect_ge(data: &[f32], threshold: f32, hits: &mut Vec<u32>) {
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        // SAFETY: `enabled()` implies AVX2 was detected at runtime.
        unsafe { avx2::collect_ge(data, threshold, hits) };
        return;
    }
    collect_ge_scalar(data, threshold, hits);
}

/// `out[i] = (src[i] - mean) * inv_std` — batch-norm standardization.
#[inline]
pub fn normalize(out: &mut [f32], src: &[f32], mean: f32, inv_std: f32) {
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        // SAFETY: `enabled()` implies AVX2 was detected at runtime.
        unsafe { avx2::normalize(out, src, mean, inv_std) };
        return;
    }
    normalize_scalar(out, src, mean, inv_std);
}

/// `out[i] = scale * src[i] + shift` — batch-norm γ/β application.
#[inline]
pub fn affine(out: &mut [f32], src: &[f32], scale: f32, shift: f32) {
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        // SAFETY: `enabled()` implies AVX2 was detected at runtime.
        unsafe { avx2::affine(out, src, scale, shift) };
        return;
    }
    affine_scalar(out, src, scale, shift);
}

/// `out[i] = scale * ((src[i] - mean) * inv_std) + shift` — the fused
/// eval-mode batch-norm map.
#[inline]
pub fn normalize_affine(
    out: &mut [f32],
    src: &[f32],
    mean: f32,
    inv_std: f32,
    scale: f32,
    shift: f32,
) {
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        // SAFETY: `enabled()` implies AVX2 was detected at runtime.
        unsafe { avx2::normalize_affine(out, src, mean, inv_std, scale, shift) };
        return;
    }
    normalize_affine_scalar(out, src, mean, inv_std, scale, shift);
}

/// `out[i] = scale * (gout[i] - m_dy - xhat[i] * m_dy_xh)` — the
/// batch-norm input gradient.
#[inline]
pub fn bn_input_grad(
    out: &mut [f32],
    gout: &[f32],
    xhat: &[f32],
    scale: f32,
    m_dy: f32,
    m_dy_xh: f32,
) {
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        // SAFETY: `enabled()` implies AVX2 was detected at runtime.
        unsafe { avx2::bn_input_grad(out, gout, xhat, scale, m_dy, m_dy_xh) };
        return;
    }
    bn_input_grad_scalar(out, gout, xhat, scale, m_dy, m_dy_xh);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes every test that toggles or asserts the process-global
    /// dispatch state — the parallel test harness would otherwise
    /// interleave `set_enabled` calls between a sibling's toggle and its
    /// assertion (only the state-*asserting* test can actually fail —
    /// the kernel-comparison tests pass in either mode — but the race
    /// is real either way).
    static MODE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// Runs `f` once with SIMD forced on (a no-op without AVX2) and once
    /// forced off, restoring the previous state. Holds [`MODE_LOCK`].
    fn with_both_modes(mut f: impl FnMut(bool)) {
        let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = enabled();
        set_enabled(true);
        f(available());
        set_enabled(false);
        f(false);
        set_enabled(prev);
    }

    fn pattern(n: usize, seed: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i * 7 + seed * 13) % 23) as f32 * 0.11 - 1.2)
            .collect()
    }

    #[test]
    fn axpy_matches_scalar_on_odd_lengths() {
        for n in [0usize, 1, 7, 8, 9, 31, 64, 100] {
            let b = pattern(n, 1);
            let mut want = pattern(n, 2);
            axpy_scalar(&mut want, 0.7, &b);
            with_both_modes(|_| {
                let mut got = pattern(n, 2);
                axpy(&mut got, 0.7, &b);
                assert_eq!(got, want, "n={n}");
            });
        }
    }

    #[test]
    fn axpy4_and_quad_axpy_match_scalar() {
        for n in [1usize, 5, 8, 17, 40] {
            let v = [0.3f32, -1.1, 0.0, 2.5];
            let bs: Vec<Vec<f32>> = (0..4).map(|s| pattern(n, s + 3)).collect();
            let mut w: Vec<Vec<f32>> = (0..4).map(|s| pattern(n, s + 9)).collect();
            let (w01, w23) = w.split_at_mut(2);
            let (wa, wb) = w01.split_at_mut(1);
            let (wc, wd) = w23.split_at_mut(1);
            axpy4_scalar(&mut wa[0], &mut wb[0], &mut wc[0], &mut wd[0], v, &bs[0]);
            with_both_modes(|_| {
                let mut g: Vec<Vec<f32>> = (0..4).map(|s| pattern(n, s + 9)).collect();
                let (g01, g23) = g.split_at_mut(2);
                let (ga, gb) = g01.split_at_mut(1);
                let (gc, gd) = g23.split_at_mut(1);
                axpy4(&mut ga[0], &mut gb[0], &mut gc[0], &mut gd[0], v, &bs[0]);
                assert_eq!(g[0], w[0]);
                assert_eq!(g[1], w[1]);
                assert_eq!(g[2], w[2]);
                assert_eq!(g[3], w[3]);
            });

            let mut want_q = pattern(n, 20);
            quad_axpy_scalar(&mut want_q, v, &bs[0], &bs[1], &bs[2], &bs[3]);
            with_both_modes(|_| {
                let mut got_q = pattern(n, 20);
                quad_axpy(&mut got_q, v, &bs[0], &bs[1], &bs[2], &bs[3]);
                assert_eq!(got_q, want_q, "n={n}");
            });
        }
    }

    #[test]
    fn dot_family_matches_scalar_bitwise() {
        for n in [0usize, 3, 8, 15, 16, 33, 100] {
            let x = pattern(n, 1);
            let y0 = pattern(n, 2);
            let y1 = pattern(n, 3);
            let want = dot_scalar(&x, &y0);
            let want2 = dot2_scalar(&x, &y0, &y1);
            with_both_modes(|_| {
                assert_eq!(dot(&x, &y0).to_bits(), want.to_bits(), "n={n}");
                let got2 = dot2(&x, &y0, &y1);
                assert_eq!(got2.0.to_bits(), want2.0.to_bits(), "n={n}");
                assert_eq!(got2.1.to_bits(), want2.1.to_bits(), "n={n}");
            });
        }
    }

    #[test]
    fn collect_ge_matches_scalar_and_handles_nan() {
        for n in [0usize, 5, 8, 9, 24, 61] {
            let mut data = pattern(n, 4);
            if n > 3 {
                data[3] = f32::NAN; // must never be collected
            }
            let mut want = Vec::new();
            collect_ge_scalar(&data, 0.1, &mut want);
            with_both_modes(|_| {
                let mut got = Vec::new();
                collect_ge(&data, 0.1, &mut got);
                assert_eq!(got, want, "n={n}");
            });
        }
    }

    #[test]
    fn elementwise_maps_match_scalar() {
        for n in [1usize, 8, 13, 50] {
            let src = pattern(n, 5);
            let g = pattern(n, 6);
            let (mean, inv_std, scale, shift) = (0.2f32, 1.7, 0.9, -0.3);
            let mut w1 = vec![0.0; n];
            normalize_scalar(&mut w1, &src, mean, inv_std);
            let mut w2 = vec![0.0; n];
            affine_scalar(&mut w2, &src, scale, shift);
            let mut w3 = vec![0.0; n];
            normalize_affine_scalar(&mut w3, &src, mean, inv_std, scale, shift);
            let mut w4 = vec![0.0; n];
            bn_input_grad_scalar(&mut w4, &g, &src, scale, 0.05, 0.07);
            let mut w5 = pattern(n, 7);
            add_scaled_scalar(&mut w5, &src, 0.4);
            with_both_modes(|_| {
                let mut o = vec![0.0; n];
                normalize(&mut o, &src, mean, inv_std);
                assert_eq!(o, w1);
                affine(&mut o, &src, scale, shift);
                assert_eq!(o, w2);
                normalize_affine(&mut o, &src, mean, inv_std, scale, shift);
                assert_eq!(o, w3);
                bn_input_grad(&mut o, &g, &src, scale, 0.05, 0.07);
                assert_eq!(o, w4);
                let mut acc = pattern(n, 7);
                add_scaled(&mut acc, &src, 0.4);
                assert_eq!(acc, w5);
                // Broadcast rows: three rows of `src` each get the same
                // per-row update as a single add_scaled.
                let mut tiled = pattern(3 * n, 8);
                let mut want_tiled = tiled.clone();
                for row in want_tiled.chunks_exact_mut(n) {
                    add_scaled_scalar(row, &src, 0.4);
                }
                add_scaled_rows(&mut tiled, &src, 0.4);
                assert_eq!(tiled, want_tiled);
            });
        }
    }

    #[test]
    fn set_enabled_round_trips_and_respects_hardware() {
        let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = enabled();
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert_eq!(enabled(), available());
        set_enabled(prev);
        assert_eq!(enabled(), prev);
    }
}
