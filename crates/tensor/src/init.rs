//! Random tensor initializers for network weights.

use rand::distributions::{Distribution, Uniform};
use rand::Rng;

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Draws every element from `U(low, high)`.
///
/// # Panics
///
/// Panics if `low >= high` (propagated from the underlying distribution).
pub fn uniform<R: Rng + ?Sized>(
    rng: &mut R,
    shape: impl Into<Shape>,
    low: f32,
    high: f32,
) -> Tensor {
    let dist = Uniform::new(low, high);
    let shape = shape.into();
    let data = (0..shape.numel()).map(|_| dist.sample(rng)).collect();
    Tensor::from_vec(shape, data).expect("length matches by construction")
}

/// Draws every element from `N(mean, std²)` using a Box–Muller transform.
///
/// Implemented locally so the crate does not need `rand_distr`.
pub fn normal<R: Rng + ?Sized>(
    rng: &mut R,
    shape: impl Into<Shape>,
    mean: f32,
    std: f32,
) -> Tensor {
    let shape = shape.into();
    let n = shape.numel();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        // Box–Muller: two uniforms to two normals.
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < n {
            data.push(mean + std * r * theta.sin());
        }
    }
    Tensor::from_vec(shape, data).expect("length matches by construction")
}

/// He (Kaiming) normal initialization: `N(0, sqrt(2 / fan_in)²)`.
///
/// The standard initializer for layers followed by ReLU, which is every
/// hidden layer of the VGG networks used in the paper.
pub fn he_normal<R: Rng + ?Sized>(rng: &mut R, shape: impl Into<Shape>, fan_in: usize) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    normal(rng, shape, 0.0, std)
}

/// Xavier (Glorot) uniform initialization:
/// `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
pub fn xavier_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    shape: impl Into<Shape>,
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform(rng, shape, -bound, bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = uniform(&mut rng(), [1000], -0.5, 0.5);
        assert!(t.iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn normal_has_roughly_requested_moments() {
        let t = normal(&mut rng(), [20_000], 1.0, 2.0);
        let mean = t.mean();
        let var = t.map(|x| (x - mean) * (x - mean)).mean();
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn normal_handles_odd_lengths() {
        let t = normal(&mut rng(), [7], 0.0, 1.0);
        assert_eq!(t.numel(), 7);
    }

    #[test]
    fn he_normal_scales_with_fan_in() {
        let wide = he_normal(&mut rng(), [10_000], 10_000);
        let narrow = he_normal(&mut rng(), [10_000], 4);
        let std = |t: &Tensor| t.map(|x| x * x).mean().sqrt();
        assert!(std(&wide) < std(&narrow));
    }

    #[test]
    fn xavier_uniform_respects_bound() {
        let t = xavier_uniform(&mut rng(), [1000], 100, 100);
        let bound = (6.0f32 / 200.0).sqrt();
        assert!(t.iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn seeded_rng_is_reproducible() {
        let a = uniform(&mut rng(), [16], 0.0, 1.0);
        let b = uniform(&mut rng(), [16], 0.0, 1.0);
        assert_eq!(a, b);
    }
}
