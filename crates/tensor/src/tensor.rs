//! The dense, row-major, `f32` tensor type.

use std::fmt;
use std::ops::{Add, Div, Index, IndexMut, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

use crate::error::{Result, TensorError};
use crate::shape::Shape;

/// A dense, contiguous, row-major tensor of `f32` values.
///
/// `Tensor` is the single numeric container used by every crate in the
/// T2FSNN workspace: DNN activations and weights, spike maps, membrane
/// potentials and kernel tables are all `Tensor`s. It deliberately supports
/// only what the reproduction needs — owned contiguous storage, element-wise
/// arithmetic, reductions, and reshaping — with the heavier operations
/// (matmul, convolution, pooling) provided by [`crate::ops`].
///
/// # Examples
///
/// ```
/// use t2fsnn_tensor::Tensor;
///
/// # fn main() -> Result<(), t2fsnn_tensor::TensorError> {
/// let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = Tensor::full([2, 2], 0.5);
/// let c = a.mul(&b)?;
/// assert_eq!(c.data(), &[0.5, 1.0, 1.5, 2.0]);
/// assert_eq!(c.sum(), 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor where every element equals `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::new(&[]),
            data: vec![value],
        }
    }

    /// Creates a tensor from an existing data vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidReshape`] if `data.len()` does not match
    /// the element count of `shape`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self> {
        let shape = shape.into();
        if shape.numel() != data.len() {
            return Err(TensorError::InvalidReshape {
                from: Shape::new(&[data.len()]),
                to: shape,
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor by evaluating `f` at every multi-dimensional index.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        let mut data = Vec::with_capacity(n);
        for flat in 0..n {
            let idx = shape.multi_index(flat).expect("flat index in range");
            data.push(f(&idx));
        }
        Tensor { shape, data }
    }

    /// Returns the tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Returns the total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Returns the rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Returns the underlying data as a flat row-major slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns the underlying data as a mutable flat row-major slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at `index`, or `None` if out of bounds.
    pub fn get(&self, index: &[usize]) -> Option<f32> {
        self.shape.flat_index(index).map(|i| self.data[i])
    }

    /// Sets the element at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index is invalid.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        match self.shape.flat_index(index) {
            Some(i) => {
                self.data[i] = value;
                Ok(())
            }
            None => Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.shape.clone(),
            }),
        }
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors element-wise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Self> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "zip_with",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Self> {
        self.binary(other, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Self> {
        self.binary(other, "sub", |a, b| a - b)
    }

    /// Element-wise multiplication (Hadamard product).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Self> {
        self.binary(other, "mul", |a, b| a * b)
    }

    /// Element-wise division.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn div(&self, other: &Tensor) -> Result<Self> {
        self.binary(other, "div", |a, b| a / b)
    }

    fn binary(
        &self,
        other: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Self> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Adds `other * alpha` into `self` in place (`axpy`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, alpha: f32) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "add_scaled",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        crate::simd::add_scaled(&mut self.data, &other.data, alpha);
        Ok(())
    }

    /// Multiplies every element by `alpha`, returning a new tensor.
    pub fn scale(&self, alpha: f32) -> Self {
        self.map(|x| x * alpha)
    }

    /// Adds `alpha` to every element, returning a new tensor.
    pub fn add_scalar(&self, alpha: f32) -> Self {
        self.map(|x| x + alpha)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements; `0.0` for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element; `f32::NEG_INFINITY` for an empty tensor.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element; `f32::INFINITY` for an empty tensor.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Flat index of the maximum element, or `None` for an empty tensor.
    /// Ties break toward the lowest index.
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for (i, &x) in self.data.iter().enumerate() {
            match best {
                Some((_, bx)) if bx >= x => {}
                _ => best = Some((i, x)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidReshape`] if the element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        if shape.numel() != self.data.len() {
            return Err(TensorError::InvalidReshape {
                from: self.shape.clone(),
                to: shape,
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the tensor is not rank 2.
    pub fn transpose(&self) -> Result<Self> {
        if self.rank() != 2 {
            return Err(TensorError::InvalidArgument {
                op: "transpose",
                message: format!("expected rank 2, got shape {}", self.shape),
            });
        }
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut data = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(Tensor {
            shape: Shape::new(&[c, r]),
            data,
        })
    }

    /// Permutes a channel-major `[N, C, H, W]` batch into the
    /// position-major `[N, H, W, C]` layout the spiking engine's membrane
    /// state uses natively (each spatial position's channels contiguous).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the tensor is not rank 4.
    ///
    /// # Examples
    ///
    /// ```
    /// use t2fsnn_tensor::Tensor;
    ///
    /// # fn main() -> Result<(), t2fsnn_tensor::TensorError> {
    /// let nchw = Tensor::from_fn([1, 2, 2, 3], |i| (i[1] * 100 + i[2] * 10 + i[3]) as f32);
    /// let nhwc = nchw.to_position_major()?;
    /// assert_eq!(nhwc.dims(), &[1, 2, 3, 2]);
    /// assert_eq!(nhwc.get(&[0, 1, 2, 1]), nchw.get(&[0, 1, 1, 2]));
    /// assert_eq!(nhwc.to_channel_major()?, nchw);
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_position_major(&self) -> Result<Self> {
        let [n, c, h, w] = self.layout_dims("to_position_major")?;
        let mut data = vec![0.0f32; self.data.len()];
        let plane = h * w;
        for ni in 0..n {
            let src_img = &self.data[ni * c * plane..(ni + 1) * c * plane];
            let dst_img = &mut data[ni * c * plane..(ni + 1) * c * plane];
            for (ci, src_plane) in src_img.chunks_exact(plane.max(1)).enumerate().take(c) {
                for (p, &v) in src_plane.iter().enumerate() {
                    dst_img[p * c + ci] = v;
                }
            }
        }
        Ok(Tensor {
            shape: Shape::new(&[n, h, w, c]),
            data,
        })
    }

    /// Inverse of [`Tensor::to_position_major`]: permutes `[N, H, W, C]`
    /// back into `[N, C, H, W]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the tensor is not rank 4.
    pub fn to_channel_major(&self) -> Result<Self> {
        let [n, h, w, c] = self.layout_dims("to_channel_major")?;
        let mut data = vec![0.0f32; self.data.len()];
        let plane = h * w;
        for ni in 0..n {
            let src_img = &self.data[ni * c * plane..(ni + 1) * c * plane];
            let dst_img = &mut data[ni * c * plane..(ni + 1) * c * plane];
            for (ci, dst_plane) in dst_img.chunks_exact_mut(plane.max(1)).enumerate().take(c) {
                for (p, slot) in dst_plane.iter_mut().enumerate() {
                    *slot = src_img[p * c + ci];
                }
            }
        }
        Ok(Tensor {
            shape: Shape::new(&[n, c, h, w]),
            data,
        })
    }

    fn layout_dims(&self, op: &'static str) -> Result<[usize; 4]> {
        if self.rank() != 4 {
            return Err(TensorError::InvalidArgument {
                op,
                message: format!("expected a rank-4 batch, got shape {}", self.shape),
            });
        }
        let d = self.shape.dims();
        Ok([d[0], d[1], d[2], d[3]])
    }

    /// Copies the sub-tensor `self[index, ...]` along the first axis.
    ///
    /// For a shape `[N, ...rest]` tensor this returns a `[...rest]` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for an invalid index and
    /// [`TensorError::InvalidArgument`] for a rank-0 tensor.
    pub fn index_axis0(&self, index: usize) -> Result<Self> {
        if self.rank() == 0 {
            return Err(TensorError::InvalidArgument {
                op: "index_axis0",
                message: "cannot index a scalar".to_string(),
            });
        }
        let n = self.shape.dim(0);
        if index >= n {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![index],
                shape: self.shape.clone(),
            });
        }
        let rest: Vec<usize> = self.shape.dims()[1..].to_vec();
        let chunk = rest.iter().product::<usize>().max(1);
        let data = self.data[index * chunk..(index + 1) * chunk].to_vec();
        Ok(Tensor {
            shape: Shape::from(rest),
            data,
        })
    }

    /// Stacks same-shaped tensors along a new leading axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `tensors` is empty and
    /// [`TensorError::ShapeMismatch`] if any shapes differ.
    pub fn stack(tensors: &[Tensor]) -> Result<Self> {
        let first = tensors
            .first()
            .ok_or_else(|| TensorError::InvalidArgument {
                op: "stack",
                message: "cannot stack zero tensors".to_string(),
            })?;
        let mut dims = vec![tensors.len()];
        dims.extend_from_slice(first.dims());
        let mut data = Vec::with_capacity(first.numel() * tensors.len());
        for t in tensors {
            if t.shape != first.shape {
                return Err(TensorError::ShapeMismatch {
                    op: "stack",
                    lhs: first.shape.clone(),
                    rhs: t.shape.clone(),
                });
            }
            data.extend_from_slice(&t.data);
        }
        Ok(Tensor {
            shape: Shape::from(dims),
            data,
        })
    }

    /// Returns `true` if every element differs from `other` by at most `tol`.
    ///
    /// Shapes must match exactly; `NaN`s never compare close.
    pub fn all_close(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Iterates over elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        const MAX: usize = 8;
        write!(f, "[")?;
        for (i, x) in self.data.iter().take(MAX).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.4}")?;
        }
        if self.data.len() > MAX {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

impl Index<&[usize]> for Tensor {
    type Output = f32;

    /// # Panics
    ///
    /// Panics if `index` is out of bounds; use [`Tensor::get`] for a
    /// non-panicking variant.
    fn index(&self, index: &[usize]) -> &f32 {
        let flat = self
            .shape
            .flat_index(index)
            .unwrap_or_else(|| panic!("index {index:?} out of bounds for {}", self.shape));
        &self.data[flat]
    }
}

impl IndexMut<&[usize]> for Tensor {
    fn index_mut(&mut self, index: &[usize]) -> &mut f32 {
        let flat = self
            .shape
            .flat_index(index)
            .unwrap_or_else(|| panic!("index {index:?} out of bounds for {}", self.shape));
        &mut self.data[flat]
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident) => {
        impl $trait<&Tensor> for &Tensor {
            type Output = Tensor;

            /// # Panics
            ///
            /// Panics on shape mismatch; use the inherent `Result` method
            /// for a non-panicking variant.
            fn $method(self, rhs: &Tensor) -> Tensor {
                Tensor::$method(self, rhs).expect("operator shape mismatch")
            }
        }
    };
}

impl_binop!(Add, add);
impl_binop!(Sub, sub);
impl_binop!(Mul, mul);
impl_binop!(Div, div);

impl Neg for &Tensor {
    type Output = Tensor;

    fn neg(self) -> Tensor {
        self.map(|x| -x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_correctly() {
        assert!(Tensor::zeros([2, 2]).iter().all(|&x| x == 0.0));
        assert!(Tensor::ones([3]).iter().all(|&x| x == 1.0));
        assert!(Tensor::full([4], 2.5).iter().all(|&x| x == 2.5));
        assert_eq!(Tensor::scalar(7.0).numel(), 1);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec([2, 2], vec![1.0; 4]).is_ok());
        assert!(matches!(
            Tensor::from_vec([2, 2], vec![1.0; 3]),
            Err(TensorError::InvalidReshape { .. })
        ));
    }

    #[test]
    fn from_fn_sees_multi_indices() {
        let t = Tensor::from_fn([2, 3], |idx| (idx[0] * 10 + idx[1]) as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros([2, 2]);
        t.set(&[1, 0], 5.0).unwrap();
        assert_eq!(t.get(&[1, 0]), Some(5.0));
        assert_eq!(t.get(&[2, 0]), None);
        assert!(t.set(&[0, 2], 1.0).is_err());
    }

    #[test]
    fn index_operator_matches_get() {
        let t = Tensor::from_fn([3, 3], |i| (i[0] + i[1]) as f32);
        assert_eq!(t[&[2, 1][..]], 3.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_operator_panics_out_of_bounds() {
        let t = Tensor::zeros([2]);
        let _ = t[&[5][..]];
    }

    #[test]
    fn arithmetic_ops() {
        let a = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec([3], vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!((&a + &b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!((&b - &a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!((&a * &b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!((&b / &a).data(), &[4.0, 2.5, 2.0]);
        assert_eq!((-&a).data(), &[-1.0, -2.0, -3.0]);
    }

    #[test]
    fn arithmetic_rejects_mismatched_shapes() {
        let a = Tensor::zeros([2]);
        let b = Tensor::zeros([3]);
        assert!(a.add(&b).is_err());
        assert!(a.sub(&b).is_err());
        assert!(a.mul(&b).is_err());
        assert!(a.div(&b).is_err());
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = Tensor::ones([3]);
        let b = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]).unwrap();
        a.add_scaled(&b, 0.5).unwrap();
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec([4], vec![1.0, -2.0, 3.0, 0.5]).unwrap();
        assert_eq!(t.sum(), 2.5);
        assert_eq!(t.mean(), 0.625);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax(), Some(2));
        assert!((t.norm_sq() - (1.0 + 4.0 + 9.0 + 0.25)).abs() < 1e-6);
    }

    #[test]
    fn argmax_breaks_ties_low() {
        let t = Tensor::from_vec([3], vec![5.0, 5.0, 1.0]).unwrap();
        assert_eq!(t.argmax(), Some(0));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.reshape([3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape([4]).is_err());
    }

    #[test]
    fn transpose_2d() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let tt = t.transpose().unwrap();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.data(), &[1., 4., 2., 5., 3., 6.]);
        assert!(Tensor::zeros([2, 2, 2]).transpose().is_err());
    }

    #[test]
    fn transpose_twice_is_identity() {
        let t = Tensor::from_fn([3, 5], |i| (i[0] * 5 + i[1]) as f32);
        let tt = t.transpose().unwrap().transpose().unwrap();
        assert_eq!(t, tt);
    }

    #[test]
    fn index_axis0_extracts_rows() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let r = t.index_axis0(1).unwrap();
        assert_eq!(r.dims(), &[3]);
        assert_eq!(r.data(), &[4., 5., 6.]);
        assert!(t.index_axis0(2).is_err());
    }

    #[test]
    fn stack_then_index_round_trips() {
        let a = Tensor::from_vec([2], vec![1., 2.]).unwrap();
        let b = Tensor::from_vec([2], vec![3., 4.]).unwrap();
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.index_axis0(0).unwrap(), a);
        assert_eq!(s.index_axis0(1).unwrap(), b);
        assert!(Tensor::stack(&[]).is_err());
    }

    #[test]
    fn all_close_tolerance() {
        let a = Tensor::from_vec([2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec([2], vec![1.0005, 2.0]).unwrap();
        assert!(a.all_close(&b, 1e-3));
        assert!(!a.all_close(&b, 1e-5));
        assert!(!a.all_close(&Tensor::zeros([3]), 1.0));
    }

    #[test]
    fn display_truncates() {
        let t = Tensor::zeros([100]);
        let s = t.to_string();
        assert!(s.contains('…'));
        assert!(s.contains("[100]"));
    }
}
