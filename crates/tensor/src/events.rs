//! Event-list (sparse) spike representation.
//!
//! TTFS coding's core promise is that every neuron fires *at most once*,
//! and even rate/phase/burst spike tensors are mostly zeros at any given
//! time step. A [`SpikeBatch`] stores only the non-zero entries of a
//! `[N, ...]` activation tensor in CSR style: one `(flat index, value)`
//! list per image, with indices in ascending (row-major) order. Sparse
//! kernels (see [`crate::ops::sparse`]) iterate these lists instead of
//! scanning dense tensors, and — because the event order equals the dense
//! row-major scan order — produce **bit-identical** results to their
//! dense counterparts.

use crate::error::{Result, TensorError};
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Sparse events of one batch: per-image CSR index/value lists.
///
/// Indices are flat offsets *within one image* (i.e. into the
/// `[feature_dims]` sub-tensor), stored as `u32` — a single image layer
/// above 4 G elements is far outside this workspace's scale.
///
/// # Examples
///
/// ```
/// use t2fsnn_tensor::{SpikeBatch, Tensor};
///
/// # fn main() -> Result<(), t2fsnn_tensor::TensorError> {
/// let dense = Tensor::from_vec([2, 3], vec![0.0, 1.5, 0.0, 2.0, 0.0, 3.0])?;
/// let sparse = SpikeBatch::from_dense(&dense)?;
/// assert_eq!(sparse.nnz(), 3);
/// assert_eq!(sparse.image_events(0), (&[1u32][..], &[1.5f32][..]));
/// assert_eq!(sparse.to_dense(), dense);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpikeBatch {
    feature_dims: Vec<usize>,
    /// `offsets[i]..offsets[i + 1]` is image `i`'s slice of
    /// `indices`/`values`; length `batch + 1`.
    offsets: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl SpikeBatch {
    /// An empty batch with no images; useful as a reusable scratch buffer
    /// for [`SpikeBatch::refill_bounded`].
    pub fn empty() -> Self {
        SpikeBatch::default()
    }

    /// Extracts all non-zero entries of a `[N, ...]` tensor.
    ///
    /// # Errors
    ///
    /// Returns an error for rank-0 tensors (no batch axis).
    pub fn from_dense(dense: &Tensor) -> Result<Self> {
        let mut batch = SpikeBatch::empty();
        let filled = batch.refill_bounded(dense, usize::MAX)?;
        debug_assert!(filled, "usize::MAX bound cannot be exceeded");
        Ok(batch)
    }

    /// Refills this batch from `dense`, reusing existing allocations.
    ///
    /// Returns `false` — leaving the contents unspecified — as soon as
    /// more than `max_nnz` non-zeros are found, so engines can bail out
    /// to a dense kernel after bounded work.
    ///
    /// # Errors
    ///
    /// Returns an error for rank-0 tensors (no batch axis).
    pub fn refill_bounded(&mut self, dense: &Tensor, max_nnz: usize) -> Result<bool> {
        if dense.rank() == 0 {
            return Err(TensorError::InvalidArgument {
                op: "SpikeBatch::refill_bounded",
                message: "need at least a batch axis, got a scalar".to_string(),
            });
        }
        let n = dense.dims()[0];
        let feature_numel: usize = dense.dims()[1..].iter().product();
        self.feature_dims.clear();
        self.feature_dims.extend_from_slice(&dense.dims()[1..]);
        self.offsets.clear();
        self.offsets.push(0);
        self.indices.clear();
        self.values.clear();
        let data = dense.data();
        for img in 0..n {
            let slice = &data[img * feature_numel..(img + 1) * feature_numel];
            for (i, &v) in slice.iter().enumerate() {
                if v != 0.0 {
                    if self.indices.len() >= max_nnz {
                        return Ok(false);
                    }
                    self.indices.push(i as u32);
                    self.values.push(v);
                }
            }
            self.offsets.push(self.indices.len());
        }
        Ok(true)
    }

    /// Starts building a batch in place (clearing previous contents but
    /// keeping allocations): events are appended with
    /// [`SpikeBatch::push`] and image boundaries closed with
    /// [`SpikeBatch::end_image`]. Producers that already scan their
    /// source (e.g. a fire phase thresholding every membrane) use this
    /// to emit events without materializing a dense tensor first.
    pub fn begin(&mut self, feature_dims: &[usize]) {
        self.feature_dims.clear();
        self.feature_dims.extend_from_slice(feature_dims);
        self.offsets.clear();
        self.offsets.push(0);
        self.indices.clear();
        self.values.clear();
    }

    /// Appends one event of the image currently being built. Indices
    /// must be pushed in ascending order within each image.
    #[inline]
    pub fn push(&mut self, index: u32, value: f32) {
        debug_assert!(
            self.indices.len() == *self.offsets.last().expect("begin() called")
                || *self.indices.last().expect("non-empty") < index,
            "event indices must ascend within an image"
        );
        self.indices.push(index);
        self.values.push(value);
    }

    /// Closes the current image started by [`SpikeBatch::begin`] /
    /// the previous `end_image`.
    pub fn end_image(&mut self) {
        self.offsets.push(self.indices.len());
    }

    /// Reinterprets the per-image feature shape (e.g. flattening
    /// `[C, H, W]` to `[C·H·W]`): flat indices are unchanged.
    ///
    /// # Errors
    ///
    /// Returns an error if the element count differs.
    pub fn reshape_features(&mut self, dims: &[usize]) -> Result<()> {
        if dims.iter().product::<usize>() != self.feature_numel() {
            return Err(TensorError::InvalidArgument {
                op: "SpikeBatch::reshape_features",
                message: format!(
                    "cannot reshape features {:?} to {dims:?}",
                    self.feature_dims
                ),
            });
        }
        self.feature_dims.clear();
        self.feature_dims.extend_from_slice(dims);
        Ok(())
    }

    /// Number of images.
    pub fn batch(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Per-image dimensions (the dense shape minus the batch axis).
    pub fn feature_dims(&self) -> &[usize] {
        &self.feature_dims
    }

    /// Elements per image.
    pub fn feature_numel(&self) -> usize {
        self.feature_dims.iter().product()
    }

    /// Total number of stored events.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Fraction of non-zero entries (0 for an empty batch).
    pub fn density(&self) -> f32 {
        let total = self.batch() * self.feature_numel();
        if total == 0 {
            0.0
        } else {
            self.nnz() as f32 / total as f32
        }
    }

    /// Image `i`'s `(indices, values)` event lists, ascending by index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.batch()`.
    pub fn image_events(&self, i: usize) -> (&[u32], &[f32]) {
        let (lo, hi) = (self.offsets[i], self.offsets[i + 1]);
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Materializes the dense `[N, ...]` tensor.
    pub fn to_dense(&self) -> Tensor {
        let feature_numel = self.feature_numel();
        let mut dims = vec![self.batch()];
        dims.extend_from_slice(&self.feature_dims);
        let mut out = Tensor::zeros(Shape::new(&dims));
        let od = out.data_mut();
        for img in 0..self.batch() {
            let (idx, val) = self.image_events(img);
            let base = img * feature_numel;
            for (&i, &v) in idx.iter().zip(val) {
                od[base + i as usize] = v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_dense() {
        let dense = Tensor::from_fn([3, 2, 4], |i| {
            if (i[0] + i[1] + i[2]) % 3 == 0 {
                0.0
            } else {
                (i[0] * 8 + i[1] * 4 + i[2]) as f32
            }
        });
        let sparse = SpikeBatch::from_dense(&dense).unwrap();
        assert_eq!(sparse.batch(), 3);
        assert_eq!(sparse.feature_dims(), &[2, 4]);
        assert_eq!(sparse.to_dense(), dense);
    }

    #[test]
    fn indices_are_ascending_row_major() {
        let dense = Tensor::from_vec([1, 6], vec![1.0, 0.0, 2.0, 0.0, 0.0, 3.0]).unwrap();
        let sparse = SpikeBatch::from_dense(&dense).unwrap();
        assert_eq!(sparse.image_events(0).0, &[0, 2, 5]);
        assert_eq!(sparse.image_events(0).1, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn bounded_refill_bails_beyond_cap() {
        let dense = Tensor::ones([2, 8]);
        let mut scratch = SpikeBatch::empty();
        assert!(!scratch.refill_bounded(&dense, 3).unwrap());
        assert!(scratch.refill_bounded(&dense, 16).unwrap());
        assert_eq!(scratch.nnz(), 16);
        // Reuse after a bailed refill must fully reset state.
        let small = Tensor::from_vec([1, 2], vec![0.0, 5.0]).unwrap();
        assert!(scratch.refill_bounded(&small, 1).unwrap());
        assert_eq!(scratch.nnz(), 1);
        assert_eq!(scratch.to_dense(), small);
    }

    #[test]
    fn density_and_empty_batch() {
        let empty = SpikeBatch::empty();
        assert_eq!(empty.batch(), 0);
        assert_eq!(empty.density(), 0.0);
        let dense = Tensor::from_vec([2, 2], vec![0.0, 1.0, 0.0, 0.0]).unwrap();
        let sparse = SpikeBatch::from_dense(&dense).unwrap();
        assert!((sparse.density() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn incremental_builder_matches_from_dense() {
        let dense = Tensor::from_vec([2, 4], vec![0.0, 1.0, 0.0, 2.0, 3.0, 0.0, 0.0, 0.0]).unwrap();
        let reference = SpikeBatch::from_dense(&dense).unwrap();
        let mut built = SpikeBatch::empty();
        built.begin(&[4]);
        built.push(1, 1.0);
        built.push(3, 2.0);
        built.end_image();
        built.push(0, 3.0);
        built.end_image();
        assert_eq!(built, reference);
        // Flatten-style reshape keeps indices valid.
        let mut shaped = SpikeBatch::from_dense(&Tensor::ones([1, 2, 3])).unwrap();
        shaped.reshape_features(&[6]).unwrap();
        assert_eq!(shaped.feature_dims(), &[6]);
        assert!(shaped.reshape_features(&[5]).is_err());
    }

    #[test]
    fn rejects_scalar() {
        assert!(SpikeBatch::from_dense(&Tensor::scalar(1.0)).is_err());
    }

    #[test]
    fn negative_zero_is_treated_as_zero() {
        // -0.0 == 0.0 in IEEE; the event path must agree with the dense
        // kernels' `v == 0.0` skip.
        let dense = Tensor::from_vec([1, 2], vec![-0.0, 1.0]).unwrap();
        let sparse = SpikeBatch::from_dense(&dense).unwrap();
        assert_eq!(sparse.nnz(), 1);
    }
}
