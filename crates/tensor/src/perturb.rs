//! Deterministic perturbation subsystem: seeded input-, event- and
//! model-level fault injection.
//!
//! Every perturbation draws from its own ChaCha8 stream, keyed on the
//! spec seed, a domain tag, and either the perturbed image's *content
//! hash* (input and event domains) or the weight row's `(layer, row)`
//! index (model domain). A stream is therefore a pure function of the
//! data being perturbed — never of batch composition, batch position,
//! worker count, SIMD path, or execution engine — which is what lets
//! perturbed runs join the workspace's standing bit-identity contract.
//!
//! Severity 0 is the identity *by construction*: a family whose knob is
//! zero takes no RNG draws and writes no values, so outputs (including
//! `-0.0` signs) are bit-identical to unperturbed runs.
//!
//! ## Spec grammar
//!
//! ```text
//! <seed>[:<kind>=<value>[,<kind>=<value>...]]
//! ```
//!
//! | kind       | level | value                                          |
//! |------------|-------|------------------------------------------------|
//! | `igauss`   | input | Gaussian σ added per pixel (clamped to [0,1])  |
//! | `isalt`    | input | per-pixel salt-and-pepper probability          |
//! | `ioccl`    | input | occlusion patch side as a fraction of min(H,W) |
//! | `jitter`   | event | max spike-time jitter in timesteps (±)         |
//! | `drop`     | event | per-spike delivery-drop probability            |
//! | `wgauss`   | model | multiplicative Gaussian σ per weight           |
//! | `wstuck`   | model | per-row stuck-at-zero probability              |
//! | `wbitflip` | model | per-weight mantissa bit-flip probability       |
//!
//! Example: `7:igauss=0.1,drop=0.05,wstuck=0.01`.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::error::{Result, TensorError};

/// Domain tag for input-level (pixel) perturbation streams.
pub const DOMAIN_INPUT: u32 = 1;
/// Domain tag for event-level (spike jitter/drop) perturbation streams.
pub const DOMAIN_EVENT: u32 = 2;
/// Domain tag for model-level (weight) perturbation streams.
pub const DOMAIN_WEIGHT: u32 = 3;

/// FNV-1a over the image's `f32` bit patterns (little-endian bytes): a
/// stable content key that is identical for identical pixel data and
/// independent of where the image sits in a batch.
pub fn content_hash(data: &[f32]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for v in data {
        for byte in v.to_bits().to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

/// A ChaCha8 stream keyed on `(seed, domain, a, b)`. The full 32-byte
/// ChaCha key is populated (no `seed_from_u64` expansion), so distinct
/// keys give independent streams.
pub fn keyed_stream(seed: u64, domain: u32, a: u64, b: u64) -> ChaCha8Rng {
    let mut key = [0u8; 32];
    key[0..8].copy_from_slice(&seed.to_le_bytes());
    key[8..16].copy_from_slice(&a.to_le_bytes());
    key[16..24].copy_from_slice(&b.to_le_bytes());
    key[24..28].copy_from_slice(&domain.to_le_bytes());
    key[28..32].copy_from_slice(&0x5432_4653u32.to_le_bytes()); // "T2FS" marker
    ChaCha8Rng::from_seed(key)
}

/// The event-noise stream for one image: keyed on the image's *content*
/// so that solo and batched inference (any composition, any worker
/// count) consume identical draws for identical pixels.
pub fn event_stream(seed: u64, image: &[f32]) -> ChaCha8Rng {
    keyed_stream(seed, DOMAIN_EVENT, content_hash(image), 0)
}

/// A parsed, validated perturbation specification covering all three
/// fault levels. All-zero knobs (the default for every family) mean
/// "identity": nothing is drawn, nothing is touched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerturbSpec {
    /// Base RNG seed shared by every stream the spec derives.
    pub seed: u64,
    /// Input: additive Gaussian σ per pixel (result clamped to [0, 1]).
    pub input_gauss: f32,
    /// Input: per-pixel salt-and-pepper probability.
    pub input_salt_pepper: f32,
    /// Input: occlusion patch side as a fraction of `min(H, W)`.
    pub input_occlude: f32,
    /// Event: maximum spike-time jitter in timesteps (±).
    pub event_jitter: usize,
    /// Event: per-spike delivery-drop probability.
    pub event_drop: f32,
    /// Model: multiplicative Gaussian σ per weight.
    pub weight_gauss: f32,
    /// Model: per-row stuck-at-zero probability.
    pub weight_stuck: f32,
    /// Model: per-weight mantissa bit-flip probability.
    pub weight_bitflip: f32,
}

impl PerturbSpec {
    /// An identity spec (no perturbation at any level) with `seed`.
    pub fn identity(seed: u64) -> Self {
        PerturbSpec {
            seed,
            input_gauss: 0.0,
            input_salt_pepper: 0.0,
            input_occlude: 0.0,
            event_jitter: 0,
            event_drop: 0.0,
            weight_gauss: 0.0,
            weight_stuck: 0.0,
            weight_bitflip: 0.0,
        }
    }

    /// Parses the `<seed>[:<kind>=<value>,...]` grammar (see the module
    /// docs for the kind table).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] on malformed syntax,
    /// unknown kinds, duplicate kinds, or out-of-range values
    /// (probabilities and fractions must lie in `[0, 1]`, σ must be
    /// finite and non-negative).
    pub fn parse(spec: &str) -> Result<Self> {
        let bad = |message: String| TensorError::InvalidArgument {
            op: "PerturbSpec::parse",
            message,
        };
        let spec = spec.trim();
        let (seed_text, rest) = match spec.split_once(':') {
            Some((s, r)) => (s, r),
            None => (spec, ""),
        };
        let seed: u64 = seed_text
            .trim()
            .parse()
            .map_err(|_| bad(format!("bad seed `{seed_text}` (want a u64 before `:`)")))?;
        let mut out = PerturbSpec::identity(seed);
        let mut seen: Vec<&str> = Vec::new();
        for entry in rest.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (kind, value) = entry
                .split_once('=')
                .ok_or_else(|| bad(format!("entry `{entry}` is not `<kind>=<value>`")))?;
            let (kind, value) = (kind.trim(), value.trim());
            if seen.contains(&kind) {
                return Err(bad(format!("duplicate kind `{kind}`")));
            }
            let unit = |knob: &mut f32| -> Result<()> {
                let v: f32 = value
                    .parse()
                    .map_err(|_| bad(format!("bad value `{value}` for `{kind}`")))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(bad(format!("`{kind}` must lie in [0, 1], got {v}")));
                }
                *knob = v;
                Ok(())
            };
            let sigma = |knob: &mut f32| -> Result<()> {
                let v: f32 = value
                    .parse()
                    .map_err(|_| bad(format!("bad value `{value}` for `{kind}`")))?;
                if !v.is_finite() || v < 0.0 {
                    return Err(bad(format!("`{kind}` must be finite and >= 0, got {v}")));
                }
                *knob = v;
                Ok(())
            };
            match kind {
                "igauss" => sigma(&mut out.input_gauss)?,
                "isalt" => unit(&mut out.input_salt_pepper)?,
                "ioccl" => unit(&mut out.input_occlude)?,
                "jitter" => {
                    out.event_jitter = value
                        .parse()
                        .map_err(|_| bad(format!("bad value `{value}` for `jitter`")))?;
                }
                "drop" => unit(&mut out.event_drop)?,
                "wgauss" => sigma(&mut out.weight_gauss)?,
                "wstuck" => unit(&mut out.weight_stuck)?,
                "wbitflip" => unit(&mut out.weight_bitflip)?,
                other => {
                    return Err(bad(format!(
                        "unknown kind `{other}` (valid: igauss, isalt, ioccl, jitter, drop, \
                         wgauss, wstuck, wbitflip)"
                    )));
                }
            }
            seen.push(kind);
        }
        Ok(out)
    }

    /// Renders the spec back into its canonical string form, such that
    /// `parse(render(s))` reproduces `s` exactly (float values use
    /// Rust's shortest round-trippable formatting).
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        let float = |parts: &mut Vec<String>, kind: &str, v: f32| {
            if v > 0.0 {
                parts.push(format!("{kind}={v}"));
            }
        };
        float(&mut parts, "igauss", self.input_gauss);
        float(&mut parts, "isalt", self.input_salt_pepper);
        float(&mut parts, "ioccl", self.input_occlude);
        if self.event_jitter > 0 {
            parts.push(format!("jitter={}", self.event_jitter));
        }
        float(&mut parts, "drop", self.event_drop);
        float(&mut parts, "wgauss", self.weight_gauss);
        float(&mut parts, "wstuck", self.weight_stuck);
        float(&mut parts, "wbitflip", self.weight_bitflip);
        if parts.is_empty() {
            format!("{}", self.seed)
        } else {
            format!("{}:{}", self.seed, parts.join(","))
        }
    }

    /// The spec scaled to `severity`: every float knob multiplied by
    /// `severity` (probabilities and fractions clamped back to `[0, 1]`)
    /// and the jitter rounded to the nearest step. Severity `0.0` yields
    /// the identity spec; severity `1.0` yields `self`.
    pub fn scaled(&self, severity: f32) -> Self {
        let unit = |v: f32| (v * severity).clamp(0.0, 1.0);
        PerturbSpec {
            seed: self.seed,
            input_gauss: (self.input_gauss * severity).max(0.0),
            input_salt_pepper: unit(self.input_salt_pepper),
            input_occlude: unit(self.input_occlude),
            event_jitter: (self.event_jitter as f32 * severity).round() as usize,
            event_drop: unit(self.event_drop),
            weight_gauss: (self.weight_gauss * severity).max(0.0),
            weight_stuck: unit(self.weight_stuck),
            weight_bitflip: unit(self.weight_bitflip),
        }
    }

    /// Whether every knob at every level is zero (nothing perturbs).
    pub fn is_identity(&self) -> bool {
        !self.has_input() && !self.has_event() && !self.has_weight()
    }

    /// Whether any input-level (pixel) family is active.
    pub fn has_input(&self) -> bool {
        self.input_gauss > 0.0 || self.input_salt_pepper > 0.0 || self.input_occlude > 0.0
    }

    /// Whether any event-level (spike jitter/drop) family is active.
    pub fn has_event(&self) -> bool {
        self.event_jitter > 0 || self.event_drop > 0.0
    }

    /// Whether any model-level (weight) family is active.
    pub fn has_weight(&self) -> bool {
        self.weight_gauss > 0.0 || self.weight_stuck > 0.0 || self.weight_bitflip > 0.0
    }

    /// Applies the input-level families to one `[C, H, W]` image in
    /// place, in fixed order: Gaussian noise, salt-and-pepper, then the
    /// occlusion patch. The stream is keyed on the *clean* image's
    /// content hash, so the result is a pure function of `(spec, image)`.
    /// With no input family active this is the identity (no draws, no
    /// writes).
    ///
    /// # Panics
    ///
    /// Panics when `image.len() != c * h * w`.
    pub fn perturb_image(&self, dims: [usize; 3], image: &mut [f32]) {
        let [c, h, w] = dims;
        assert_eq!(image.len(), c * h * w, "image length must match dims");
        if !self.has_input() || image.is_empty() {
            return;
        }
        let mut rng = keyed_stream(self.seed, DOMAIN_INPUT, content_hash(image), 0);
        if self.input_gauss > 0.0 {
            for px in image.iter_mut() {
                *px = (*px + self.input_gauss * gauss(&mut rng)).clamp(0.0, 1.0);
            }
        }
        if self.input_salt_pepper > 0.0 {
            for px in image.iter_mut() {
                if rng.gen::<f32>() < self.input_salt_pepper {
                    *px = if rng.gen::<bool>() { 1.0 } else { 0.0 };
                }
            }
        }
        if self.input_occlude > 0.0 && h > 0 && w > 0 {
            let short = h.min(w);
            let side = ((self.input_occlude * short as f32).round() as usize).clamp(1, short);
            let y0 = rng.gen_range(0..=h - side);
            let x0 = rng.gen_range(0..=w - side);
            for ci in 0..c {
                for yi in y0..y0 + side {
                    let row = ci * h * w + yi * w;
                    image[row + x0..row + x0 + side].fill(0.0);
                }
            }
        }
    }

    /// Applies the model-level families to one weight row in place. The
    /// stream is keyed on `(seed, layer, row)` — independent of every
    /// other row, so rows may be visited in any order (or in parallel)
    /// with identical results. Returns whether any value in the row
    /// changed bitwise.
    ///
    /// Order: a stuck-at draw first (a stuck row is zeroed and wins
    /// outright), then per-weight multiplicative Gaussian noise, then
    /// per-weight mantissa bit-flips. Bit-flips touch mantissa bits only
    /// (bits 0–22), so finite weights stay finite.
    pub fn perturb_weight_row(&self, layer: usize, row: usize, weights: &mut [f32]) -> bool {
        if !self.has_weight() || weights.is_empty() {
            return false;
        }
        let mut rng = keyed_stream(self.seed, DOMAIN_WEIGHT, layer as u64, row as u64);
        if self.weight_stuck > 0.0 && rng.gen::<f32>() < self.weight_stuck {
            let changed = weights.iter().any(|w| w.to_bits() != 0);
            weights.fill(0.0);
            return changed;
        }
        let mut changed = false;
        if self.weight_gauss > 0.0 {
            for weight in weights.iter_mut() {
                let next = *weight * (1.0 + self.weight_gauss * gauss(&mut rng));
                changed |= next.to_bits() != weight.to_bits();
                *weight = next;
            }
        }
        if self.weight_bitflip > 0.0 {
            for weight in weights.iter_mut() {
                if rng.gen::<f32>() < self.weight_bitflip {
                    let bit = rng.gen_range(0..23u32);
                    *weight = f32::from_bits(weight.to_bits() ^ (1 << bit));
                    changed = true;
                }
            }
        }
        changed
    }
}

/// One standard-normal draw via Box–Muller (two uniform draws; the
/// log argument is kept strictly positive).
fn gauss(rng: &mut ChaCha8Rng) -> f32 {
    let mut u1: f32 = rng.gen();
    if u1 <= f32::MIN_POSITIVE {
        u1 = f32::MIN_POSITIVE;
    }
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_full_grammar() {
        let spec =
            PerturbSpec::parse("7:igauss=0.1,isalt=0.05,ioccl=0.25,jitter=3,drop=0.2,wgauss=0.02,wstuck=0.01,wbitflip=0.001")
                .unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.input_gauss, 0.1);
        assert_eq!(spec.input_salt_pepper, 0.05);
        assert_eq!(spec.input_occlude, 0.25);
        assert_eq!(spec.event_jitter, 3);
        assert_eq!(spec.event_drop, 0.2);
        assert_eq!(spec.weight_gauss, 0.02);
        assert_eq!(spec.weight_stuck, 0.01);
        assert_eq!(spec.weight_bitflip, 0.001);
        assert!(!spec.is_identity());
        assert!(spec.has_input() && spec.has_event() && spec.has_weight());
    }

    #[test]
    fn parse_seed_only_is_identity() {
        for text in ["42", "42:", " 42 "] {
            let spec = PerturbSpec::parse(text).unwrap();
            assert_eq!(spec.seed, 42);
            assert!(spec.is_identity(), "`{text}` should parse as identity");
        }
    }

    #[test]
    fn parse_rejects_bad_specs() {
        for bad in [
            "",
            "x:drop=0.1",
            "1:drop",
            "1:drop=1.5",
            "1:drop=-0.1",
            "1:wgauss=nan",
            "1:wgauss=-1",
            "1:unknown=0.5",
            "1:drop=0.1,drop=0.2",
            "1:jitter=-2",
        ] {
            assert!(PerturbSpec::parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let text = "9:igauss=0.15,jitter=2,drop=0.1,wstuck=0.5";
        let spec = PerturbSpec::parse(text).unwrap();
        let rendered = spec.render();
        assert_eq!(PerturbSpec::parse(&rendered).unwrap(), spec);
        assert_eq!(PerturbSpec::identity(3).render(), "3");
    }

    #[test]
    fn scaling_hits_identity_at_zero_and_self_at_one() {
        let spec = PerturbSpec::parse("5:igauss=0.2,jitter=4,drop=0.3,wbitflip=0.01").unwrap();
        assert!(spec.scaled(0.0).is_identity());
        assert_eq!(spec.scaled(1.0), spec);
        let half = spec.scaled(0.5);
        assert_eq!(half.event_jitter, 2);
        assert!(half.event_drop < spec.event_drop);
        // Probabilities never scale beyond 1.
        assert!(spec.scaled(100.0).event_drop <= 1.0);
    }

    #[test]
    fn severity_zero_image_is_bit_identical() {
        let spec = PerturbSpec::identity(1);
        let original: Vec<f32> = (0..48)
            .map(|i| -0.0_f32.max(i as f32 / 48.0) - 0.5)
            .collect();
        let mut image = original.clone();
        spec.perturb_image([3, 4, 4], &mut image);
        for (a, b) in original.iter().zip(&image) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn severity_zero_weights_are_bit_identical() {
        let spec = PerturbSpec::identity(1);
        let original = vec![0.5f32, -0.0, 1.25, -3.5];
        let mut row = original.clone();
        assert!(!spec.perturb_weight_row(0, 0, &mut row));
        for (a, b) in original.iter().zip(&row) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn image_perturbation_is_a_pure_function_of_content() {
        let spec = PerturbSpec::parse("11:igauss=0.2,isalt=0.1,ioccl=0.3").unwrap();
        let image: Vec<f32> = (0..64).map(|i| (i as f32 / 64.0).min(1.0)).collect();
        let mut a = image.clone();
        let mut b = image.clone();
        spec.perturb_image([1, 8, 8], &mut a);
        spec.perturb_image([1, 8, 8], &mut b);
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_ne!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            image.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "an active spec must actually perturb"
        );
    }

    #[test]
    fn weight_rows_are_independent_of_visit_order() {
        let spec = PerturbSpec::parse("13:wgauss=0.1,wstuck=0.2,wbitflip=0.05").unwrap();
        let rows: Vec<Vec<f32>> = (0..6)
            .map(|r| (0..8).map(|i| (r * 8 + i) as f32 * 0.01 - 0.2).collect())
            .collect();
        let mut forward = rows.clone();
        for (r, row) in forward.iter_mut().enumerate() {
            spec.perturb_weight_row(1, r, row);
        }
        let mut backward = rows.clone();
        for (r, row) in backward.iter_mut().enumerate().rev() {
            spec.perturb_weight_row(1, r, row);
        }
        assert_eq!(forward, backward);
    }

    #[test]
    fn bitflips_keep_weights_finite() {
        let spec = PerturbSpec::parse("17:wbitflip=1").unwrap();
        let mut row: Vec<f32> = vec![1.0, -2.5, 0.125, 3.0e30, -1.0e-30];
        spec.perturb_weight_row(0, 0, &mut row);
        assert!(row.iter().all(|w| w.is_finite()), "{row:?}");
    }

    #[test]
    fn occlusion_zeroes_a_patch_in_every_channel() {
        let spec = PerturbSpec::parse("19:ioccl=0.5").unwrap();
        let (c, h, w) = (2, 8, 8);
        let mut image = vec![0.7f32; c * h * w];
        spec.perturb_image([c, h, w], &mut image);
        let zeros = image.iter().filter(|v| **v == 0.0).count();
        // A 4×4 patch in both channels.
        assert_eq!(
            zeros,
            2 * 16,
            "occlusion should zero side² pixels per channel"
        );
    }

    #[test]
    fn event_streams_key_on_content_not_position() {
        let a: Vec<f32> = (0..16).map(|i| i as f32 * 0.05).collect();
        let b: Vec<f32> = (0..16).map(|i| 1.0 - i as f32 * 0.05).collect();
        let mut s1 = event_stream(7, &a);
        let mut s2 = event_stream(7, &a);
        let mut s3 = event_stream(7, &b);
        let (x1, x2, x3) = (s1.gen::<u64>(), s2.gen::<u64>(), s3.gen::<u64>());
        assert_eq!(x1, x2, "same content, same stream");
        assert_ne!(x1, x3, "different content, different stream");
        assert_ne!(
            keyed_stream(7, DOMAIN_EVENT, content_hash(&a), 0).gen::<u64>(),
            keyed_stream(7, DOMAIN_INPUT, content_hash(&a), 0).gen::<u64>(),
            "domains must not share streams"
        );
    }

    proptest! {
        #[test]
        fn render_round_trips_any_spec(
            seed in 0u64..u64::MAX,
            ig in 0.0f32..1.0,
            sp in 0.0f32..1.0,
            oc in 0.0f32..1.0,
            jit in 0usize..8,
            dr in 0.0f32..1.0,
            wg in 0.0f32..0.5,
            ws in 0.0f32..1.0,
            wb in 0.0f32..1.0,
        ) {
            let spec = PerturbSpec {
                seed,
                input_gauss: ig,
                input_salt_pepper: sp,
                input_occlude: oc,
                event_jitter: jit,
                event_drop: dr,
                weight_gauss: wg,
                weight_stuck: ws,
                weight_bitflip: wb,
            };
            prop_assert_eq!(PerturbSpec::parse(&spec.render()).unwrap(), spec);
        }

        #[test]
        fn identity_never_touches_data(pixels in prop::collection::vec(-2.0f32..2.0, 12)) {
            let spec = PerturbSpec::identity(99);
            let mut image = pixels.clone();
            spec.perturb_image([3, 2, 2], &mut image);
            let mut row = pixels.clone();
            prop_assert!(!spec.perturb_weight_row(2, 5, &mut row));
            for (a, b) in pixels.iter().zip(&image) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in pixels.iter().zip(&row) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
