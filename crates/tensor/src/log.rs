//! Std-only leveled JSON-lines structured logger.
//!
//! One event per stderr line, machine-parseable, human-skimmable:
//!
//! ```text
//! {"ts_ms":1723111845123,"level":"info","event":"model_promoted","model":"tiny","version":3}
//! ```
//!
//! The threshold comes from `T2FSNN_LOG` (`error`, `warn`, `info`
//! (default), `debug`, or `off`/`0`), decided once and cached — a
//! suppressed call site is one relaxed atomic load. Each line is
//! written with a single locked `write_all`, so lines from concurrent
//! threads never interleave.
//!
//! Call sites pass an event name plus typed key/value fields:
//!
//! ```
//! use t2fsnn_tensor::log;
//! log::info("model_promoted", &[("model", "tiny".into()), ("version", 3u64.into())]);
//! ```
//!
//! Field keys are emitted verbatim after the built-in `ts_ms`, `level`
//! and `event` keys; avoid reusing those three.

use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::trace::json_escape_into;

/// Log severities, most severe first.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Level {
    /// Unrecoverable or correctness-relevant conditions.
    Error = 0,
    /// Degradations the operator should know about (quarantine trips,
    /// canary rejections, injected faults).
    Warn = 1,
    /// Lifecycle milestones (loads, promotions, unloads). Default.
    Info = 2,
    /// Per-decision detail (probe scheduling, slow-request exemplars).
    Debug = 3,
}

impl Level {
    fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

const UNDECIDED: u8 = u8::MAX;
/// Threshold encoding: `most verbose level + 1` (0 = everything off),
/// so `enabled` is a single strict compare against one atomic.
const OFF: u8 = 0;

static THRESHOLD: AtomicU8 = AtomicU8::new(UNDECIDED);

#[inline]
fn threshold() -> u8 {
    let t = THRESHOLD.load(Ordering::Relaxed);
    if t != UNDECIDED {
        t
    } else {
        decide()
    }
}

#[cold]
fn decide() -> u8 {
    let t = match std::env::var("T2FSNN_LOG").ok().as_deref() {
        Some("error") => Level::Error as u8 + 1,
        Some("warn") => Level::Warn as u8 + 1,
        Some("debug") => Level::Debug as u8 + 1,
        Some("off") | Some("0") | Some("none") => OFF,
        // `info`, unset, or unrecognized: the default.
        _ => Level::Info as u8 + 1,
    };
    let _ = THRESHOLD.compare_exchange(UNDECIDED, t, Ordering::Relaxed, Ordering::Relaxed);
    THRESHOLD.load(Ordering::Relaxed)
}

/// Overrides the `T2FSNN_LOG` threshold at runtime; `None` silences
/// everything.
pub fn set_level(level: Option<Level>) {
    THRESHOLD.store(level.map_or(OFF, |l| l as u8 + 1), Ordering::Relaxed);
}

/// Would an event at `level` be emitted? One relaxed atomic load —
/// guard expensive field construction with this.
#[inline]
pub fn enabled(level: Level) -> bool {
    (level as u8) < threshold()
}

/// A typed field value. Use the `From` impls: `"x".into()`,
/// `3u64.into()`, `2.5f64.into()`, `true.into()`.
pub enum Value<'a> {
    /// JSON string (escaped on emit).
    Str(&'a str),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (`NaN`/infinite emit as `null`, like JSON demands).
    F64(f64),
    /// Boolean.
    Bool(bool),
}

impl<'a> From<&'a str> for Value<'a> {
    fn from(v: &'a str) -> Self {
        Value::Str(v)
    }
}
impl<'a> From<&'a String> for Value<'a> {
    fn from(v: &'a String) -> Self {
        Value::Str(v)
    }
}
impl From<u64> for Value<'_> {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value<'_> {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value<'_> {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value<'_> {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value<'_> {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value<'_> {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Renders one event line (without the trailing newline). Public to
/// the crate for tests; emission goes through [`log`].
fn render(level: Level, event: &str, fields: &[(&str, Value<'_>)]) -> String {
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_millis() as u64;
    let mut out = String::with_capacity(80 + fields.len() * 24);
    out.push_str("{\"ts_ms\":");
    out.push_str(&ts_ms.to_string());
    out.push_str(",\"level\":\"");
    out.push_str(level.name());
    out.push_str("\",\"event\":\"");
    json_escape_into(&mut out, event);
    out.push('"');
    for (key, value) in fields {
        out.push_str(",\"");
        json_escape_into(&mut out, key);
        out.push_str("\":");
        match value {
            Value::Str(s) => {
                out.push('"');
                json_escape_into(&mut out, s);
                out.push('"');
            }
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) if v.is_finite() => out.push_str(&v.to_string()),
            Value::F64(_) => out.push_str("null"),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        }
    }
    out.push('}');
    out
}

/// Emits one event at `level` if it clears the threshold.
pub fn log(level: Level, event: &str, fields: &[(&str, Value<'_>)]) {
    if !enabled(level) {
        return;
    }
    let mut line = render(level, event, fields);
    line.push('\n');
    let mut err = std::io::stderr().lock();
    let _ = err.write_all(line.as_bytes());
}

/// [`log`] at [`Level::Error`].
pub fn error(event: &str, fields: &[(&str, Value<'_>)]) {
    log(Level::Error, event, fields);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(event: &str, fields: &[(&str, Value<'_>)]) {
    log(Level::Warn, event, fields);
}

/// [`log`] at [`Level::Info`].
pub fn info(event: &str, fields: &[(&str, Value<'_>)]) {
    log(Level::Info, event, fields);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(event: &str, fields: &[(&str, Value<'_>)]) {
    log(Level::Debug, event, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_escaped_typed_fields() {
        let line = render(
            Level::Warn,
            "canary \"rejected\"",
            &[
                ("model", "a\nb".into()),
                ("version", 3u64.into()),
                ("delta", (-2i64).into()),
                ("ratio", 0.5f64.into()),
                ("nan", f64::NAN.into()),
                ("ok", false.into()),
            ],
        );
        assert!(line.starts_with("{\"ts_ms\":"), "{line}");
        assert!(line.contains("\"level\":\"warn\""), "{line}");
        assert!(
            line.contains("\"event\":\"canary \\\"rejected\\\"\""),
            "{line}"
        );
        assert!(line.contains("\"model\":\"a\\nb\""), "{line}");
        assert!(line.contains("\"version\":3"), "{line}");
        assert!(line.contains("\"delta\":-2"), "{line}");
        assert!(line.contains("\"ratio\":0.5"), "{line}");
        assert!(line.contains("\"nan\":null"), "{line}");
        assert!(line.contains("\"ok\":false"), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }

    #[test]
    fn threshold_orders_levels() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        set_level(Some(Level::Warn));
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(None);
        assert!(!enabled(Level::Error));
        // Restore the env-derived default for any test that follows.
        set_level(Some(Level::Info));
    }
}
