//! 2-D max- and average-pooling with backward passes.
//!
//! DNN→SNN conversion pipelines traditionally prefer average pooling
//! (it is linear, so it converts exactly to synaptic weights); max pooling
//! is provided for completeness and for the VGG-16 architecture fidelity.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

fn check_pool_input(input: &Tensor, op: &'static str, window: usize, stride: usize) -> Result<()> {
    if input.rank() != 4 {
        return Err(TensorError::InvalidArgument {
            op,
            message: format!("expected [N, C, H, W], got {}", input.shape()),
        });
    }
    if window == 0 || stride == 0 {
        return Err(TensorError::InvalidArgument {
            op,
            message: "window and stride must be positive".to_string(),
        });
    }
    Ok(())
}

pub(crate) fn pooled_dim(input: usize, window: usize, stride: usize) -> usize {
    if input < window {
        0
    } else {
        (input - window) / stride + 1
    }
}

/// Max pooling over `window × window` regions with the given stride.
///
/// Returns the pooled tensor and the flat argmax index (into the input) of
/// every output element, which [`max_pool2d_backward`] uses to route
/// gradients.
///
/// # Errors
///
/// Returns an error for non-rank-4 input or a zero window/stride.
pub fn max_pool2d(input: &Tensor, window: usize, stride: usize) -> Result<(Tensor, Vec<usize>)> {
    check_pool_input(input, "max_pool2d", window, stride)?;
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let oh = pooled_dim(h, window, stride);
    let ow = pooled_dim(w, window, stride);
    let mut out = Vec::with_capacity(n * c * oh * ow);
    let mut argmax = Vec::with_capacity(n * c * oh * ow);
    let data = input.data();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ki in 0..window {
                        for kj in 0..window {
                            let idx = base + (oi * stride + ki) * w + (oj * stride + kj);
                            if data[idx] > best {
                                best = data[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    out.push(best);
                    argmax.push(best_idx);
                }
            }
        }
    }
    Ok((Tensor::from_vec([n, c, oh, ow], out)?, argmax))
}

/// Backward pass of [`max_pool2d`]: routes each upstream gradient to the
/// input element that produced the maximum.
///
/// # Errors
///
/// Returns an error if `grad_out.numel() != argmax.len()`.
pub fn max_pool2d_backward(
    input_shape: &[usize],
    argmax: &[usize],
    grad_out: &Tensor,
) -> Result<Tensor> {
    if grad_out.numel() != argmax.len() {
        return Err(TensorError::InvalidArgument {
            op: "max_pool2d_backward",
            message: format!(
                "grad_out has {} elements but argmax has {}",
                grad_out.numel(),
                argmax.len()
            ),
        });
    }
    let mut grad_input = Tensor::zeros(input_shape);
    let gi = grad_input.data_mut();
    for (&idx, &g) in argmax.iter().zip(grad_out.data()) {
        gi[idx] += g;
    }
    Ok(grad_input)
}

/// Average pooling over `window × window` regions with the given stride.
///
/// # Errors
///
/// Returns an error for non-rank-4 input or a zero window/stride.
pub fn avg_pool2d(input: &Tensor, window: usize, stride: usize) -> Result<Tensor> {
    check_pool_input(input, "avg_pool2d", window, stride)?;
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let oh = pooled_dim(h, window, stride);
    let ow = pooled_dim(w, window, stride);
    let inv_area = 1.0 / (window * window) as f32;
    let data = input.data();
    if window == 2 && stride == 2 && h * w > 0 && oh * ow > 0 {
        // The down2 pooling every bundled architecture uses: unrolled
        // pairwise sums with the same left-to-right association as the
        // generic loop below, so results are identical.
        let mut out = vec![0.0f32; n * c * oh * ow];
        for (plane, slot) in data
            .chunks_exact(h * w)
            .zip(out.chunks_exact_mut((oh * ow).max(1)))
            .take(n * c)
        {
            for oi in 0..oh {
                let row0 = &plane[2 * oi * w..2 * oi * w + w];
                let row1 = &plane[(2 * oi + 1) * w..(2 * oi + 1) * w + w];
                let orow = &mut slot[oi * ow..(oi + 1) * ow];
                for (oj, o) in orow.iter_mut().enumerate() {
                    *o = (row0[2 * oj] + row0[2 * oj + 1] + row1[2 * oj] + row1[2 * oj + 1])
                        * inv_area;
                }
            }
        }
        return Tensor::from_vec([n, c, oh, ow], out);
    }
    let mut out = Vec::with_capacity(n * c * oh * ow);
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc = 0.0f32;
                    for ki in 0..window {
                        for kj in 0..window {
                            acc += data[base + (oi * stride + ki) * w + (oj * stride + kj)];
                        }
                    }
                    out.push(acc * inv_area);
                }
            }
        }
    }
    Tensor::from_vec([n, c, oh, ow], out)
}

/// Backward pass of [`avg_pool2d`]: spreads each upstream gradient evenly
/// over its pooling window.
///
/// # Errors
///
/// Returns an error if `grad_out`'s shape is inconsistent with pooling
/// `input_shape` by `window`/`stride`.
pub fn avg_pool2d_backward(
    input_shape: &[usize],
    window: usize,
    stride: usize,
    grad_out: &Tensor,
) -> Result<Tensor> {
    let (n, c, h, w) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    let oh = pooled_dim(h, window, stride);
    let ow = pooled_dim(w, window, stride);
    if grad_out.dims() != [n, c, oh, ow] {
        return Err(TensorError::InvalidArgument {
            op: "avg_pool2d_backward",
            message: format!(
                "expected grad_out [{n}, {c}, {oh}, {ow}], got {}",
                grad_out.shape()
            ),
        });
    }
    let inv_area = 1.0 / (window * window) as f32;
    let mut grad_input = Tensor::zeros(input_shape);
    let gi = grad_input.data_mut();
    let god = grad_out.data();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let obase = (ni * c + ci) * oh * ow;
            for oi in 0..oh {
                for oj in 0..ow {
                    let g = god[obase + oi * ow + oj] * inv_area;
                    for ki in 0..window {
                        for kj in 0..window {
                            gi[base + (oi * stride + ki) * w + (oj * stride + kj)] += g;
                        }
                    }
                }
            }
        }
    }
    Ok(grad_input)
}

fn check_pool_input_pm(
    input: &Tensor,
    op: &'static str,
    window: usize,
    stride: usize,
) -> Result<()> {
    if input.rank() != 4 {
        return Err(TensorError::InvalidArgument {
            op,
            message: format!("expected [N, H, W, C], got {}", input.shape()),
        });
    }
    if window == 0 || stride == 0 {
        return Err(TensorError::InvalidArgument {
            op,
            message: "window and stride must be positive".to_string(),
        });
    }
    Ok(())
}

/// The `oy`/`ox` window range covering source coordinate `s`
/// (`o·stride ≤ s < o·stride + window`, `o < limit`).
#[inline]
pub(crate) fn covering_windows(
    s: usize,
    window: usize,
    stride: usize,
    limit: usize,
) -> std::ops::Range<usize> {
    let lo = (s + 1).saturating_sub(window).div_ceil(stride);
    let hi = (s / stride + 1).min(limit);
    lo..hi.max(lo)
}

/// Average pooling over a **position-major** `[N, H, W, C]` batch,
/// returning `[N, OH, OW, C]`.
///
/// The accumulation order is the spiking engine's canonical one: the
/// input is scanned in storage order (ascending `(y, x, c)`) and each
/// element is added to every window covering it, with one final
/// `× 1/window²` pass — term for term and rounding for rounding what
/// [`crate::ops::sparse::avg_pool2d_events`] computes, so the dense and
/// event paths are bit-identical.
///
/// # Errors
///
/// Returns an error for non-rank-4 input or a zero window/stride.
pub fn avg_pool2d_pm(input: &Tensor, window: usize, stride: usize) -> Result<Tensor> {
    check_pool_input_pm(input, "avg_pool2d_pm", window, stride)?;
    let (n, h, w, c) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let oh = pooled_dim(h, window, stride);
    let ow = pooled_dim(w, window, stride);
    let mut out = Tensor::zeros([n, oh, ow, c]);
    let od = out.data_mut();
    let data = input.data();
    let ys: Vec<std::ops::Range<usize>> = (0..h)
        .map(|y| covering_windows(y, window, stride, oh))
        .collect();
    let xs: Vec<std::ops::Range<usize>> = (0..w)
        .map(|x| covering_windows(x, window, stride, ow))
        .collect();
    let in_image = h * w * c;
    let out_image = oh * ow * c;
    for ni in 0..n {
        let is = &data[ni * in_image..(ni + 1) * in_image];
        let os = &mut od[ni * out_image..(ni + 1) * out_image];
        let mut idx = 0usize;
        for oys in &ys {
            for oxs in &xs {
                for ci in 0..c {
                    let v = is[idx];
                    idx += 1;
                    if v == 0.0 {
                        continue; // spike signals are mostly zeros
                    }
                    for oy in oys.clone() {
                        for ox in oxs.clone() {
                            os[(oy * ow + ox) * c + ci] += v;
                        }
                    }
                }
            }
        }
    }
    let inv_area = 1.0 / (window * window) as f32;
    for v in od.iter_mut() {
        *v *= inv_area;
    }
    Ok(out)
}

/// Max pooling over a **position-major** `[N, H, W, C]` batch, values
/// only (no argmax tracking), returning `[N, OH, OW, C]`.
///
/// Window elements are compared in window scan order (`(wy, wx)`
/// ascending) with `>` — the same comparator sequence the event-form
/// first-spike pooling uses, so on non-negative spike signals the two
/// produce bit-identical window maxima.
///
/// # Errors
///
/// Returns an error for non-rank-4 input or a zero window/stride.
pub fn max_pool2d_pm(input: &Tensor, window: usize, stride: usize) -> Result<Tensor> {
    check_pool_input_pm(input, "max_pool2d_pm", window, stride)?;
    let (n, h, w, c) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let oh = pooled_dim(h, window, stride);
    let ow = pooled_dim(w, window, stride);
    let mut out = Tensor::zeros([n, oh, ow, c]);
    let od = out.data_mut();
    let data = input.data();
    let in_image = h * w * c;
    let out_image = oh * ow * c;
    for ni in 0..n {
        let is = &data[ni * in_image..(ni + 1) * in_image];
        let os = &mut od[ni * out_image..(ni + 1) * out_image];
        for oy in 0..oh {
            for ox in 0..ow {
                for ci in 0..c {
                    let mut best = f32::NEG_INFINITY;
                    for wy in 0..window {
                        for wx in 0..window {
                            let v = is[((oy * stride + wy) * w + (ox * stride + wx)) * c + ci];
                            if v > best {
                                best = v;
                            }
                        }
                    }
                    os[(oy * ow + ox) * c + ci] = best;
                }
            }
        }
    }
    Ok(out)
}

/// [`max_pool2d_pm`] composed with first-spike gating (the TTFS max-pool
/// rule): a window whose gate is already set outputs zero; a window that
/// produces a non-zero maximum latches its gate. `gate` has the output
/// shape `[N, OH, OW, C]` and persists across time steps.
///
/// This is the dense twin of [`crate::ops::sparse::max_pool2d_events`]:
/// on non-negative spike signals the two are bit-identical.
///
/// # Errors
///
/// Returns an error on rank/shape mismatches or a zero window/stride.
pub fn max_pool2d_pm_gated(
    input: &Tensor,
    window: usize,
    stride: usize,
    gate: &mut Tensor,
) -> Result<Tensor> {
    let mut out = max_pool2d_pm(input, window, stride)?;
    if gate.dims() != out.dims() {
        return Err(TensorError::InvalidArgument {
            op: "max_pool2d_pm_gated",
            message: format!(
                "gate shape {} does not match pooled shape {}",
                gate.shape(),
                out.shape()
            ),
        });
    }
    for (v, g) in out.data_mut().iter_mut().zip(gate.data_mut()) {
        if *g != 0.0 {
            *v = 0.0; // window already fired: suppress
        } else if *v != 0.0 {
            *g = 1.0; // first spike through this window: latch
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tensor {
        Tensor::from_vec(
            [1, 1, 4, 4],
            vec![
                1., 2., 3., 4., //
                5., 6., 7., 8., //
                9., 10., 11., 12., //
                13., 14., 15., 16.,
            ],
        )
        .unwrap()
    }

    #[test]
    fn max_pool_known_answer() {
        let (out, argmax) = max_pool2d(&sample(), 2, 2).unwrap();
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[6., 8., 14., 16.]);
        assert_eq!(argmax, vec![5, 7, 13, 15]);
    }

    #[test]
    fn avg_pool_known_answer() {
        let out = avg_pool2d(&sample(), 2, 2).unwrap();
        assert_eq!(out.data(), &[3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let input = sample();
        let (out, argmax) = max_pool2d(&input, 2, 2).unwrap();
        let gout = Tensor::from_vec(out.shape().clone(), vec![1., 2., 3., 4.]).unwrap();
        let gin = max_pool2d_backward(input.dims(), &argmax, &gout).unwrap();
        assert_eq!(gin.get(&[0, 0, 1, 1]), Some(1.0));
        assert_eq!(gin.get(&[0, 0, 1, 3]), Some(2.0));
        assert_eq!(gin.get(&[0, 0, 3, 1]), Some(3.0));
        assert_eq!(gin.get(&[0, 0, 3, 3]), Some(4.0));
        assert_eq!(gin.sum(), 10.0);
    }

    #[test]
    fn avg_pool_backward_spreads_evenly() {
        let input = sample();
        let gout = Tensor::ones([1, 1, 2, 2]);
        let gin = avg_pool2d_backward(input.dims(), 2, 2, &gout).unwrap();
        assert!(gin.iter().all(|&g| (g - 0.25).abs() < 1e-6));
        assert!((gin.sum() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn avg_pool_gradient_matches_finite_difference() {
        let input = sample();
        let eps = 1e-2;
        let gout = Tensor::ones([1, 1, 2, 2]);
        let gin = avg_pool2d_backward(input.dims(), 2, 2, &gout).unwrap();
        for flat in 0..input.numel() {
            let mut ip = input.clone();
            ip.data_mut()[flat] += eps;
            let mut im = input.clone();
            im.data_mut()[flat] -= eps;
            let fd = (avg_pool2d(&ip, 2, 2).unwrap().sum() - avg_pool2d(&im, 2, 2).unwrap().sum())
                / (2.0 * eps);
            assert!((fd - gin.data()[flat]).abs() < 1e-3);
        }
    }

    #[test]
    fn pool_validates_arguments() {
        assert!(max_pool2d(&Tensor::zeros([4, 4]), 2, 2).is_err());
        assert!(max_pool2d(&Tensor::zeros([1, 1, 4, 4]), 0, 2).is_err());
        assert!(avg_pool2d(&Tensor::zeros([1, 1, 4, 4]), 2, 0).is_err());
        assert!(max_pool2d_backward(&[1, 1, 4, 4], &[0, 1], &Tensor::zeros([3])).is_err());
        assert!(avg_pool2d_backward(&[1, 1, 4, 4], 2, 2, &Tensor::zeros([1, 1, 3, 3])).is_err());
    }

    #[test]
    fn non_square_input_pools() {
        let t = Tensor::from_fn([1, 2, 6, 4], |i| (i[2] * 4 + i[3]) as f32);
        let out = avg_pool2d(&t, 2, 2).unwrap();
        assert_eq!(out.dims(), &[1, 2, 3, 2]);
        let (out, _) = max_pool2d(&t, 2, 2).unwrap();
        assert_eq!(out.dims(), &[1, 2, 3, 2]);
    }

    #[test]
    fn window_larger_than_input_yields_empty() {
        let t = Tensor::zeros([1, 1, 2, 2]);
        let out = avg_pool2d(&t, 3, 1).unwrap();
        assert_eq!(out.dims(), &[1, 1, 0, 0]);
        // Zero-sized spatial inputs must not panic the 2×2 fast path.
        let empty = Tensor::zeros([1, 1, 0, 4]);
        let out = avg_pool2d(&empty, 2, 2).unwrap();
        assert_eq!(out.dims(), &[1, 1, 0, 2]);
        let tall = Tensor::zeros([1, 1, 1, 4]);
        let out = avg_pool2d(&tall, 2, 2).unwrap();
        assert_eq!(out.dims(), &[1, 1, 0, 2]);
    }
}
