//! Dense matrix multiplication kernels.
//!
//! These loops are written for a single CPU core: the inner loop is laid out
//! so the compiler can auto-vectorize over contiguous rows, and the
//! transposed variants avoid materializing transposed copies during
//! backpropagation.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

fn check_2d(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::InvalidArgument {
            op,
            message: format!("expected rank-2 tensor, got shape {}", t.shape()),
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

/// Computes `A · B` for `A: [m, k]`, `B: [k, n]`, returning `[m, n]`.
///
/// # Errors
///
/// Returns an error if either operand is not rank 2 or if the inner
/// dimensions disagree.
///
/// # Examples
///
/// ```
/// use t2fsnn_tensor::{ops, Tensor};
///
/// # fn main() -> Result<(), t2fsnn_tensor::TensorError> {
/// let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let id = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0])?;
/// assert_eq!(ops::matmul(&a, &id)?, a);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_2d(a, "matmul")?;
    let (k2, n) = check_2d(b, "matmul")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue; // spike matrices are sparse; skip zero rows cheaply
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec([m, n], out)
}

/// Computes `Aᵀ · B` for `A: [k, m]`, `B: [k, n]`, returning `[m, n]`.
///
/// Used for weight gradients (`∂L/∂W = Xᵀ · ∂L/∂Y`) without an explicit
/// transpose.
///
/// # Errors
///
/// Returns an error on non-rank-2 operands or mismatched leading dimensions.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = check_2d(a, "matmul_at_b")?;
    let (k2, n) = check_2d(b, "matmul_at_b")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_at_b",
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec([m, n], out)
}

/// Computes `A · Bᵀ` for `A: [m, k]`, `B: [n, k]`, returning `[m, n]`.
///
/// Used for input gradients (`∂L/∂X = ∂L/∂Y · Wᵀ`) without an explicit
/// transpose.
///
/// # Errors
///
/// Returns an error on non-rank-2 operands or mismatched trailing dimensions.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_2d(a, "matmul_a_bt")?;
    let (n, k2) = check_2d(b, "matmul_a_bt")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_a_bt",
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
    Tensor::from_vec([m, n], out)
}

/// Computes the matrix-vector product `A · x` for `A: [m, k]`, `x: [k]`.
///
/// # Errors
///
/// Returns an error if `A` is not rank 2, `x` not rank 1, or sizes disagree.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    let (m, k) = check_2d(a, "matvec")?;
    if x.rank() != 1 || x.dims()[0] != k {
        return Err(TensorError::ShapeMismatch {
            op: "matvec",
            lhs: a.shape().clone(),
            rhs: x.shape().clone(),
        });
    }
    let ad = a.data();
    let xd = x.data();
    let mut out = vec![0.0f32; m];
    for (i, o) in out.iter_mut().enumerate() {
        let row = &ad[i * k..(i + 1) * k];
        let mut acc = 0.0f32;
        for (&av, &xv) in row.iter().zip(xd) {
            acc += av * xv;
        }
        *o = acc;
    }
    Tensor::from_vec([m], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: [usize; 2], data: &[f32]) -> Tensor {
        Tensor::from_vec(shape, data.to_vec()).unwrap()
    }

    #[test]
    fn matmul_small_known_answer() {
        let a = t([2, 3], &[1., 2., 3., 4., 5., 6.]);
        let b = t([3, 2], &[7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = t([2, 2], &[1., 2., 3., 4.]);
        let id = t([2, 2], &[1., 0., 0., 1.]);
        assert_eq!(matmul(&a, &id).unwrap(), a);
        assert_eq!(matmul(&id, &a).unwrap(), a);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = t([2, 3], &[0.; 6]);
        let b = t([2, 3], &[0.; 6]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&a, &Tensor::zeros([3])).is_err());
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = t([3, 2], &[1., 2., 3., 4., 5., 6.]);
        let b = t([3, 4], &[1., 0., 2., -1., 3., 1., 0., 2., -2., 1., 1., 0.]);
        let expect = matmul(&a.transpose().unwrap(), &b).unwrap();
        assert!(matmul_at_b(&a, &b).unwrap().all_close(&expect, 1e-6));

        let c = t([2, 4], &[1., 2., 3., 4., 5., 6., 7., 8.]);
        let expect = matmul(&b, &c.transpose().unwrap()).unwrap();
        let got = matmul_a_bt(&b, &c).unwrap();
        assert!(got.all_close(&expect, 1e-6));
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let a = t([2, 3], &[1., 2., 3., 4., 5., 6.]);
        let x = Tensor::from_vec([3], vec![1., 0., -1.]).unwrap();
        let y = matvec(&a, &x).unwrap();
        assert_eq!(y.data(), &[-2.0, -2.0]);
        assert!(matvec(&a, &Tensor::zeros([2])).is_err());
    }

    #[test]
    fn matmul_skips_zero_rows_correctly() {
        // Regression guard for the sparsity fast-path: zeros in A must not
        // change the result.
        let a = t([2, 3], &[0., 2., 0., 4., 0., 6.]);
        let b = t([3, 2], &[7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[18., 20., 94., 104.]);
    }
}
