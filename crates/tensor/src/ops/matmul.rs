//! Dense matrix multiplication kernels.
//!
//! Register-blocked and cache-tiled for a single CPU core:
//!
//! * [`matmul`] and [`matmul_at_b`] are axpy-form kernels that process
//!   **four accumulator rows per pass**, so each streamed row of `B` is
//!   loaded once per four output rows instead of once per row (4× less
//!   `B` traffic), with four independent FMA chains for the
//!   auto-vectorizer.
//! * [`matmul_a_bt`] is a dot-form kernel that processes **two output
//!   columns × eight vector lanes** per pass: the shared `A` row is read
//!   once per column pair and the eight-lane partial sums map directly
//!   onto SIMD registers.
//!
//! Remainders (rows/columns beyond the blocking factor, tail elements
//! beyond the lane width) fall back to scalar loops that keep the
//! zero-skipping fast path for sparse operands.
//!
//! The inner loops run on the [`crate::simd`] primitives — explicit
//! AVX2 when the runtime dispatch is on, scalar twins otherwise — and
//! are bit-identical either way: vectorization is across the output
//! columns (independent elements), so per output element the
//! contraction still accumulates in strictly ascending `p` order.

use crate::error::{Result, TensorError};
use crate::simd;
use crate::tensor::Tensor;

fn check_2d(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::InvalidArgument {
            op,
            message: format!("expected rank-2 tensor, got shape {}", t.shape()),
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

/// Axpy with zero-skip: `row += a · b_row`.
#[inline]
fn axpy(row: &mut [f32], a: f32, b_row: &[f32]) {
    if a == 0.0 {
        return; // spike matrices are sparse; skip zero rows cheaply
    }
    simd::axpy(row, a, b_row);
}

/// Computes `A · B` for `A: [m, k]`, `B: [k, n]`, returning `[m, n]`.
///
/// # Errors
///
/// Returns an error if either operand is not rank 2 or if the inner
/// dimensions disagree.
///
/// # Examples
///
/// ```
/// use t2fsnn_tensor::{ops, Tensor};
///
/// # fn main() -> Result<(), t2fsnn_tensor::TensorError> {
/// let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let id = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0])?;
/// assert_eq!(ops::matmul(&a, &id)?, a);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_2d(a, "matmul")?;
    let (k2, n) = check_2d(b, "matmul")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    if m == 0 || n == 0 {
        return Tensor::from_vec([m, n], vec![0.0; m * n]);
    }
    let mut out = vec![0.0f32; m * n];
    gemm_accumulate(&mut out, a.data(), m, k, b.data(), n);
    Tensor::from_vec([m, n], out)
}

/// Accumulates `A · B` into `out` (`+=` semantics; pass zeros for a plain
/// product). This is the blocked core behind [`matmul`], exposed at crate
/// level so the convolution path can run it on reused buffers.
///
/// Per output element, contributions are accumulated in strictly
/// ascending `p` (contraction index) order — the property the spiking
/// engine's dense/event equivalence relies on.
///
/// # Panics
///
/// Panics (in debug builds) if slice lengths disagree with `m`/`k`/`n`.
pub(crate) fn gemm_accumulate(
    out: &mut [f32],
    ad: &[f32],
    m: usize,
    k: usize,
    bd: &[f32],
    n: usize,
) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(ad.len(), m * k);
    debug_assert_eq!(bd.len(), k * n);
    if m == 0 || n == 0 {
        return;
    }
    // Four-row blocks: stream B once per four output rows.
    let mut rows = out.chunks_exact_mut(n);
    let mut i = 0;
    while i + 4 <= m {
        let (r0, r1, r2, r3) = match (rows.next(), rows.next(), rows.next(), rows.next()) {
            (Some(r0), Some(r1), Some(r2), Some(r3)) => (r0, r1, r2, r3),
            _ => unreachable!("chunk count matches m"),
        };
        let a0 = &ad[i * k..(i + 1) * k];
        let a1 = &ad[(i + 1) * k..(i + 2) * k];
        let a2 = &ad[(i + 2) * k..(i + 3) * k];
        let a3 = &ad[(i + 3) * k..(i + 4) * k];
        simd::gemm_block4(r0, r1, r2, r3, a0, a1, a2, a3, bd, n);
        i += 4;
    }
    for (row, orow) in (i..m).zip(rows) {
        let arow = &ad[row * k..(row + 1) * k];
        for (p, &av) in arow.iter().enumerate() {
            axpy(orow, av, &bd[p * n..(p + 1) * n]);
        }
    }
}

/// Computes `Aᵀ · B` for `A: [k, m]`, `B: [k, n]`, returning `[m, n]`.
///
/// Used for weight gradients (`∂L/∂W = Xᵀ · ∂L/∂Y`) without an explicit
/// transpose.
///
/// # Errors
///
/// Returns an error on non-rank-2 operands or mismatched leading dimensions.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = check_2d(a, "matmul_at_b")?;
    let (k2, n) = check_2d(b, "matmul_at_b")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_at_b",
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    at_b_into(&mut out, a.data(), k, m, b.data(), n);
    Tensor::from_vec([m, n], out)
}

/// Computes `Aᵀ · B` into a reused buffer (`out` is overwritten) —
/// the allocation-free core behind [`matmul_at_b`], used by the
/// batch-parallel convolution backward pass.
pub(crate) fn at_b_into(out: &mut [f32], ad: &[f32], k: usize, m: usize, bd: &[f32], n: usize) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(ad.len(), k * m);
    debug_assert_eq!(bd.len(), k * n);
    out.fill(0.0);
    if m == 0 || n == 0 {
        return;
    }
    // Four-deep blocks over the contraction axis: the output matrix is
    // swept once per four `k` rows instead of once per row.
    let mut p = 0;
    while p + 4 <= k {
        let a0 = &ad[p * m..(p + 1) * m];
        let a1 = &ad[(p + 1) * m..(p + 2) * m];
        let a2 = &ad[(p + 2) * m..(p + 3) * m];
        let a3 = &ad[(p + 3) * m..(p + 4) * m];
        let b0 = &bd[p * n..(p + 1) * n];
        let b1 = &bd[(p + 1) * n..(p + 2) * n];
        let b2 = &bd[(p + 2) * n..(p + 3) * n];
        let b3 = &bd[(p + 3) * n..(p + 4) * n];
        simd::at_b_block4(out, n, a0, a1, a2, a3, b0, b1, b2, b3);
        p += 4;
    }
    for p in p..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            axpy(&mut out[i * n..(i + 1) * n], av, brow);
        }
    }
}

/// Eight-lane dot product of two equal-length slices (the SIMD
/// primitive keeps the eight-lane-accumulator semantics either way).
#[inline]
fn dot(x: &[f32], y: &[f32]) -> f32 {
    simd::dot(x, y)
}

/// Computes `A · Bᵀ` for `A: [m, k]`, `B: [n, k]`, returning `[m, n]`.
///
/// Used for input gradients (`∂L/∂X = ∂L/∂Y · Wᵀ`) without an explicit
/// transpose.
///
/// # Errors
///
/// Returns an error on non-rank-2 operands or mismatched trailing dimensions.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_2d(a, "matmul_a_bt")?;
    let (n, k2) = check_2d(b, "matmul_a_bt")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_a_bt",
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    a_bt_into(&mut out, a.data(), m, k, b.data(), n);
    Tensor::from_vec([m, n], out)
}

/// Computes `A · Bᵀ` into a reused buffer (`out` is overwritten) —
/// the allocation-free core behind [`matmul_a_bt`], used by the
/// batch-parallel convolution backward pass.
pub(crate) fn a_bt_into(out: &mut [f32], ad: &[f32], m: usize, k: usize, bd: &[f32], n: usize) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(ad.len(), m * k);
    debug_assert_eq!(bd.len(), n * k);
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        // Column pairs: the A row is read once per two output columns,
        // with 2×8 independent lanes of partial sums.
        let mut j = 0;
        while j + 2 <= n {
            let b0 = &bd[j * k..(j + 1) * k];
            let b1 = &bd[(j + 1) * k..(j + 2) * k];
            let (s0, s1) = simd::dot2(arow, b0, b1);
            orow[j] = s0;
            orow[j + 1] = s1;
            j += 2;
        }
        if j < n {
            orow[j] = dot(arow, &bd[j * k..(j + 1) * k]);
        }
    }
}

/// Computes the matrix-vector product `A · x` for `A: [m, k]`, `x: [k]`.
///
/// # Errors
///
/// Returns an error if `A` is not rank 2, `x` not rank 1, or sizes disagree.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    let (m, k) = check_2d(a, "matvec")?;
    if x.rank() != 1 || x.dims()[0] != k {
        return Err(TensorError::ShapeMismatch {
            op: "matvec",
            lhs: a.shape().clone(),
            rhs: x.shape().clone(),
        });
    }
    let ad = a.data();
    let xd = x.data();
    let mut out = vec![0.0f32; m];
    for (i, o) in out.iter_mut().enumerate() {
        *o = dot(&ad[i * k..(i + 1) * k], xd);
    }
    Tensor::from_vec([m], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: [usize; 2], data: &[f32]) -> Tensor {
        Tensor::from_vec(shape, data.to_vec()).unwrap()
    }

    /// Reference triple loop used as an oracle for the blocked kernels.
    fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.data()[i * k + p] * b.data()[p * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec([m, n], out).unwrap()
    }

    fn pattern(shape: [usize; 2], seed: usize) -> Tensor {
        Tensor::from_fn(shape, |i| {
            (((i[0] * 7 + i[1] * 13 + seed) % 23) as f32) * 0.11 - 1.2
        })
    }

    #[test]
    fn matmul_small_known_answer() {
        let a = t([2, 3], &[1., 2., 3., 4., 5., 6.]);
        let b = t([3, 2], &[7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = t([2, 2], &[1., 2., 3., 4.]);
        let id = t([2, 2], &[1., 0., 0., 1.]);
        assert_eq!(matmul(&a, &id).unwrap(), a);
        assert_eq!(matmul(&id, &a).unwrap(), a);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = t([2, 3], &[0.; 6]);
        let b = t([2, 3], &[0.; 6]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&a, &Tensor::zeros([3])).is_err());
    }

    #[test]
    fn blocked_kernels_agree_on_one_odd_shape() {
        // One smoke case here; the exhaustive odd-shape sweep lives in
        // tests/properties.rs (`blocked_matmul_family_matches_naive_oracle`).
        let (m, k, n) = (7, 17, 11);
        let a = pattern([m, k], 3);
        let b = pattern([k, n], 5);
        let want = matmul_naive(&a, &b);
        assert!(matmul(&a, &b).unwrap().all_close(&want, 1e-4));
        assert!(matmul_at_b(&a.transpose().unwrap(), &b)
            .unwrap()
            .all_close(&want, 1e-4));
        assert!(matmul_a_bt(&a, &b.transpose().unwrap())
            .unwrap()
            .all_close(&want, 1e-4));
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = t([3, 2], &[1., 2., 3., 4., 5., 6.]);
        let b = t([3, 4], &[1., 0., 2., -1., 3., 1., 0., 2., -2., 1., 1., 0.]);
        let expect = matmul(&a.transpose().unwrap(), &b).unwrap();
        assert!(matmul_at_b(&a, &b).unwrap().all_close(&expect, 1e-6));

        let c = t([2, 4], &[1., 2., 3., 4., 5., 6., 7., 8.]);
        let expect = matmul(&b, &c.transpose().unwrap()).unwrap();
        let got = matmul_a_bt(&b, &c).unwrap();
        assert!(got.all_close(&expect, 1e-6));
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let a = t([2, 3], &[1., 2., 3., 4., 5., 6.]);
        let x = Tensor::from_vec([3], vec![1., 0., -1.]).unwrap();
        let y = matvec(&a, &x).unwrap();
        assert_eq!(y.data(), &[-2.0, -2.0]);
        assert!(matvec(&a, &Tensor::zeros([2])).is_err());
    }

    #[test]
    fn matmul_skips_zero_rows_correctly() {
        // Regression guard for the sparsity fast-path: zeros in A must not
        // change the result.
        let a = t([2, 3], &[0., 2., 0., 4., 0., 6.]);
        let b = t([3, 2], &[7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[18., 20., 94., 104.]);
    }

    #[test]
    fn empty_dimensions_are_handled() {
        let a = Tensor::zeros([0, 3]);
        let b = Tensor::zeros([3, 2]);
        assert_eq!(matmul(&a, &b).unwrap().dims(), &[0, 2]);
        let a = Tensor::zeros([2, 0]);
        let b = Tensor::zeros([0, 2]);
        assert_eq!(matmul(&a, &b).unwrap().data(), &[0.0; 4]);
        assert_eq!(
            matmul_a_bt(&a, &Tensor::zeros([2, 0])).unwrap().dims(),
            &[2, 2]
        );
    }
}
