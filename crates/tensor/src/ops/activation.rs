//! Activation functions and classification heads.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

/// Rectified linear unit, applied element-wise: `max(0, x)`.
pub fn relu(input: &Tensor) -> Tensor {
    input.map(|x| x.max(0.0))
}

/// Backward pass of [`relu`]: passes gradient where the forward input was
/// strictly positive.
///
/// # Errors
///
/// Returns a shape-mismatch error if `input` and `grad_out` differ.
pub fn relu_backward(input: &Tensor, grad_out: &Tensor) -> Result<Tensor> {
    input.zip_with(grad_out, |x, g| if x > 0.0 { g } else { 0.0 })
}

/// Row-wise softmax for a `[batch, classes]` tensor, computed with the
/// max-subtraction trick for numerical stability.
///
/// # Errors
///
/// Returns an error if `logits` is not rank 2.
pub fn softmax(logits: &Tensor) -> Result<Tensor> {
    if logits.rank() != 2 {
        return Err(TensorError::InvalidArgument {
            op: "softmax",
            message: format!("expected [batch, classes], got {}", logits.shape()),
        });
    }
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    let mut out = vec![0.0f32; n * c];
    let data = logits.data();
    for i in 0..n {
        let row = &data[i * c..(i + 1) * c];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0f32;
        for (j, &x) in row.iter().enumerate() {
            let e = (x - m).exp();
            out[i * c + j] = e;
            z += e;
        }
        for j in 0..c {
            out[i * c + j] /= z;
        }
    }
    Tensor::from_vec([n, c], out)
}

/// Mean cross-entropy loss and its gradient for a `[batch, classes]` logits
/// tensor and integer class labels.
///
/// Returns `(loss, grad_logits)` where the gradient already includes the
/// softmax Jacobian (`softmax(x) - onehot(y)`, averaged over the batch).
///
/// # Errors
///
/// Returns an error if shapes disagree or a label is out of range.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
    if logits.rank() != 2 || logits.dims()[0] != labels.len() {
        return Err(TensorError::InvalidArgument {
            op: "cross_entropy",
            message: format!(
                "logits {} incompatible with {} labels",
                logits.shape(),
                labels.len()
            ),
        });
    }
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    if let Some(&bad) = labels.iter().find(|&&y| y >= c) {
        return Err(TensorError::InvalidArgument {
            op: "cross_entropy",
            message: format!("label {bad} out of range for {c} classes"),
        });
    }
    let probs = softmax(logits)?;
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    let gd = grad.data_mut();
    let inv_n = 1.0 / n as f32;
    for (i, &y) in labels.iter().enumerate() {
        let p = probs.data()[i * c + y].max(1e-12);
        loss -= p.ln();
        gd[i * c + y] -= 1.0;
    }
    for g in gd.iter_mut() {
        *g *= inv_n;
    }
    Ok((loss * inv_n, grad))
}

/// Fraction of rows whose argmax equals the label.
///
/// # Errors
///
/// Returns an error if shapes disagree.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    if logits.rank() != 2 || logits.dims()[0] != labels.len() {
        return Err(TensorError::InvalidArgument {
            op: "accuracy",
            message: format!(
                "logits {} incompatible with {} labels",
                logits.shape(),
                labels.len()
            ),
        });
    }
    if labels.is_empty() {
        return Ok(0.0);
    }
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    let mut correct = 0usize;
    for (i, &y) in labels.iter().enumerate() {
        let row = &logits.data()[i * c..(i + 1) * c];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(j, _)| j)
            .unwrap_or(0);
        if pred == y {
            correct += 1;
        }
    }
    Ok(correct as f32 / n as f32)
}

/// Fraction of rows whose label appears among the `k` largest logits
/// (top-k accuracy; the usual CIFAR-100 companion metric to top-1).
///
/// # Errors
///
/// Returns an error if shapes disagree or `k == 0`.
pub fn top_k_accuracy(logits: &Tensor, labels: &[usize], k: usize) -> Result<f32> {
    if logits.rank() != 2 || logits.dims()[0] != labels.len() {
        return Err(TensorError::InvalidArgument {
            op: "top_k_accuracy",
            message: format!(
                "logits {} incompatible with {} labels",
                logits.shape(),
                labels.len()
            ),
        });
    }
    if k == 0 {
        return Err(TensorError::InvalidArgument {
            op: "top_k_accuracy",
            message: "k must be positive".to_string(),
        });
    }
    if labels.is_empty() {
        return Ok(0.0);
    }
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    let k = k.min(c);
    let mut hits = 0usize;
    for (i, &y) in labels.iter().enumerate() {
        let row = &logits.data()[i * c..(i + 1) * c];
        // The label is in the top k iff fewer than k entries beat it
        // (ties broken toward lower indices, matching argmax).
        let target = row[y];
        let better = row
            .iter()
            .enumerate()
            .filter(|&(j, &v)| v > target || (v == target && j < y))
            .count();
        if better < k {
            hits += 1;
        }
    }
    Ok(hits as f32 / n as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_vec([4], vec![-1.0, 0.0, 0.5, 2.0]).unwrap();
        assert_eq!(relu(&t).data(), &[0.0, 0.0, 0.5, 2.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let x = Tensor::from_vec([4], vec![-1.0, 0.0, 0.5, 2.0]).unwrap();
        let g = Tensor::ones([4]);
        let gx = relu_backward(&x, &g).unwrap();
        assert_eq!(gx.data(), &[0.0, 0.0, 1.0, 1.0]);
        assert!(relu_backward(&x, &Tensor::ones([3])).is_err());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let s = softmax(&t).unwrap();
        for i in 0..2 {
            let row_sum: f32 = s.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-6);
        }
        assert!(s.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec([1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = a.add_scalar(1000.0);
        let sa = softmax(&a).unwrap();
        let sb = softmax(&b).unwrap();
        assert!(sa.all_close(&sb, 1e-6));
        assert!(sb.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec([1, 3], vec![100.0, 0.0, 0.0]).unwrap();
        let (loss, _) = cross_entropy(&logits, &[0]).unwrap();
        assert!(loss < 1e-3);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Tensor::from_vec([2, 3], vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0]).unwrap();
        let labels = [2usize, 0];
        let (_, grad) = cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-2f32;
        for flat in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.data_mut()[flat] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[flat] -= eps;
            let fd = (cross_entropy(&lp, &labels).unwrap().0
                - cross_entropy(&lm, &labels).unwrap().0)
                / (2.0 * eps);
            assert!(
                (fd - grad.data()[flat]).abs() < 1e-3,
                "flat {flat}: fd={fd} analytic={}",
                grad.data()[flat]
            );
        }
    }

    #[test]
    fn cross_entropy_validates_labels() {
        let logits = Tensor::zeros([1, 3]);
        assert!(cross_entropy(&logits, &[3]).is_err());
        assert!(cross_entropy(&logits, &[0, 1]).is_err());
    }

    #[test]
    fn top_k_widens_with_k() {
        let logits =
            Tensor::from_vec([2, 4], vec![0.1, 0.9, 0.5, 0.2, 0.4, 0.3, 0.2, 0.1]).unwrap();
        let labels = [2usize, 1];
        assert_eq!(top_k_accuracy(&logits, &labels, 1).unwrap(), 0.0);
        assert_eq!(top_k_accuracy(&logits, &labels, 2).unwrap(), 1.0);
        // k beyond class count saturates at 1.0.
        assert_eq!(top_k_accuracy(&logits, &labels, 99).unwrap(), 1.0);
        // top-1 agrees with plain accuracy.
        assert_eq!(
            top_k_accuracy(&logits, &labels, 1).unwrap(),
            accuracy(&logits, &labels).unwrap()
        );
        assert!(top_k_accuracy(&logits, &labels, 0).is_err());
        assert!(top_k_accuracy(&logits, &[0], 1).is_err());
    }

    #[test]
    fn top_k_tie_breaking_matches_argmax() {
        // Two equal logits: the lower index wins the tie.
        let logits = Tensor::from_vec([1, 3], vec![0.5, 0.5, 0.1]).unwrap();
        assert_eq!(top_k_accuracy(&logits, &[0], 1).unwrap(), 1.0);
        assert_eq!(top_k_accuracy(&logits, &[1], 1).unwrap(), 0.0);
        assert_eq!(top_k_accuracy(&logits, &[1], 2).unwrap(), 1.0);
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Tensor::from_vec([3, 2], vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]).unwrap();
        let acc = accuracy(&logits, &[0, 1, 1]).unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&Tensor::zeros([0, 2]), &[]).unwrap(), 0.0);
    }
}
