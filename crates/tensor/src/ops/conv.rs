//! 2-D convolution via im2col, with full backward passes.
//!
//! Layout conventions (matching the rest of the workspace):
//! * activations: `[N, C, H, W]` (batch, channels, height, width)
//! * weights: `[O, I, KH, KW]` (out-channels, in-channels, kernel h/w)
//! * biases: `[O]`

use serde::{Deserialize, Serialize};

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

/// Stride and zero-padding configuration for a 2-D convolution.
///
/// # Examples
///
/// ```
/// use t2fsnn_tensor::ops::Conv2dSpec;
///
/// let spec = Conv2dSpec::new(1, 1); // "same" conv for a 3×3 kernel
/// assert_eq!(spec.output_dim(32, 3), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dSpec {
    /// Step between kernel applications, identical for both axes.
    pub stride: usize,
    /// Zero padding added on every border.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a spec from a stride and a symmetric padding.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn new(stride: usize, padding: usize) -> Self {
        assert!(stride > 0, "convolution stride must be positive");
        Conv2dSpec { stride, padding }
    }

    /// Output spatial size for an input of size `input` and kernel `kernel`.
    ///
    /// Returns zero when the kernel does not fit at all.
    pub fn output_dim(&self, input: usize, kernel: usize) -> usize {
        let padded = input + 2 * self.padding;
        if padded < kernel {
            0
        } else {
            (padded - kernel) / self.stride + 1
        }
    }
}

impl Default for Conv2dSpec {
    /// Stride 1, no padding.
    fn default() -> Self {
        Conv2dSpec::new(1, 0)
    }
}

/// Unfolds one `[C, H, W]` image into an im2col matrix
/// `[C·KH·KW, OH·OW]` where each column is a flattened receptive field.
pub fn im2col(image: &Tensor, kernel: (usize, usize), spec: Conv2dSpec) -> Result<Tensor> {
    if image.rank() != 3 {
        return Err(TensorError::InvalidArgument {
            op: "im2col",
            message: format!("expected [C, H, W], got {}", image.shape()),
        });
    }
    let (c, h, w) = (image.dims()[0], image.dims()[1], image.dims()[2]);
    let (kh, kw) = kernel;
    let oh = spec.output_dim(h, kh);
    let ow = spec.output_dim(w, kw);
    let mut out = Vec::new();
    im2col_into(image.data(), (c, h, w), kernel, spec, &mut out);
    Tensor::from_vec([c * kh * kw, oh * ow], out)
}

/// [`im2col`] on raw data into a reused buffer (resized, every entry
/// written — callers can recycle the allocation across images without
/// clearing it).
pub fn im2col_into(
    data: &[f32],
    chw: (usize, usize, usize),
    kernel: (usize, usize),
    spec: Conv2dSpec,
    out: &mut Vec<f32>,
) {
    let (c, h, w) = chw;
    let (kh, kw) = kernel;
    let oh = spec.output_dim(h, kh);
    let ow = spec.output_dim(w, kw);
    let rows = c * kh * kw;
    let cols = oh * ow;
    out.resize(rows * cols, 0.0);
    let pad = spec.padding as isize;
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let orow = &mut out[row * cols..(row + 1) * cols];
                for oi in 0..oh {
                    let ii = (oi * spec.stride) as isize + ki as isize - pad;
                    let oline = &mut orow[oi * ow..(oi + 1) * ow];
                    if ii < 0 || ii >= h as isize {
                        oline.fill(0.0);
                        continue;
                    }
                    let iline = &data[(ci * h + ii as usize) * w..(ci * h + ii as usize + 1) * w];
                    for (oj, slot) in oline.iter_mut().enumerate() {
                        let jj = (oj * spec.stride) as isize + kj as isize - pad;
                        *slot = if jj < 0 || jj >= w as isize {
                            0.0
                        } else {
                            iline[jj as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Folds an im2col matrix back into a `[C, H, W]` image, *summing*
/// contributions of overlapping receptive fields (the adjoint of [`im2col`],
/// as needed for input gradients).
pub fn col2im(
    cols_mat: &Tensor,
    channels: usize,
    image_hw: (usize, usize),
    kernel: (usize, usize),
    spec: Conv2dSpec,
) -> Result<Tensor> {
    let (h, w) = image_hw;
    let (kh, kw) = kernel;
    let oh = spec.output_dim(h, kh);
    let ow = spec.output_dim(w, kw);
    let rows = channels * kh * kw;
    if cols_mat.dims() != [rows, oh * ow] {
        return Err(TensorError::InvalidArgument {
            op: "col2im",
            message: format!("expected [{rows}, {}], got {}", oh * ow, cols_mat.shape()),
        });
    }
    let mut out = vec![0.0f32; channels * h * w];
    col2im_into(cols_mat.data(), channels, image_hw, kernel, spec, &mut out);
    Tensor::from_vec([channels, h, w], out)
}

/// [`col2im`] on raw data into a caller-provided `[C·H·W]` slice, which
/// is zeroed and then accumulated into — so the batch-parallel backward
/// pass can fold directly into each image's slot of the gradient tensor
/// without allocating.
pub fn col2im_into(
    data: &[f32],
    channels: usize,
    image_hw: (usize, usize),
    kernel: (usize, usize),
    spec: Conv2dSpec,
    out: &mut [f32],
) {
    let (h, w) = image_hw;
    let (kh, kw) = kernel;
    let oh = spec.output_dim(h, kh);
    let ow = spec.output_dim(w, kw);
    debug_assert_eq!(data.len(), channels * kh * kw * oh * ow);
    debug_assert_eq!(out.len(), channels * h * w);
    out.fill(0.0);
    let pad = spec.padding as isize;
    let colw = oh * ow;
    for ci in 0..channels {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                for oi in 0..oh {
                    let ii = (oi * spec.stride) as isize + ki as isize - pad;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    for oj in 0..ow {
                        let jj = (oj * spec.stride) as isize + kj as isize - pad;
                        if jj < 0 || jj >= w as isize {
                            continue;
                        }
                        let dst = (ci * h + ii as usize) * w + jj as usize;
                        out[dst] += data[row * colw + oi * ow + oj];
                    }
                }
            }
        }
    }
}

fn check_conv_args(input: &Tensor, weight: &Tensor, bias: &Tensor) -> Result<()> {
    if input.rank() != 4 {
        return Err(TensorError::InvalidArgument {
            op: "conv2d",
            message: format!("expected input [N, C, H, W], got {}", input.shape()),
        });
    }
    if weight.rank() != 4 {
        return Err(TensorError::InvalidArgument {
            op: "conv2d",
            message: format!("expected weight [O, I, KH, KW], got {}", weight.shape()),
        });
    }
    if input.dims()[1] != weight.dims()[1] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: input.shape().clone(),
            rhs: weight.shape().clone(),
        });
    }
    if bias.rank() != 1 || bias.dims()[0] != weight.dims()[0] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: weight.shape().clone(),
            rhs: bias.shape().clone(),
        });
    }
    Ok(())
}

/// 2-D convolution forward pass.
///
/// `input: [N, C, H, W]`, `weight: [O, C, KH, KW]`, `bias: [O]` →
/// `[N, O, OH, OW]`.
///
/// # Errors
///
/// Returns an error if any operand has the wrong rank or if channel counts
/// disagree.
///
/// # Examples
///
/// ```
/// use t2fsnn_tensor::{ops, Tensor};
///
/// # fn main() -> Result<(), t2fsnn_tensor::TensorError> {
/// let input = Tensor::ones([1, 1, 3, 3]);
/// let weight = Tensor::ones([1, 1, 3, 3]);
/// let bias = Tensor::zeros([1]);
/// let out = ops::conv2d(&input, &weight, &bias, ops::Conv2dSpec::new(1, 1))?;
/// assert_eq!(out.dims(), &[1, 1, 3, 3]);
/// assert_eq!(out.get(&[0, 0, 1, 1]), Some(9.0)); // full 3×3 overlap
/// # Ok(())
/// # }
/// ```
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: Conv2dSpec) -> Result<Tensor> {
    check_conv_args(input, weight, bias)?;
    let (n, _c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let (o, i, kh, kw) = (
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
    );
    let oh = spec.output_dim(h, kh);
    let ow = spec.output_dim(w, kw);
    let c = input.dims()[1];
    let ckk = i * kh * kw;
    let in_image = c * h * w;
    let item_len = o * oh * ow;
    let mut out = vec![0.0f32; n * item_len];
    if item_len > 0 {
        // Weight `[O, I, KH, KW]` is row-major, i.e. already the
        // `[O, I·KH·KW]` GEMM operand. Images are independent, so the
        // batch parallelizes with bit-identical results for any worker
        // count; the im2col buffer is thread-local and reused across
        // images and calls (every entry is rewritten, so no clearing).
        thread_local! {
            static COLS: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
        }
        let id = input.data();
        let wd = weight.data();
        crate::ThreadPool::global().scatter_items(&mut out, item_len, |img, slot| {
            COLS.with(|cols| {
                let cols = &mut *cols.borrow_mut();
                im2col_into(
                    &id[img * in_image..(img + 1) * in_image],
                    (c, h, w),
                    (kh, kw),
                    spec,
                    cols,
                );
                super::matmul::gemm_accumulate(slot, wd, o, ckk, cols, oh * ow);
            });
            for (oc, plane) in slot.chunks_exact_mut(oh * ow).enumerate() {
                let b = bias.data()[oc];
                for v in plane.iter_mut() {
                    *v += b;
                }
            }
        });
    }
    Tensor::from_vec([n, o, oh, ow], out)
}

/// Gradients of [`conv2d`] with respect to input, weight and bias.
///
/// Returns `(grad_input, grad_weight, grad_bias)` given the forward `input`,
/// `weight` and upstream gradient `grad_out: [N, O, OH, OW]`.
///
/// All three per-image GEMMs (`dW += gout·colsᵀ`, `dX = col2im(Wᵀ·gout)`)
/// run on the register-blocked matmul cores with im2col/col2im buffers
/// reused across the batch. Images are distributed over the scoped
/// [`crate::ThreadPool`]; the input gradient is written into disjoint
/// per-image slices and the parameter gradients are merged **image by
/// image in batch order**, so the result is bit-identical to a
/// sequential run for every worker count.
///
/// # Errors
///
/// Returns an error if shapes are inconsistent with the forward pass.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: Conv2dSpec,
) -> Result<(Tensor, Tensor, Tensor)> {
    conv2d_backward_on(input, weight, grad_out, spec, crate::ThreadPool::global())
}

/// [`conv2d_backward`] with an explicit thread pool (the result is
/// bit-identical for every worker count — the test suite asserts it).
///
/// # Errors
///
/// Returns an error if shapes are inconsistent with the forward pass.
pub fn conv2d_backward_on(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: Conv2dSpec,
    pool: &crate::ThreadPool,
) -> Result<(Tensor, Tensor, Tensor)> {
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let (o, i, kh, kw) = (
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
    );
    let oh = spec.output_dim(h, kh);
    let ow = spec.output_dim(w, kw);
    if grad_out.dims() != [n, o, oh, ow] {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_backward",
            message: format!(
                "expected grad_out [{n}, {o}, {oh}, {ow}], got {}",
                grad_out.shape()
            ),
        });
    }
    let ckk = i * kh * kw;
    let in_image = c * h * w;
    let out_image = o * oh * ow;
    let id = input.data();
    let wd = weight.data(); // `[O, I, KH, KW]` row-major == `[O, I·KH·KW]`
    let god = grad_out.data();

    /// One image's parameter gradients, returned from its worker.
    struct ImageGrads {
        gw: Vec<f32>,
        gb: Vec<f32>,
    }
    /// One contiguous batch chunk's outputs.
    struct ChunkGrads {
        grad_input: Vec<f32>,
        per_image: Vec<ImageGrads>,
    }

    let chunks = pool.run_chunks(n, |range| {
        let mut grad_input = vec![0.0f32; range.len() * in_image];
        let mut per_image = Vec::with_capacity(range.len());
        // im2col / Wᵀ·gout buffers are reused across the chunk's images.
        let mut cols = Vec::new();
        let mut gcols = vec![0.0f32; ckk * oh * ow];
        for (slot, img) in range.enumerate() {
            let image = &id[img * in_image..(img + 1) * in_image];
            let gout = &god[img * out_image..(img + 1) * out_image];
            im2col_into(image, (c, h, w), (kh, kw), spec, &mut cols);
            // dW_img = gout · colsᵀ  ([O, OH·OW] × [OH·OW, C·KH·KW])
            let mut gw = vec![0.0f32; o * ckk];
            super::matmul::a_bt_into(&mut gw, gout, o, oh * ow, &cols, ckk);
            // db_img = Σ gout per output channel.
            let mut gb = vec![0.0f32; o];
            for (oc, acc) in gb.iter_mut().enumerate() {
                *acc = gout[oc * oh * ow..(oc + 1) * oh * ow].iter().sum::<f32>();
            }
            // dX_img = col2im(Wᵀ · gout), folded straight into the
            // image's slice of the gradient tensor.
            super::matmul::at_b_into(&mut gcols, wd, o, ckk, gout, oh * ow);
            col2im_into(
                &gcols,
                c,
                (h, w),
                (kh, kw),
                spec,
                &mut grad_input[slot * in_image..(slot + 1) * in_image],
            );
            per_image.push(ImageGrads { gw, gb });
        }
        ChunkGrads {
            grad_input,
            per_image,
        }
    });

    // Chunks are contiguous in batch order: concatenating their input
    // gradients and folding their per-image parameter gradients in order
    // reproduces the sequential accumulation exactly.
    let mut grad_input = Vec::with_capacity(n * in_image);
    let mut grad_weight = vec![0.0f32; o * ckk];
    let mut grad_bias = vec![0.0f32; o];
    for chunk in chunks {
        grad_input.extend_from_slice(&chunk.grad_input);
        for img in chunk.per_image {
            for (acc, v) in grad_weight.iter_mut().zip(&img.gw) {
                *acc += v;
            }
            for (acc, v) in grad_bias.iter_mut().zip(&img.gb) {
                *acc += v;
            }
        }
    }
    grad_input.resize(n * in_image, 0.0); // n == 0: keep the empty shape
    Ok((
        Tensor::from_vec([n, c, h, w], grad_input)?,
        Tensor::from_vec([o, i, kh, kw], grad_weight)?,
        Tensor::from_vec([o], grad_bias)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct (quadruple-loop) convolution used as an oracle.
    fn conv2d_naive(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: Conv2dSpec) -> Tensor {
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let (o, _i, kh, kw) = (
            weight.dims()[0],
            weight.dims()[1],
            weight.dims()[2],
            weight.dims()[3],
        );
        let oh = spec.output_dim(h, kh);
        let ow = spec.output_dim(w, kw);
        Tensor::from_fn([n, o, oh, ow], |idx| {
            let (ni, oc, oi, oj) = (idx[0], idx[1], idx[2], idx[3]);
            let mut acc = bias.data()[oc];
            for ci in 0..c {
                for ki in 0..kh {
                    for kj in 0..kw {
                        let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                        let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                        if ii < 0 || jj < 0 || ii >= h as isize || jj >= w as isize {
                            continue;
                        }
                        acc += input[&[ni, ci, ii as usize, jj as usize][..]]
                            * weight[&[oc, ci, ki, kj][..]];
                    }
                }
            }
            acc
        })
    }

    fn arange(shape: impl Into<crate::shape::Shape>) -> Tensor {
        let shape = shape.into();
        let n = shape.numel();
        // Small magnitudes and a sign flip keep accumulated f32 error well
        // below the comparison tolerance while still exercising negatives.
        Tensor::from_vec(
            shape,
            (0..n).map(|i| ((i % 13) as f32) * 0.05 - 0.3).collect(),
        )
        .unwrap()
    }

    #[test]
    fn output_dim_formula() {
        let spec = Conv2dSpec::new(1, 1);
        assert_eq!(spec.output_dim(32, 3), 32);
        let spec = Conv2dSpec::new(2, 0);
        assert_eq!(spec.output_dim(8, 2), 4);
        let spec = Conv2dSpec::new(1, 0);
        assert_eq!(spec.output_dim(2, 5), 0);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_panics() {
        let _ = Conv2dSpec::new(0, 0);
    }

    #[test]
    fn conv_matches_naive_oracle() {
        for &(stride, padding) in &[(1usize, 0usize), (1, 1), (2, 0), (2, 1)] {
            let spec = Conv2dSpec::new(stride, padding);
            let input = arange([2, 3, 6, 6]);
            let weight = arange([4, 3, 3, 3]);
            let bias = Tensor::from_vec([4], vec![0.1, -0.2, 0.3, 0.0]).unwrap();
            let fast = conv2d(&input, &weight, &bias, spec).unwrap();
            let slow = conv2d_naive(&input, &weight, &bias, spec);
            assert!(
                fast.all_close(&slow, 1e-4),
                "mismatch at stride={stride} padding={padding}"
            );
        }
    }

    #[test]
    fn conv_validates_shapes() {
        let spec = Conv2dSpec::default();
        let input = Tensor::zeros([1, 3, 4, 4]);
        let weight = Tensor::zeros([2, 4, 3, 3]); // wrong in-channels
        let bias = Tensor::zeros([2]);
        assert!(conv2d(&input, &weight, &bias, spec).is_err());
        let weight = Tensor::zeros([2, 3, 3, 3]);
        let bias = Tensor::zeros([3]); // wrong bias length
        assert!(conv2d(&input, &weight, &bias, spec).is_err());
        assert!(conv2d(
            &Tensor::zeros([3, 4, 4]),
            &weight,
            &Tensor::zeros([2]),
            spec
        )
        .is_err());
    }

    #[test]
    fn im2col_col2im_adjoint_property() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint identity.
        let spec = Conv2dSpec::new(1, 1);
        let x = arange([2, 4, 4]);
        let cols_x = im2col(&x, (3, 3), spec).unwrap();
        let y = arange(cols_x.shape().clone());
        let folded = col2im(&y, 2, (4, 4), (3, 3), spec).unwrap();
        let lhs: f32 = cols_x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.iter().zip(folded.iter()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn backward_gradients_match_finite_differences() {
        let spec = Conv2dSpec::new(1, 1);
        let input = arange([1, 2, 4, 4]);
        let weight = arange([2, 2, 3, 3]).scale(0.3);
        let bias = Tensor::from_vec([2], vec![0.05, -0.05]).unwrap();
        // Loss = sum(conv output); upstream gradient of ones.
        let out = conv2d(&input, &weight, &bias, spec).unwrap();
        let gout = Tensor::ones(out.shape().clone());
        let (gi, gw, gb) = conv2d_backward(&input, &weight, &gout, spec).unwrap();

        let eps = 1e-2f32;
        let loss =
            |inp: &Tensor, wgt: &Tensor, b: &Tensor| conv2d(inp, wgt, b, spec).unwrap().sum();
        // Check a scattering of coordinates for each gradient.
        for &flat in &[0usize, 5, 17, 31] {
            let mut ip = input.clone();
            ip.data_mut()[flat] += eps;
            let mut im = input.clone();
            im.data_mut()[flat] -= eps;
            let fd = (loss(&ip, &weight, &bias) - loss(&im, &weight, &bias)) / (2.0 * eps);
            assert!(
                (fd - gi.data()[flat]).abs() < 2e-2,
                "input grad {flat}: fd={fd} analytic={}",
                gi.data()[flat]
            );
        }
        for &flat in &[0usize, 7, 20, 35] {
            let mut wp = weight.clone();
            wp.data_mut()[flat] += eps;
            let mut wm = weight.clone();
            wm.data_mut()[flat] -= eps;
            let fd = (loss(&input, &wp, &bias) - loss(&input, &wm, &bias)) / (2.0 * eps);
            assert!(
                (fd - gw.data()[flat]).abs() < 2e-2,
                "weight grad {flat}: fd={fd} analytic={}",
                gw.data()[flat]
            );
        }
        for flat in 0..2 {
            let mut bp = bias.clone();
            bp.data_mut()[flat] += eps;
            let mut bm = bias.clone();
            bm.data_mut()[flat] -= eps;
            let fd = (loss(&input, &weight, &bp) - loss(&input, &weight, &bm)) / (2.0 * eps);
            assert!((fd - gb.data()[flat]).abs() < 2e-2);
        }
    }

    #[test]
    fn backward_rejects_wrong_grad_shape() {
        let spec = Conv2dSpec::default();
        let input = Tensor::zeros([1, 1, 4, 4]);
        let weight = Tensor::zeros([1, 1, 3, 3]);
        let bad = Tensor::zeros([1, 1, 9, 9]);
        assert!(conv2d_backward(&input, &weight, &bad, spec).is_err());
    }
}
