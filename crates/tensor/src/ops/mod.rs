//! Numeric kernels on [`Tensor`](crate::Tensor): matrix multiplication,
//! 2-D convolution, pooling, activations, and event-driven sparse
//! propagation.
//!
//! The dense matmul family is register-blocked and cache-tiled for a
//! single core, with inner loops running on the runtime-dispatched
//! [`crate::simd`] primitives (explicit AVX2 when available, scalar
//! twins otherwise — bit-identical either way); `conv2d` parallelizes
//! across the batch via the crate's scoped
//! [`ThreadPool`](crate::ThreadPool); the [`sparse`] module provides
//! event-list kernels that are bit-identical to their dense twins.

mod activation;
mod conv;
mod matmul;
mod pool;
pub mod sparse;

pub use activation::{accuracy, cross_entropy, relu, relu_backward, softmax, top_k_accuracy};
pub use conv::{
    col2im, col2im_into, conv2d, conv2d_backward, conv2d_backward_on, im2col, im2col_into,
    Conv2dSpec,
};
pub use matmul::{matmul, matmul_a_bt, matmul_at_b, matvec};
pub use pool::{
    avg_pool2d, avg_pool2d_backward, avg_pool2d_pm, max_pool2d, max_pool2d_backward, max_pool2d_pm,
    max_pool2d_pm_gated,
};
