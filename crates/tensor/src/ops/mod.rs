//! Numeric kernels on [`Tensor`](crate::Tensor): matrix multiplication,
//! 2-D convolution, pooling, and activations.
//!
//! All kernels are plain safe Rust tuned for a single CPU core; the
//! convolution path uses im2col + matmul with a zero-skipping inner loop
//! that doubles as a sparse path for spike tensors.

mod activation;
mod conv;
mod matmul;
mod pool;

pub use activation::{accuracy, cross_entropy, relu, relu_backward, softmax, top_k_accuracy};
pub use conv::{col2im, conv2d, conv2d_backward, im2col, Conv2dSpec};
pub use matmul::{matmul, matmul_a_bt, matmul_at_b, matvec};
pub use pool::{avg_pool2d, avg_pool2d_backward, max_pool2d, max_pool2d_backward};
