//! Sparse (event-driven) propagation kernels, with dense zero-skipping
//! twins.
//!
//! Both kernels of each pair perform **exactly the same floating-point
//! operations in the same order**: the dense variant scans the input
//! row-major and skips zeros, the event variant iterates a
//! [`SpikeBatch`] whose events are stored in row-major order. Every
//! output element therefore accumulates its contributions in an
//! identical sequence, making the two paths bit-identical — the property
//! the spiking simulator's engine dispatch relies on.
//!
//! The convolution kernels accumulate **position-major**: each valid
//! kernel tap of an event performs one contiguous `value × weight-row`
//! axpy over all `O` output channels into a `[OH·OW, O]` accumulator
//! (vectorizable, cache-resident), and the accumulator is transposed
//! into the `[O, OH, OW]` output once per image. Work is proportional to
//! `events × taps × O` with the multiply-add SIMD-friendly — the
//! combination that beats both the scalar scatter (strided plane writes)
//! and dense im2col GEMM (pays for zeros) on spiking workloads.

use crate::error::{Result, TensorError};
use crate::events::SpikeBatch;
use crate::ops::conv::Conv2dSpec;
use crate::tensor::Tensor;

/// Convolution geometry shared by the kernels.
struct ConvGeom {
    c: usize,
    o: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    oh: usize,
    ow: usize,
    stride: isize,
    pad: isize,
}

impl ConvGeom {
    fn new(
        input_chw: &[usize],
        o: usize,
        ckk: usize,
        kernel: (usize, usize),
        spec: Conv2dSpec,
        op: &'static str,
    ) -> Result<Self> {
        let (kh, kw) = kernel;
        if input_chw.len() != 3 || input_chw[0] * kh * kw != ckk {
            return Err(TensorError::InvalidArgument {
                op,
                message: format!(
                    "input features {input_chw:?} do not match a [{ckk}, {o}] filter with \
                     kernel {kh}x{kw}"
                ),
            });
        }
        let (h, w) = (input_chw[1], input_chw[2]);
        Ok(ConvGeom {
            c: input_chw[0],
            o,
            h,
            w,
            kh,
            kw,
            oh: spec.output_dim(h, kh),
            ow: spec.output_dim(w, kw),
            stride: spec.stride as isize,
            pad: spec.padding as isize,
        })
    }
}

/// Transposes a `[O, C, KH, KW]` filter bank into the scatter kernels'
/// `[C, KH, KW, O]` tap-major layout **with the KW axis reversed**
/// (`out[((ci·KH + ki)·KW + (KW−1−kj))·O + oc] = w[oc, ci, ki, kj]`).
/// Reversing KW makes the taps a stride-1 event touches along one kernel
/// row *contiguous in the same order as the output positions they feed*,
/// so the whole row collapses into a single long axpy. Done once per run
/// by the engine; spiking weights never change between steps.
///
/// # Errors
///
/// Returns an error if `weight` is not rank 4.
pub fn transpose_filter(weight: &Tensor) -> Result<Tensor> {
    if weight.rank() != 4 {
        return Err(TensorError::InvalidArgument {
            op: "transpose_filter",
            message: format!("expected weight [O, I, KH, KW], got {}", weight.shape()),
        });
    }
    let (o, c, kh, kw) = (
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
    );
    let ckk = c * kh * kw;
    let wd = weight.data();
    let mut out = vec![0.0f32; ckk * o];
    for oc in 0..o {
        for ci in 0..c {
            for ki in 0..kh {
                for kj in 0..kw {
                    let tap = (ci * kh + ki) * kw + (kw - 1 - kj);
                    out[tap * o + oc] = wd[((oc * c + ci) * kh + ki) * kw + kj];
                }
            }
        }
    }
    Tensor::from_vec([ckk, o], out)
}

/// Fills `taps` with the `(kernel offset, output coordinate)` pairs a
/// source coordinate `src` reaches: all `k` with
/// `out·stride + k − pad = src`, `out < out_limit`.
#[inline]
fn valid_taps(
    taps: &mut Vec<(usize, usize)>,
    src: usize,
    kernel: usize,
    out_limit: usize,
    stride: isize,
    pad: isize,
) {
    taps.clear();
    for k in 0..kernel {
        let num = src as isize + pad - k as isize;
        if num < 0 {
            break; // `num` only decreases with k
        }
        if num % stride == 0 {
            let out = (num / stride) as usize;
            if out < out_limit {
                taps.push((k, out));
            }
        }
    }
}

/// Decodes flat `[C, H, W]` event indices into coordinates, using
/// shift/mask arithmetic when the spatial dims are powers of two (every
/// bundled architecture) — a hardware division per event is one of the
/// larger per-event costs otherwise.
#[derive(Clone, Copy)]
struct CoordDecoder {
    plane: usize,
    w: usize,
    shifts: Option<(u32, u32)>,
}

impl CoordDecoder {
    fn new(h: usize, w: usize) -> Self {
        let plane = h * w;
        let shifts = (plane.is_power_of_two() && w.is_power_of_two() && plane > 0)
            .then(|| (plane.trailing_zeros(), w.trailing_zeros()));
        CoordDecoder { plane, w, shifts }
    }

    #[inline]
    fn decode(&self, flat: usize) -> (usize, usize, usize) {
        match self.shifts {
            Some((ps, ws)) => {
                let ci = flat >> ps;
                let rem = flat & (self.plane - 1);
                (ci, rem >> ws, rem & (self.w - 1))
            }
            None => {
                let ci = flat / self.plane;
                let rem = flat % self.plane;
                (ci, rem / self.w, rem % self.w)
            }
        }
    }
}

/// Reused buffers of the position-major scatter: the `[OH·OW, O]`
/// accumulator and the per-event valid-tap lists.
struct PmScratch {
    acc: Vec<f32>,
    ky: Vec<(usize, usize)>,
    kx: Vec<(usize, usize)>,
}

impl PmScratch {
    fn new(g: &ConvGeom) -> Self {
        PmScratch {
            acc: vec![0.0f32; g.oh * g.ow * g.o],
            ky: Vec::with_capacity(g.kh),
            kx: Vec::with_capacity(g.kw),
        }
    }
}

/// Scatters one input event into the position-major accumulator.
/// Returns the synaptic accumulate count charged (`taps × O`).
///
/// With stride 1 (every conv in the paper's architectures) the valid
/// taps of one kernel row are contiguous in the reversed-KW filter
/// layout *and* feed contiguous output positions, so each kernel row is
/// one long `value × weight-span` axpy — typically `taps·O` = 24–96
/// contiguous floats, which vectorizes cleanly.
#[inline]
fn scatter_event_pm(
    s: &mut PmScratch,
    wt: &[f32],
    v: f32,
    ci: usize,
    yi: usize,
    xi: usize,
    g: &ConvGeom,
) -> u64 {
    let o = g.o;
    if g.stride == 1 {
        // `oy = yi + pad − ki` must land in `0..oh` (same for x).
        let klo =
            |src: usize, limit: usize| (src as isize + g.pad + 1 - limit as isize).max(0) as usize;
        let khi = |src: usize, kernel: usize| (src as isize + g.pad).min(kernel as isize - 1);
        let (ky_lo, ky_hi) = (klo(yi, g.oh), khi(yi, g.kh));
        let (kx_lo, kx_hi) = (klo(xi, g.ow), khi(xi, g.kw));
        if ky_hi < ky_lo as isize || kx_hi < kx_lo as isize {
            return 0;
        }
        let (ky_hi, kx_hi) = (ky_hi as usize, kx_hi as usize);
        let ox_lo = (xi as isize + g.pad) as usize - kx_hi;
        let row_len = (kx_hi - kx_lo + 1) * o;
        for ki in ky_lo..=ky_hi {
            let oy = (yi as isize + g.pad) as usize - ki;
            // kj descending kx_hi..=kx_lo ⇔ reversed-KW index ascending —
            // aligned with output positions ox ascending from ox_lo.
            let wstart = ((ci * g.kh + ki) * g.kw + (g.kw - 1 - kx_hi)) * o;
            let astart = (oy * g.ow + ox_lo) * o;
            let wspan = &wt[wstart..wstart + row_len];
            let aspan = &mut s.acc[astart..astart + row_len];
            for (a, &wv) in aspan.iter_mut().zip(wspan) {
                *a += v * wv;
            }
        }
        return ((ky_hi - ky_lo + 1) * (kx_hi - kx_lo + 1) * o) as u64;
    }
    valid_taps(&mut s.ky, yi, g.kh, g.oh, g.stride, g.pad);
    valid_taps(&mut s.kx, xi, g.kw, g.ow, g.stride, g.pad);
    if s.ky.is_empty() || s.kx.is_empty() {
        return 0;
    }
    for &(ki, oy) in &s.ky {
        let wrow_base = (ci * g.kh + ki) * g.kw;
        let arow_base = oy * g.ow * o;
        for &(kj, ox) in &s.kx {
            let wstart = (wrow_base + (g.kw - 1 - kj)) * o;
            let wrow = &wt[wstart..wstart + o];
            let arow = &mut s.acc[arow_base + ox * o..arow_base + (ox + 1) * o];
            for (a, &wv) in arow.iter_mut().zip(wrow) {
                *a += v * wv;
            }
        }
    }
    (s.ky.len() * s.kx.len() * g.o) as u64
}

/// Transposes the `[OH·OW, O]` accumulator into one image's `[O, OH·OW]`
/// output block — overwriting (`add == false`) or accumulating into a
/// membrane-potential block (`add == true`). A `(bias, scale)` constant
/// current is folded in during the same pass: each element receives
/// `acc + bias·scale` as one value, exactly what the unfused
/// `inject_bias` + `integrate` sequence adds.
#[inline]
fn flush_acc(
    os: &mut [f32],
    acc: &[f32],
    o: usize,
    plane: usize,
    add: bool,
    bias: Option<(&[f32], f32)>,
) {
    if plane == 0 {
        return; // zero-sized output (kernel larger than input)
    }
    for (oc, out_plane) in os.chunks_exact_mut(plane).enumerate() {
        let b = bias.map_or(0.0, |(bias, scale)| bias[oc] * scale);
        if add {
            for (p, slot) in out_plane.iter_mut().enumerate() {
                *slot += acc[p * o + oc] + b;
            }
        } else {
            for (p, slot) in out_plane.iter_mut().enumerate() {
                *slot = acc[p * o + oc] + b;
            }
        }
    }
}

/// [`flush_acc`] for an image with no events: the drive is exactly the
/// bias current (`0 + bias·scale` element-wise), so the accumulator is
/// neither cleared nor read — a contiguous per-channel add instead of
/// three passes.
#[inline]
fn flush_empty(os: &mut [f32], o: usize, plane: usize, add: bool, bias: Option<(&[f32], f32)>) {
    if plane == 0 {
        return; // zero-sized output (kernel larger than input)
    }
    match bias {
        None if add => {}
        None => os.fill(0.0),
        Some((bias, scale)) => {
            for (oc, out_plane) in os.chunks_exact_mut(plane).enumerate().take(o) {
                let b = bias[oc] * scale;
                if add {
                    for slot in out_plane.iter_mut() {
                        *slot += b;
                    }
                } else {
                    out_plane.fill(b);
                }
            }
        }
    }
}

/// Options for the scatter drivers' output stage.
struct FlushMode<'a> {
    /// `(bias, scale)` folded into the accumulator before flushing.
    bias: Option<(&'a [f32], f32)>,
    /// Accumulate into the target instead of overwriting it.
    add: bool,
}

/// Sparse scatter convolution over a **dense** input with a cached
/// `[C·KH·KW, O]` filter from [`transpose_filter`]: only non-zero
/// entries do work. Returns `(output, synop count)` where the synop
/// count charges `O` accumulates per valid kernel tap per non-zero
/// input, matching the paper's Table III accounting.
///
/// # Errors
///
/// Returns an error on rank or dimension mismatches.
pub fn conv2d_scatter_t(
    input: &Tensor,
    filter_t: &Tensor,
    kernel: (usize, usize),
    spec: Conv2dSpec,
) -> Result<(Tensor, u64)> {
    if input.rank() != 4 {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_scatter_t",
            message: format!("expected [N, C, H, W] input, got {}", input.shape()),
        });
    }
    if filter_t.rank() != 2 {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_scatter_t",
            message: format!("expected filter [C·KH·KW, O], got {}", filter_t.shape()),
        });
    }
    let n = input.dims()[0];
    let (ckk, o) = (filter_t.dims()[0], filter_t.dims()[1]);
    let g = ConvGeom::new(&input.dims()[1..], o, ckk, kernel, spec, "conv2d_scatter_t")?;
    let mut out = Tensor::zeros([n, g.o, g.oh, g.ow]);
    let mode = FlushMode {
        bias: None,
        add: false,
    };
    let synops = scatter_dense_loop(out.data_mut(), input.data(), filter_t.data(), &g, n, &mode);
    Ok((out, synops))
}

/// [`conv2d_scatter_t`] fused with bias injection and membrane
/// integration: accumulates `conv(input) + bias·bias_scale` straight
/// into `target` (shape `[N, O, OH, OW]`). The per-element value added
/// to the membrane is identical — the position-major accumulator already
/// holds the complete drive, so the unfused path's intermediate drive
/// tensor was a pure copy.
///
/// # Errors
///
/// Returns an error on rank or dimension mismatches.
pub fn conv2d_scatter_t_acc(
    input: &Tensor,
    filter_t: &Tensor,
    kernel: (usize, usize),
    spec: Conv2dSpec,
    bias: &Tensor,
    bias_scale: f32,
    target: &mut Tensor,
) -> Result<u64> {
    if input.rank() != 4 || filter_t.rank() != 2 {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_scatter_t_acc",
            message: format!(
                "expected [N, C, H, W] input and [C·KH·KW, O] filter, got {} and {}",
                input.shape(),
                filter_t.shape()
            ),
        });
    }
    let n = input.dims()[0];
    let (ckk, o) = (filter_t.dims()[0], filter_t.dims()[1]);
    let g = ConvGeom::new(
        &input.dims()[1..],
        o,
        ckk,
        kernel,
        spec,
        "conv2d_scatter_t_acc",
    )?;
    check_acc_target(&g, n, bias, target, "conv2d_scatter_t_acc")?;
    let mode = FlushMode {
        bias: (bias_scale != 0.0).then_some((bias.data(), bias_scale)),
        add: true,
    };
    Ok(scatter_dense_loop(
        target.data_mut(),
        input.data(),
        filter_t.data(),
        &g,
        n,
        &mode,
    ))
}

/// Per-batch driver of the dense-walk scatter.
fn scatter_dense_loop(
    od: &mut [f32],
    id: &[f32],
    wt: &[f32],
    g: &ConvGeom,
    n: usize,
    mode: &FlushMode<'_>,
) -> u64 {
    let mut s = PmScratch::new(g);
    let in_image = g.c * g.h * g.w;
    let out_image = g.o * g.oh * g.ow;
    let mut synops = 0u64;
    for ni in 0..n {
        let is = &id[ni * in_image..(ni + 1) * in_image];
        // Clear the accumulator lazily: an image with no events takes
        // the cheap bias-only flush.
        let mut dirty = false;
        let mut idx = 0usize;
        for ci in 0..g.c {
            for yi in 0..g.h {
                for xi in 0..g.w {
                    let v = is[idx];
                    idx += 1;
                    if v == 0.0 {
                        continue;
                    }
                    if !dirty {
                        s.acc.fill(0.0);
                        dirty = true;
                    }
                    synops += scatter_event_pm(&mut s, wt, v, ci, yi, xi, g);
                }
            }
        }
        let os = &mut od[ni * out_image..(ni + 1) * out_image];
        if dirty {
            flush_acc(os, &s.acc, g.o, g.oh * g.ow, mode.add, mode.bias);
        } else {
            flush_empty(os, g.o, g.oh * g.ow, mode.add, mode.bias);
        }
    }
    synops
}

/// [`conv2d_scatter_t`] for callers holding only the original
/// `[O, C, KH, KW]` weight: transposes it on the fly. This is the
/// reference path behind `SnnOp::propagate`; hot loops cache the
/// transposed filter and call [`conv2d_scatter_t`] directly.
///
/// # Errors
///
/// Returns an error on rank or channel mismatches.
pub fn conv2d_scatter(input: &Tensor, weight: &Tensor, spec: Conv2dSpec) -> Result<(Tensor, u64)> {
    if weight.rank() != 4 {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_scatter",
            message: format!("expected weight [O, I, KH, KW], got {}", weight.shape()),
        });
    }
    if input.rank() == 4 && input.dims()[1] != weight.dims()[1] {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_scatter",
            message: format!(
                "expected [N, {}, H, W] input, got {}",
                weight.dims()[1],
                input.shape()
            ),
        });
    }
    let filter_t = transpose_filter(weight)?;
    conv2d_scatter_t(input, &filter_t, (weight.dims()[2], weight.dims()[3]), spec)
}

/// Event-list twin of [`conv2d_scatter_t`]: identical results (bit for
/// bit) without scanning zeros.
///
/// # Errors
///
/// Returns an error if the event feature shape does not match the
/// filter.
pub fn conv2d_scatter_events(
    events: &SpikeBatch,
    filter_t: &Tensor,
    kernel: (usize, usize),
    spec: Conv2dSpec,
) -> Result<(Tensor, u64)> {
    if filter_t.rank() != 2 {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_scatter_events",
            message: format!("expected filter [C·KH·KW, O], got {}", filter_t.shape()),
        });
    }
    let n = events.batch();
    let (ckk, o) = (filter_t.dims()[0], filter_t.dims()[1]);
    let g = ConvGeom::new(
        events.feature_dims(),
        o,
        ckk,
        kernel,
        spec,
        "conv2d_scatter_events",
    )?;
    let mut out = Tensor::zeros([n, g.o, g.oh, g.ow]);
    let mode = FlushMode {
        bias: None,
        add: false,
    };
    let synops = scatter_events_loop(out.data_mut(), events, filter_t.data(), &g, &mode);
    Ok((out, synops))
}

/// Event-list twin of [`conv2d_scatter_t_acc`].
///
/// # Errors
///
/// Returns an error on rank or dimension mismatches.
pub fn conv2d_scatter_events_acc(
    events: &SpikeBatch,
    filter_t: &Tensor,
    kernel: (usize, usize),
    spec: Conv2dSpec,
    bias: &Tensor,
    bias_scale: f32,
    target: &mut Tensor,
) -> Result<u64> {
    if filter_t.rank() != 2 {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_scatter_events_acc",
            message: format!("expected filter [C·KH·KW, O], got {}", filter_t.shape()),
        });
    }
    let n = events.batch();
    let (ckk, o) = (filter_t.dims()[0], filter_t.dims()[1]);
    let g = ConvGeom::new(
        events.feature_dims(),
        o,
        ckk,
        kernel,
        spec,
        "conv2d_scatter_events_acc",
    )?;
    check_acc_target(&g, n, bias, target, "conv2d_scatter_events_acc")?;
    let mode = FlushMode {
        bias: (bias_scale != 0.0).then_some((bias.data(), bias_scale)),
        add: true,
    };
    Ok(scatter_events_loop(
        target.data_mut(),
        events,
        filter_t.data(),
        &g,
        &mode,
    ))
}

fn check_acc_target(
    g: &ConvGeom,
    n: usize,
    bias: &Tensor,
    target: &Tensor,
    op: &'static str,
) -> Result<()> {
    if bias.rank() != 1 || bias.dims()[0] != g.o {
        return Err(TensorError::InvalidArgument {
            op,
            message: format!("expected bias [{}], got {}", g.o, bias.shape()),
        });
    }
    if target.dims() != [n, g.o, g.oh, g.ow] {
        return Err(TensorError::InvalidArgument {
            op,
            message: format!(
                "expected target [{n}, {}, {}, {}], got {}",
                g.o,
                g.oh,
                g.ow,
                target.shape()
            ),
        });
    }
    Ok(())
}

/// Per-batch driver of the event-list scatter.
fn scatter_events_loop(
    od: &mut [f32],
    events: &SpikeBatch,
    wt: &[f32],
    g: &ConvGeom,
    mode: &FlushMode<'_>,
) -> u64 {
    let mut s = PmScratch::new(g);
    let decoder = CoordDecoder::new(g.h, g.w);
    let out_image = g.o * g.oh * g.ow;
    let mut synops = 0u64;
    for ni in 0..events.batch() {
        let os = &mut od[ni * out_image..(ni + 1) * out_image];
        let (idx, val) = events.image_events(ni);
        if idx.is_empty() {
            flush_empty(os, g.o, g.oh * g.ow, mode.add, mode.bias);
            continue;
        }
        s.acc.fill(0.0);
        for (&flat, &v) in idx.iter().zip(val) {
            let (ci, yi, xi) = decoder.decode(flat as usize);
            synops += scatter_event_pm(&mut s, wt, v, ci, yi, xi, g);
        }
        flush_acc(os, &s.acc, g.o, g.oh * g.ow, mode.add, mode.bias);
    }
    synops
}

/// Dense convolution via im2col + blocked GEMM, without bias. One im2col
/// buffer is reused across the batch (every entry is rewritten per
/// image, so no clearing is needed) and the GEMM accumulates straight
/// into the output tensor.
///
/// Per output element the accumulation order is ascending
/// `(channel, tap)` — the same order as the scatter kernels; the only
/// difference is that the GEMM also adds the zero entries those kernels
/// skip, which can never change an IEEE sum (beyond the sign of an
/// all-zero result). Useful as a near-fully-dense alternative and as an
/// independent oracle; pair with [`conv2d_synops`] for event-driven
/// operation counts.
///
/// # Errors
///
/// Returns an error on rank or channel mismatches.
pub fn conv2d_gemm(input: &Tensor, weight: &Tensor, spec: Conv2dSpec) -> Result<Tensor> {
    if input.rank() != 4 {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_gemm",
            message: format!("expected [N, C, H, W] input, got {}", input.shape()),
        });
    }
    if weight.rank() != 4 || input.dims()[1] != weight.dims()[1] {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_gemm",
            message: format!(
                "expected weight [O, {}, KH, KW], got {}",
                input.dims()[1],
                weight.shape()
            ),
        });
    }
    let (o, kh, kw) = (weight.dims()[0], weight.dims()[2], weight.dims()[3]);
    let n = input.dims()[0];
    let g = ConvGeom::new(
        &input.dims()[1..],
        o,
        weight.dims()[1] * kh * kw,
        (kh, kw),
        spec,
        "conv2d_gemm",
    )?;
    let mut out = Tensor::zeros([n, g.o, g.oh, g.ow]);
    let od = out.data_mut();
    let in_image = g.c * g.h * g.w;
    let out_image = g.o * g.oh * g.ow;
    let ckk = g.c * g.kh * g.kw;
    // Weight `[O, C, KH, KW]` is row-major, i.e. already the `[O, C·KH·KW]`
    // GEMM operand — no reshape copy needed.
    let wd = weight.data();
    let mut cols = Vec::new();
    for ni in 0..n {
        crate::ops::conv::im2col_into(
            &input.data()[ni * in_image..(ni + 1) * in_image],
            (g.c, g.h, g.w),
            (g.kh, g.kw),
            spec,
            &mut cols,
        );
        super::matmul::gemm_accumulate(
            &mut od[ni * out_image..(ni + 1) * out_image],
            wd,
            g.o,
            ckk,
            &cols,
            g.oh * g.ow,
        );
    }
    Ok(out)
}

/// Synaptic-operation count of a convolution over a dense input: each
/// non-zero entry is charged `valid taps × O` accumulates — exactly what
/// the scatter kernels charge, computed without doing the arithmetic.
/// Pairs with [`conv2d_gemm`], which performs multiply-adds for zeros
/// too but must report the event-driven cost the paper's Table III
/// counts.
///
/// # Errors
///
/// Returns an error on rank or channel mismatches.
pub fn conv2d_synops(input: &Tensor, weight: &Tensor, spec: Conv2dSpec) -> Result<u64> {
    if input.rank() != 4 {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_synops",
            message: format!("expected [N, C, H, W] input, got {}", input.shape()),
        });
    }
    if weight.rank() != 4 {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_synops",
            message: format!("expected weight [O, I, KH, KW], got {}", weight.shape()),
        });
    }
    let (o, kh, kw) = (weight.dims()[0], weight.dims()[2], weight.dims()[3]);
    let g = ConvGeom::new(
        &input.dims()[1..],
        o,
        weight.dims()[1] * kh * kw,
        (kh, kw),
        spec,
        "conv2d_synops",
    )?;
    // Valid tap counts factor over the two axes: taps(yi, xi) = ty[yi]·tx[xi].
    let mut scratch = Vec::new();
    let tap_count = |src: usize, kernel: usize, limit: usize, buf: &mut Vec<(usize, usize)>| {
        valid_taps(buf, src, kernel, limit, g.stride, g.pad);
        buf.len() as u64
    };
    let ty: Vec<u64> = (0..g.h)
        .map(|yi| tap_count(yi, g.kh, g.oh, &mut scratch))
        .collect();
    let tx: Vec<u64> = (0..g.w)
        .map(|xi| tap_count(xi, g.kw, g.ow, &mut scratch))
        .collect();
    let mut synops = 0u64;
    for image in input.data().chunks_exact(g.c * g.h * g.w) {
        for channel in image.chunks_exact(g.h * g.w) {
            for (row, &t_row) in channel.chunks_exact(g.w).zip(&ty) {
                for (&v, &t_col) in row.iter().zip(&tx) {
                    if v != 0.0 {
                        synops += t_row * t_col;
                    }
                }
            }
        }
    }
    Ok(synops * g.o as u64)
}

/// Average pooling over an event list: each event adds its raw value to
/// the window sums covering it (events arrive in row-major order, so
/// each output's contributions accumulate in the same order as the
/// dense kernel's window scan), and the sums are scaled by `1/window²`
/// once at the end — term for term what [`crate::ops::avg_pool2d`]
/// computes, minus the zero additions. Results are f32-equal to the
/// dense kernel at any sparsity.
///
/// # Errors
///
/// Returns an error if the events are not `[C, H, W]`-shaped or the
/// window/stride is zero.
pub fn avg_pool2d_events(events: &SpikeBatch, window: usize, stride: usize) -> Result<Tensor> {
    let dims = events.feature_dims();
    if dims.len() != 3 {
        return Err(TensorError::InvalidArgument {
            op: "avg_pool2d_events",
            message: format!("expected [C, H, W] event features, got {dims:?}"),
        });
    }
    if window == 0 || stride == 0 {
        return Err(TensorError::InvalidArgument {
            op: "avg_pool2d_events",
            message: "window and stride must be positive".to_string(),
        });
    }
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let n = events.batch();
    let pooled = |d: usize| {
        if d < window {
            0
        } else {
            (d - window) / stride + 1
        }
    };
    let (oh, ow) = (pooled(h), pooled(w));
    let mut out = Tensor::zeros([n, c, oh, ow]);
    let od = out.data_mut();
    // Windows covering a source coordinate s: o·stride ≤ s < o·stride+window,
    // tabulated once per axis so the per-event work is division-free.
    let cover = |s: usize, limit: usize| {
        let lo = (s + 1).saturating_sub(window).div_ceil(stride);
        let hi = (s / stride + 1).min(limit);
        lo..hi.max(lo)
    };
    let ys: Vec<std::ops::Range<usize>> = (0..h).map(|yi| cover(yi, oh)).collect();
    let xs: Vec<std::ops::Range<usize>> = (0..w).map(|xi| cover(xi, ow)).collect();
    let decoder = CoordDecoder::new(h, w);
    let out_image = c * oh * ow;
    for ni in 0..n {
        let os = &mut od[ni * out_image..(ni + 1) * out_image];
        let (idx, val) = events.image_events(ni);
        for (&flat, &v) in idx.iter().zip(val) {
            let (ci, yi, xi) = decoder.decode(flat as usize);
            let obase = ci * oh * ow;
            for oy in ys[yi].clone() {
                for ox in xs[xi].clone() {
                    os[obase + oy * ow + ox] += v;
                }
            }
        }
    }
    let inv_area = 1.0 / (window * window) as f32;
    for v in od.iter_mut() {
        *v *= inv_area;
    }
    Ok(out)
}

/// Synaptic-operation count of a convolution over an event list:
/// `valid taps × O` per event, via per-axis tap-count tables — no
/// arithmetic, no scan.
///
/// # Errors
///
/// Returns an error on shape mismatches.
pub fn conv2d_synops_events(
    events: &SpikeBatch,
    o: usize,
    kernel: (usize, usize),
    spec: Conv2dSpec,
) -> Result<u64> {
    let dims = events.feature_dims().to_vec();
    let g = ConvGeom::new(
        &dims,
        o,
        dims.first().copied().unwrap_or(0) * kernel.0 * kernel.1,
        kernel,
        spec,
        "conv2d_synops_events",
    )?;
    let mut scratch = Vec::new();
    let tap_count = |src: usize, kernel: usize, limit: usize, buf: &mut Vec<(usize, usize)>| {
        valid_taps(buf, src, kernel, limit, g.stride, g.pad);
        buf.len() as u64
    };
    let ty: Vec<u64> = (0..g.h)
        .map(|yi| tap_count(yi, g.kh, g.oh, &mut scratch))
        .collect();
    let tx: Vec<u64> = (0..g.w)
        .map(|xi| tap_count(xi, g.kw, g.ow, &mut scratch))
        .collect();
    let decoder = CoordDecoder::new(g.h, g.w);
    let mut taps = 0u64;
    for ni in 0..events.batch() {
        let (idx, _) = events.image_events(ni);
        for &flat in idx {
            let (_, yi, xi) = decoder.decode(flat as usize);
            taps += ty[yi] * tx[xi];
        }
    }
    Ok(taps * o as u64)
}

fn check_linear_t(input_features: usize, weight_t: &Tensor, op: &'static str) -> Result<usize> {
    if weight_t.rank() != 2 || weight_t.dims()[0] != input_features {
        return Err(TensorError::InvalidArgument {
            op,
            message: format!(
                "expected transposed weight [{input_features}, O], got {}",
                weight_t.shape()
            ),
        });
    }
    Ok(weight_t.dims()[1])
}

/// Sparse dense-layer propagation over a **dense** `[N, I]` input with a
/// *transposed* weight `[I, O]` (row-contiguous per input feature): only
/// non-zero inputs touch weights. Returns `(output, synop count)`.
///
/// Accumulation order per output element is ascending input index —
/// identical to the untransposed reference loop, so results match it bit
/// for bit.
///
/// # Errors
///
/// Returns an error on rank or dimension mismatches.
pub fn linear_scatter_t(input: &Tensor, weight_t: &Tensor) -> Result<(Tensor, u64)> {
    if input.rank() != 2 {
        return Err(TensorError::InvalidArgument {
            op: "linear_scatter_t",
            message: format!("expected [N, I] input, got {}", input.shape()),
        });
    }
    let (n, i) = (input.dims()[0], input.dims()[1]);
    let o = check_linear_t(i, weight_t, "linear_scatter_t")?;
    let mut out = Tensor::zeros([n, o]);
    let od = out.data_mut();
    let id = input.data();
    let wtd = weight_t.data();
    let mut synops = 0u64;
    for ni in 0..n {
        let orow = &mut od[ni * o..(ni + 1) * o];
        for (ii, &v) in id[ni * i..(ni + 1) * i].iter().enumerate() {
            if v == 0.0 {
                continue;
            }
            let wrow = &wtd[ii * o..(ii + 1) * o];
            for (ov, &wv) in orow.iter_mut().zip(wrow) {
                *ov += wv * v;
            }
            synops += o as u64;
        }
    }
    Ok((out, synops))
}

/// Event-list twin of [`linear_scatter_t`]: identical results, bit for
/// bit, without scanning zeros.
///
/// # Errors
///
/// Returns an error if the event feature count disagrees with the
/// transposed weight.
pub fn linear_scatter_events(events: &SpikeBatch, weight_t: &Tensor) -> Result<(Tensor, u64)> {
    let i = events.feature_numel();
    let o = check_linear_t(i, weight_t, "linear_scatter_events")?;
    let n = events.batch();
    let mut out = Tensor::zeros([n, o]);
    let od = out.data_mut();
    let wtd = weight_t.data();
    let mut synops = 0u64;
    for ni in 0..n {
        let orow = &mut od[ni * o..(ni + 1) * o];
        let (idx, val) = events.image_events(ni);
        for (&ii, &v) in idx.iter().zip(val) {
            let wrow = &wtd[ii as usize * o..(ii as usize + 1) * o];
            for (ov, &wv) in orow.iter_mut().zip(wrow) {
                *ov += wv * v;
            }
            synops += o as u64;
        }
    }
    Ok((out, synops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{conv2d, matmul_a_bt};

    fn weight(o: usize, c: usize, k: usize) -> Tensor {
        Tensor::from_fn([o, c, k, k], |i| {
            ((i[0] * 31 + i[1] * 17 + i[2] * 5 + i[3]) % 13) as f32 * 0.07 - 0.4
        })
    }

    fn sparse_input(n: usize, c: usize, h: usize, w: usize) -> Tensor {
        Tensor::from_fn([n, c, h, w], |i| {
            let key = i[0] * 1009 + i[1] * 101 + i[2] * 11 + i[3];
            if key % 5 == 0 {
                (key % 7) as f32 * 0.3 + 0.1
            } else {
                0.0
            }
        })
    }

    #[test]
    fn dense_and_event_conv_are_bit_identical() {
        for &(stride, padding) in &[(1usize, 0usize), (1, 1), (2, 0), (2, 1), (3, 2)] {
            let spec = Conv2dSpec::new(stride, padding);
            let input = sparse_input(2, 3, 7, 6);
            let w = weight(4, 3, 3);
            let wt = transpose_filter(&w).unwrap();
            let (dense, s1) = conv2d_scatter(&input, &w, spec).unwrap();
            let (dense_t, s1t) = conv2d_scatter_t(&input, &wt, (3, 3), spec).unwrap();
            let events = SpikeBatch::from_dense(&input).unwrap();
            let (sparse, s2) = conv2d_scatter_events(&events, &wt, (3, 3), spec).unwrap();
            assert_eq!(dense, sparse, "stride={stride} padding={padding}");
            assert_eq!(dense, dense_t);
            assert_eq!(s1, s2);
            assert_eq!(s1, s1t);
        }
    }

    #[test]
    fn scatter_matches_im2col_conv_and_gemm() {
        for &(stride, padding) in &[(1usize, 1usize), (2, 0)] {
            let spec = Conv2dSpec::new(stride, padding);
            let input = sparse_input(2, 3, 6, 6);
            let w = weight(4, 3, 3);
            let (out, synops) = conv2d_scatter(&input, &w, spec).unwrap();
            let reference = conv2d(&input, &w, &Tensor::zeros([4]), spec).unwrap();
            assert!(out.all_close(&reference, 1e-4));
            assert!(synops > 0);
            let gemm = conv2d_gemm(&input, &w, spec).unwrap();
            // GEMM performs the identical term sequence plus `± 0.0`
            // additions for inactive taps, so it is f32-equal (not merely
            // close) to the scatter paths.
            assert_eq!(out, gemm);
        }
    }

    #[test]
    fn synops_count_taps_times_out_channels() {
        // A single interior event of a 3×3 stride-1 padded conv touches
        // all 9 taps.
        let spec = Conv2dSpec::new(1, 1);
        let mut input = Tensor::zeros([1, 1, 5, 5]);
        input.set(&[0, 0, 2, 2], 1.0).unwrap();
        let w = weight(4, 1, 3);
        let (_, synops) = conv2d_scatter(&input, &w, spec).unwrap();
        assert_eq!(synops, 9 * 4);
        // A corner event without padding reaches only 1 tap.
        let spec = Conv2dSpec::new(1, 0);
        let mut corner = Tensor::zeros([1, 1, 5, 5]);
        corner.set(&[0, 0, 0, 0], 1.0).unwrap();
        let (_, synops) = conv2d_scatter(&corner, &w, spec).unwrap();
        assert_eq!(synops, 4);
    }

    #[test]
    fn synops_scan_matches_scatter_count() {
        for &(stride, padding) in &[(1usize, 0usize), (1, 1), (2, 0), (2, 1)] {
            let spec = Conv2dSpec::new(stride, padding);
            let input = sparse_input(2, 3, 7, 6);
            let w = weight(4, 3, 3);
            let (_, from_scatter) = conv2d_scatter(&input, &w, spec).unwrap();
            let from_scan = conv2d_synops(&input, &w, spec).unwrap();
            assert_eq!(from_scan, from_scatter, "stride={stride} padding={padding}");
        }
    }

    #[test]
    fn linear_dense_and_event_paths_agree_with_matmul() {
        let input =
            Tensor::from_vec([2, 4], vec![1.0, 0.0, 0.5, 0.0, 0.0, 2.0, 0.0, -1.0]).unwrap();
        let w = Tensor::from_fn([3, 4], |i| (i[0] * 4 + i[1]) as f32 * 0.1 - 0.2);
        let wt = w.transpose().unwrap();
        let (dense, s1) = linear_scatter_t(&input, &wt).unwrap();
        let events = SpikeBatch::from_dense(&input).unwrap();
        let (sparse, s2) = linear_scatter_events(&events, &wt).unwrap();
        assert_eq!(dense, sparse);
        assert_eq!(s1, s2);
        assert_eq!(s1, 4 * 3); // 4 non-zeros × 3 outputs
        let reference = matmul_a_bt(&input, &w).unwrap();
        assert!(dense.all_close(&reference, 1e-6));
    }

    #[test]
    fn kernels_validate_shapes() {
        let w = weight(2, 3, 3);
        let wt = transpose_filter(&w).unwrap();
        assert!(conv2d_scatter(&Tensor::zeros([1, 2, 4, 4]), &w, Conv2dSpec::default()).is_err());
        assert!(conv2d_scatter(&Tensor::zeros([2, 4, 4]), &w, Conv2dSpec::default()).is_err());
        assert!(conv2d_scatter_t(
            &Tensor::zeros([1, 2, 4, 4]),
            &wt,
            (3, 3),
            Conv2dSpec::default()
        )
        .is_err());
        let events = SpikeBatch::from_dense(&Tensor::zeros([1, 2, 4, 4])).unwrap();
        assert!(conv2d_scatter_events(&events, &wt, (3, 3), Conv2dSpec::default()).is_err());
        assert!(conv2d_gemm(&Tensor::zeros([1, 2, 4, 4]), &w, Conv2dSpec::default()).is_err());
        assert!(linear_scatter_t(&Tensor::zeros([1, 3]), &Tensor::zeros([4, 2])).is_err());
        let events = SpikeBatch::from_dense(&Tensor::zeros([1, 3])).unwrap();
        assert!(linear_scatter_events(&events, &Tensor::zeros([4, 2])).is_err());
    }

    #[test]
    fn fused_accumulate_matches_unfused_sequence() {
        let spec = Conv2dSpec::new(1, 1);
        let input = sparse_input(2, 3, 6, 6);
        let w = weight(4, 3, 3);
        let wt = transpose_filter(&w).unwrap();
        let bias = Tensor::from_vec([4], vec![0.1, -0.2, 0.3, 0.0]).unwrap();
        // Unfused: drive = conv; drive += bias·scale; potential += drive.
        let (mut drive, synops_ref) = conv2d_scatter_t(&input, &wt, (3, 3), spec).unwrap();
        let scale = 0.5f32;
        for (ni, image) in drive.data_mut().chunks_exact_mut(4 * 6 * 6).enumerate() {
            let _ = ni;
            for (oc, plane) in image.chunks_exact_mut(36).enumerate() {
                for v in plane.iter_mut() {
                    *v += bias.data()[oc] * scale;
                }
            }
        }
        let mut expected = Tensor::from_fn([2, 4, 6, 6], |i| (i[0] + i[1] + i[2]) as f32 * 0.01);
        let mut fused = expected.clone();
        expected.add_scaled(&drive, 1.0).unwrap();
        // Fused dense walk.
        let synops =
            conv2d_scatter_t_acc(&input, &wt, (3, 3), spec, &bias, scale, &mut fused).unwrap();
        assert_eq!(fused, expected);
        assert_eq!(synops, synops_ref);
        // Fused event path.
        let mut fused_ev = Tensor::from_fn([2, 4, 6, 6], |i| (i[0] + i[1] + i[2]) as f32 * 0.01);
        let events = SpikeBatch::from_dense(&input).unwrap();
        let synops_ev =
            conv2d_scatter_events_acc(&events, &wt, (3, 3), spec, &bias, scale, &mut fused_ev)
                .unwrap();
        assert_eq!(fused_ev, expected);
        assert_eq!(synops_ev, synops_ref);
        // Shape validation.
        assert!(conv2d_scatter_t_acc(
            &input,
            &wt,
            (3, 3),
            spec,
            &Tensor::zeros([3]),
            1.0,
            &mut fused
        )
        .is_err());
    }

    #[test]
    fn event_avg_pool_is_f32_equal_to_dense() {
        use crate::ops::avg_pool2d;
        for &(window, stride) in &[(2usize, 2usize), (2, 1), (3, 2)] {
            let input = sparse_input(2, 3, 7, 6);
            let events = SpikeBatch::from_dense(&input).unwrap();
            let sparse = avg_pool2d_events(&events, window, stride).unwrap();
            let dense = avg_pool2d(&input, window, stride).unwrap();
            assert_eq!(sparse, dense, "window={window} stride={stride}");
        }
        assert!(avg_pool2d_events(
            &SpikeBatch::from_dense(&Tensor::zeros([1, 4])).unwrap(),
            2,
            2
        )
        .is_err());
    }

    #[test]
    fn event_synops_match_scatter_count() {
        for &(stride, padding) in &[(1usize, 1usize), (2, 0)] {
            let spec = Conv2dSpec::new(stride, padding);
            let input = sparse_input(2, 3, 7, 6);
            let w = weight(4, 3, 3);
            let (_, want) = conv2d_scatter(&input, &w, spec).unwrap();
            let events = SpikeBatch::from_dense(&input).unwrap();
            let got = conv2d_synops_events(&events, 4, (3, 3), spec).unwrap();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn kernel_larger_than_input_yields_empty_output() {
        // oh = ow = 0: the scatter paths must return the empty tensor the
        // im2col path produces, not panic in the flush.
        let spec = Conv2dSpec::new(1, 0);
        let mut input = Tensor::zeros([1, 1, 2, 2]);
        input.set(&[0, 0, 1, 1], 1.0).unwrap();
        let w = weight(2, 1, 3);
        let (out, synops) = conv2d_scatter(&input, &w, spec).unwrap();
        assert_eq!(out.dims(), &[1, 2, 0, 0]);
        assert_eq!(synops, 0);
        let wt = transpose_filter(&w).unwrap();
        let events = SpikeBatch::from_dense(&input).unwrap();
        let (out, synops) = conv2d_scatter_events(&events, &wt, (3, 3), spec).unwrap();
        assert_eq!(out.dims(), &[1, 2, 0, 0]);
        assert_eq!(synops, 0);
        let mut target = Tensor::zeros([1, 2, 0, 0]);
        let bias = Tensor::from_vec([2], vec![1.0, 2.0]).unwrap();
        let synops =
            conv2d_scatter_t_acc(&input, &wt, (3, 3), spec, &bias, 1.0, &mut target).unwrap();
        assert_eq!(synops, 0);
    }

    #[test]
    fn zero_input_is_free() {
        let w = weight(2, 1, 3);
        let (out, synops) =
            conv2d_scatter(&Tensor::zeros([1, 1, 4, 4]), &w, Conv2dSpec::new(1, 1)).unwrap();
        assert_eq!(synops, 0);
        assert_eq!(out.sum(), 0.0);
    }
}
