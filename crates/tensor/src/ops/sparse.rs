//! Sparse (event-driven) propagation kernels, with dense zero-skipping
//! twins, in the spiking engine's **position-major** layout.
//!
//! Every kernel pair performs **exactly the same floating-point
//! operations in the same order** per output element, so the dense and
//! event paths are bit-identical — the property the spiking simulator's
//! engine dispatch relies on. The canonical accumulation order is the
//! position-major scan of the source signal: ascending `(y, x, c)`.
//! Position-major `[H, W, C]` feature maps make that order the *storage*
//! order, so fire phases emit events with a contiguous scan and dense
//! walks stream the signal linearly.
//!
//! The convolution kernels scatter **straight into the position-major
//! target** (normally a layer's membrane-potential tensor): each valid
//! kernel tap of an event is one contiguous `value × weight-row` axpy
//! over all `O` output channels of one output position, and with stride 1
//! a whole kernel row collapses into a single long axpy. There is no
//! intermediate accumulator — and therefore no per-step clear or
//! transpose flush; work is strictly proportional to
//! `events × taps × O`.
//!
//! The channel-major kernels ([`conv2d_scatter_t`], [`conv2d_gemm`])
//! remain as reference oracles. They accumulate in the same canonical
//! `(y, x, c)` order (walking `[C, H, W]` storage with strides), so their
//! results are bit-identical to the position-major kernels modulo the
//! layout permutation.

use crate::error::{Result, TensorError};
use crate::events::SpikeBatch;
use crate::ops::conv::Conv2dSpec;
use crate::ops::pool::{covering_windows, pooled_dim};
use crate::simd;
use crate::tensor::Tensor;

/// Convolution geometry shared by the kernels.
struct ConvGeom {
    c: usize,
    o: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    oh: usize,
    ow: usize,
    stride: isize,
    pad: isize,
}

impl ConvGeom {
    fn build(
        (c, h, w): (usize, usize, usize),
        o: usize,
        ckk: usize,
        kernel: (usize, usize),
        spec: Conv2dSpec,
        op: &'static str,
        layout: &str,
    ) -> Result<Self> {
        let (kh, kw) = kernel;
        if c * kh * kw != ckk {
            return Err(TensorError::InvalidArgument {
                op,
                message: format!(
                    "{layout} input features ({c}, {h}, {w}) do not match a [{ckk}, {o}] filter \
                     with kernel {kh}x{kw}"
                ),
            });
        }
        Ok(ConvGeom {
            c,
            o,
            h,
            w,
            kh,
            kw,
            oh: spec.output_dim(h, kh),
            ow: spec.output_dim(w, kw),
            stride: spec.stride as isize,
            pad: spec.padding as isize,
        })
    }

    /// Geometry from channel-major `[C, H, W]` feature dims.
    fn new_cm(
        input_chw: &[usize],
        o: usize,
        ckk: usize,
        kernel: (usize, usize),
        spec: Conv2dSpec,
        op: &'static str,
    ) -> Result<Self> {
        if input_chw.len() != 3 {
            return Err(TensorError::InvalidArgument {
                op,
                message: format!("expected [C, H, W] features, got {input_chw:?}"),
            });
        }
        Self::build(
            (input_chw[0], input_chw[1], input_chw[2]),
            o,
            ckk,
            kernel,
            spec,
            op,
            "channel-major",
        )
    }

    /// Geometry from position-major `[H, W, C]` feature dims.
    fn new_pm(
        input_hwc: &[usize],
        o: usize,
        ckk: usize,
        kernel: (usize, usize),
        spec: Conv2dSpec,
        op: &'static str,
    ) -> Result<Self> {
        if input_hwc.len() != 3 {
            return Err(TensorError::InvalidArgument {
                op,
                message: format!("expected [H, W, C] features, got {input_hwc:?}"),
            });
        }
        Self::build(
            (input_hwc[2], input_hwc[0], input_hwc[1]),
            o,
            ckk,
            kernel,
            spec,
            op,
            "position-major",
        )
    }
}

/// Transposes a `[O, C, KH, KW]` filter bank into the scatter kernels'
/// `[C, KH, KW, O]` tap-major layout **with the KW axis reversed**
/// (`out[((ci·KH + ki)·KW + (KW−1−kj))·O + oc] = w[oc, ci, ki, kj]`).
/// Reversing KW makes the taps a stride-1 event touches along one kernel
/// row *contiguous in the same order as the output positions they feed*,
/// so the whole row collapses into a single long axpy. Done once per run
/// by the engine; spiking weights never change between steps.
///
/// # Errors
///
/// Returns an error if `weight` is not rank 4.
pub fn transpose_filter(weight: &Tensor) -> Result<Tensor> {
    if weight.rank() != 4 {
        return Err(TensorError::InvalidArgument {
            op: "transpose_filter",
            message: format!("expected weight [O, I, KH, KW], got {}", weight.shape()),
        });
    }
    let (o, c, kh, kw) = (
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
    );
    let ckk = c * kh * kw;
    let wd = weight.data();
    let mut out = vec![0.0f32; ckk * o];
    for oc in 0..o {
        for ci in 0..c {
            for ki in 0..kh {
                for kj in 0..kw {
                    let tap = (ci * kh + ki) * kw + (kw - 1 - kj);
                    out[tap * o + oc] = wd[((oc * c + ci) * kh + ki) * kw + kj];
                }
            }
        }
    }
    Tensor::from_vec([ckk, o], out)
}

/// Reorders a `[O, C, KH, KW]` filter bank into the **tap-major**
/// `[KH·KW·C, O]` layout (`out[((ki·KW + kj)·C + ci)·O + oc]`) that the
/// position-major im2col GEMM path consumes: its contraction axis then
/// runs in the canonical `(ki, kj, ci) ⇔ (y, x, c)` order, keeping the
/// GEMM bit-identical to the scatter kernels.
///
/// # Errors
///
/// Returns an error if `weight` is not rank 4.
pub fn reorder_filter_taps(weight: &Tensor) -> Result<Tensor> {
    if weight.rank() != 4 {
        return Err(TensorError::InvalidArgument {
            op: "reorder_filter_taps",
            message: format!("expected weight [O, I, KH, KW], got {}", weight.shape()),
        });
    }
    let (o, c, kh, kw) = (
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
    );
    let ckk = c * kh * kw;
    let wd = weight.data();
    let mut out = vec![0.0f32; ckk * o];
    for oc in 0..o {
        for ci in 0..c {
            for ki in 0..kh {
                for kj in 0..kw {
                    let tap = (ki * kw + kj) * c + ci;
                    out[tap * o + oc] = wd[((oc * c + ci) * kh + ki) * kw + kj];
                }
            }
        }
    }
    Tensor::from_vec([ckk, o], out)
}

/// Fills `taps` with the `(kernel offset, output coordinate)` pairs a
/// source coordinate `src` reaches: all `k` with
/// `out·stride + k − pad = src`, `out < out_limit`.
#[inline]
fn valid_taps(
    taps: &mut Vec<(usize, usize)>,
    src: usize,
    kernel: usize,
    out_limit: usize,
    stride: isize,
    pad: isize,
) {
    taps.clear();
    for k in 0..kernel {
        let num = src as isize + pad - k as isize;
        if num < 0 {
            break; // `num` only decreases with k
        }
        if num % stride == 0 {
            let out = (num / stride) as usize;
            if out < out_limit {
                taps.push((k, out));
            }
        }
    }
}

/// Decodes flat position-major `[H, W, C]` event indices
/// (`flat = (y·W + x)·C + c`) into coordinates, using shift/mask
/// arithmetic when `C` and `W` are powers of two (every bundled
/// architecture) — a hardware division per event is one of the larger
/// per-event costs otherwise.
#[derive(Clone, Copy)]
struct PmDecoder {
    c: usize,
    w: usize,
    shifts: Option<(u32, u32)>,
}

impl PmDecoder {
    fn new(w: usize, c: usize) -> Self {
        let shifts = (c.is_power_of_two() && w.is_power_of_two())
            .then(|| (c.trailing_zeros(), w.trailing_zeros()));
        PmDecoder { c, w, shifts }
    }

    /// `flat → (ci, yi, xi)`.
    #[inline]
    fn decode(&self, flat: usize) -> (usize, usize, usize) {
        match self.shifts {
            Some((cs, ws)) => {
                let pos = flat >> cs;
                (flat & (self.c - 1), pos >> ws, pos & (self.w - 1))
            }
            None => {
                let pos = flat / self.c;
                (flat % self.c, pos / self.w, pos % self.w)
            }
        }
    }
}

/// Reused per-event valid-tap lists for strided convolutions.
struct TapScratch {
    ky: Vec<(usize, usize)>,
    kx: Vec<(usize, usize)>,
}

impl TapScratch {
    fn new(g: &ConvGeom) -> Self {
        TapScratch {
            ky: Vec::with_capacity(g.kh),
            kx: Vec::with_capacity(g.kw),
        }
    }
}

/// Scatters one input event **directly into a position-major
/// `[OH·OW, O]` target block** (normally one image's membrane
/// potentials). Returns the synaptic accumulate count charged
/// (`taps × O`).
///
/// With stride 1 (every conv in the paper's architectures) the valid
/// taps of one kernel row are contiguous in the reversed-KW filter
/// layout *and* feed contiguous output positions, so each kernel row is
/// one long `value × weight-span` axpy — typically `taps·O` = 24–96
/// contiguous floats, which vectorizes cleanly.
#[inline]
#[allow(clippy::too_many_arguments)] // one private hot-loop helper; splitting costs clarity
fn scatter_event_into(
    out: &mut [f32],
    s: &mut TapScratch,
    wt: &[f32],
    v: f32,
    ci: usize,
    yi: usize,
    xi: usize,
    g: &ConvGeom,
) -> u64 {
    let o = g.o;
    if g.stride == 1 {
        // `oy = yi + pad − ki` must land in `0..oh` (same for x).
        let klo =
            |src: usize, limit: usize| (src as isize + g.pad + 1 - limit as isize).max(0) as usize;
        let khi = |src: usize, kernel: usize| (src as isize + g.pad).min(kernel as isize - 1);
        let (ky_lo, ky_hi) = (klo(yi, g.oh), khi(yi, g.kh));
        let (kx_lo, kx_hi) = (klo(xi, g.ow), khi(xi, g.kw));
        if ky_hi < ky_lo as isize || kx_hi < kx_lo as isize {
            return 0;
        }
        let (ky_hi, kx_hi) = (ky_hi as usize, kx_hi as usize);
        let ox_lo = (xi as isize + g.pad) as usize - kx_hi;
        let row_len = (kx_hi - kx_lo + 1) * o;
        // kj descending kx_hi..=kx_lo ⇔ reversed-KW index ascending —
        // aligned with output positions ox ascending from ox_lo. As ki
        // ascends, the weight row advances by KW·O and the output row
        // retreats by OW·O; one `scatter_rows` call covers the whole
        // event (one SIMD dispatch per event, not per kernel row).
        let rows = ky_hi - ky_lo + 1;
        let w0 = ((ci * g.kh + ky_lo) * g.kw + (g.kw - 1 - kx_hi)) * o;
        let oy0 = (yi as isize + g.pad) as usize - ky_lo;
        let o0 = (oy0 * g.ow + ox_lo) * o;
        simd::scatter_rows(
            out,
            o0,
            -((g.ow * o) as isize),
            wt,
            w0,
            g.kw * o,
            rows,
            row_len,
            v,
        );
        return (rows * (kx_hi - kx_lo + 1) * o) as u64;
    }
    valid_taps(&mut s.ky, yi, g.kh, g.oh, g.stride, g.pad);
    valid_taps(&mut s.kx, xi, g.kw, g.ow, g.stride, g.pad);
    if s.ky.is_empty() || s.kx.is_empty() {
        return 0;
    }
    for &(ki, oy) in &s.ky {
        let wrow_base = (ci * g.kh + ki) * g.kw;
        let orow_base = oy * g.ow * o;
        for &(kj, ox) in &s.kx {
            let wstart = (wrow_base + (g.kw - 1 - kj)) * o;
            let wrow = &wt[wstart..wstart + o];
            let orow = &mut out[orow_base + ox * o..orow_base + (ox + 1) * o];
            simd::axpy(orow, v, wrow);
        }
    }
    (s.ky.len() * s.kx.len() * g.o) as u64
}

fn check_filter_t(filter_t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if filter_t.rank() != 2 {
        return Err(TensorError::InvalidArgument {
            op,
            message: format!("expected filter [C·KH·KW, O], got {}", filter_t.shape()),
        });
    }
    Ok((filter_t.dims()[0], filter_t.dims()[1]))
}

fn check_pm_target(g: &ConvGeom, n: usize, target: &Tensor, op: &'static str) -> Result<()> {
    if target.dims() != [n, g.oh, g.ow, g.o] {
        return Err(TensorError::InvalidArgument {
            op,
            message: format!(
                "expected position-major target [{n}, {}, {}, {}], got {}",
                g.oh,
                g.ow,
                g.o,
                target.shape()
            ),
        });
    }
    Ok(())
}

/// Sparse scatter convolution over a **dense position-major**
/// `[N, H, W, C]` input with a cached `[C·KH·KW, O]` filter from
/// [`transpose_filter`]: only non-zero entries do work, and each one
/// scatters straight into the fresh `[N, OH, OW, O]` output. Returns
/// `(output, synop count)` where the synop count charges `O` accumulates
/// per valid kernel tap per non-zero input, matching the paper's
/// Table III accounting.
///
/// # Errors
///
/// Returns an error on rank or dimension mismatches.
pub fn conv2d_scatter_pm(
    input: &Tensor,
    filter_t: &Tensor,
    kernel: (usize, usize),
    spec: Conv2dSpec,
) -> Result<(Tensor, u64)> {
    if input.rank() != 4 {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_scatter_pm",
            message: format!("expected [N, H, W, C] input, got {}", input.shape()),
        });
    }
    let n = input.dims()[0];
    let (ckk, o) = check_filter_t(filter_t, "conv2d_scatter_pm")?;
    let g = ConvGeom::new_pm(
        &input.dims()[1..],
        o,
        ckk,
        kernel,
        spec,
        "conv2d_scatter_pm",
    )?;
    let mut out = Tensor::zeros([n, g.oh, g.ow, g.o]);
    let synops = scatter_pm_dense_loop(out.data_mut(), input.data(), filter_t.data(), &g, n);
    Ok((out, synops))
}

/// [`conv2d_scatter_pm`] accumulating into an existing position-major
/// `[N, OH, OW, O]` target (normally a layer's membrane potentials):
/// the target *is* the accumulator, so there is no per-step clear and no
/// flush — exactly the event-driven cost. Bias currents are injected by
/// the caller in a separate pass (they are owed whether or not any event
/// arrives).
///
/// # Errors
///
/// Returns an error on rank or dimension mismatches.
pub fn conv2d_scatter_pm_acc(
    input: &Tensor,
    filter_t: &Tensor,
    kernel: (usize, usize),
    spec: Conv2dSpec,
    target: &mut Tensor,
) -> Result<u64> {
    if input.rank() != 4 {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_scatter_pm_acc",
            message: format!("expected [N, H, W, C] input, got {}", input.shape()),
        });
    }
    let n = input.dims()[0];
    let (ckk, o) = check_filter_t(filter_t, "conv2d_scatter_pm_acc")?;
    let g = ConvGeom::new_pm(
        &input.dims()[1..],
        o,
        ckk,
        kernel,
        spec,
        "conv2d_scatter_pm_acc",
    )?;
    check_pm_target(&g, n, target, "conv2d_scatter_pm_acc")?;
    Ok(scatter_pm_dense_loop(
        target.data_mut(),
        input.data(),
        filter_t.data(),
        &g,
        n,
    ))
}

/// Per-batch driver of the position-major dense walk: the input is
/// streamed in storage order (ascending `(y, x, c)` — the canonical
/// accumulation order) and non-zeros scatter into the target.
fn scatter_pm_dense_loop(od: &mut [f32], id: &[f32], wt: &[f32], g: &ConvGeom, n: usize) -> u64 {
    let mut s = TapScratch::new(g);
    let in_image = g.c * g.h * g.w;
    let out_image = g.o * g.oh * g.ow;
    let mut synops = 0u64;
    for ni in 0..n {
        let is = &id[ni * in_image..(ni + 1) * in_image];
        let os = &mut od[ni * out_image..(ni + 1) * out_image];
        let mut idx = 0usize;
        for yi in 0..g.h {
            for xi in 0..g.w {
                for ci in 0..g.c {
                    let v = is[idx];
                    idx += 1;
                    if v == 0.0 {
                        continue;
                    }
                    synops += scatter_event_into(os, &mut s, wt, v, ci, yi, xi, g);
                }
            }
        }
    }
    synops
}

/// Event-list twin of [`conv2d_scatter_pm`] (events carry position-major
/// `[H, W, C]` feature indices): identical results, bit for bit, without
/// scanning zeros.
///
/// # Errors
///
/// Returns an error if the event feature shape does not match the
/// filter.
pub fn conv2d_scatter_events_pm(
    events: &SpikeBatch,
    filter_t: &Tensor,
    kernel: (usize, usize),
    spec: Conv2dSpec,
) -> Result<(Tensor, u64)> {
    let n = events.batch();
    let (ckk, o) = check_filter_t(filter_t, "conv2d_scatter_events_pm")?;
    let g = ConvGeom::new_pm(
        events.feature_dims(),
        o,
        ckk,
        kernel,
        spec,
        "conv2d_scatter_events_pm",
    )?;
    let mut out = Tensor::zeros([n, g.oh, g.ow, g.o]);
    let synops = scatter_pm_events_loop(out.data_mut(), events, filter_t.data(), &g);
    Ok((out, synops))
}

/// Event-list twin of [`conv2d_scatter_pm_acc`]: the hot path of the
/// spiking simulator — each event's axpy rows land directly in the
/// membrane-potential tensor.
///
/// # Errors
///
/// Returns an error on rank or dimension mismatches.
pub fn conv2d_scatter_events_pm_acc(
    events: &SpikeBatch,
    filter_t: &Tensor,
    kernel: (usize, usize),
    spec: Conv2dSpec,
    target: &mut Tensor,
) -> Result<u64> {
    let n = events.batch();
    let (ckk, o) = check_filter_t(filter_t, "conv2d_scatter_events_pm_acc")?;
    let g = ConvGeom::new_pm(
        events.feature_dims(),
        o,
        ckk,
        kernel,
        spec,
        "conv2d_scatter_events_pm_acc",
    )?;
    check_pm_target(&g, n, target, "conv2d_scatter_events_pm_acc")?;
    Ok(scatter_pm_events_loop(
        target.data_mut(),
        events,
        filter_t.data(),
        &g,
    ))
}

/// Per-batch driver of the position-major event scatter.
fn scatter_pm_events_loop(od: &mut [f32], events: &SpikeBatch, wt: &[f32], g: &ConvGeom) -> u64 {
    let mut s = TapScratch::new(g);
    let decoder = PmDecoder::new(g.w, g.c);
    let out_image = g.o * g.oh * g.ow;
    let mut synops = 0u64;
    for ni in 0..events.batch() {
        let os = &mut od[ni * out_image..(ni + 1) * out_image];
        let (idx, val) = events.image_events(ni);
        for (&flat, &v) in idx.iter().zip(val) {
            let (ci, yi, xi) = decoder.decode(flat as usize);
            synops += scatter_event_into(os, &mut s, wt, v, ci, yi, xi, g);
        }
    }
    synops
}

/// Sparse scatter convolution over a **dense channel-major**
/// `[N, C, H, W]` input, producing channel-major `[N, O, OH, OW]`
/// output — the reference/oracle twin of the position-major kernels.
/// The input is walked in the canonical `(y, x, c)` order (strided over
/// the channel-major storage), so per output element the contributions
/// accumulate in exactly the same sequence as the position-major paths:
/// results are bit-identical modulo the layout permutation.
///
/// # Errors
///
/// Returns an error on rank or dimension mismatches.
pub fn conv2d_scatter_t(
    input: &Tensor,
    filter_t: &Tensor,
    kernel: (usize, usize),
    spec: Conv2dSpec,
) -> Result<(Tensor, u64)> {
    if input.rank() != 4 {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_scatter_t",
            message: format!("expected [N, C, H, W] input, got {}", input.shape()),
        });
    }
    let n = input.dims()[0];
    let (ckk, o) = check_filter_t(filter_t, "conv2d_scatter_t")?;
    let g = ConvGeom::new_cm(&input.dims()[1..], o, ckk, kernel, spec, "conv2d_scatter_t")?;
    let mut out = Tensor::zeros([n, g.o, g.oh, g.ow]);
    let od = out.data_mut();
    let id = input.data();
    let wt = filter_t.data();
    let mut s = TapScratch::new(&g);
    let in_image = g.c * g.h * g.w;
    let out_image = g.o * g.oh * g.ow;
    let oplane = g.oh * g.ow;
    let mut synops = 0u64;
    for ni in 0..n {
        let is = &id[ni * in_image..(ni + 1) * in_image];
        let os = &mut od[ni * out_image..(ni + 1) * out_image];
        for yi in 0..g.h {
            for xi in 0..g.w {
                for ci in 0..g.c {
                    let v = is[(ci * g.h + yi) * g.w + xi];
                    if v == 0.0 {
                        continue;
                    }
                    valid_taps(&mut s.ky, yi, g.kh, g.oh, g.stride, g.pad);
                    valid_taps(&mut s.kx, xi, g.kw, g.ow, g.stride, g.pad);
                    if s.ky.is_empty() || s.kx.is_empty() {
                        continue;
                    }
                    for &(ki, oy) in &s.ky {
                        for &(kj, ox) in &s.kx {
                            let wstart = ((ci * g.kh + ki) * g.kw + (g.kw - 1 - kj)) * g.o;
                            let opos = oy * g.ow + ox;
                            for (oc, &wv) in wt[wstart..wstart + g.o].iter().enumerate() {
                                os[oc * oplane + opos] += v * wv;
                            }
                        }
                    }
                    synops += (s.ky.len() * s.kx.len() * g.o) as u64;
                }
            }
        }
    }
    Ok((out, synops))
}

/// [`conv2d_scatter_t`] for callers holding only the original
/// `[O, C, KH, KW]` weight: transposes it on the fly. This is the
/// reference path behind `SnnOp::propagate`; hot loops cache the
/// transposed filter and use the position-major kernels directly.
///
/// # Errors
///
/// Returns an error on rank or channel mismatches.
pub fn conv2d_scatter(input: &Tensor, weight: &Tensor, spec: Conv2dSpec) -> Result<(Tensor, u64)> {
    if weight.rank() != 4 {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_scatter",
            message: format!("expected weight [O, I, KH, KW], got {}", weight.shape()),
        });
    }
    if input.rank() == 4 && input.dims()[1] != weight.dims()[1] {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_scatter",
            message: format!(
                "expected [N, {}, H, W] input, got {}",
                weight.dims()[1],
                input.shape()
            ),
        });
    }
    let filter_t = transpose_filter(weight)?;
    conv2d_scatter_t(input, &filter_t, (weight.dims()[2], weight.dims()[3]), spec)
}

/// Unfolds one channel-major `[C, H, W]` image into a **tap-major**
/// im2col matrix `[KH·KW·C, OH·OW]` (row order `(ki, kj, ci)` — the
/// canonical contraction order) into a reused buffer. Every entry is
/// rewritten, so callers can recycle the allocation without clearing.
fn im2col_taps_into(data: &[f32], g: &ConvGeom, out: &mut Vec<f32>) {
    let cols = g.oh * g.ow;
    out.resize(g.c * g.kh * g.kw * cols, 0.0);
    for ki in 0..g.kh {
        for kj in 0..g.kw {
            for ci in 0..g.c {
                let row = (ki * g.kw + kj) * g.c + ci;
                let orow = &mut out[row * cols..(row + 1) * cols];
                for oi in 0..g.oh {
                    let ii = (oi as isize) * g.stride + ki as isize - g.pad;
                    let oline = &mut orow[oi * g.ow..(oi + 1) * g.ow];
                    if ii < 0 || ii >= g.h as isize {
                        oline.fill(0.0);
                        continue;
                    }
                    let iline = &data[(ci * g.h + ii as usize) * g.w..][..g.w];
                    for (oj, slot) in oline.iter_mut().enumerate() {
                        let jj = (oj as isize) * g.stride + kj as isize - g.pad;
                        *slot = if jj < 0 || jj >= g.w as isize {
                            0.0
                        } else {
                            iline[jj as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Unfolds one position-major `[H, W, C]` image into a **position-major**
/// im2col matrix `[OH·OW, KH·KW·C]` (one row per output position, taps in
/// the canonical `(ki, kj, ci)` order, with the `C` channels of each tap
/// copied contiguously) into a reused buffer.
fn im2col_pm_into(data: &[f32], g: &ConvGeom, out: &mut Vec<f32>) {
    let ckk = g.c * g.kh * g.kw;
    out.resize(g.oh * g.ow * ckk, 0.0);
    for oi in 0..g.oh {
        for oj in 0..g.ow {
            let row = &mut out[(oi * g.ow + oj) * ckk..(oi * g.ow + oj + 1) * ckk];
            for ki in 0..g.kh {
                let ii = (oi as isize) * g.stride + ki as isize - g.pad;
                for kj in 0..g.kw {
                    let jj = (oj as isize) * g.stride + kj as isize - g.pad;
                    let slot = &mut row[(ki * g.kw + kj) * g.c..(ki * g.kw + kj + 1) * g.c];
                    if ii < 0 || ii >= g.h as isize || jj < 0 || jj >= g.w as isize {
                        slot.fill(0.0);
                    } else {
                        let src = (ii as usize * g.w + jj as usize) * g.c;
                        slot.copy_from_slice(&data[src..src + g.c]);
                    }
                }
            }
        }
    }
}

/// Dense convolution via im2col + blocked GEMM over a **channel-major**
/// input, without bias (reference/oracle twin). The contraction runs in
/// the canonical tap order `(ki, kj, ci)` — for each output element this
/// is the same `(y, x, c)` sequence the scatter kernels accumulate in,
/// so the GEMM is f32-equal to them (it additionally adds the zero
/// entries they skip, which can never change an IEEE sum beyond the sign
/// of an all-zero result).
///
/// # Errors
///
/// Returns an error on rank or channel mismatches.
pub fn conv2d_gemm(input: &Tensor, weight: &Tensor, spec: Conv2dSpec) -> Result<Tensor> {
    if input.rank() != 4 {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_gemm",
            message: format!("expected [N, C, H, W] input, got {}", input.shape()),
        });
    }
    if weight.rank() != 4 || input.dims()[1] != weight.dims()[1] {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_gemm",
            message: format!(
                "expected weight [O, {}, KH, KW], got {}",
                input.dims()[1],
                weight.shape()
            ),
        });
    }
    let (o, kh, kw) = (weight.dims()[0], weight.dims()[2], weight.dims()[3]);
    let n = input.dims()[0];
    let g = ConvGeom::new_cm(
        &input.dims()[1..],
        o,
        weight.dims()[1] * kh * kw,
        (kh, kw),
        spec,
        "conv2d_gemm",
    )?;
    // Tap-major weight operand `[O, KH·KW·C]` matching the tap-major
    // im2col rows (one small copy per call; the engine caches its own).
    let wr = reorder_filter_taps(weight)?;
    let wr_t = wr.transpose()?; // [O, KH·KW·C] row-major
    let mut out = Tensor::zeros([n, g.o, g.oh, g.ow]);
    let od = out.data_mut();
    let in_image = g.c * g.h * g.w;
    let out_image = g.o * g.oh * g.ow;
    let ckk = g.c * g.kh * g.kw;
    let mut cols = Vec::new();
    for ni in 0..n {
        im2col_taps_into(
            &input.data()[ni * in_image..(ni + 1) * in_image],
            &g,
            &mut cols,
        );
        super::matmul::gemm_accumulate(
            &mut od[ni * out_image..(ni + 1) * out_image],
            wr_t.data(),
            g.o,
            ckk,
            &cols,
            g.oh * g.ow,
        );
    }
    Ok(out)
}

/// Dense convolution via position-major im2col + blocked GEMM,
/// **accumulating straight into a position-major `[N, OH, OW, O]`
/// target** (normally membrane potentials). `weight_r` is the tap-major
/// `[KH·KW·C, O]` operand from [`reorder_filter_taps`].
///
/// Per output element the contraction accumulates into the existing
/// target value in ascending `(ki, kj, ci) ⇔ (y, x, c)` order — the
/// canonical order — so on the same signal this is bit-identical to the
/// scatter kernels (modulo `+0.0` no-op terms for inactive taps). Used
/// by the engine for near-dense event steps, where the vectorized GEMM
/// overtakes the sparsity-proportional scatter.
///
/// # Errors
///
/// Returns an error on rank or dimension mismatches.
pub fn conv2d_gemm_pm_acc(
    input: &Tensor,
    weight_r: &Tensor,
    kernel: (usize, usize),
    spec: Conv2dSpec,
    target: &mut Tensor,
) -> Result<()> {
    if input.rank() != 4 {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_gemm_pm_acc",
            message: format!("expected [N, H, W, C] input, got {}", input.shape()),
        });
    }
    let n = input.dims()[0];
    let (ckk, o) = check_filter_t(weight_r, "conv2d_gemm_pm_acc")?;
    let g = ConvGeom::new_pm(
        &input.dims()[1..],
        o,
        ckk,
        kernel,
        spec,
        "conv2d_gemm_pm_acc",
    )?;
    check_pm_target(&g, n, target, "conv2d_gemm_pm_acc")?;
    let od = target.data_mut();
    let in_image = g.c * g.h * g.w;
    let out_image = g.o * g.oh * g.ow;
    // The im2col buffer is reused across images *and calls* (this runs
    // once per dense time step in the simulator's GEMM fallback; every
    // entry is rewritten, so no clearing is needed).
    thread_local! {
        static PM_COLS: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    PM_COLS.with(|cols| {
        let cols = &mut *cols.borrow_mut();
        for ni in 0..n {
            im2col_pm_into(&input.data()[ni * in_image..(ni + 1) * in_image], &g, cols);
            super::matmul::gemm_accumulate(
                &mut od[ni * out_image..(ni + 1) * out_image],
                cols,
                g.oh * g.ow,
                ckk,
                weight_r.data(),
                g.o,
            );
        }
    });
    Ok(())
}

/// Synaptic-operation count of a convolution over a dense
/// **channel-major** input: each non-zero entry is charged
/// `valid taps × O` accumulates — exactly what the scatter kernels
/// charge, computed without doing the arithmetic.
///
/// # Errors
///
/// Returns an error on rank or channel mismatches.
pub fn conv2d_synops(input: &Tensor, weight: &Tensor, spec: Conv2dSpec) -> Result<u64> {
    if input.rank() != 4 {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_synops",
            message: format!("expected [N, C, H, W] input, got {}", input.shape()),
        });
    }
    if weight.rank() != 4 {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_synops",
            message: format!("expected weight [O, I, KH, KW], got {}", weight.shape()),
        });
    }
    let (o, kh, kw) = (weight.dims()[0], weight.dims()[2], weight.dims()[3]);
    let g = ConvGeom::new_cm(
        &input.dims()[1..],
        o,
        weight.dims()[1] * kh * kw,
        (kh, kw),
        spec,
        "conv2d_synops",
    )?;
    let (ty, tx) = tap_tables(&g);
    let mut synops = 0u64;
    for image in input.data().chunks_exact(g.c * g.h * g.w) {
        for channel in image.chunks_exact(g.h * g.w) {
            for (row, &t_row) in channel.chunks_exact(g.w).zip(&ty) {
                for (&v, &t_col) in row.iter().zip(&tx) {
                    if v != 0.0 {
                        synops += t_row * t_col;
                    }
                }
            }
        }
    }
    Ok(synops * g.o as u64)
}

/// Per-axis valid-tap-count tables (tap counts factor over the axes:
/// `taps(yi, xi) = ty[yi]·tx[xi]`).
fn tap_tables(g: &ConvGeom) -> (Vec<u64>, Vec<u64>) {
    let mut scratch = Vec::new();
    let mut count = |src: usize, kernel: usize, limit: usize| {
        valid_taps(&mut scratch, src, kernel, limit, g.stride, g.pad);
        scratch.len() as u64
    };
    let ty: Vec<u64> = (0..g.h).map(|yi| count(yi, g.kh, g.oh)).collect();
    let tx: Vec<u64> = (0..g.w).map(|xi| count(xi, g.kw, g.ow)).collect();
    (ty, tx)
}

/// Synaptic-operation count of a convolution over a **position-major**
/// event list (`[H, W, C]` features): `valid taps × O` per event, via
/// per-axis tap-count tables — no arithmetic, no scan.
///
/// # Errors
///
/// Returns an error on shape mismatches.
pub fn conv2d_synops_events(
    events: &SpikeBatch,
    o: usize,
    kernel: (usize, usize),
    spec: Conv2dSpec,
) -> Result<u64> {
    let dims = events.feature_dims().to_vec();
    let g = ConvGeom::new_pm(
        &dims,
        o,
        dims.last().copied().unwrap_or(0) * kernel.0 * kernel.1,
        kernel,
        spec,
        "conv2d_synops_events",
    )?;
    let (ty, tx) = tap_tables(&g);
    let decoder = PmDecoder::new(g.w, g.c);
    let mut taps = 0u64;
    for ni in 0..events.batch() {
        let (idx, _) = events.image_events(ni);
        for &flat in idx {
            let (_, yi, xi) = decoder.decode(flat as usize);
            taps += ty[yi] * tx[xi];
        }
    }
    Ok(taps * o as u64)
}

/// [`conv2d_synops_events`] resolved **per image**: `out[i]` receives
/// image `i`'s `valid taps × O` accumulate count. Images never interact,
/// so these counts are what a per-request (online-serving) accounting
/// needs and `out.sum() == conv2d_synops_events(..)` always holds.
///
/// # Errors
///
/// Returns an error on shape mismatches or if `out.len()` differs from
/// the batch size.
pub fn conv2d_synops_events_by_image(
    events: &SpikeBatch,
    o: usize,
    kernel: (usize, usize),
    spec: Conv2dSpec,
    out: &mut [u64],
) -> Result<()> {
    if out.len() != events.batch() {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_synops_events_by_image",
            message: format!("{} images but out has {} slots", events.batch(), out.len()),
        });
    }
    let dims = events.feature_dims().to_vec();
    let g = ConvGeom::new_pm(
        &dims,
        o,
        dims.last().copied().unwrap_or(0) * kernel.0 * kernel.1,
        kernel,
        spec,
        "conv2d_synops_events_by_image",
    )?;
    let (ty, tx) = tap_tables(&g);
    let decoder = PmDecoder::new(g.w, g.c);
    for (ni, slot) in out.iter_mut().enumerate() {
        let (idx, _) = events.image_events(ni);
        let mut taps = 0u64;
        for &flat in idx {
            let (_, yi, xi) = decoder.decode(flat as usize);
            taps += ty[yi] * tx[xi];
        }
        *slot = taps * g.o as u64;
    }
    Ok(())
}

/// Per-image synaptic-operation count of a convolution over a dense
/// **position-major** `[N, H, W, C]` signal: each non-zero entry is
/// charged `valid taps × O` accumulates, exactly what the scatter
/// kernels charge. The dense twin of
/// [`conv2d_synops_events_by_image`].
///
/// # Errors
///
/// Returns an error on shape mismatches or if `out.len()` differs from
/// the batch size.
pub fn conv2d_synops_pm_by_image(
    input: &Tensor,
    o: usize,
    kernel: (usize, usize),
    spec: Conv2dSpec,
    out: &mut [u64],
) -> Result<()> {
    if input.rank() != 4 {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_synops_pm_by_image",
            message: format!("expected [N, H, W, C] input, got {}", input.shape()),
        });
    }
    if out.len() != input.dims()[0] {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_synops_pm_by_image",
            message: format!("{} images but out has {} slots", input.dims()[0], out.len()),
        });
    }
    let dims = &input.dims()[1..];
    let g = ConvGeom::new_pm(
        dims,
        o,
        dims[2] * kernel.0 * kernel.1,
        kernel,
        spec,
        "conv2d_synops_pm_by_image",
    )?;
    let (ty, tx) = tap_tables(&g);
    for (image, slot) in input.data().chunks_exact(g.h * g.w * g.c).zip(out) {
        let mut taps = 0u64;
        for (row, &t_row) in image.chunks_exact(g.w * g.c).zip(&ty) {
            for (pos, &t_col) in row.chunks_exact(g.c).zip(&tx) {
                let nnz = pos.iter().filter(|&&v| v != 0.0).count() as u64;
                taps += nnz * t_row * t_col;
            }
        }
        *slot = taps * g.o as u64;
    }
    Ok(())
}

/// Reused buffers of the event-form pooling kernels: a per-window
/// accumulator addressed through an epoch-stamp array (so it never needs
/// clearing), the list of windows touched this image, and the per-axis
/// covering-window tables cached by pooling geometry (these kernels run
/// once per pool layer per time step, so nothing here may allocate on a
/// warm call).
#[derive(Debug, Default)]
pub struct PoolScratch {
    acc: Vec<f32>,
    stamp: Vec<u32>,
    epoch: u32,
    touched: Vec<u32>,
    /// `(h, w, window, stride)` the cached window tables were built for.
    geom: Option<(usize, usize, usize, usize)>,
    ys: Vec<std::ops::Range<usize>>,
    xs: Vec<std::ops::Range<usize>>,
}

impl PoolScratch {
    /// An empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        PoolScratch::default()
    }

    /// Prepares for one image over `len` pooled cells; returns the fresh
    /// epoch value.
    fn next_epoch(&mut self, len: usize) -> u32 {
        if self.acc.len() < len {
            self.acc.resize(len, 0.0);
            self.stamp.resize(len, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: old stamps could alias the new epoch. Reset once
            // every 2^32 images.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.touched.clear();
        self.epoch
    }

    /// Rebuilds `self.ys`/`self.xs` (the windows covering each source
    /// coordinate) only when the pooling geometry changed since the last
    /// call — per-step reuse is allocation-free.
    fn ensure_windows(
        &mut self,
        h: usize,
        w: usize,
        window: usize,
        stride: usize,
        oh: usize,
        ow: usize,
    ) {
        if self.geom == Some((h, w, window, stride)) {
            return;
        }
        self.ys.clear();
        self.ys
            .extend((0..h).map(|y| covering_windows(y, window, stride, oh)));
        self.xs.clear();
        self.xs
            .extend((0..w).map(|x| covering_windows(x, window, stride, ow)));
        self.geom = Some((h, w, window, stride));
    }
}

fn pooled_features(
    events: &SpikeBatch,
    window: usize,
    stride: usize,
    op: &'static str,
) -> Result<(usize, usize, usize, usize, usize)> {
    let dims = events.feature_dims();
    if dims.len() != 3 {
        return Err(TensorError::InvalidArgument {
            op,
            message: format!("expected [H, W, C] event features, got {dims:?}"),
        });
    }
    if window == 0 || stride == 0 {
        return Err(TensorError::InvalidArgument {
            op,
            message: "window and stride must be positive".to_string(),
        });
    }
    let (h, w, c) = (dims[0], dims[1], dims[2]);
    Ok((
        h,
        w,
        c,
        pooled_dim(h, window, stride),
        pooled_dim(w, window, stride),
    ))
}

/// Average pooling over a **position-major** event list, staying in
/// event form: each input event adds its value to the window sums
/// covering it (in event order — the canonical accumulation order), the
/// sums are scaled by `1/window²`, and the surviving windows are emitted
/// as events in ascending index order into `out` (reusing its
/// allocations). Bit-identical to [`crate::ops::avg_pool2d_pm`] on the
/// densified signal, with work proportional to the event count — no
/// dense round trip between a fire phase and the next integrate.
///
/// # Errors
///
/// Returns an error if the events are not `[H, W, C]`-shaped or the
/// window/stride is zero.
pub fn avg_pool2d_events(
    events: &SpikeBatch,
    window: usize,
    stride: usize,
    out: &mut SpikeBatch,
    scratch: &mut PoolScratch,
) -> Result<()> {
    let (h, w, c, oh, ow) = pooled_features(events, window, stride, "avg_pool2d_events")?;
    let decoder = PmDecoder::new(w, c);
    scratch.ensure_windows(h, w, window, stride, oh, ow);
    let inv_area = 1.0 / (window * window) as f32;
    out.begin(&[oh, ow, c]);
    for ni in 0..events.batch() {
        let epoch = scratch.next_epoch(oh * ow * c);
        let (idx, val) = events.image_events(ni);
        for (&flat, &v) in idx.iter().zip(val) {
            let (ci, yi, xi) = decoder.decode(flat as usize);
            for oy in scratch.ys[yi].clone() {
                for ox in scratch.xs[xi].clone() {
                    let slot = (oy * ow + ox) * c + ci;
                    if scratch.stamp[slot] == epoch {
                        scratch.acc[slot] += v;
                    } else {
                        scratch.stamp[slot] = epoch;
                        scratch.acc[slot] = v;
                        scratch.touched.push(slot as u32);
                    }
                }
            }
        }
        scratch.touched.sort_unstable();
        for &slot in &scratch.touched {
            out.push(slot, scratch.acc[slot as usize] * inv_area);
        }
        out.end_image();
    }
    Ok(())
}

/// Max pooling over a **position-major** event list under the TTFS
/// first-spike-wins rule, staying in event form: per output window with
/// at least one event this step, the window maximum (the same `>` scan
/// the dense kernel performs) is emitted **once per inference** — the
/// first step a window produces a spike latches its `gate` entry and
/// later steps are suppressed. `gate` has the pooled shape
/// `[N, OH, OW, C]` and persists across steps.
///
/// On non-negative spike values (all spiking PSPs in this workspace)
/// this is bit-identical to densifying and running
/// [`crate::ops::max_pool2d_pm_gated`], with work proportional to the
/// event count — max-pool networks no longer densify between fire and
/// integrate phases.
///
/// # Errors
///
/// Returns an error on feature/gate shape mismatches or a zero
/// window/stride.
pub fn max_pool2d_events(
    events: &SpikeBatch,
    window: usize,
    stride: usize,
    gate: &mut Tensor,
    out: &mut SpikeBatch,
    scratch: &mut PoolScratch,
) -> Result<()> {
    let (h, w, c, oh, ow) = pooled_features(events, window, stride, "max_pool2d_events")?;
    let n = events.batch();
    if gate.dims() != [n, oh, ow, c] {
        return Err(TensorError::InvalidArgument {
            op: "max_pool2d_events",
            message: format!("expected gate [{n}, {oh}, {ow}, {c}], got {}", gate.shape()),
        });
    }
    let decoder = PmDecoder::new(w, c);
    scratch.ensure_windows(h, w, window, stride, oh, ow);
    let out_image = oh * ow * c;
    let gd = gate.data_mut();
    out.begin(&[oh, ow, c]);
    for ni in 0..n {
        let epoch = scratch.next_epoch(out_image);
        let (idx, val) = events.image_events(ni);
        for (&flat, &v) in idx.iter().zip(val) {
            debug_assert!(v >= 0.0, "TTFS max pooling expects non-negative PSP values");
            let (ci, yi, xi) = decoder.decode(flat as usize);
            for oy in scratch.ys[yi].clone() {
                for ox in scratch.xs[xi].clone() {
                    let slot = (oy * ow + ox) * c + ci;
                    if scratch.stamp[slot] == epoch {
                        if v > scratch.acc[slot] {
                            scratch.acc[slot] = v;
                        }
                    } else {
                        scratch.stamp[slot] = epoch;
                        scratch.acc[slot] = v;
                        scratch.touched.push(slot as u32);
                    }
                }
            }
        }
        scratch.touched.sort_unstable();
        let gimg = &mut gd[ni * out_image..(ni + 1) * out_image];
        for &slot in &scratch.touched {
            let g = &mut gimg[slot as usize];
            let v = scratch.acc[slot as usize];
            if *g == 0.0 && v != 0.0 {
                *g = 1.0;
                out.push(slot, v);
            }
        }
        out.end_image();
    }
    Ok(())
}

fn check_linear_t(input_features: usize, weight_t: &Tensor, op: &'static str) -> Result<usize> {
    if weight_t.rank() != 2 || weight_t.dims()[0] != input_features {
        return Err(TensorError::InvalidArgument {
            op,
            message: format!(
                "expected transposed weight [{input_features}, O], got {}",
                weight_t.shape()
            ),
        });
    }
    Ok(weight_t.dims()[1])
}

/// Sparse dense-layer propagation over a **dense** `[N, I]` input with a
/// *transposed* weight `[I, O]` (row-contiguous per input feature): only
/// non-zero inputs touch weights. Returns `(output, synop count)`.
///
/// Accumulation order per output element is ascending input index —
/// whatever feature order the weight rows are laid out in, so callers
/// holding position-major features pass a row-permuted weight and keep
/// the canonical order.
///
/// # Errors
///
/// Returns an error on rank or dimension mismatches.
pub fn linear_scatter_t(input: &Tensor, weight_t: &Tensor) -> Result<(Tensor, u64)> {
    if input.rank() != 2 {
        return Err(TensorError::InvalidArgument {
            op: "linear_scatter_t",
            message: format!("expected [N, I] input, got {}", input.shape()),
        });
    }
    let (n, i) = (input.dims()[0], input.dims()[1]);
    let o = check_linear_t(i, weight_t, "linear_scatter_t")?;
    let mut out = Tensor::zeros([n, o]);
    let synops = linear_scatter_loop(out.data_mut(), input.data(), weight_t.data(), n, i, o);
    Ok((out, synops))
}

/// [`linear_scatter_t`] accumulating into an existing `[N, O]` target
/// (normally a layer's membrane potentials): the target is the
/// accumulator — no intermediate drive tensor.
///
/// # Errors
///
/// Returns an error on rank or dimension mismatches.
pub fn linear_scatter_t_acc(input: &Tensor, weight_t: &Tensor, target: &mut Tensor) -> Result<u64> {
    if input.rank() != 2 {
        return Err(TensorError::InvalidArgument {
            op: "linear_scatter_t_acc",
            message: format!("expected [N, I] input, got {}", input.shape()),
        });
    }
    let (n, i) = (input.dims()[0], input.dims()[1]);
    let o = check_linear_t(i, weight_t, "linear_scatter_t_acc")?;
    if target.dims() != [n, o] {
        return Err(TensorError::InvalidArgument {
            op: "linear_scatter_t_acc",
            message: format!("expected target [{n}, {o}], got {}", target.shape()),
        });
    }
    Ok(linear_scatter_loop(
        target.data_mut(),
        input.data(),
        weight_t.data(),
        n,
        i,
        o,
    ))
}

fn linear_scatter_loop(
    od: &mut [f32],
    id: &[f32],
    wtd: &[f32],
    n: usize,
    i: usize,
    o: usize,
) -> u64 {
    let mut synops = 0u64;
    for ni in 0..n {
        let orow = &mut od[ni * o..(ni + 1) * o];
        for (ii, &v) in id[ni * i..(ni + 1) * i].iter().enumerate() {
            if v == 0.0 {
                continue;
            }
            let wrow = &wtd[ii * o..(ii + 1) * o];
            simd::axpy(orow, v, wrow);
            synops += o as u64;
        }
    }
    synops
}

/// Event-list twin of [`linear_scatter_t`]: identical results, bit for
/// bit, without scanning zeros.
///
/// # Errors
///
/// Returns an error if the event feature count disagrees with the
/// transposed weight.
pub fn linear_scatter_events(events: &SpikeBatch, weight_t: &Tensor) -> Result<(Tensor, u64)> {
    let i = events.feature_numel();
    let o = check_linear_t(i, weight_t, "linear_scatter_events")?;
    let n = events.batch();
    let mut out = Tensor::zeros([n, o]);
    let synops = linear_events_loop(out.data_mut(), events, weight_t.data(), o);
    Ok((out, synops))
}

/// Event-list twin of [`linear_scatter_t_acc`]: weight rows scatter
/// straight into the `[N, O]` membrane potentials.
///
/// # Errors
///
/// Returns an error on rank or dimension mismatches.
pub fn linear_scatter_events_acc(
    events: &SpikeBatch,
    weight_t: &Tensor,
    target: &mut Tensor,
) -> Result<u64> {
    let i = events.feature_numel();
    let o = check_linear_t(i, weight_t, "linear_scatter_events_acc")?;
    let n = events.batch();
    if target.dims() != [n, o] {
        return Err(TensorError::InvalidArgument {
            op: "linear_scatter_events_acc",
            message: format!("expected target [{n}, {o}], got {}", target.shape()),
        });
    }
    Ok(linear_events_loop(
        target.data_mut(),
        events,
        weight_t.data(),
        o,
    ))
}

fn linear_events_loop(od: &mut [f32], events: &SpikeBatch, wtd: &[f32], o: usize) -> u64 {
    let mut synops = 0u64;
    for ni in 0..events.batch() {
        let orow = &mut od[ni * o..(ni + 1) * o];
        let (idx, val) = events.image_events(ni);
        for (&ii, &v) in idx.iter().zip(val) {
            let wrow = &wtd[ii as usize * o..(ii as usize + 1) * o];
            simd::axpy(orow, v, wrow);
            synops += o as u64;
        }
    }
    synops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{avg_pool2d_pm, conv2d, matmul_a_bt, max_pool2d_pm_gated};

    fn weight(o: usize, c: usize, k: usize) -> Tensor {
        Tensor::from_fn([o, c, k, k], |i| {
            ((i[0] * 31 + i[1] * 17 + i[2] * 5 + i[3]) % 13) as f32 * 0.07 - 0.4
        })
    }

    /// A sparse channel-major batch.
    fn sparse_input(n: usize, c: usize, h: usize, w: usize) -> Tensor {
        Tensor::from_fn([n, c, h, w], |i| {
            let key = i[0] * 1009 + i[1] * 101 + i[2] * 11 + i[3];
            if key % 5 == 0 {
                (key % 7) as f32 * 0.3 + 0.1
            } else {
                0.0
            }
        })
    }

    #[test]
    fn pm_dense_and_event_conv_are_bit_identical() {
        for &(stride, padding) in &[(1usize, 0usize), (1, 1), (2, 0), (2, 1), (3, 2)] {
            let spec = Conv2dSpec::new(stride, padding);
            let input = sparse_input(2, 3, 7, 6).to_position_major().unwrap();
            let w = weight(4, 3, 3);
            let wt = transpose_filter(&w).unwrap();
            let (dense, s1) = conv2d_scatter_pm(&input, &wt, (3, 3), spec).unwrap();
            let events = SpikeBatch::from_dense(&input).unwrap();
            let (sparse, s2) = conv2d_scatter_events_pm(&events, &wt, (3, 3), spec).unwrap();
            assert_eq!(dense, sparse, "stride={stride} padding={padding}");
            assert_eq!(s1, s2);
        }
    }

    #[test]
    fn pm_and_cm_layouts_are_bit_identical_modulo_transpose() {
        // The cross-layout invariant: the position-major kernels and the
        // channel-major reference accumulate each output element in the
        // same canonical (y, x, c) order, so their results are the same
        // bits in permuted storage.
        for &(stride, padding) in &[(1usize, 0usize), (1, 1), (2, 1)] {
            let spec = Conv2dSpec::new(stride, padding);
            let input_cm = sparse_input(2, 3, 7, 6);
            let w = weight(4, 3, 3);
            let wt = transpose_filter(&w).unwrap();
            let (out_cm, s_cm) = conv2d_scatter_t(&input_cm, &wt, (3, 3), spec).unwrap();
            let input_pm = input_cm.to_position_major().unwrap();
            let (out_pm, s_pm) = conv2d_scatter_pm(&input_pm, &wt, (3, 3), spec).unwrap();
            assert_eq!(out_pm.to_channel_major().unwrap(), out_cm);
            assert_eq!(s_cm, s_pm);
        }
    }

    #[test]
    fn scatter_matches_im2col_conv_and_gemm() {
        for &(stride, padding) in &[(1usize, 1usize), (2, 0)] {
            let spec = Conv2dSpec::new(stride, padding);
            let input = sparse_input(2, 3, 6, 6);
            let w = weight(4, 3, 3);
            let (out, synops) = conv2d_scatter(&input, &w, spec).unwrap();
            let reference = conv2d(&input, &w, &Tensor::zeros([4]), spec).unwrap();
            assert!(out.all_close(&reference, 1e-4));
            assert!(synops > 0);
            let gemm = conv2d_gemm(&input, &w, spec).unwrap();
            // GEMM performs the identical term sequence plus `± 0.0`
            // additions for inactive taps, so it is f32-equal (not merely
            // close) to the scatter paths.
            assert_eq!(out, gemm);
        }
    }

    #[test]
    fn gemm_pm_acc_is_bit_identical_to_event_scatter() {
        for &(stride, padding) in &[(1usize, 1usize), (2, 0)] {
            let spec = Conv2dSpec::new(stride, padding);
            let input = sparse_input(2, 3, 6, 6).to_position_major().unwrap();
            let w = weight(4, 3, 3);
            let wt = transpose_filter(&w).unwrap();
            let wr = reorder_filter_taps(&w).unwrap();
            let base = Tensor::from_fn([2, spec.output_dim(6, 3), spec.output_dim(6, 3), 4], |i| {
                (i[1] + i[2] + i[3]) as f32 * 0.01 - 0.05
            });
            let mut via_scatter = base.clone();
            let events = SpikeBatch::from_dense(&input).unwrap();
            conv2d_scatter_events_pm_acc(&events, &wt, (3, 3), spec, &mut via_scatter).unwrap();
            let mut via_gemm = base.clone();
            conv2d_gemm_pm_acc(&input, &wr, (3, 3), spec, &mut via_gemm).unwrap();
            assert_eq!(via_scatter, via_gemm, "stride={stride} padding={padding}");
        }
    }

    #[test]
    fn synops_count_taps_times_out_channels() {
        // A single interior event of a 3×3 stride-1 padded conv touches
        // all 9 taps.
        let spec = Conv2dSpec::new(1, 1);
        let mut input = Tensor::zeros([1, 1, 5, 5]);
        input.set(&[0, 0, 2, 2], 1.0).unwrap();
        let w = weight(4, 1, 3);
        let (_, synops) = conv2d_scatter(&input, &w, spec).unwrap();
        assert_eq!(synops, 9 * 4);
        // A corner event without padding reaches only 1 tap.
        let spec = Conv2dSpec::new(1, 0);
        let mut corner = Tensor::zeros([1, 1, 5, 5]);
        corner.set(&[0, 0, 0, 0], 1.0).unwrap();
        let (_, synops) = conv2d_scatter(&corner, &w, spec).unwrap();
        assert_eq!(synops, 4);
    }

    #[test]
    fn synops_scan_matches_scatter_count() {
        for &(stride, padding) in &[(1usize, 0usize), (1, 1), (2, 0), (2, 1)] {
            let spec = Conv2dSpec::new(stride, padding);
            let input = sparse_input(2, 3, 7, 6);
            let w = weight(4, 3, 3);
            let (_, from_scatter) = conv2d_scatter(&input, &w, spec).unwrap();
            let from_scan = conv2d_synops(&input, &w, spec).unwrap();
            assert_eq!(from_scan, from_scatter, "stride={stride} padding={padding}");
        }
    }

    #[test]
    fn event_synops_match_scatter_count() {
        for &(stride, padding) in &[(1usize, 1usize), (2, 0)] {
            let spec = Conv2dSpec::new(stride, padding);
            let input = sparse_input(2, 3, 7, 6);
            let w = weight(4, 3, 3);
            let (_, want) = conv2d_scatter(&input, &w, spec).unwrap();
            let events = SpikeBatch::from_dense(&input.to_position_major().unwrap()).unwrap();
            let got = conv2d_synops_events(&events, 4, (3, 3), spec).unwrap();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn per_image_synops_sum_to_batch_totals() {
        for &(stride, padding) in &[(1usize, 1usize), (2, 0)] {
            let spec = Conv2dSpec::new(stride, padding);
            let input = sparse_input(3, 2, 6, 5);
            let pm = input.to_position_major().unwrap();
            let events = SpikeBatch::from_dense(&pm).unwrap();
            let total = conv2d_synops_events(&events, 4, (3, 3), spec).unwrap();
            let mut by_image = vec![0u64; 3];
            conv2d_synops_events_by_image(&events, 4, (3, 3), spec, &mut by_image).unwrap();
            assert_eq!(by_image.iter().sum::<u64>(), total);
            // The dense twin charges the same counts per image.
            let mut by_image_dense = vec![0u64; 3];
            conv2d_synops_pm_by_image(&pm, 4, (3, 3), spec, &mut by_image_dense).unwrap();
            assert_eq!(
                by_image_dense, by_image,
                "stride={stride} padding={padding}"
            );
            // A solo image is charged exactly its batched count.
            for (ni, &batched) in by_image.iter().enumerate() {
                let solo = pm.index_axis0(ni).unwrap();
                let solo_pm = solo.reshape([1, 6, 5, 2]).unwrap();
                let solo_events = SpikeBatch::from_dense(&solo_pm).unwrap();
                let solo_total = conv2d_synops_events(&solo_events, 4, (3, 3), spec).unwrap();
                assert_eq!(solo_total, batched);
            }
        }
        // Shape validation.
        let events = SpikeBatch::from_dense(&Tensor::ones([2, 4, 4, 1])).unwrap();
        let mut short = vec![0u64; 1];
        assert!(conv2d_synops_events_by_image(
            &events,
            4,
            (3, 3),
            Conv2dSpec::new(1, 1),
            &mut short
        )
        .is_err());
        assert!(conv2d_synops_pm_by_image(
            &Tensor::ones([2, 4, 4, 1]),
            4,
            (3, 3),
            Conv2dSpec::new(1, 1),
            &mut short
        )
        .is_err());
    }

    #[test]
    fn linear_dense_and_event_paths_agree_with_matmul() {
        let input =
            Tensor::from_vec([2, 4], vec![1.0, 0.0, 0.5, 0.0, 0.0, 2.0, 0.0, -1.0]).unwrap();
        let w = Tensor::from_fn([3, 4], |i| (i[0] * 4 + i[1]) as f32 * 0.1 - 0.2);
        let wt = w.transpose().unwrap();
        let (dense, s1) = linear_scatter_t(&input, &wt).unwrap();
        let events = SpikeBatch::from_dense(&input).unwrap();
        let (sparse, s2) = linear_scatter_events(&events, &wt).unwrap();
        assert_eq!(dense, sparse);
        assert_eq!(s1, s2);
        assert_eq!(s1, 4 * 3); // 4 non-zeros × 3 outputs
        let reference = matmul_a_bt(&input, &w).unwrap();
        assert!(dense.all_close(&reference, 1e-6));
    }

    #[test]
    fn linear_acc_variants_accumulate_in_place() {
        let input =
            Tensor::from_vec([2, 4], vec![1.0, 0.0, 0.5, 0.0, 0.0, 2.0, 0.0, -1.0]).unwrap();
        let w = Tensor::from_fn([3, 4], |i| (i[0] * 4 + i[1]) as f32 * 0.1 - 0.2);
        let wt = w.transpose().unwrap();
        let base = Tensor::from_fn([2, 3], |i| (i[0] * 3 + i[1]) as f32 * 0.25);
        // The acc variants must equal "target += each contribution in
        // order" — which is exactly what running the plain kernel on a
        // copy of the target as output would compute.
        let mut want = base.clone();
        let want_synops = linear_scatter_loop(want.data_mut(), input.data(), wt.data(), 2, 4, 3);
        let mut dense_acc = base.clone();
        let s1 = linear_scatter_t_acc(&input, &wt, &mut dense_acc).unwrap();
        assert_eq!(dense_acc, want);
        assert_eq!(s1, want_synops);
        let events = SpikeBatch::from_dense(&input).unwrap();
        let mut event_acc = base.clone();
        let s2 = linear_scatter_events_acc(&events, &wt, &mut event_acc).unwrap();
        assert_eq!(event_acc, want);
        assert_eq!(s2, want_synops);
        // Shape validation.
        assert!(linear_scatter_t_acc(&input, &wt, &mut Tensor::zeros([2, 4])).is_err());
        assert!(linear_scatter_events_acc(&events, &wt, &mut Tensor::zeros([3, 3])).is_err());
    }

    #[test]
    fn conv_acc_variants_accumulate_in_place() {
        let spec = Conv2dSpec::new(1, 1);
        let input = sparse_input(2, 3, 6, 6).to_position_major().unwrap();
        let w = weight(4, 3, 3);
        let wt = transpose_filter(&w).unwrap();
        let base = Tensor::from_fn([2, 6, 6, 4], |i| (i[0] + i[1] + i[2]) as f32 * 0.01);
        let (fresh, synops_ref) = conv2d_scatter_pm(&input, &wt, (3, 3), spec).unwrap();
        let _ = fresh;
        let mut dense_acc = base.clone();
        let s1 = conv2d_scatter_pm_acc(&input, &wt, (3, 3), spec, &mut dense_acc).unwrap();
        let events = SpikeBatch::from_dense(&input).unwrap();
        let mut event_acc = base.clone();
        let s2 = conv2d_scatter_events_pm_acc(&events, &wt, (3, 3), spec, &mut event_acc).unwrap();
        assert_eq!(dense_acc, event_acc);
        assert_eq!(s1, synops_ref);
        assert_eq!(s2, synops_ref);
        // Accumulation really starts from the base values.
        assert_ne!(
            dense_acc,
            conv2d_scatter_pm(&input, &wt, (3, 3), spec).unwrap().0
        );
        // Shape validation.
        assert!(
            conv2d_scatter_pm_acc(&input, &wt, (3, 3), spec, &mut Tensor::zeros([2, 6, 6, 3]))
                .is_err()
        );
    }

    #[test]
    fn kernels_validate_shapes() {
        let w = weight(2, 3, 3);
        let wt = transpose_filter(&w).unwrap();
        assert!(conv2d_scatter(&Tensor::zeros([1, 2, 4, 4]), &w, Conv2dSpec::default()).is_err());
        assert!(conv2d_scatter(&Tensor::zeros([2, 4, 4]), &w, Conv2dSpec::default()).is_err());
        assert!(conv2d_scatter_t(
            &Tensor::zeros([1, 2, 4, 4]),
            &wt,
            (3, 3),
            Conv2dSpec::default()
        )
        .is_err());
        assert!(conv2d_scatter_pm(
            &Tensor::zeros([1, 4, 4, 2]),
            &wt,
            (3, 3),
            Conv2dSpec::default()
        )
        .is_err());
        let events = SpikeBatch::from_dense(&Tensor::zeros([1, 4, 4, 2])).unwrap();
        assert!(conv2d_scatter_events_pm(&events, &wt, (3, 3), Conv2dSpec::default()).is_err());
        assert!(conv2d_gemm(&Tensor::zeros([1, 2, 4, 4]), &w, Conv2dSpec::default()).is_err());
        assert!(linear_scatter_t(&Tensor::zeros([1, 3]), &Tensor::zeros([4, 2])).is_err());
        let events = SpikeBatch::from_dense(&Tensor::zeros([1, 3])).unwrap();
        assert!(linear_scatter_events(&events, &Tensor::zeros([4, 2])).is_err());
        assert!(transpose_filter(&Tensor::zeros([2, 3])).is_err());
        assert!(reorder_filter_taps(&Tensor::zeros([2, 3])).is_err());
    }

    #[test]
    fn event_avg_pool_is_bit_identical_to_dense_pm_pool() {
        for &(window, stride) in &[(2usize, 2usize), (2, 1), (3, 2)] {
            let input = sparse_input(2, 3, 7, 6).to_position_major().unwrap();
            let events = SpikeBatch::from_dense(&input).unwrap();
            let mut pooled = SpikeBatch::empty();
            let mut scratch = PoolScratch::new();
            avg_pool2d_events(&events, window, stride, &mut pooled, &mut scratch).unwrap();
            let dense = avg_pool2d_pm(&input, window, stride).unwrap();
            assert_eq!(pooled.to_dense(), dense, "window={window} stride={stride}");
        }
        assert!(avg_pool2d_events(
            &SpikeBatch::from_dense(&Tensor::zeros([1, 4])).unwrap(),
            2,
            2,
            &mut SpikeBatch::empty(),
            &mut PoolScratch::new()
        )
        .is_err());
    }

    #[test]
    fn event_max_pool_matches_densify_then_gated_dense_pool() {
        // The oracle the TTFS engine relies on: first-spike-wins pooling
        // over events, step by step, is bitwise what densify →
        // max_pool2d_pm → gate computes.
        let mut gate_ev = Tensor::zeros([2, 3, 2, 3]);
        let mut gate_dn = gate_ev.clone();
        let mut scratch = PoolScratch::new();
        let mut pooled = SpikeBatch::empty();
        for step in 0..4u64 {
            // A different sparse positive spike pattern per step.
            let spikes = Tensor::from_fn([2, 7, 5, 3], |i| {
                let key = i[0] * 131 + i[1] * 17 + i[2] * 5 + i[3] + step as usize * 37;
                if key.is_multiple_of(6) {
                    (key % 9) as f32 * 0.2 + 0.1
                } else {
                    0.0
                }
            });
            let events = SpikeBatch::from_dense(&spikes).unwrap();
            max_pool2d_events(&events, 2, 2, &mut gate_ev, &mut pooled, &mut scratch).unwrap();
            let dense = max_pool2d_pm_gated(&spikes, 2, 2, &mut gate_dn).unwrap();
            assert_eq!(pooled.to_dense(), dense, "step {step}");
            assert_eq!(gate_ev, gate_dn, "step {step}");
        }
        // Every window fires at most once over the whole run.
        assert!(gate_ev.iter().all(|&g| g == 0.0 || g == 1.0));
        // Shape validation.
        let events = SpikeBatch::from_dense(&Tensor::zeros([1, 4, 4, 2])).unwrap();
        assert!(max_pool2d_events(
            &events,
            2,
            2,
            &mut Tensor::zeros([1, 2, 2, 3]),
            &mut SpikeBatch::empty(),
            &mut PoolScratch::new()
        )
        .is_err());
    }

    #[test]
    fn kernel_larger_than_input_yields_empty_output() {
        // oh = ow = 0: the scatter paths must return the empty tensor,
        // not panic.
        let spec = Conv2dSpec::new(1, 0);
        let mut input = Tensor::zeros([1, 2, 2, 1]);
        input.set(&[0, 1, 1, 0], 1.0).unwrap();
        let w = weight(2, 1, 3);
        let wt = transpose_filter(&w).unwrap();
        let (out, synops) = conv2d_scatter_pm(&input, &wt, (3, 3), spec).unwrap();
        assert_eq!(out.dims(), &[1, 0, 0, 2]);
        assert_eq!(synops, 0);
        let events = SpikeBatch::from_dense(&input).unwrap();
        let (out, synops) = conv2d_scatter_events_pm(&events, &wt, (3, 3), spec).unwrap();
        assert_eq!(out.dims(), &[1, 0, 0, 2]);
        assert_eq!(synops, 0);
    }

    #[test]
    fn zero_input_is_free() {
        let w = weight(2, 1, 3);
        let wt = transpose_filter(&w).unwrap();
        let (out, synops) = conv2d_scatter_pm(
            &Tensor::zeros([1, 4, 4, 1]),
            &wt,
            (3, 3),
            Conv2dSpec::new(1, 1),
        )
        .unwrap();
        assert_eq!(synops, 0);
        assert_eq!(out.sum(), 0.0);
    }
}
