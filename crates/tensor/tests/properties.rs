//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use std::sync::Mutex;
use t2fsnn_tensor::{init, ops, simd, Shape, Tensor};

/// Serializes the tests that toggle the global SIMD dispatch so one
/// test's forced mode cannot make another's on-vs-off comparison
/// vacuous (flipping the mode never changes results — that is the
/// property — but each comparison should genuinely run both paths).
static SIMD_GATE: Mutex<()> = Mutex::new(());

/// Runs `f` with SIMD dispatch forced to `on`, restoring the previous
/// state afterwards.
fn with_simd<T>(on: bool, f: impl FnOnce() -> T) -> T {
    let prev = simd::set_enabled(on);
    let out = f();
    simd::set_enabled(prev);
    out
}

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

fn tensor_with(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = dims.iter().product();
    prop::collection::vec(-10.0f32..10.0, n..=n)
        .prop_map(move |data| Tensor::from_vec(Shape::from(dims.clone()), data).unwrap())
}

fn arbitrary_tensor() -> impl Strategy<Value = Tensor> {
    small_dims().prop_flat_map(tensor_with)
}

/// Naive quadruple-loop convolution backward: the oracle for the blocked
/// GEMM backward pass. Returns `(grad_input, grad_weight, grad_bias)`.
fn conv2d_backward_naive(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: ops::Conv2dSpec,
) -> (Tensor, Tensor, Tensor) {
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let (o, _, kh, kw) = (
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
    );
    let (oh, ow) = (spec.output_dim(h, kh), spec.output_dim(w, kw));
    let mut gi = Tensor::zeros(input.shape().clone());
    let mut gw = Tensor::zeros(weight.shape().clone());
    let mut gb = Tensor::zeros([o]);
    for ni in 0..n {
        for oc in 0..o {
            for oi in 0..oh {
                for oj in 0..ow {
                    let g = grad_out[&[ni, oc, oi, oj][..]];
                    gb.data_mut()[oc] += g;
                    for ci in 0..c {
                        for ki in 0..kh {
                            for kj in 0..kw {
                                let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                                let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                                if ii < 0 || jj < 0 || ii >= h as isize || jj >= w as isize {
                                    continue;
                                }
                                let x = input[&[ni, ci, ii as usize, jj as usize][..]];
                                let wv = weight[&[oc, ci, ki, kj][..]];
                                let widx = ((oc * c + ci) * kh + ki) * kw + kj;
                                gw.data_mut()[widx] += g * x;
                                let iidx = ((ni * c + ci) * h + ii as usize) * w + jj as usize;
                                gi.data_mut()[iidx] += g * wv;
                            }
                        }
                    }
                }
            }
        }
    }
    (gi, gw, gb)
}

/// Reference triple loop: the oracle for the blocked GEMM family.
fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    Tensor::from_fn(Shape::from(vec![m, n]), |idx| {
        (0..k)
            .map(|p| a.data()[idx[0] * k + p] * b.data()[p * n + idx[1]])
            .sum()
    })
}

proptest! {
    #[test]
    fn blocked_matmul_family_matches_naive_oracle(
        m in 1usize..18,
        k in 1usize..40,
        n in 1usize..18,
        seed in 0u32..1000,
    ) {
        // Odd, non-multiple-of-tile shapes exercise every remainder path
        // of the register-blocked kernels (rows % 4, cols % 2, k % 8).
        let a = Tensor::from_fn(Shape::from(vec![m, k]), |i| {
            (((i[0] * 31 + i[1] * 7 + seed as usize) % 19) as f32) * 0.13 - 1.1
        });
        let b = Tensor::from_fn(Shape::from(vec![k, n]), |i| {
            (((i[0] * 13 + i[1] * 5 + seed as usize) % 23) as f32) * 0.09 - 0.9
        });
        let want = matmul_naive(&a, &b);
        prop_assert!(ops::matmul(&a, &b).unwrap().all_close(&want, 1e-5));
        let at = a.transpose().unwrap();
        prop_assert!(ops::matmul_at_b(&at, &b).unwrap().all_close(&want, 1e-5));
        let bt = b.transpose().unwrap();
        prop_assert!(ops::matmul_a_bt(&a, &bt).unwrap().all_close(&want, 1e-5));
    }

    #[test]
    fn sparse_conv_paths_are_bit_identical(
        c in 1usize..4,
        h in 3usize..9,
        w in 3usize..9,
        o in 1usize..6,
        stride in 1usize..3,
        padding in 0usize..2,
        density in 0.0f64..0.6,
        seed in 0u32..1000,
    ) {
        let spec = ops::Conv2dSpec::new(stride, padding);
        let input = Tensor::from_fn(Shape::from(vec![2, c, h, w]), |i| {
            let key = i[0] * 7919 + i[1] * 811 + i[2] * 53 + i[3] * 7 + seed as usize;
            if ((key % 1000) as f64) < density * 1000.0 {
                ((key % 9) as f32) * 0.4 - 1.2
            } else {
                0.0
            }
        });
        let weight = Tensor::from_fn(Shape::from(vec![o, c, 3, 3]), |i| {
            (((i[0] * 9 + i[1] * 3 + i[2] + i[3] + seed as usize) % 11) as f32) * 0.1 - 0.5
        });
        let filter_t = ops::sparse::transpose_filter(&weight).unwrap();
        // Channel-major reference walk, canonical (y, x, c) order.
        let (dense_cm, s1) = ops::sparse::conv2d_scatter(&input, &weight, spec).unwrap();
        // Position-major dense walk and event scatter.
        let input_pm = input.to_position_major().unwrap();
        let (dense_pm, s_pm) =
            ops::sparse::conv2d_scatter_pm(&input_pm, &filter_t, (3, 3), spec).unwrap();
        let events = t2fsnn_tensor::SpikeBatch::from_dense(&input_pm).unwrap();
        let (sparse_pm, s2) =
            ops::sparse::conv2d_scatter_events_pm(&events, &filter_t, (3, 3), spec).unwrap();
        prop_assert_eq!(&dense_pm, &sparse_pm);
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(s1, s_pm);
        // Cross-layout identity: same bits in permuted storage.
        prop_assert_eq!(&dense_pm.to_channel_major().unwrap(), &dense_cm);
        // The im2col reference agrees to fp tolerance.
        let reference = ops::conv2d(&input, &weight, &Tensor::zeros([o]), spec).unwrap();
        prop_assert!(dense_cm.all_close(&reference, 1e-4));
    }

    #[test]
    fn conv_backward_matches_naive_loops_and_is_worker_invariant(
        n in 1usize..4,
        c in 1usize..3,
        h in 3usize..7,
        w in 3usize..7,
        o in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        seed in 0u32..500,
    ) {
        // Odd, non-tile-aligned shapes exercise the blocked GEMM
        // remainder paths inside the backward pass.
        let spec = ops::Conv2dSpec::new(stride, padding);
        let input = Tensor::from_fn(Shape::from(vec![n, c, h, w]), |i| {
            (((i[0] * 131 + i[1] * 31 + i[2] * 7 + i[3] + seed as usize) % 17) as f32) * 0.11 - 0.8
        });
        let weight = Tensor::from_fn(Shape::from(vec![o, c, 3, 3]), |i| {
            (((i[0] * 27 + i[1] * 9 + i[2] * 3 + i[3] + seed as usize) % 13) as f32) * 0.1 - 0.6
        });
        let oh = spec.output_dim(h, 3);
        let ow = spec.output_dim(w, 3);
        prop_assume!(oh > 0 && ow > 0);
        let gout = Tensor::from_fn(Shape::from(vec![n, o, oh, ow]), |i| {
            (((i[0] * 53 + i[1] * 11 + i[2] * 3 + i[3] + seed as usize) % 7) as f32) * 0.3 - 0.9
        });
        let (gi, gw, gb) = ops::conv2d_backward(&input, &weight, &gout, spec).unwrap();
        // Naive quadruple-loop oracle for all three gradients.
        let (ngi, ngw, ngb) = conv2d_backward_naive(&input, &weight, &gout, spec);
        prop_assert!(gi.all_close(&ngi, 1e-3));
        prop_assert!(gw.all_close(&ngw, 1e-3));
        prop_assert!(gb.all_close(&ngb, 1e-3));
        // The deterministic-parallelism contract: bit-identical gradients
        // for every worker count (this is what `T2FSNN_THREADS` feeds).
        let serial =
            ops::conv2d_backward_on(&input, &weight, &gout, spec, &t2fsnn_tensor::ThreadPool::new(1))
                .unwrap();
        for workers in [2usize, 4] {
            let parallel = ops::conv2d_backward_on(
                &input,
                &weight,
                &gout,
                spec,
                &t2fsnn_tensor::ThreadPool::new(workers),
            )
            .unwrap();
            prop_assert_eq!(&serial.0, &parallel.0, "grad_input, workers={}", workers);
            prop_assert_eq!(&serial.1, &parallel.1, "grad_weight, workers={}", workers);
            prop_assert_eq!(&serial.2, &parallel.2, "grad_bias, workers={}", workers);
        }
        prop_assert_eq!(&gi, &serial.0);
        prop_assert_eq!(&gw, &serial.1);
        prop_assert_eq!(&gb, &serial.2);
    }

    /// SIMD dispatch must never change a bit: the AVX2 kernels vectorize
    /// across independent output elements only, so on odd/unaligned
    /// shapes (every remainder path) the blocked matmul family returns
    /// exactly the scalar fallback's results. (On hardware without AVX2
    /// both runs take the scalar path and the comparison is trivially
    /// true — the CI `T2FSNN_SIMD=0` leg is what keeps the scalar path
    /// covered on AVX2 machines.)
    #[test]
    fn simd_matmul_family_is_bit_identical_to_scalar(
        m in 1usize..18,
        k in 1usize..40,
        n in 1usize..18,
        seed in 0u32..1000,
    ) {
        let _gate = SIMD_GATE.lock().unwrap();
        let a = Tensor::from_fn(Shape::from(vec![m, k]), |i| {
            (((i[0] * 7 + i[1] * 13 + seed as usize) % 23) as f32) * 0.11 - 1.2
        });
        let b = Tensor::from_fn(Shape::from(vec![k, n]), |i| {
            (((i[0] * 17 + i[1] * 5 + seed as usize) % 19) as f32) * 0.13 - 1.1
        });
        let x = Tensor::from_fn(Shape::from(vec![k]), |i| {
            (((i[0] * 29 + seed as usize) % 13) as f32) * 0.17 - 1.0
        });
        let at = a.transpose().unwrap();
        let bt = b.transpose().unwrap();
        let run = || {
            (
                ops::matmul(&a, &b).unwrap(),
                ops::matmul_at_b(&at, &b).unwrap(),
                ops::matmul_a_bt(&a, &bt).unwrap(),
                ops::matvec(&a, &x).unwrap(),
            )
        };
        let scalar = with_simd(false, run);
        let vector = with_simd(true, run);
        prop_assert_eq!(&scalar.0, &vector.0, "matmul");
        prop_assert_eq!(&scalar.1, &vector.1, "matmul_at_b");
        prop_assert_eq!(&scalar.2, &vector.2, "matmul_a_bt");
        prop_assert_eq!(&scalar.3, &vector.3, "matvec");
    }

    /// SIMD on-vs-off bit-identity for the event/dense scatter kernels
    /// (conv + linear, dense walks and event lists) on random sparse
    /// signals at odd shapes.
    #[test]
    fn simd_scatter_kernels_are_bit_identical_to_scalar(
        c in 1usize..4,
        h in 3usize..9,
        w in 3usize..9,
        o in 1usize..7,
        stride in 1usize..3,
        padding in 0usize..2,
        density in 0.0f64..0.6,
        seed in 0u32..1000,
    ) {
        let _gate = SIMD_GATE.lock().unwrap();
        let spec = ops::Conv2dSpec::new(stride, padding);
        let input_pm = Tensor::from_fn(Shape::from(vec![2, h, w, c]), |i| {
            let key = i[0] * 7919 + i[1] * 811 + i[2] * 53 + i[3] * 7 + seed as usize;
            if ((key % 1000) as f64) < density * 1000.0 {
                ((key % 9) as f32) * 0.4 - 1.2
            } else {
                0.0
            }
        });
        let weight = Tensor::from_fn(Shape::from(vec![o, c, 3, 3]), |i| {
            (((i[0] * 9 + i[1] * 3 + i[2] + i[3] + seed as usize) % 11) as f32) * 0.1 - 0.5
        });
        let filter_t = ops::sparse::transpose_filter(&weight).unwrap();
        let events = t2fsnn_tensor::SpikeBatch::from_dense(&input_pm).unwrap();
        let flat = input_pm.reshape([2, h * w * c]).unwrap();
        let weight_t = Tensor::from_fn(Shape::from(vec![h * w * c, o]), |i| {
            (((i[0] * 3 + i[1] * 7 + seed as usize) % 17) as f32) * 0.09 - 0.7
        });
        let run = || {
            (
                ops::sparse::conv2d_scatter_pm(&input_pm, &filter_t, (3, 3), spec).unwrap(),
                ops::sparse::conv2d_scatter_events_pm(&events, &filter_t, (3, 3), spec).unwrap(),
                ops::sparse::linear_scatter_t(&flat, &weight_t).unwrap(),
                ops::sparse::linear_scatter_events(&events, &weight_t).unwrap(),
            )
        };
        let scalar = with_simd(false, run);
        let vector = with_simd(true, run);
        prop_assert_eq!(&scalar.0.0, &vector.0.0, "conv dense walk");
        prop_assert_eq!(&scalar.1.0, &vector.1.0, "conv event scatter");
        prop_assert_eq!(&scalar.2.0, &vector.2.0, "linear dense");
        prop_assert_eq!(&scalar.3.0, &vector.3.0, "linear events");
    }

    /// SIMD on-vs-off identity of the threshold scan (the fire-phase
    /// primitive): same hit indices in the same ascending order, for
    /// thresholds that do and do not exactly equal stored values.
    #[test]
    fn simd_threshold_scan_is_identical_to_scalar(
        len in 0usize..70,
        threshold_step in 0usize..9,
        seed in 0u32..1000,
    ) {
        let _gate = SIMD_GATE.lock().unwrap();
        // Values on a coarse grid so `threshold` frequently hits exact
        // equality (the `>=` edge).
        let data: Vec<f32> = (0..len)
            .map(|i| (((i * 7 + seed as usize) % 9) as f32) * 0.25 - 1.0)
            .collect();
        let threshold = threshold_step as f32 * 0.25 - 1.0;
        let scan = || {
            let mut hits = Vec::new();
            simd::collect_ge(&data, threshold, &mut hits);
            hits
        };
        let scalar = with_simd(false, scan);
        let vector = with_simd(true, scan);
        prop_assert_eq!(scalar, vector);
    }

    #[test]
    fn flat_multi_index_round_trip(dims in small_dims(), seed in 0usize..1000) {
        let shape = Shape::from(dims);
        let flat = seed % shape.numel();
        let multi = shape.multi_index(flat).unwrap();
        prop_assert_eq!(shape.flat_index(&multi), Some(flat));
    }

    #[test]
    fn add_is_commutative(t in arbitrary_tensor()) {
        let u = t.map(|x| x * 0.5 + 1.0);
        let ab = t.add(&u).unwrap();
        let ba = u.add(&t).unwrap();
        prop_assert!(ab.all_close(&ba, 1e-6));
    }

    #[test]
    fn sub_then_add_round_trips(t in arbitrary_tensor()) {
        let u = t.map(|x| x - 3.0);
        let back = t.sub(&u).unwrap().add(&u).unwrap();
        prop_assert!(back.all_close(&t, 1e-4));
    }

    #[test]
    fn scale_distributes_over_add(t in arbitrary_tensor(), alpha in -5.0f32..5.0) {
        let u = t.map(|x| x * 0.25);
        let lhs = t.add(&u).unwrap().scale(alpha);
        let rhs = t.scale(alpha).add(&u.scale(alpha)).unwrap();
        prop_assert!(lhs.all_close(&rhs, 1e-3));
    }

    #[test]
    fn reshape_preserves_sum(t in arbitrary_tensor()) {
        let flat = t.reshape([t.numel()]).unwrap();
        prop_assert!((flat.sum() - t.sum()).abs() < 1e-4);
    }

    #[test]
    fn sum_bounded_by_extremes(t in arbitrary_tensor()) {
        let n = t.numel() as f32;
        prop_assert!(t.sum() <= t.max() * n + 1e-3);
        prop_assert!(t.sum() >= t.min() * n - 1e-3);
    }

    #[test]
    fn argmax_points_at_max(t in arbitrary_tensor()) {
        let i = t.argmax().unwrap();
        prop_assert_eq!(t.data()[i], t.max());
    }

    #[test]
    fn relu_is_idempotent_and_nonnegative(t in arbitrary_tensor()) {
        let r = ops::relu(&t);
        prop_assert!(r.iter().all(|&x| x >= 0.0));
        prop_assert!(ops::relu(&r).all_close(&r, 0.0));
    }

    #[test]
    fn softmax_rows_are_distributions(
        rows in 1usize..4,
        cols in 1usize..6,
        seed in prop::collection::vec(-20.0f32..20.0, 1..24)
    ) {
        let n = rows * cols;
        let data: Vec<f32> = (0..n).map(|i| seed[i % seed.len()]).collect();
        let t = Tensor::from_vec([rows, cols], data).unwrap();
        let s = ops::softmax(&t).unwrap();
        for r in 0..rows {
            let sum: f32 = s.data()[r * cols..(r + 1) * cols].iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_is_linear_in_first_argument(
        m in 1usize..4, k in 1usize..4, n in 1usize..4, alpha in -3.0f32..3.0
    ) {
        let mut rng = rand::rngs::mock::StepRng::new(7, 13);
        use rand::Rng;
        let rand_t = |r: &mut rand::rngs::mock::StepRng, rows: usize, cols: usize| {
            Tensor::from_vec(
                [rows, cols],
                (0..rows * cols).map(|_| (r.gen::<u32>() % 17) as f32 / 8.0 - 1.0).collect(),
            ).unwrap()
        };
        let a = rand_t(&mut rng, m, k);
        let b = rand_t(&mut rng, k, n);
        let lhs = ops::matmul(&a.scale(alpha), &b).unwrap();
        let rhs = ops::matmul(&a, &b).unwrap().scale(alpha);
        prop_assert!(lhs.all_close(&rhs, 1e-3));
    }

    #[test]
    fn conv_is_linear_in_input(
        c in 1usize..3, hw in 3usize..6, o in 1usize..3, alpha in -2.0f32..2.0
    ) {
        let spec = ops::Conv2dSpec::new(1, 1);
        let input = Tensor::from_fn([1, c, hw, hw], |i| ((i[1] + i[2] * i[3]) % 5) as f32 * 0.2);
        let weight = Tensor::from_fn([o, c, 3, 3], |i| ((i[0] + i[2] + i[3]) % 3) as f32 * 0.1 - 0.1);
        let bias = Tensor::zeros([o]);
        let lhs = ops::conv2d(&input.scale(alpha), &weight, &bias, spec).unwrap();
        let rhs = ops::conv2d(&input, &weight, &bias, spec).unwrap().scale(alpha);
        prop_assert!(lhs.all_close(&rhs, 1e-3));
    }

    #[test]
    fn avg_pool_preserves_global_mean_when_exact(
        c in 1usize..3, half in 1usize..4
    ) {
        // When the window tiles the input exactly, the pooled mean equals
        // the input mean.
        let hw = half * 2;
        let input = Tensor::from_fn([1, c, hw, hw], |i| (i[1] * 7 + i[2] * 3 + i[3]) as f32 * 0.1);
        let pooled = ops::avg_pool2d(&input, 2, 2).unwrap();
        prop_assert!((pooled.mean() - input.mean()).abs() < 1e-4);
    }

    #[test]
    fn max_pool_never_decreases_max(c in 1usize..3, half in 1usize..4) {
        let hw = half * 2;
        let input = Tensor::from_fn([1, c, hw, hw], |i| ((i[1] * 13 + i[2] * 5 + i[3] * 2) % 11) as f32);
        let (pooled, _) = ops::max_pool2d(&input, 2, 2).unwrap();
        prop_assert_eq!(pooled.max(), input.max());
        prop_assert!(pooled.min() >= input.min());
    }

    #[test]
    fn he_init_std_tracks_fan_in(fan_in in 1usize..512) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(fan_in as u64);
        let t = init::he_normal(&mut rng, [4096], fan_in);
        let expect = (2.0 / fan_in as f32).sqrt();
        let std = t.map(|x| x * x).mean().sqrt();
        prop_assert!((std - expect).abs() < expect * 0.2 + 1e-3);
    }

    #[test]
    fn stack_then_index_round_trips(dims in small_dims(), n in 1usize..4) {
        let parts: Vec<Tensor> = (0..n)
            .map(|i| Tensor::from_fn(Shape::from(dims.clone()), |idx| {
                (i * 100 + idx.iter().sum::<usize>()) as f32
            }))
            .collect();
        let stacked = Tensor::stack(&parts).unwrap();
        for (i, part) in parts.iter().enumerate() {
            prop_assert_eq!(&stacked.index_axis0(i).unwrap(), part);
        }
    }
}
