//! Property-based tests for the synthetic dataset generator.

use proptest::prelude::*;
use t2fsnn_data::{DatasetSpec, DatasetStats, SyntheticConfig};

fn small_spec() -> impl Strategy<Value = DatasetSpec> {
    (1usize..3, 4usize..12, 4usize..12, 2usize..6)
        .prop_map(|(c, h, w, k)| DatasetSpec::new("prop", c, h, w, k))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pixels_always_in_unit_range(spec in small_spec(), seed in 0u64..1000) {
        let ds = SyntheticConfig::new(spec, seed).generate(12);
        prop_assert!(ds.images.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn generation_is_deterministic(spec in small_spec(), seed in 0u64..1000) {
        let a = SyntheticConfig::new(spec.clone(), seed).generate(8);
        let b = SyntheticConfig::new(spec, seed).generate(8);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn labels_below_class_count(spec in small_spec(), seed in 0u64..1000) {
        let classes = spec.classes;
        let ds = SyntheticConfig::new(spec, seed).generate(20);
        prop_assert!(ds.labels.iter().all(|&y| y < classes));
    }

    #[test]
    fn round_robin_balance_is_tight(spec in small_spec(), n in 1usize..40) {
        let ds = SyntheticConfig::new(spec, 5).generate(n);
        let counts = ds.class_counts();
        let max = counts.iter().max().copied().unwrap_or(0);
        let min = counts.iter().min().copied().unwrap_or(0);
        prop_assert!(max - min <= 1, "round-robin must differ by at most 1: {counts:?}");
    }

    #[test]
    fn split_preserves_every_sample(spec in small_spec(), n in 2usize..24, at_frac in 0.0f32..1.0) {
        let ds = SyntheticConfig::new(spec, 9).generate(n);
        let at = ((n as f32 * at_frac) as usize).min(n);
        let (a, b) = ds.split(at);
        prop_assert_eq!(a.len() + b.len(), n);
        for i in 0..a.len() {
            prop_assert_eq!(a.sample(i).1, ds.sample(i).1);
        }
        for i in 0..b.len() {
            prop_assert_eq!(b.sample(i).1, ds.sample(at + i).1);
        }
    }

    #[test]
    fn batches_partition_in_order(n in 1usize..30, batch in 1usize..10) {
        let ds = SyntheticConfig::new(DatasetSpec::tiny(), 2).generate(n);
        let mut seen = Vec::new();
        for (images, labels) in ds.batches(batch) {
            prop_assert_eq!(images.dims()[0], labels.len());
            prop_assert!(labels.len() <= batch);
            seen.extend(labels);
        }
        prop_assert_eq!(seen, ds.labels);
    }

    #[test]
    fn stats_are_finite_and_consistent(seed in 0u64..500) {
        let ds = SyntheticConfig::new(DatasetSpec::tiny(), seed).generate(16);
        let stats = DatasetStats::compute(&ds);
        prop_assert!(stats.pixel_mean.is_finite());
        prop_assert!(stats.pixel_std >= 0.0);
        prop_assert!(stats.pixel_min <= stats.pixel_mean);
        prop_assert!(stats.pixel_mean <= stats.pixel_max);
        prop_assert_eq!(stats.class_counts.iter().sum::<usize>(), 16);
    }

    #[test]
    fn noise_increases_within_class_variance(seed in 0u64..200) {
        let clean = SyntheticConfig::new(DatasetSpec::tiny(), seed)
            .with_noise(0.0)
            .with_max_shift(0)
            .generate(8);
        let noisy = SyntheticConfig::new(DatasetSpec::tiny(), seed)
            .with_noise(0.15)
            .with_max_shift(0)
            .generate(8);
        // Distance between two same-class samples grows (or stays) with noise.
        let dist = |ds: &t2fsnn_data::Dataset| {
            let (a, _) = ds.sample(0);
            let (b, _) = ds.sample(4);
            a.sub(&b).unwrap().norm_sq()
        };
        prop_assert!(dist(&noisy) + 1e-6 >= dist(&clean) * 0.5);
    }
}
