//! Summary statistics over datasets, used for sanity checks and reports.

use serde::{Deserialize, Serialize};

use crate::synthetic::Dataset;

/// First- and second-moment statistics of a dataset's pixel values plus
/// class balance information.
///
/// # Examples
///
/// ```
/// use t2fsnn_data::{DatasetSpec, DatasetStats, SyntheticConfig};
///
/// let ds = SyntheticConfig::new(DatasetSpec::tiny(), 1).generate(32);
/// let stats = DatasetStats::compute(&ds);
/// assert!(stats.pixel_mean > 0.0 && stats.pixel_mean < 1.0);
/// assert_eq!(stats.class_counts.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Mean over all pixels of all images.
    pub pixel_mean: f32,
    /// Standard deviation over all pixels.
    pub pixel_std: f32,
    /// Smallest pixel value.
    pub pixel_min: f32,
    /// Largest pixel value.
    pub pixel_max: f32,
    /// Samples per class.
    pub class_counts: Vec<usize>,
}

impl DatasetStats {
    /// Computes statistics over every pixel and label of `dataset`.
    pub fn compute(dataset: &Dataset) -> Self {
        let mean = dataset.images.mean();
        let var = dataset.images.map(|x| (x - mean) * (x - mean)).mean();
        DatasetStats {
            pixel_mean: mean,
            pixel_std: var.sqrt(),
            pixel_min: dataset.images.min(),
            pixel_max: dataset.images.max(),
            class_counts: dataset.class_counts(),
        }
    }

    /// Largest relative class imbalance: `max_count/min_count - 1`
    /// (zero for a perfectly balanced dataset).
    ///
    /// Returns `f32::INFINITY` if some class has zero samples.
    pub fn imbalance(&self) -> f32 {
        let max = self.class_counts.iter().copied().max().unwrap_or(0) as f32;
        let min = self.class_counts.iter().copied().min().unwrap_or(0) as f32;
        if min == 0.0 {
            f32::INFINITY
        } else {
            max / min - 1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetSpec;
    use crate::synthetic::SyntheticConfig;

    #[test]
    fn stats_reflect_unit_range() {
        let ds = SyntheticConfig::new(DatasetSpec::tiny(), 11).generate(40);
        let stats = DatasetStats::compute(&ds);
        assert!(stats.pixel_min >= 0.0);
        assert!(stats.pixel_max <= 1.0);
        assert!(stats.pixel_std > 0.0);
    }

    #[test]
    fn balanced_dataset_has_zero_imbalance() {
        let ds = SyntheticConfig::new(DatasetSpec::tiny(), 11).generate(16);
        let stats = DatasetStats::compute(&ds);
        assert_eq!(stats.imbalance(), 0.0);
    }

    #[test]
    fn missing_class_yields_infinite_imbalance() {
        // 3 samples over 4 classes leaves one class empty.
        let ds = SyntheticConfig::new(DatasetSpec::tiny(), 11).generate(3);
        let stats = DatasetStats::compute(&ds);
        assert!(stats.imbalance().is_infinite());
    }
}
