//! Dataset specifications mirroring the benchmarks used in the paper.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Shape and label-space description of an image-classification dataset.
///
/// The paper evaluates on MNIST, CIFAR-10 and CIFAR-100; this reproduction
/// substitutes procedurally generated datasets with identical tensor shapes
/// and class counts (see DESIGN.md §2 for the substitution rationale). The
/// three presets below match those benchmarks.
///
/// # Examples
///
/// ```
/// use t2fsnn_data::DatasetSpec;
///
/// let spec = DatasetSpec::cifar10_like();
/// assert_eq!(spec.image_dims(), [3, 32, 32]);
/// assert_eq!(spec.classes, 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Human-readable dataset name (used in experiment reports).
    pub name: String,
    /// Number of image channels (1 for MNIST-like, 3 for CIFAR-like).
    pub channels: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Image width in pixels.
    pub width: usize,
    /// Number of target classes.
    pub classes: usize,
}

impl DatasetSpec {
    /// Creates a custom specification.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the class count is zero.
    pub fn new(name: &str, channels: usize, height: usize, width: usize, classes: usize) -> Self {
        assert!(
            channels > 0 && height > 0 && width > 0 && classes > 0,
            "dataset dimensions and class count must be positive"
        );
        DatasetSpec {
            name: name.to_string(),
            channels,
            height,
            width,
            classes,
        }
    }

    /// MNIST-shaped: 1×28×28 grayscale, 10 classes.
    pub fn mnist_like() -> Self {
        DatasetSpec::new("mnist-like", 1, 28, 28, 10)
    }

    /// CIFAR-10-shaped: 3×32×32 colour, 10 classes.
    pub fn cifar10_like() -> Self {
        DatasetSpec::new("cifar10-like", 3, 32, 32, 10)
    }

    /// CIFAR-100-shaped: 3×32×32 colour, 100 classes.
    pub fn cifar100_like() -> Self {
        DatasetSpec::new("cifar100-like", 3, 32, 32, 100)
    }

    /// A deliberately tiny spec (1×8×8, 4 classes) for fast unit tests.
    pub fn tiny() -> Self {
        DatasetSpec::new("tiny", 1, 8, 8, 4)
    }

    /// `[channels, height, width]` dims of one image.
    pub fn image_dims(&self) -> [usize; 3] {
        [self.channels, self.height, self.width]
    }

    /// Number of scalar values in one image.
    pub fn image_numel(&self) -> usize {
        self.channels * self.height * self.width
    }
}

impl fmt::Display for DatasetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}x{}x{}, {} classes)",
            self.name, self.channels, self.height, self.width, self.classes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_benchmarks() {
        let m = DatasetSpec::mnist_like();
        assert_eq!(m.image_dims(), [1, 28, 28]);
        assert_eq!(m.classes, 10);

        let c10 = DatasetSpec::cifar10_like();
        assert_eq!(c10.image_dims(), [3, 32, 32]);
        assert_eq!(c10.classes, 10);

        let c100 = DatasetSpec::cifar100_like();
        assert_eq!(c100.image_dims(), [3, 32, 32]);
        assert_eq!(c100.classes, 100);
    }

    #[test]
    fn image_numel_is_product() {
        assert_eq!(DatasetSpec::mnist_like().image_numel(), 784);
        assert_eq!(DatasetSpec::cifar10_like().image_numel(), 3072);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_rejected() {
        let _ = DatasetSpec::new("bad", 0, 8, 8, 2);
    }

    #[test]
    fn display_mentions_name_and_dims() {
        let s = DatasetSpec::tiny().to_string();
        assert!(s.contains("tiny"));
        assert!(s.contains("8x8"));
    }
}
