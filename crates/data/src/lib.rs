//! # t2fsnn-data
//!
//! Synthetic dataset substrate for the [T2FSNN (DAC 2020)] reproduction.
//!
//! The paper evaluates on MNIST, CIFAR-10 and CIFAR-100. Those datasets are
//! not available in this environment, so this crate provides *procedural
//! substitutes* with identical tensor shapes and class counts
//! ([`DatasetSpec::mnist_like`], [`DatasetSpec::cifar10_like`],
//! [`DatasetSpec::cifar100_like`]): each class is a deterministic pattern
//! prototype and each sample a jittered, noisy rendering of it (see
//! [`SyntheticConfig`]). DESIGN.md §2 documents why this substitution
//! preserves the behaviour under study.
//!
//! ## Quick example
//!
//! ```
//! use t2fsnn_data::{DatasetSpec, SyntheticConfig};
//!
//! let ds = SyntheticConfig::new(DatasetSpec::mnist_like(), 42).generate(100);
//! let (train, test) = ds.split(80);
//! assert_eq!(train.len(), 80);
//! for (images, labels) in train.batches(16) {
//!     assert_eq!(images.dims()[0], labels.len());
//! }
//! ```
//!
//! [T2FSNN (DAC 2020)]: https://arxiv.org/abs/2003.11741

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod spec;
mod stats;
mod synthetic;

pub use spec::DatasetSpec;
pub use stats::DatasetStats;
pub use synthetic::{Batches, Dataset, SyntheticConfig};
