//! Procedural class-conditional image synthesis.
//!
//! Substitutes the paper's MNIST/CIFAR benchmarks (see DESIGN.md §2): each
//! class is assigned a deterministic *prototype* — a superposition of an
//! oriented grating, a Gaussian blob and a low-frequency colour ramp, all
//! parameterized from a class-seeded RNG — and each sample is the prototype
//! under a random translation, amplitude jitter and pixel noise. The
//! resulting task is learnable by a small CNN yet non-trivial (classes
//! overlap under noise), which is what the coding-scheme comparison needs:
//! a trained network with a realistic spread of activation values.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use t2fsnn_tensor::Tensor;

use crate::spec::DatasetSpec;

/// Parameters of one class's prototype pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ClassPrototype {
    /// Grating spatial frequency (cycles across the image), per channel.
    freq: Vec<f32>,
    /// Grating orientation in radians, per channel.
    theta: Vec<f32>,
    /// Grating phase, per channel.
    phase: Vec<f32>,
    /// Blob center (row, col) in unit coordinates.
    blob: (f32, f32),
    /// Blob radius in unit coordinates.
    blob_r: f32,
    /// Mixing weights for (grating, blob, ramp).
    mix: (f32, f32, f32),
}

impl ClassPrototype {
    /// Builds class `class`'s prototype on a *separated parameter grid*:
    /// the class index is decomposed into three digits (base ⌈∛K⌉) that
    /// select well-spaced orientation, frequency and blob-position cells.
    /// Purely random draws collide badly at 100 classes (near-duplicate
    /// prototypes make the task unlearnable for a small CNN); the grid
    /// guarantees every pair of classes differs in at least one coarse
    /// attribute, while a class-seeded RNG still jitters within the cell.
    fn for_class(seed: u64, class: usize, total_classes: usize, channels: usize) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(
            seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(class as u64 + 1)),
        );
        let base = (total_classes as f32).cbrt().ceil().max(2.0) as usize;
        let d0 = class % base;
        let d1 = (class / base) % base;
        let d2 = class / (base * base);
        let cell = |d: usize| (d as f32 + 0.5) / base as f32;
        let theta0 = std::f32::consts::PI * cell(d0);
        let freq0 = 1.5 + 4.5 * cell(d1);
        let ring = std::f32::consts::TAU * cell(d2);
        let blob = (0.5 + 0.28 * ring.sin(), 0.5 + 0.28 * ring.cos());
        let freq = (0..channels)
            .map(|_| freq0 + rng.gen_range(-0.2f32..0.2))
            .collect();
        let theta = (0..channels)
            .map(|_| theta0 + rng.gen_range(-0.1f32..0.1))
            .collect();
        let phase = (0..channels)
            .map(|_| rng.gen_range(0.0f32..std::f32::consts::TAU))
            .collect();
        let blob_r = rng.gen_range(0.12f32..0.2);
        let g = rng.gen_range(0.45f32..0.65);
        let b = rng.gen_range(0.35f32..0.55);
        let r = rng.gen_range(0.1f32..0.25);
        ClassPrototype {
            freq,
            theta,
            phase,
            blob,
            blob_r,
            mix: (g, b, r),
        }
    }

    /// Evaluates the noiseless prototype at unit coordinates `(y, x)` for
    /// channel `c`, in `[0, 1]`.
    fn eval(&self, c: usize, y: f32, x: f32) -> f32 {
        let (mg, mb, mr) = self.mix;
        let dir = self.theta[c];
        let u = x * dir.cos() + y * dir.sin();
        let grating = 0.5 + 0.5 * (std::f32::consts::TAU * self.freq[c] * u + self.phase[c]).sin();
        let dy = y - self.blob.0;
        let dx = x - self.blob.1;
        let blob = (-(dx * dx + dy * dy) / (2.0 * self.blob_r * self.blob_r)).exp();
        let ramp = 0.5 * (x + y);
        let v = mg * grating + mb * blob + mr * ramp;
        v.clamp(0.0, 1.0)
    }
}

/// Configuration of the synthetic generator.
///
/// # Examples
///
/// ```
/// use t2fsnn_data::{DatasetSpec, SyntheticConfig};
///
/// let cfg = SyntheticConfig::new(DatasetSpec::tiny(), 7);
/// let ds = cfg.generate(32);
/// assert_eq!(ds.len(), 32);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Dataset shape/classes being synthesized.
    pub spec: DatasetSpec,
    /// Master seed; the same seed always generates the same dataset.
    pub seed: u64,
    /// Standard deviation of additive Gaussian pixel noise.
    pub noise_std: f32,
    /// Maximum circular translation of the prototype, in pixels.
    pub max_shift: usize,
    /// Multiplicative amplitude jitter range `[1-a, 1+a]`.
    pub amplitude_jitter: f32,
}

impl SyntheticConfig {
    /// Creates a configuration with the default difficulty
    /// (noise σ = 0.20, shift ≤ 2 px, amplitude jitter ±0.3).
    ///
    /// The defaults are deliberately *hard*: heavy pixel noise keeps the
    /// class-conditional logit gaps small, which is what forces rate-coded
    /// SNNs into long integration windows — the regime the paper's
    /// latency comparisons live in. (A clean, trivially separable task
    /// would let rate coding converge in tens of steps and invert the
    /// paper's orderings.)
    pub fn new(spec: DatasetSpec, seed: u64) -> Self {
        SyntheticConfig {
            spec,
            seed,
            noise_std: 0.20,
            max_shift: 2,
            amplitude_jitter: 0.3,
        }
    }

    /// Builder-style override of the pixel-noise level.
    pub fn with_noise(mut self, noise_std: f32) -> Self {
        self.noise_std = noise_std;
        self
    }

    /// Builder-style override of the maximum translation.
    pub fn with_max_shift(mut self, max_shift: usize) -> Self {
        self.max_shift = max_shift;
        self
    }

    /// Generates `n` labeled samples with round-robin class balance.
    ///
    /// Determinism: the pair `(seed, n)` fully determines the dataset.
    pub fn generate(&self, n: usize) -> Dataset {
        let spec = &self.spec;
        let prototypes: Vec<ClassPrototype> = (0..spec.classes)
            .map(|k| ClassPrototype::for_class(self.seed, k, spec.classes, spec.channels))
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed.wrapping_add(1));
        let (c, h, w) = (spec.channels, spec.height, spec.width);
        let mut images = Vec::with_capacity(n * spec.image_numel());
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % spec.classes;
            labels.push(class);
            let proto = &prototypes[class];
            let shift_y = rng.gen_range(0..=2 * self.max_shift) as isize - self.max_shift as isize;
            let shift_x = rng.gen_range(0..=2 * self.max_shift) as isize - self.max_shift as isize;
            let amp = 1.0 + rng.gen_range(-self.amplitude_jitter..=self.amplitude_jitter);
            for ci in 0..c {
                for yi in 0..h {
                    for xi in 0..w {
                        let sy = (yi as isize + shift_y).rem_euclid(h as isize) as usize;
                        let sx = (xi as isize + shift_x).rem_euclid(w as isize) as usize;
                        let y = sy as f32 / h as f32;
                        let x = sx as f32 / w as f32;
                        let mut v = amp * proto.eval(ci, y, x);
                        if self.noise_std > 0.0 {
                            // Box–Muller normal draw.
                            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                            let u2: f32 = rng.gen_range(0.0f32..1.0);
                            let z = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
                            v += self.noise_std * z;
                        }
                        images.push(v.clamp(0.0, 1.0));
                    }
                }
            }
        }
        let images = Tensor::from_vec([n, c, h, w], images).expect("sized by construction");
        Dataset {
            spec: spec.clone(),
            images,
            labels,
        }
    }
}

/// An in-memory labeled image dataset.
///
/// Images are stored as one `[N, C, H, W]` tensor with values in `[0, 1]`
/// (the range the paper's data-based normalization assumes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Shape/class metadata.
    pub spec: DatasetSpec,
    /// All images, `[N, C, H, W]`.
    pub images: Tensor,
    /// Class label of every image (`labels.len() == N`).
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Copies sample `i` as a `[C, H, W]` tensor with its label.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn sample(&self, i: usize) -> (Tensor, usize) {
        let img = self
            .images
            .index_axis0(i)
            .expect("index checked by caller contract");
        (img, self.labels[i])
    }

    /// Splits into `(first, rest)` at sample `at` (no shuffling; generation
    /// is already class-balanced round-robin).
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    pub fn split(&self, at: usize) -> (Dataset, Dataset) {
        assert!(at <= self.len(), "split point {at} beyond {}", self.len());
        let take = |range: std::ops::Range<usize>| {
            let parts: Vec<Tensor> = range
                .clone()
                .map(|i| self.images.index_axis0(i).expect("in range"))
                .collect();
            Dataset {
                spec: self.spec.clone(),
                images: if parts.is_empty() {
                    Tensor::zeros([0, self.spec.channels, self.spec.height, self.spec.width])
                } else {
                    Tensor::stack(&parts).expect("same shapes")
                },
                labels: self.labels[range].to_vec(),
            }
        };
        (take(0..at), take(at..self.len()))
    }

    /// Iterates over `(images, labels)` mini-batches of at most
    /// `batch_size` samples, in order.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batches(&self, batch_size: usize) -> Batches<'_> {
        assert!(batch_size > 0, "batch size must be positive");
        Batches {
            dataset: self,
            batch_size,
            cursor: 0,
        }
    }

    /// Returns a copy with samples reordered by `perm` (a permutation of
    /// `0..len`). Used by the trainer for epoch shuffling.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of the right length.
    pub fn permuted(&self, perm: &[usize]) -> Dataset {
        assert_eq!(perm.len(), self.len(), "permutation length mismatch");
        let parts: Vec<Tensor> = perm
            .iter()
            .map(|&i| self.images.index_axis0(i).expect("permutation in range"))
            .collect();
        Dataset {
            spec: self.spec.clone(),
            images: Tensor::stack(&parts).expect("same shapes"),
            labels: perm.iter().map(|&i| self.labels[i]).collect(),
        }
    }

    /// Per-class sample counts, length `spec.classes`.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.spec.classes];
        for &y in &self.labels {
            counts[y] += 1;
        }
        counts
    }
}

/// Iterator over dataset mini-batches; see [`Dataset::batches`].
#[derive(Debug)]
pub struct Batches<'a> {
    dataset: &'a Dataset,
    batch_size: usize,
    cursor: usize,
}

impl Iterator for Batches<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.dataset.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.dataset.len());
        let parts: Vec<Tensor> = (self.cursor..end)
            .map(|i| self.dataset.images.index_axis0(i).expect("in range"))
            .collect();
        let images = Tensor::stack(&parts).expect("same shapes");
        let labels = self.dataset.labels[self.cursor..end].to_vec();
        self.cursor = end;
        Some((images, labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset(n: usize) -> Dataset {
        SyntheticConfig::new(DatasetSpec::tiny(), 3).generate(n)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny_dataset(16);
        let b = tiny_dataset(16);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticConfig::new(DatasetSpec::tiny(), 1).generate(8);
        let b = SyntheticConfig::new(DatasetSpec::tiny(), 2).generate(8);
        assert_ne!(a.images, b.images);
    }

    #[test]
    fn pixels_are_in_unit_range() {
        let ds = tiny_dataset(64);
        assert!(ds.images.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn labels_are_round_robin_balanced() {
        let ds = tiny_dataset(16);
        assert_eq!(ds.class_counts(), vec![4, 4, 4, 4]);
    }

    #[test]
    fn class_prototypes_are_distinct() {
        // Mean images of two classes must differ much more than noise.
        let ds = SyntheticConfig::new(DatasetSpec::tiny(), 5)
            .with_noise(0.0)
            .with_max_shift(0)
            .generate(8);
        let (img0, l0) = ds.sample(0);
        let (img1, l1) = ds.sample(1);
        assert_ne!(l0, l1);
        let diff = img0.sub(&img1).unwrap().map(f32::abs).mean();
        assert!(diff > 0.02, "class prototypes too similar: {diff}");
    }

    #[test]
    fn same_class_samples_are_similar_without_noise() {
        let ds = SyntheticConfig::new(DatasetSpec::tiny(), 5)
            .with_noise(0.0)
            .with_max_shift(0)
            .generate(8);
        let (a, la) = ds.sample(0);
        let (b, lb) = ds.sample(4); // same class, round-robin with 4 classes
        assert_eq!(la, lb);
        // Only amplitude jitter differs.
        let diff = a.sub(&b).unwrap().map(f32::abs).mean();
        assert!(diff < 0.2, "same-class divergence {diff}");
    }

    #[test]
    fn split_partitions_samples() {
        let ds = tiny_dataset(10);
        let (train, test) = ds.split(6);
        assert_eq!(train.len(), 6);
        assert_eq!(test.len(), 4);
        assert_eq!(train.labels[..], ds.labels[..6]);
        assert_eq!(test.sample(0).0, ds.sample(6).0);
    }

    #[test]
    fn batches_cover_dataset_in_order() {
        let ds = tiny_dataset(10);
        let batches: Vec<_> = ds.batches(4).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].0.dims()[0], 4);
        assert_eq!(batches[2].0.dims()[0], 2);
        let all: Vec<usize> = batches.iter().flat_map(|(_, l)| l.clone()).collect();
        assert_eq!(all, ds.labels);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        let ds = tiny_dataset(4);
        let _ = ds.batches(0);
    }

    #[test]
    fn permuted_reorders_samples() {
        let ds = tiny_dataset(4);
        let perm = [3, 2, 1, 0];
        let p = ds.permuted(&perm);
        assert_eq!(p.labels, vec![3, 2, 1, 0]);
        assert_eq!(p.sample(0).0, ds.sample(3).0);
    }

    #[test]
    fn cifar_like_shapes() {
        let ds = SyntheticConfig::new(DatasetSpec::cifar10_like(), 9).generate(4);
        assert_eq!(ds.images.dims(), &[4, 3, 32, 32]);
    }

    #[test]
    fn hundred_class_generation() {
        let ds = SyntheticConfig::new(DatasetSpec::cifar100_like(), 9).generate(200);
        assert_eq!(ds.class_counts(), vec![2; 100]);
    }
}
