//! Property-based tests for the SNN substrate: IF-neuron conservation
//! laws, coding invariants, and event-driven propagation equivalence.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use t2fsnn_dnn::layers::{Conv2d, Flatten, Linear, Pool, PoolKind, Relu};
use t2fsnn_dnn::Network;
use t2fsnn_snn::coding::{BurstCoding, Coding, PhaseCoding, RateCoding, ReverseCoding};
use t2fsnn_snn::{simulate_on, IfState, SimConfig, SimEngine, SnnNetwork, SnnOp};
use t2fsnn_tensor::ops::{conv2d, Conv2dSpec};
use t2fsnn_tensor::{Tensor, ThreadPool};

/// A small random architecture (untrained weights are fine: the
/// properties below assert *equivalence between execution paths*, not
/// accuracy) over 8×8 single-channel inputs.
fn random_network(arch: usize, width: usize, seed: u64) -> Network {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut net = Network::new();
    match arch % 3 {
        0 => {
            net.push("flatten", Flatten::new());
            net.push("fc1", Linear::new(&mut rng, 64, 8 + width));
            net.push("relu1", Relu::new());
            net.push("fc2", Linear::new(&mut rng, 8 + width, 4));
        }
        1 => {
            let c = 2 + width / 2;
            net.push(
                "conv1",
                Conv2d::new(&mut rng, 1, c, 3, Conv2dSpec::new(1, 1)),
            );
            net.push("relu1", Relu::new());
            net.push("pool1", Pool::down2(PoolKind::Avg));
            net.push(
                "conv2",
                Conv2d::new(&mut rng, c, c * 2, 3, Conv2dSpec::new(1, 1)),
            );
            net.push("relu2", Relu::new());
            net.push("pool2", Pool::down2(PoolKind::Avg));
            net.push("flatten", Flatten::new());
            net.push("fc", Linear::new(&mut rng, c * 2 * 4, 4));
        }
        _ => {
            let c = 2 + width;
            net.push(
                "conv1",
                Conv2d::new(&mut rng, 1, c, 3, Conv2dSpec::new(2, 1)),
            );
            net.push("relu1", Relu::new());
            net.push("flatten", Flatten::new());
            net.push("fc", Linear::new(&mut rng, c * 16, 4));
        }
    }
    net
}

fn random_batch(seed: u64, n: usize) -> (Tensor, Vec<usize>) {
    let images = Tensor::from_fn([n, 1, 8, 8], |i| {
        let key = i[0] * 6151 + i[2] * 67 + i[3] * 11 + seed as usize;
        ((key % 97) as f32) / 96.0
    });
    let labels = (0..n).map(|i| (i + seed as usize) % 4).collect();
    (images, labels)
}

/// Every bundled coding in a fresh state.
fn all_codings() -> Vec<Box<dyn Coding>> {
    vec![
        Box::new(RateCoding::new()),
        Box::new(RateCoding::bernoulli(11)),
        Box::new(PhaseCoding::new(4)),
        Box::new(BurstCoding::new(3)),
        Box::new(ReverseCoding::new(8)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole invariant: for every coding and architecture, the
    /// event-driven engine's `SimOutcome` — accuracy curve, spike
    /// counts, synop counts — is identical to the dense reference at
    /// every sparsity threshold, and independent of the worker count.
    #[test]
    fn event_engine_matches_dense_reference(
        arch in 0usize..3,
        width in 0usize..4,
        seed in 0u64..500,
    ) {
        let dnn = random_network(arch, width, seed);
        let snn = SnnNetwork::from_dnn(&dnn).unwrap();
        let (images, labels) = random_batch(seed, 5);
        let serial = ThreadPool::new(1);
        for coding in all_codings() {
            let run = |engine: SimEngine, pool: &ThreadPool| {
                let mut c = coding.boxed_clone();
                simulate_on(
                    &snn,
                    c.as_mut(),
                    &images,
                    &labels,
                    &SimConfig::new(12, 4).with_engine(engine),
                    pool,
                )
                .unwrap()
            };
            let dense = run(SimEngine::dense(), &serial);
            prop_assert!(dense.steps == 12 && dense.curve.len() == 3);
            for threshold in [0.05f32, 0.5, 1.0] {
                let event = run(
                    SimEngine::Event { sparsity_threshold: threshold },
                    &serial,
                );
                prop_assert_eq!(&dense, &event, "coding {} threshold {}", coding.name(), threshold);
            }
            // Worker count must not change a single bit either.
            let parallel = run(SimEngine::default(), &ThreadPool::new(3));
            prop_assert_eq!(&dense, &parallel, "coding {} parallel", coding.name());
        }
    }

    /// SIMD dispatch (runtime AVX2 vs the `T2FSNN_SIMD=0` scalar
    /// fallback) must never change a `SimOutcome` bit — across every
    /// bundled coding, the Dense and Event engines, and worker counts
    /// 1/2/4. The SIMD kernels vectorize across independent output
    /// elements only, so each element's canonical accumulation sequence
    /// is untouched. (Without AVX2 hardware both runs are scalar and the
    /// comparison is trivially true.)
    #[test]
    fn simd_dispatch_never_changes_sim_outcomes(
        arch in 0usize..3,
        width in 0usize..4,
        seed in 0u64..500,
    ) {
        let dnn = random_network(arch, width, seed);
        let snn = SnnNetwork::from_dnn(&dnn).unwrap();
        let (images, labels) = random_batch(seed, 5);
        for coding in all_codings() {
            for engine in [SimEngine::dense(), SimEngine::default()] {
                for workers in [1usize, 2, 4] {
                    let pool = ThreadPool::new(workers);
                    let run = || {
                        let mut c = coding.boxed_clone();
                        simulate_on(
                            &snn,
                            c.as_mut(),
                            &images,
                            &labels,
                            &SimConfig::new(8, 4).with_engine(engine),
                            &pool,
                        )
                        .unwrap()
                    };
                    let prev = t2fsnn_tensor::simd::set_enabled(false);
                    let scalar = run();
                    t2fsnn_tensor::simd::set_enabled(true);
                    let vector = run();
                    t2fsnn_tensor::simd::set_enabled(prev);
                    prop_assert_eq!(
                        &scalar,
                        &vector,
                        "coding {} engine {:?} workers {}",
                        coding.name(),
                        engine,
                        workers
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn if_neuron_conserves_charge(drives in prop::collection::vec(0.0f32..2.0, 1..50)) {
        // Total input = total transmitted (spikes × θ) + residual potential.
        let mut state = IfState::new([1, 1]);
        let mut spikes = 0u64;
        for &d in &drives {
            state.integrate(&Tensor::from_vec([1, 1], vec![d]).unwrap()).unwrap();
            let (_, n) = state.fire_subtract(1.0);
            spikes += n;
        }
        let total_in: f32 = drives.iter().sum();
        let residual = state.potential().data()[0];
        prop_assert!(
            (total_in - (spikes as f32 + residual)).abs() < 1e-3,
            "in={total_in} spikes={spikes} residual={residual}"
        );
    }

    #[test]
    fn rate_spike_count_tracks_value(xi in 1u32..100, steps in 50usize..300) {
        let x = xi as f32 / 100.0;
        let mut coding = RateCoding::new();
        let mut u = Tensor::zeros([1, 1]);
        let mut spikes = 0u64;
        for t in 0..steps {
            u.data_mut()[0] += x;
            let (_, n) = coding.fire(&mut u, t, 0);
            spikes += n;
        }
        let rate = spikes as f32 / steps as f32;
        prop_assert!((rate - x).abs() < 0.05, "rate {rate} vs {x}");
    }

    #[test]
    fn phase_coding_transmits_value_per_period(xi in 0u32..256) {
        // One period of weighted spikes decodes to x within 2^-K.
        let x = xi as f32 / 256.0;
        let mut coding = PhaseCoding::new(8);
        let img = Tensor::from_vec([1, 1], vec![x]).unwrap();
        let mut decoded = 0.0f32;
        for t in 0..8 {
            let (d, _) = coding.encode(&img, t);
            decoded += d.data()[0];
        }
        prop_assert!((decoded - x).abs() <= 1.0 / 256.0 + 1e-6, "{decoded} vs {x}");
    }

    #[test]
    fn burst_transmission_is_conservative(v in 0.0f32..40.0, n_max in 1u32..8) {
        let mut coding = BurstCoding::new(n_max);
        let mut u = Tensor::from_vec([1, 1], vec![v]).unwrap();
        let (s, count) = coding.fire(&mut u, 0, 0);
        // Residual + transmitted = original, and burst length respected.
        prop_assert!((u.data()[0] + s.data()[0] - v).abs() < 1e-4);
        prop_assert!(count <= n_max as u64);
        // Transmitted value matches the geometric formula for the count.
        if count > 0 {
            prop_assert!((s.data()[0] - coding.burst_value(count as u32)).abs() < 1e-5);
        }
    }

    #[test]
    fn reverse_coding_orders_by_value(a in 0.01f32..1.0, b in 0.01f32..1.0) {
        let coding = ReverseCoding::new(64);
        let ta = coding.spike_time(a).unwrap();
        let tb = coding.spike_time(b).unwrap();
        if a < b {
            prop_assert!(ta <= tb, "smaller value must not fire later");
        }
    }

    #[test]
    fn conv_scatter_equals_dense_conv_on_random_spikes(
        positions in prop::collection::vec((0usize..2, 0usize..6, 0usize..6), 0..12),
        stride in 1usize..3,
        padding in 0usize..2,
    ) {
        let weight = Tensor::from_fn([3, 2, 3, 3], |i| {
            ((i[0] * 7 + i[1] * 5 + i[2] * 3 + i[3]) % 11) as f32 * 0.1 - 0.5
        });
        let spec = Conv2dSpec::new(stride, padding);
        let mut input = Tensor::zeros([1, 2, 6, 6]);
        for (c, y, x) in positions {
            input.set(&[0, c, y, x], 1.0).unwrap();
        }
        let op = SnnOp::Conv {
            name: "prop".into(),
            weight: weight.clone(),
            bias: Tensor::zeros([3]),
            spec,
        };
        let (sparse, _) = op.propagate(&input).unwrap();
        let dense = conv2d(&input, &weight, &Tensor::zeros([3]), spec).unwrap();
        prop_assert!(sparse.all_close(&dense, 1e-4));
    }

    #[test]
    fn linear_scatter_synops_equal_nnz_times_fanout(
        mask in prop::collection::vec(prop::bool::ANY, 8..9),
        out_features in 1usize..6,
    ) {
        let weight = Tensor::ones([out_features, 8]);
        let op = SnnOp::Linear {
            name: "prop".into(),
            weight,
            bias: Tensor::zeros([out_features]),
        };
        let data: Vec<f32> = mask.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let nnz = data.iter().filter(|&&x| x != 0.0).count() as u64;
        let input = Tensor::from_vec([1, 8], data).unwrap();
        let (_, synops) = op.propagate(&input).unwrap();
        prop_assert_eq!(synops, nnz * out_features as u64);
    }

    #[test]
    fn bias_scales_sum_to_unity_over_decode_window(period in 1usize..16) {
        // Every coding's bias injection must integrate to one full bias
        // per decode window.
        let codings: Vec<Box<dyn Coding>> = vec![
            Box::new(RateCoding::new()),
            Box::new(PhaseCoding::new(period.clamp(1, 24))),
            Box::new(BurstCoding::new(5)),
        ];
        for coding in codings {
            let window = coding.decode_window();
            let total: f32 = (0..window).map(|t| coding.bias_scale(t)).sum();
            prop_assert!(
                (total - 1.0).abs() < 1e-4,
                "{}: bias integrates to {total} over window {window}",
                coding.name()
            );
        }
    }
}
