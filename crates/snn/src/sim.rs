//! The clock-driven simulation engine.
//!
//! Simulates a converted [`SnnNetwork`] under any [`Coding`] over a batch
//! of images, recording everything the paper's evaluation needs: the
//! accuracy-versus-time curve (Fig. 6), per-layer spike counts (Table I/II),
//! synaptic operation counts (Table III extension) and latency.
//!
//! Execution is organized for speed without changing a single bit of the
//! results:
//!
//! * **Event-driven dispatch** — each step's signal is propagated through
//!   weighted ops as a sparse event list when its density is below the
//!   engine threshold (see [`SimEngine`]); the sparse and dense kernels
//!   are bit-identical by construction.
//! * **Batch-level parallelism** — images never interact, so the batch is
//!   split into contiguous chunks simulated on the scoped
//!   [`ThreadPool`] and merged in chunk order. Accuracy is aggregated
//!   from integer correct-counts, so the merged outcome is bit-identical
//!   to a single-threaded run for every worker count. Codings whose
//!   state is batch-order-dependent (Bernoulli rate input) report
//!   [`Coding::batch_divisible`]` == false` and run on one thread.

use serde::{Deserialize, Serialize};
use t2fsnn_tensor::{trace, Result, SpikeBatch, Tensor, TensorError, ThreadPool};

use crate::coding::Coding;
use crate::engine::{OpExecutor, SimEngine};
use crate::network::{SnnNetwork, SnnOp};
use crate::neuron::IfState;

/// Engine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Total simulated time steps.
    pub max_steps: usize,
    /// Sample the accuracy curve every this many steps (also the curve's
    /// resolution for latency measurements).
    pub record_every: usize,
    /// Dense vs event-driven kernel dispatch (not serialized: a runtime
    /// execution knob with no effect on results).
    #[serde(skip)]
    pub engine: SimEngine,
}

impl SimConfig {
    /// Creates a config with the default (event-driven) engine.
    ///
    /// # Panics
    ///
    /// Panics if either field is zero.
    pub fn new(max_steps: usize, record_every: usize) -> Self {
        assert!(
            max_steps > 0 && record_every > 0,
            "sim config must be positive"
        );
        SimConfig {
            max_steps,
            record_every,
            engine: SimEngine::default(),
        }
    }

    /// Overrides the execution engine (the result is bit-identical either
    /// way; [`SimEngine::Dense`] exists as the reference for tests and
    /// for profiling the dispatch itself).
    pub fn with_engine(mut self, engine: SimEngine) -> Self {
        self.engine = engine;
        self
    }
}

/// One sample of the accuracy-versus-time curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Time step (1-based: accuracy after this many steps).
    pub step: usize,
    /// Classification accuracy over the simulated batch.
    pub accuracy: f32,
}

/// Everything measured during one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Name of the coding scheme.
    pub coding: String,
    /// Number of images simulated.
    pub images: usize,
    /// Steps actually simulated.
    pub steps: usize,
    /// Accuracy curve, sampled every `record_every` steps.
    pub curve: Vec<CurvePoint>,
    /// Final accuracy (last curve point).
    pub final_accuracy: f32,
    /// `(layer_name, spikes)` for every hidden weighted layer, summed over
    /// the batch and all steps.
    pub spikes_per_layer: Vec<(String, u64)>,
    /// Spikes emitted by the input encoding (0 for analog current).
    pub input_spikes: u64,
    /// Synaptic accumulate operations performed.
    pub synop_adds: u64,
    /// Synaptic multiply operations performed (0 for unweighted-spike
    /// codings).
    pub synop_mults: u64,
}

impl SimOutcome {
    /// Total spikes: input encoding plus all hidden layers.
    pub fn total_spikes(&self) -> u64 {
        self.input_spikes + self.spikes_per_layer.iter().map(|&(_, s)| s).sum::<u64>()
    }

    /// Average spikes per image.
    pub fn spikes_per_image(&self) -> f64 {
        if self.images == 0 {
            0.0
        } else {
            self.total_spikes() as f64 / self.images as f64
        }
    }

    /// Latency: the first recorded step at which accuracy reaches
    /// `final_accuracy - tolerance`. This is the "time to (near-)final
    /// accuracy" notion behind the paper's latency columns.
    pub fn latency(&self, tolerance: f32) -> usize {
        let target = self.final_accuracy - tolerance;
        self.curve
            .iter()
            .find(|p| p.accuracy >= target)
            .map(|p| p.step)
            .unwrap_or(self.steps)
    }
}

/// Raw per-chunk tallies; accuracies stay integer correct-counts until
/// the final merge so chunked and single-threaded runs agree bit for bit.
struct ChunkStats {
    /// `(step, correct)` per recorded curve point.
    curve: Vec<(usize, u64)>,
    /// Spikes per op index (zero for non-weighted ops).
    spikes_hidden: Vec<u64>,
    input_spikes: u64,
    synop_adds: u64,
    synop_mults: u64,
}

/// Simulates `net` under `coding` for a batch of images, using the
/// process-global thread pool for batch-level parallelism.
///
/// `images` is `[N, C, H, W]` with unit-range pixels; `labels` has length
/// `N`. The final weighted layer never fires — its membrane potential
/// accumulates and its argmax is the prediction (standard conversion
/// practice for the output layer).
///
/// # Errors
///
/// Returns an error if shapes are inconsistent or the label count differs
/// from the image count.
pub fn simulate(
    net: &SnnNetwork,
    coding: &mut dyn Coding,
    images: &Tensor,
    labels: &[usize],
    config: &SimConfig,
) -> Result<SimOutcome> {
    simulate_on(net, coding, images, labels, config, ThreadPool::global())
}

/// [`simulate`] with an explicit thread pool (the result is bit-identical
/// for every worker count).
///
/// # Errors
///
/// Returns an error if shapes are inconsistent or the label count differs
/// from the image count.
pub fn simulate_on(
    net: &SnnNetwork,
    coding: &mut dyn Coding,
    images: &Tensor,
    labels: &[usize],
    config: &SimConfig,
    pool: &ThreadPool,
) -> Result<SimOutcome> {
    if images.rank() != 4 {
        return Err(TensorError::InvalidArgument {
            op: "simulate",
            message: format!("expected [N, C, H, W] images, got {}", images.shape()),
        });
    }
    let n = images.dims()[0];
    if labels.len() != n {
        return Err(TensorError::InvalidArgument {
            op: "simulate",
            message: format!("{n} images but {} labels", labels.len()),
        });
    }
    if net.has_max_pool() {
        return Err(TensorError::InvalidArgument {
            op: "simulate",
            message: "max pooling has no exact spiking equivalent under rate/phase/burst \
                      coding; build the DNN with PoolKind::Avg (TTFS supports max pooling \
                      via first-spike gating in the t2fsnn engine)"
                .to_string(),
        });
    }
    let ops = net.ops();
    if !ops.iter().any(SnnOp::is_weighted) {
        return Err(TensorError::InvalidArgument {
            op: "simulate",
            message: "network has no weighted ops".to_string(),
        });
    }
    // Shape-check the whole chain up front so chunk workers can't fail on
    // anything but numerics.
    net.output_shapes(&images.dims()[1..])?;

    let ranges = pool.chunk_ranges(n);
    let stats = if ranges.len() > 1 && coding.batch_divisible() {
        let feature: usize = images.dims()[1..].iter().product();
        let mut tasks: Vec<(Box<dyn Coding>, Tensor, &[usize])> = Vec::with_capacity(ranges.len());
        for range in &ranges {
            let mut dims = images.dims().to_vec();
            dims[0] = range.len();
            let chunk = Tensor::from_vec(
                dims,
                images.data()[range.start * feature..range.end * feature].to_vec(),
            )?;
            tasks.push((coding.boxed_clone(), chunk, &labels[range.clone()]));
        }
        let results = pool.run_tasks(tasks, |(mut chunk_coding, chunk_images, chunk_labels)| {
            simulate_chunk(
                net,
                chunk_coding.as_mut(),
                &chunk_images,
                chunk_labels,
                config,
            )
        });
        merge_chunks(results)?
    } else {
        simulate_chunk(net, coding, images, labels, config)?
    };

    let curve: Vec<CurvePoint> = stats
        .curve
        .iter()
        .map(|&(step, correct)| CurvePoint {
            step,
            accuracy: if n == 0 {
                0.0
            } else {
                correct as f32 / n as f32
            },
        })
        .collect();
    let final_accuracy = curve.last().map(|p| p.accuracy).unwrap_or(0.0);
    let last_weighted = ops.iter().rposition(SnnOp::is_weighted).expect("checked");
    let spikes_per_layer = ops
        .iter()
        .enumerate()
        .filter(|(i, op)| op.is_weighted() && *i != last_weighted)
        .map(|(i, op)| (op.name().unwrap_or("?").to_string(), stats.spikes_hidden[i]))
        .collect();
    Ok(SimOutcome {
        coding: coding.name().to_string(),
        images: n,
        steps: config.max_steps,
        curve,
        final_accuracy,
        spikes_per_layer,
        input_spikes: stats.input_spikes,
        synop_adds: stats.synop_adds,
        synop_mults: stats.synop_mults,
    })
}

fn merge_chunks(results: Vec<Result<ChunkStats>>) -> Result<ChunkStats> {
    let mut iter = results.into_iter();
    let mut acc = iter.next().expect("at least one chunk")?;
    for result in iter {
        let stats = result?;
        debug_assert_eq!(acc.curve.len(), stats.curve.len());
        for (a, b) in acc.curve.iter_mut().zip(stats.curve) {
            debug_assert_eq!(a.0, b.0, "chunks record the same steps");
            a.1 += b.1;
        }
        for (a, b) in acc.spikes_hidden.iter_mut().zip(stats.spikes_hidden) {
            *a += b;
        }
        acc.input_spikes += stats.input_spikes;
        acc.synop_adds += stats.synop_adds;
        acc.synop_mults += stats.synop_mults;
    }
    Ok(acc)
}

/// Simulates one contiguous sub-batch. All validation happens in
/// [`simulate_on`]; per-image results are independent of how the batch
/// was chunked.
fn simulate_chunk(
    net: &SnnNetwork,
    coding: &mut dyn Coding,
    images: &Tensor,
    labels: &[usize],
    config: &SimConfig,
) -> Result<ChunkStats> {
    let n = images.dims()[0];
    let input_dims = &images.dims()[1..];
    let ops = net.ops();
    let last_weighted = ops
        .iter()
        .rposition(SnnOp::is_weighted)
        .expect("validated by simulate_on");
    let mut executor = OpExecutor::new(ops, config.engine, input_dims)?;

    // Neuron state per weighted op, in the engine's native position-major
    // layout (`[N, OH, OW, C]` for conv outputs).
    let mut states: Vec<Option<IfState>> = ops
        .iter()
        .enumerate()
        .map(|(i, op)| {
            op.is_weighted().then(|| {
                let mut dims = vec![n];
                dims.extend_from_slice(executor.state_dims(i));
                IfState::new(dims)
            })
        })
        .collect();

    coding.reset();
    let needs_mult = coding.synop_needs_mult();
    let mut spikes_hidden: Vec<u64> = ops.iter().map(|_| 0).collect();
    let mut input_spikes = 0u64;
    let mut synop_adds = 0u64;
    let mut synop_mults = 0u64;
    let mut curve = Vec::new();

    // Deterministic periodic inputs let us compute the (expensive, often
    // dense) input-layer propagation once per phase and replay it. The
    // cached synop counts are still charged every step — the arithmetic
    // happens on real hardware; we just avoid recomputing it.
    let first_weighted = ops
        .iter()
        .position(SnnOp::is_weighted)
        .expect("validated by simulate_on");
    struct CachedDrive {
        /// First-weighted-op output for this input phase.
        raw: Tensor,
        /// `raw` with the bias current folded in at `fused_scale`, so
        /// the per-step work is a single integrate.
        fused: Tensor,
        fused_scale: f32,
        in_spikes: u64,
        synops: u64,
    }
    let mut input_cache: Vec<Option<CachedDrive>> = match coding.input_period() {
        Some(p) if p > 0 => (0..p).map(|_| None).collect(),
        _ => Vec::new(),
    };

    // Event-mode fire phases emit straight into this reused event list,
    // skipping the dense spike tensor entirely; the dense reference
    // engine keeps the tensor path.
    let use_event_fire = !matches!(config.engine, SimEngine::Dense);
    let mut fire_events = SpikeBatch::empty();

    for t in 0..config.max_steps {
        let cache_key = if input_cache.is_empty() {
            None
        } else {
            Some(t % input_cache.len())
        };
        let bias_scale = coding.bias_scale(t);
        // Resolve this step's input-layer drive: borrowed from the
        // per-phase cache (filled on first use — no per-step clone), or
        // computed fresh for non-periodic codings. The cached synop
        // counts are still charged every step: the arithmetic happens on
        // real hardware, it is just not recomputed here. The cache keeps
        // the drive with the bias current already folded in, so the
        // per-step work collapses to one integrate.
        let mut fresh_drive: Option<Tensor> = None;
        let input_span = trace::span("sim/input_drive");
        if let Some(k) = cache_key {
            if input_cache[k].is_none() {
                let (raw, in_spikes) = coding.encode(images, t);
                let mut z = raw;
                let mut synops_acc = 0u64;
                for i in 0..=first_weighted {
                    let (next, synops) = executor.propagate(ops, i, &z)?;
                    synops_acc += synops;
                    z = next;
                }
                input_cache[k] = Some(CachedDrive {
                    fused: z.clone(),
                    raw: z,
                    fused_scale: f32::NAN, // force the fuse below
                    in_spikes,
                    synops: synops_acc,
                });
            }
            let entry = input_cache[k].as_mut().expect("filled above");
            if entry.fused_scale != bias_scale {
                // Re-fuse for this step's bias scale (bundled codings
                // use a constant scale, so this runs once per phase).
                entry.fused = entry.raw.clone();
                executor.inject_bias(ops, first_weighted, &mut entry.fused, bias_scale)?;
                entry.fused_scale = bias_scale;
            }
            input_spikes += entry.in_spikes;
            synop_adds += entry.synops;
            if needs_mult {
                synop_mults += entry.synops;
            }
        } else {
            let (raw, in_spikes) = coding.encode(images, t);
            input_spikes += in_spikes;
            let mut z = raw;
            let mut synops_acc = 0u64;
            for i in 0..=first_weighted {
                let (next, synops) = executor.propagate(ops, i, &z)?;
                synops_acc += synops;
                z = next;
            }
            synop_adds += synops_acc;
            if needs_mult {
                synop_mults += synops_acc;
            }
            executor.inject_bias(ops, first_weighted, &mut z, bias_scale)?;
            fresh_drive = Some(z);
        }
        drop(input_span);
        let step_span = trace::span("sim/step_ops");
        let drive: &Tensor = match cache_key {
            Some(k) => &input_cache[k].as_ref().expect("filled above").fused,
            None => fresh_drive.as_ref().expect("computed above"),
        };
        let skip_until = first_weighted;
        let mut signal = Tensor::default();
        let mut hidden_index = 0usize;
        // Set after a fire phase that emitted nothing: every op until the
        // next weighted layer maps an all-zero signal to all-zero output
        // with zero synops, so propagation is skipped outright (deep
        // layers are silent for many early steps) — only the constant
        // bias current still reaches the membrane.
        let mut signal_zero = false;
        // Whether `fire_events` (not `signal`) holds the live signal.
        let mut events_active = false;
        for (i, op) in ops.iter().enumerate() {
            if i < skip_until {
                continue;
            }
            if op.is_weighted() {
                let state = states[i].as_mut().expect("weighted op has state");
                let synops = if i == skip_until {
                    // `drive` holds this op's output with the bias
                    // already folded in (synops charged above); one
                    // integrate finishes the step for this layer.
                    state.integrate(drive)?;
                    0
                } else if signal_zero {
                    executor.inject_bias(ops, i, state.potential_mut(), bias_scale)?;
                    0
                } else if events_active {
                    executor.accumulate_weighted_events(
                        ops,
                        i,
                        &fire_events,
                        bias_scale,
                        state.potential_mut(),
                    )?
                } else {
                    executor.accumulate_weighted(
                        ops,
                        i,
                        &signal,
                        bias_scale,
                        state.potential_mut(),
                    )?
                };
                synop_adds += synops;
                if needs_mult {
                    synop_mults += synops;
                }
                if i == last_weighted {
                    // Output layer: accumulate only.
                    signal_zero = true;
                    events_active = false;
                } else if use_event_fire {
                    let _s = trace::span("sim/fire");
                    let count = coding.fire_events(
                        state.potential_mut(),
                        t,
                        hidden_index,
                        &mut fire_events,
                    );
                    spikes_hidden[i] += count;
                    signal_zero = count == 0;
                    events_active = count > 0;
                    hidden_index += 1;
                } else {
                    let _s = trace::span("sim/fire");
                    let (spikes, count) = coding.fire(state.potential_mut(), t, hidden_index);
                    spikes_hidden[i] += count;
                    signal = spikes;
                    signal_zero = count == 0;
                    events_active = false;
                    hidden_index += 1;
                }
            } else if events_active && !signal_zero {
                // Pass-through ops on an event signal: the signal stays
                // in event form all the way to the next integrate
                // (synops are zero for all of them).
                match op {
                    SnnOp::AvgPool { window, stride } => {
                        executor.avg_pool_events(&mut fire_events, *window, *stride)?;
                    }
                    SnnOp::Flatten => {
                        let numel = fire_events.feature_numel();
                        fire_events.reshape_features(&[numel])?;
                    }
                    _ => {
                        // Not reachable with the bundled architectures
                        // (max pooling is rejected up front); densify and
                        // take the dense path.
                        signal = fire_events.to_dense();
                        events_active = false;
                        let (z, synops) = executor.propagate(ops, i, &signal)?;
                        synop_adds += synops;
                        if needs_mult {
                            synop_mults += synops;
                        }
                        signal = z;
                    }
                }
            } else {
                let (z, synops) = if signal_zero {
                    let mut dims = vec![n];
                    dims.extend_from_slice(executor.state_dims(i));
                    (Tensor::zeros(dims), 0)
                } else {
                    executor.propagate(ops, i, &signal)?
                };
                synop_adds += synops;
                if needs_mult {
                    synop_mults += synops;
                }
                signal = z;
            }
        }
        drop(step_span);
        if (t + 1) % config.record_every == 0 || t + 1 == config.max_steps {
            let _s = trace::span("sim/record");
            let output = states[last_weighted].as_ref().expect("output state");
            let correct = batch_correct(output.potential(), labels)?;
            curve.push((t + 1, correct));
        }
    }

    Ok(ChunkStats {
        curve,
        spikes_hidden,
        input_spikes,
        synop_adds,
        synop_mults,
    })
}

/// Argmax correct-count of a `[N, classes]` potential tensor.
fn batch_correct(potential: &Tensor, labels: &[usize]) -> Result<u64> {
    if potential.rank() != 2 || potential.dims()[0] != labels.len() {
        return Err(TensorError::InvalidArgument {
            op: "batch_correct",
            message: format!(
                "potential {} vs {} labels — output layer is not [N, classes]",
                potential.shape(),
                labels.len()
            ),
        });
    }
    let c = potential.dims()[1];
    let mut correct = 0u64;
    for (i, &y) in labels.iter().enumerate() {
        let row = &potential.data()[i * c..(i + 1) * c];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(j, _)| j)
            .unwrap_or(0);
        if pred == y {
            correct += 1;
        }
    }
    Ok(correct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coding::{BurstCoding, PhaseCoding, RateCoding, ReverseCoding};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use t2fsnn_data::{DatasetSpec, SyntheticConfig};
    use t2fsnn_dnn::architectures::mlp_tiny;
    use t2fsnn_dnn::{normalize_for_snn, train, TrainConfig};

    /// A trained, normalized tiny network plus its dataset.
    ///
    /// Sized so the DNN actually generalizes (~80% test accuracy): with
    /// fewer samples/epochs the MLP sits at chance on the held-out split
    /// and every downstream accuracy assertion becomes vacuous.
    fn fixture() -> (SnnNetwork, Tensor, Vec<usize>, f32) {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let data = SyntheticConfig::new(DatasetSpec::tiny(), 6).generate(320);
        let (train_set, test_set) = data.split(256);
        let mut dnn = mlp_tiny(&mut rng, &data.spec);
        let cfg = TrainConfig {
            epochs: 12,
            ..TrainConfig::default()
        };
        train(&mut dnn, &train_set, &cfg, &mut rng).unwrap();
        normalize_for_snn(&mut dnn, &train_set.images, 0.999).unwrap();
        let dnn_acc = t2fsnn_dnn::evaluate(&mut dnn, &test_set, 16).unwrap();
        let snn = SnnNetwork::from_dnn(&dnn).unwrap();
        (
            snn,
            test_set.images.clone(),
            test_set.labels.clone(),
            dnn_acc,
        )
    }

    #[test]
    fn rate_coding_approaches_dnn_accuracy() {
        let (snn, images, labels, dnn_acc) = fixture();
        let mut coding = RateCoding::new();
        let outcome = simulate(
            &snn,
            &mut coding,
            &images,
            &labels,
            &SimConfig::new(256, 32),
        )
        .unwrap();
        assert!(
            outcome.final_accuracy >= dnn_acc - 0.15,
            "rate SNN {:.3} too far below DNN {:.3}",
            outcome.final_accuracy,
            dnn_acc
        );
        assert!(outcome.total_spikes() > 0);
        // Rate coding spikes grow ~linearly with time: later half must add
        // a similar amount as the first half.
        let early = simulate(
            &snn,
            &mut RateCoding::new(),
            &images,
            &labels,
            &SimConfig::new(128, 32),
        )
        .unwrap();
        assert!(outcome.total_spikes() > early.total_spikes());
    }

    #[test]
    fn phase_coding_runs_and_spikes_less_per_value() {
        let (snn, images, labels, _) = fixture();
        let outcome = simulate(
            &snn,
            &mut PhaseCoding::new(8),
            &images,
            &labels,
            &SimConfig::new(64, 8),
        )
        .unwrap();
        assert_eq!(outcome.coding, "phase");
        assert!(outcome.final_accuracy > 0.25, "{}", outcome.final_accuracy);
        assert!(outcome.synop_mults > 0, "phase coding multiplies");
    }

    #[test]
    fn burst_coding_converges_quickly() {
        let (snn, images, labels, dnn_acc) = fixture();
        let outcome = simulate(
            &snn,
            &mut BurstCoding::new(5),
            &images,
            &labels,
            &SimConfig::new(64, 8),
        )
        .unwrap();
        assert!(
            outcome.final_accuracy >= dnn_acc - 0.2,
            "burst {:.3} vs dnn {:.3}",
            outcome.final_accuracy,
            dnn_acc
        );
    }

    #[test]
    fn burst_uses_fewer_spikes_than_rate_at_same_accuracy_scale() {
        let (snn, images, labels, _) = fixture();
        let rate = simulate(
            &snn,
            &mut RateCoding::new(),
            &images,
            &labels,
            &SimConfig::new(256, 64),
        )
        .unwrap();
        let burst = simulate(
            &snn,
            &mut BurstCoding::new(5),
            &images,
            &labels,
            &SimConfig::new(64, 16),
        )
        .unwrap();
        assert!(
            burst.total_spikes() < rate.total_spikes(),
            "burst {} !< rate {}",
            burst.total_spikes(),
            rate.total_spikes()
        );
    }

    #[test]
    fn event_engine_is_bit_identical_to_dense_reference() {
        let (snn, images, labels, _) = fixture();
        for threshold in [0.05f32, 0.25, 1.0] {
            let dense = simulate(
                &snn,
                &mut PhaseCoding::new(8),
                &images,
                &labels,
                &SimConfig::new(48, 8).with_engine(SimEngine::dense()),
            )
            .unwrap();
            let event = simulate(
                &snn,
                &mut PhaseCoding::new(8),
                &images,
                &labels,
                &SimConfig::new(48, 8).with_engine(SimEngine::Event {
                    sparsity_threshold: threshold,
                }),
            )
            .unwrap();
            assert_eq!(dense, event, "threshold {threshold}");
        }
    }

    #[test]
    fn chunked_simulation_is_bit_identical_for_every_worker_count() {
        let (snn, images, labels, _) = fixture();
        let serial = simulate_on(
            &snn,
            &mut BurstCoding::new(5),
            &images,
            &labels,
            &SimConfig::new(32, 8),
            &ThreadPool::new(1),
        )
        .unwrap();
        for workers in [2usize, 3, 5] {
            let parallel = simulate_on(
                &snn,
                &mut BurstCoding::new(5),
                &images,
                &labels,
                &SimConfig::new(32, 8),
                &ThreadPool::new(workers),
            )
            .unwrap();
            assert_eq!(serial, parallel, "workers={workers}");
        }
        // Reverse coding carries per-layer refractory state and must
        // still chunk cleanly.
        let serial = simulate_on(
            &snn,
            &mut ReverseCoding::new(16),
            &images,
            &labels,
            &SimConfig::new(32, 8),
            &ThreadPool::new(1),
        )
        .unwrap();
        let parallel = simulate_on(
            &snn,
            &mut ReverseCoding::new(16),
            &images,
            &labels,
            &SimConfig::new(32, 8),
            &ThreadPool::new(4),
        )
        .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn bernoulli_rate_input_declines_chunking_but_still_runs() {
        let (snn, images, labels, _) = fixture();
        let mut coding = RateCoding::bernoulli(7);
        assert!(!crate::coding::Coding::batch_divisible(&coding));
        let a = simulate_on(
            &snn,
            &mut coding,
            &images,
            &labels,
            &SimConfig::new(16, 8),
            &ThreadPool::new(4),
        )
        .unwrap();
        // The multi-worker pool must not change the single RNG stream.
        let b = simulate_on(
            &snn,
            &mut RateCoding::bernoulli(7),
            &images,
            &labels,
            &SimConfig::new(16, 8),
            &ThreadPool::new(1),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn curve_is_sampled_at_requested_resolution() {
        let (snn, images, labels, _) = fixture();
        let outcome = simulate(
            &snn,
            &mut RateCoding::new(),
            &images,
            &labels,
            &SimConfig::new(100, 25),
        )
        .unwrap();
        let steps: Vec<usize> = outcome.curve.iter().map(|p| p.step).collect();
        assert_eq!(steps, vec![25, 50, 75, 100]);
    }

    #[test]
    fn latency_finds_first_good_step() {
        let outcome = SimOutcome {
            coding: "x".into(),
            images: 1,
            steps: 100,
            curve: vec![
                CurvePoint {
                    step: 25,
                    accuracy: 0.1,
                },
                CurvePoint {
                    step: 50,
                    accuracy: 0.8,
                },
                CurvePoint {
                    step: 75,
                    accuracy: 0.82,
                },
                CurvePoint {
                    step: 100,
                    accuracy: 0.82,
                },
            ],
            final_accuracy: 0.82,
            spikes_per_layer: vec![],
            input_spikes: 0,
            synop_adds: 0,
            synop_mults: 0,
        };
        assert_eq!(outcome.latency(0.05), 50);
        assert_eq!(outcome.latency(0.0), 75);
    }

    #[test]
    fn simulate_validates_inputs() {
        let (snn, images, labels, _) = fixture();
        let bad = Tensor::zeros([2, 8, 8]);
        assert!(simulate(
            &snn,
            &mut RateCoding::new(),
            &bad,
            &labels,
            &SimConfig::new(4, 2)
        )
        .is_err());
        assert!(simulate(
            &snn,
            &mut RateCoding::new(),
            &images,
            &labels[..3],
            &SimConfig::new(4, 2)
        )
        .is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_config_panics() {
        let _ = SimConfig::new(0, 1);
    }
}
