//! The clock-driven simulation engine.
//!
//! Simulates a converted [`SnnNetwork`] under any [`Coding`] over a batch
//! of images, recording everything the paper's evaluation needs: the
//! accuracy-versus-time curve (Fig. 6), per-layer spike counts (Table I/II),
//! synaptic operation counts (Table III extension) and latency.

use serde::{Deserialize, Serialize};
use t2fsnn_tensor::{Result, Tensor, TensorError};

use crate::coding::Coding;
use crate::network::{SnnNetwork, SnnOp};
use crate::neuron::IfState;

/// Engine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Total simulated time steps.
    pub max_steps: usize,
    /// Sample the accuracy curve every this many steps (also the curve's
    /// resolution for latency measurements).
    pub record_every: usize,
}

impl SimConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if either field is zero.
    pub fn new(max_steps: usize, record_every: usize) -> Self {
        assert!(
            max_steps > 0 && record_every > 0,
            "sim config must be positive"
        );
        SimConfig {
            max_steps,
            record_every,
        }
    }
}

/// One sample of the accuracy-versus-time curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Time step (1-based: accuracy after this many steps).
    pub step: usize,
    /// Classification accuracy over the simulated batch.
    pub accuracy: f32,
}

/// Everything measured during one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Name of the coding scheme.
    pub coding: String,
    /// Number of images simulated.
    pub images: usize,
    /// Steps actually simulated.
    pub steps: usize,
    /// Accuracy curve, sampled every `record_every` steps.
    pub curve: Vec<CurvePoint>,
    /// Final accuracy (last curve point).
    pub final_accuracy: f32,
    /// `(layer_name, spikes)` for every hidden weighted layer, summed over
    /// the batch and all steps.
    pub spikes_per_layer: Vec<(String, u64)>,
    /// Spikes emitted by the input encoding (0 for analog current).
    pub input_spikes: u64,
    /// Synaptic accumulate operations performed.
    pub synop_adds: u64,
    /// Synaptic multiply operations performed (0 for unweighted-spike
    /// codings).
    pub synop_mults: u64,
}

impl SimOutcome {
    /// Total spikes: input encoding plus all hidden layers.
    pub fn total_spikes(&self) -> u64 {
        self.input_spikes + self.spikes_per_layer.iter().map(|&(_, s)| s).sum::<u64>()
    }

    /// Average spikes per image.
    pub fn spikes_per_image(&self) -> f64 {
        if self.images == 0 {
            0.0
        } else {
            self.total_spikes() as f64 / self.images as f64
        }
    }

    /// Latency: the first recorded step at which accuracy reaches
    /// `final_accuracy - tolerance`. This is the "time to (near-)final
    /// accuracy" notion behind the paper's latency columns.
    pub fn latency(&self, tolerance: f32) -> usize {
        let target = self.final_accuracy - tolerance;
        self.curve
            .iter()
            .find(|p| p.accuracy >= target)
            .map(|p| p.step)
            .unwrap_or(self.steps)
    }
}

/// Simulates `net` under `coding` for a batch of images.
///
/// `images` is `[N, C, H, W]` with unit-range pixels; `labels` has length
/// `N`. The final weighted layer never fires — its membrane potential
/// accumulates and its argmax is the prediction (standard conversion
/// practice for the output layer).
///
/// # Errors
///
/// Returns an error if shapes are inconsistent or the label count differs
/// from the image count.
pub fn simulate(
    net: &SnnNetwork,
    coding: &mut dyn Coding,
    images: &Tensor,
    labels: &[usize],
    config: &SimConfig,
) -> Result<SimOutcome> {
    if images.rank() != 4 {
        return Err(TensorError::InvalidArgument {
            op: "simulate",
            message: format!("expected [N, C, H, W] images, got {}", images.shape()),
        });
    }
    let n = images.dims()[0];
    if labels.len() != n {
        return Err(TensorError::InvalidArgument {
            op: "simulate",
            message: format!("{n} images but {} labels", labels.len()),
        });
    }
    if net.has_max_pool() {
        return Err(TensorError::InvalidArgument {
            op: "simulate",
            message: "max pooling has no exact spiking equivalent under rate/phase/burst \
                      coding; build the DNN with PoolKind::Avg (TTFS supports max pooling \
                      via first-spike gating in the t2fsnn engine)"
                .to_string(),
        });
    }
    let input_dims = &images.dims()[1..];
    let shapes = net.output_shapes(input_dims)?;
    let ops = net.ops();
    let last_weighted =
        ops.iter()
            .rposition(SnnOp::is_weighted)
            .ok_or(TensorError::InvalidArgument {
                op: "simulate",
                message: "network has no weighted ops".to_string(),
            })?;

    // Neuron state per weighted op.
    let mut states: Vec<Option<IfState>> = ops
        .iter()
        .zip(&shapes)
        .map(|(op, shape)| {
            op.is_weighted().then(|| {
                let mut dims = vec![n];
                dims.extend_from_slice(shape);
                IfState::new(dims)
            })
        })
        .collect();

    coding.reset();
    let needs_mult = coding.synop_needs_mult();
    let mut spikes_hidden: Vec<u64> = ops.iter().map(|_| 0).collect();
    let mut input_spikes = 0u64;
    let mut synop_adds = 0u64;
    let mut synop_mults = 0u64;
    let mut curve = Vec::new();

    // Deterministic periodic inputs let us compute the (expensive, often
    // dense) input-layer propagation once per phase and replay it. The
    // cached synop counts are still charged every step — the arithmetic
    // happens on real hardware; we just avoid recomputing it.
    let first_weighted = ops
        .iter()
        .position(SnnOp::is_weighted)
        .expect("checked above");
    let mut input_cache: Vec<Option<(Tensor, u64, u64)>> = match coding.input_period() {
        Some(p) if p > 0 => vec![None; p],
        _ => Vec::new(),
    };

    for t in 0..config.max_steps {
        let cache_key = if input_cache.is_empty() {
            None
        } else {
            Some(t % input_cache.len())
        };
        let precomputed = cache_key.and_then(|k| input_cache[k].clone());
        let (mut signal, skip_until) = if let Some((z, in_spikes, synops)) = precomputed {
            input_spikes += in_spikes;
            synop_adds += synops;
            if needs_mult {
                synop_mults += synops;
            }
            (z, first_weighted)
        } else {
            let (raw, in_spikes) = coding.encode(images, t);
            input_spikes += in_spikes;
            // Propagate through everything up to (and including) the first
            // weighted op, then cache.
            let mut z = raw;
            let mut synops_acc = 0u64;
            for op in &ops[..=first_weighted] {
                let (next, synops) = op.propagate(&z)?;
                synops_acc += synops;
                z = next;
            }
            synop_adds += synops_acc;
            if needs_mult {
                synop_mults += synops_acc;
            }
            if let Some(k) = cache_key {
                input_cache[k] = Some((z.clone(), in_spikes, synops_acc));
            }
            (z, first_weighted)
        };
        let bias_scale = coding.bias_scale(t);
        let mut hidden_index = 0usize;
        for (i, op) in ops.iter().enumerate() {
            let (mut z, synops) = if i < skip_until {
                continue;
            } else if i == skip_until {
                // `signal` already holds this op's output drive.
                (std::mem::take(&mut signal), 0)
            } else {
                let (z, synops) = op.propagate(&signal)?;
                (z, synops)
            };
            synop_adds += synops;
            if needs_mult {
                synop_mults += synops;
            }
            if op.is_weighted() {
                op.inject_bias(&mut z, bias_scale)?;
                let state = states[i].as_mut().expect("weighted op has state");
                state.integrate(&z)?;
                if i == last_weighted {
                    // Output layer: accumulate only.
                    signal = Tensor::zeros(z.shape().clone());
                } else {
                    let (spikes, count) = coding.fire(state.potential_mut(), t, hidden_index);
                    spikes_hidden[i] += count;
                    signal = spikes;
                    hidden_index += 1;
                }
            } else {
                signal = z;
            }
        }
        if (t + 1) % config.record_every == 0 || t + 1 == config.max_steps {
            let output = states[last_weighted].as_ref().expect("output state");
            let accuracy = batch_accuracy(output.potential(), labels)?;
            curve.push(CurvePoint {
                step: t + 1,
                accuracy,
            });
        }
    }

    let final_accuracy = curve.last().map(|p| p.accuracy).unwrap_or(0.0);
    let spikes_per_layer = ops
        .iter()
        .enumerate()
        .filter(|(i, op)| op.is_weighted() && *i != last_weighted)
        .map(|(i, op)| (op.name().unwrap_or("?").to_string(), spikes_hidden[i]))
        .collect();
    Ok(SimOutcome {
        coding: coding.name().to_string(),
        images: n,
        steps: config.max_steps,
        curve,
        final_accuracy,
        spikes_per_layer,
        input_spikes,
        synop_adds,
        synop_mults,
    })
}

/// Argmax accuracy of a `[N, classes]` potential tensor.
fn batch_accuracy(potential: &Tensor, labels: &[usize]) -> Result<f32> {
    if potential.rank() != 2 || potential.dims()[0] != labels.len() {
        return Err(TensorError::InvalidArgument {
            op: "batch_accuracy",
            message: format!(
                "potential {} vs {} labels — output layer is not [N, classes]",
                potential.shape(),
                labels.len()
            ),
        });
    }
    if labels.is_empty() {
        return Ok(0.0);
    }
    let (n, c) = (potential.dims()[0], potential.dims()[1]);
    let mut correct = 0usize;
    for (i, &y) in labels.iter().enumerate() {
        let row = &potential.data()[i * c..(i + 1) * c];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(j, _)| j)
            .unwrap_or(0);
        if pred == y {
            correct += 1;
        }
    }
    Ok(correct as f32 / n as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coding::{BurstCoding, PhaseCoding, RateCoding};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use t2fsnn_data::{DatasetSpec, SyntheticConfig};
    use t2fsnn_dnn::architectures::mlp_tiny;
    use t2fsnn_dnn::{normalize_for_snn, train, TrainConfig};

    /// A trained, normalized tiny network plus its dataset.
    ///
    /// Sized so the DNN actually generalizes (~80% test accuracy): with
    /// fewer samples/epochs the MLP sits at chance on the held-out split
    /// and every downstream accuracy assertion becomes vacuous.
    fn fixture() -> (SnnNetwork, Tensor, Vec<usize>, f32) {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let data = SyntheticConfig::new(DatasetSpec::tiny(), 6).generate(320);
        let (train_set, test_set) = data.split(256);
        let mut dnn = mlp_tiny(&mut rng, &data.spec);
        let cfg = TrainConfig {
            epochs: 12,
            ..TrainConfig::default()
        };
        train(&mut dnn, &train_set, &cfg, &mut rng).unwrap();
        normalize_for_snn(&mut dnn, &train_set.images, 0.999).unwrap();
        let dnn_acc = t2fsnn_dnn::evaluate(&mut dnn, &test_set, 16).unwrap();
        let snn = SnnNetwork::from_dnn(&dnn).unwrap();
        (
            snn,
            test_set.images.clone(),
            test_set.labels.clone(),
            dnn_acc,
        )
    }

    #[test]
    fn rate_coding_approaches_dnn_accuracy() {
        let (snn, images, labels, dnn_acc) = fixture();
        let mut coding = RateCoding::new();
        let outcome = simulate(
            &snn,
            &mut coding,
            &images,
            &labels,
            &SimConfig::new(256, 32),
        )
        .unwrap();
        assert!(
            outcome.final_accuracy >= dnn_acc - 0.15,
            "rate SNN {:.3} too far below DNN {:.3}",
            outcome.final_accuracy,
            dnn_acc
        );
        assert!(outcome.total_spikes() > 0);
        // Rate coding spikes grow ~linearly with time: later half must add
        // a similar amount as the first half.
        let early = simulate(
            &snn,
            &mut RateCoding::new(),
            &images,
            &labels,
            &SimConfig::new(128, 32),
        )
        .unwrap();
        assert!(outcome.total_spikes() > early.total_spikes());
    }

    #[test]
    fn phase_coding_runs_and_spikes_less_per_value() {
        let (snn, images, labels, _) = fixture();
        let outcome = simulate(
            &snn,
            &mut PhaseCoding::new(8),
            &images,
            &labels,
            &SimConfig::new(64, 8),
        )
        .unwrap();
        assert_eq!(outcome.coding, "phase");
        assert!(outcome.final_accuracy > 0.25, "{}", outcome.final_accuracy);
        assert!(outcome.synop_mults > 0, "phase coding multiplies");
    }

    #[test]
    fn burst_coding_converges_quickly() {
        let (snn, images, labels, dnn_acc) = fixture();
        let outcome = simulate(
            &snn,
            &mut BurstCoding::new(5),
            &images,
            &labels,
            &SimConfig::new(64, 8),
        )
        .unwrap();
        assert!(
            outcome.final_accuracy >= dnn_acc - 0.2,
            "burst {:.3} vs dnn {:.3}",
            outcome.final_accuracy,
            dnn_acc
        );
    }

    #[test]
    fn burst_uses_fewer_spikes_than_rate_at_same_accuracy_scale() {
        let (snn, images, labels, _) = fixture();
        let rate = simulate(
            &snn,
            &mut RateCoding::new(),
            &images,
            &labels,
            &SimConfig::new(256, 64),
        )
        .unwrap();
        let burst = simulate(
            &snn,
            &mut BurstCoding::new(5),
            &images,
            &labels,
            &SimConfig::new(64, 16),
        )
        .unwrap();
        assert!(
            burst.total_spikes() < rate.total_spikes(),
            "burst {} !< rate {}",
            burst.total_spikes(),
            rate.total_spikes()
        );
    }

    #[test]
    fn curve_is_sampled_at_requested_resolution() {
        let (snn, images, labels, _) = fixture();
        let outcome = simulate(
            &snn,
            &mut RateCoding::new(),
            &images,
            &labels,
            &SimConfig::new(100, 25),
        )
        .unwrap();
        let steps: Vec<usize> = outcome.curve.iter().map(|p| p.step).collect();
        assert_eq!(steps, vec![25, 50, 75, 100]);
    }

    #[test]
    fn latency_finds_first_good_step() {
        let outcome = SimOutcome {
            coding: "x".into(),
            images: 1,
            steps: 100,
            curve: vec![
                CurvePoint {
                    step: 25,
                    accuracy: 0.1,
                },
                CurvePoint {
                    step: 50,
                    accuracy: 0.8,
                },
                CurvePoint {
                    step: 75,
                    accuracy: 0.82,
                },
                CurvePoint {
                    step: 100,
                    accuracy: 0.82,
                },
            ],
            final_accuracy: 0.82,
            spikes_per_layer: vec![],
            input_spikes: 0,
            synop_adds: 0,
            synop_mults: 0,
        };
        assert_eq!(outcome.latency(0.05), 50);
        assert_eq!(outcome.latency(0.0), 75);
    }

    #[test]
    fn simulate_validates_inputs() {
        let (snn, images, labels, _) = fixture();
        let bad = Tensor::zeros([2, 8, 8]);
        assert!(simulate(
            &snn,
            &mut RateCoding::new(),
            &bad,
            &labels,
            &SimConfig::new(4, 2)
        )
        .is_err());
        assert!(simulate(
            &snn,
            &mut RateCoding::new(),
            &images,
            &labels[..3],
            &SimConfig::new(4, 2)
        )
        .is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_config_panics() {
        let _ = SimConfig::new(0, 1);
    }
}
