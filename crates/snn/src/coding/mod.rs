//! Neural coding schemes (Fig. 1 of the paper).
//!
//! A [`Coding`] defines how analog values become spike trains and back:
//! how the input image drives the first layer at each time step, how a
//! hidden IF population converts membrane potential into outgoing spikes,
//! and how bias currents are scaled so that decoded values stay calibrated.
//!
//! Implementations: [`RateCoding`] (Diehl/Rueckauer-style), [`PhaseCoding`]
//! (weighted spikes, Kim et al. 2018), [`BurstCoding`] (Park et al. DAC
//! 2019) and [`ReverseCoding`] (TDSNN-like, for the Table III cost
//! analysis). The paper's own contribution — TTFS with dynamic
//! threshold/dendrite kernels — lives in the `t2fsnn` core crate.

mod burst;
mod phase;
mod rate;
mod reverse;

pub use burst::BurstCoding;
pub use phase::PhaseCoding;
pub use rate::{RateCoding, RateInput};
pub use reverse::{ReverseCoding, TdsnnCostModel};

use t2fsnn_tensor::{SpikeBatch, Tensor};

/// A neural coding scheme for the clock-driven simulator.
///
/// The simulator calls [`Coding::encode`] once per time step to obtain the
/// input drive, then alternates [`propagate → integrate → fire`] through
/// the layer stack. All state beyond membrane potentials (e.g. phase
/// counters) lives in the coding object itself.
///
/// `Send` is a supertrait so that [`Coding::boxed_clone`] copies can be
/// moved into the simulator's batch-chunk worker threads.
pub trait Coding: Send {
    /// Short name used in reports (e.g. `"rate"`).
    fn name(&self) -> &'static str;

    /// Clears any per-inference state (refractory masks, phase counters).
    /// Called by the simulator before each run. Stateless codings keep the
    /// default no-op.
    fn reset(&mut self) {}

    /// Input drive injected into the first op at time step `t`, plus the
    /// number of input spikes this step contributes to the spike count
    /// (0 for analog current injection).
    fn encode(&mut self, images: &Tensor, t: usize) -> (Tensor, u64);

    /// Converts a hidden population's membrane potential into outgoing
    /// spikes at time `t`. Returns `(spike_tensor, spike_count)` and
    /// resets the potential according to the scheme's rule.
    fn fire(&mut self, potential: &mut Tensor, t: usize, layer: usize) -> (Tensor, u64);

    /// Scale applied to bias currents at time `t` so that per-decoding-
    /// window bias contributions match the DNN bias.
    fn bias_scale(&self, t: usize) -> f32;

    /// Whether one synaptic event costs a multiply in addition to an add
    /// (Table III: rate coding is accumulate-only; weighted-spike schemes
    /// multiply by the spike weight, possibly via lookup table).
    fn synop_needs_mult(&self) -> bool;

    /// Number of time steps after which the output accumulator represents
    /// one full decoded value (used to normalize output potentials).
    fn decode_window(&self) -> usize;

    /// If the input encoding is periodic in `t` with this period, the
    /// simulator may cache the (deterministic) input-layer drive per phase
    /// and replay it — the arithmetic still *counts* every step, it is
    /// just not recomputed. `None` disables caching (stochastic or
    /// one-shot inputs).
    fn input_period(&self) -> Option<usize> {
        None
    }

    /// Fire phase emitting an event list instead of a dense spike
    /// tensor: `events` is rebuilt (reusing its allocations) with this
    /// step's spikes in row-major order, carrying exactly the values the
    /// dense [`Coding::fire`] tensor would hold. Returns the spike
    /// count. The default implementation wraps [`Coding::fire`];
    /// bundled codings override it to skip the dense intermediate, which
    /// is what makes the simulator's event engine cheap.
    fn fire_events(
        &mut self,
        potential: &mut Tensor,
        t: usize,
        layer: usize,
        events: &mut SpikeBatch,
    ) -> u64 {
        let (spikes, count) = self.fire(potential, t, layer);
        events
            .refill_bounded(&spikes, usize::MAX)
            .expect("potentials have a batch axis");
        count
    }

    /// A boxed copy of this coding in its current configuration, used by
    /// the simulator to give each batch chunk its own state when running
    /// chunks in parallel. The copy is [`Coding::reset`] before use, so
    /// only configuration (not per-run state) needs to survive the clone.
    fn boxed_clone(&self) -> Box<dyn Coding>;

    /// Whether simulating disjoint sub-batches independently produces the
    /// same per-image results as one combined batch. True for codings
    /// whose `encode`/`fire` treat every element independently (all the
    /// bundled deterministic codings); `false` for codings with
    /// batch-order-dependent state such as a shared RNG stream, which the
    /// simulator then runs on a single thread.
    fn batch_divisible(&self) -> bool {
        true
    }
}

/// Shared threshold-fire-into-events loop: every element with
/// `u ≥ threshold` is reset by subtracting `threshold` and emits one
/// event carrying `spike_value` — exactly the updates and values of the
/// dense fire loops, minus the dense tensor. The threshold scan runs on
/// the SIMD compare-and-mask primitive
/// ([`t2fsnn_tensor::simd::collect_ge`]): sub-threshold blocks of eight
/// are skipped with one compare, and the surviving indices come back in
/// ascending order, so the emitted event sequence is unchanged.
pub(crate) fn fire_subtract_events(
    potential: &mut Tensor,
    threshold: f32,
    spike_value: f32,
    events: &mut SpikeBatch,
) -> u64 {
    let feature: usize = potential.dims()[1..].iter().product();
    let feature_dims = potential.dims()[1..].to_vec();
    events.begin(&feature_dims);
    let mut count = 0u64;
    let mut hits: Vec<u32> = Vec::new();
    for image in potential.data_mut().chunks_exact_mut(feature.max(1)) {
        hits.clear();
        t2fsnn_tensor::simd::collect_ge(image, threshold, &mut hits);
        for &j in &hits {
            image[j as usize] -= threshold;
            events.push(j, spike_value);
        }
        count += hits.len() as u64;
        events.end_image();
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All bundled codings must expose stable names — experiment tables key
    /// on them.
    #[test]
    fn coding_names_are_stable() {
        assert_eq!(RateCoding::new().name(), "rate");
        assert_eq!(PhaseCoding::new(8).name(), "phase");
        assert_eq!(BurstCoding::new(5).name(), "burst");
        assert_eq!(ReverseCoding::new(16).name(), "reverse");
    }
}
