//! Neural coding schemes (Fig. 1 of the paper).
//!
//! A [`Coding`] defines how analog values become spike trains and back:
//! how the input image drives the first layer at each time step, how a
//! hidden IF population converts membrane potential into outgoing spikes,
//! and how bias currents are scaled so that decoded values stay calibrated.
//!
//! Implementations: [`RateCoding`] (Diehl/Rueckauer-style), [`PhaseCoding`]
//! (weighted spikes, Kim et al. 2018), [`BurstCoding`] (Park et al. DAC
//! 2019) and [`ReverseCoding`] (TDSNN-like, for the Table III cost
//! analysis). The paper's own contribution — TTFS with dynamic
//! threshold/dendrite kernels — lives in the `t2fsnn` core crate.

mod burst;
mod phase;
mod rate;
mod reverse;

pub use burst::BurstCoding;
pub use phase::PhaseCoding;
pub use rate::{RateCoding, RateInput};
pub use reverse::{ReverseCoding, TdsnnCostModel};

use t2fsnn_tensor::Tensor;

/// A neural coding scheme for the clock-driven simulator.
///
/// The simulator calls [`Coding::encode`] once per time step to obtain the
/// input drive, then alternates [`propagate → integrate → fire`] through
/// the layer stack. All state beyond membrane potentials (e.g. phase
/// counters) lives in the coding object itself.
pub trait Coding {
    /// Short name used in reports (e.g. `"rate"`).
    fn name(&self) -> &'static str;

    /// Clears any per-inference state (refractory masks, phase counters).
    /// Called by the simulator before each run. Stateless codings keep the
    /// default no-op.
    fn reset(&mut self) {}

    /// Input drive injected into the first op at time step `t`, plus the
    /// number of input spikes this step contributes to the spike count
    /// (0 for analog current injection).
    fn encode(&mut self, images: &Tensor, t: usize) -> (Tensor, u64);

    /// Converts a hidden population's membrane potential into outgoing
    /// spikes at time `t`. Returns `(spike_tensor, spike_count)` and
    /// resets the potential according to the scheme's rule.
    fn fire(&mut self, potential: &mut Tensor, t: usize, layer: usize) -> (Tensor, u64);

    /// Scale applied to bias currents at time `t` so that per-decoding-
    /// window bias contributions match the DNN bias.
    fn bias_scale(&self, t: usize) -> f32;

    /// Whether one synaptic event costs a multiply in addition to an add
    /// (Table III: rate coding is accumulate-only; weighted-spike schemes
    /// multiply by the spike weight, possibly via lookup table).
    fn synop_needs_mult(&self) -> bool;

    /// Number of time steps after which the output accumulator represents
    /// one full decoded value (used to normalize output potentials).
    fn decode_window(&self) -> usize;

    /// If the input encoding is periodic in `t` with this period, the
    /// simulator may cache the (deterministic) input-layer drive per phase
    /// and replay it — the arithmetic still *counts* every step, it is
    /// just not recomputed. `None` disables caching (stochastic or
    /// one-shot inputs).
    fn input_period(&self) -> Option<usize> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All bundled codings must expose stable names — experiment tables key
    /// on them.
    #[test]
    fn coding_names_are_stable() {
        assert_eq!(RateCoding::new().name(), "rate");
        assert_eq!(PhaseCoding::new(8).name(), "phase");
        assert_eq!(BurstCoding::new(5).name(), "burst");
        assert_eq!(ReverseCoding::new(16).name(), "reverse");
    }
}
