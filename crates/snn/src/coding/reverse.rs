//! Reverse coding (TDSNN-like) and its computational-cost model.
//!
//! TDSNN (Zhang et al., AAAI 2019 — ref [12] of the paper) introduced
//! *reverse coding*: a TTFS variant where **larger** values fire **later**.
//! The original system needs auxiliary "ticking" neurons firing every time
//! step plus leaky IF neurons with an exponential update, which is exactly
//! the overhead the paper's Table III quantifies. TDSNN is closed source,
//! so this module provides (a) a minimal reverse-coded [`Coding`]
//! implementation — enough to exercise the code path and demonstrate the
//! scheme's behaviour — and (b) [`TdsnnCostModel`], the analytic operation
//! count used for the Table III comparison, following the paper's own
//! description ("required computations are proportional to the time step
//! and number of neurons").

use serde::{Deserialize, Serialize};
use t2fsnn_tensor::Tensor;

use super::Coding;

/// A minimal reverse-TTFS coding: one spike per neuron per window, with
/// larger values spiking later.
///
/// This implementation omits TDSNN's accuracy-restoring auxiliary neurons
/// (the paper's critique is precisely that they dominate the spike budget),
/// so its accuracy is not competitive — matching the role it plays in the
/// paper, where reverse coding appears in the cost analysis but reports no
/// latency/spike numbers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReverseCoding {
    /// Encoding window per layer, in time steps.
    pub window: usize,
    /// Firing threshold for hidden neurons.
    pub theta: f32,
    fired: Vec<Option<Tensor>>,
}

impl ReverseCoding {
    /// Creates reverse coding with the given per-layer window.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        ReverseCoding {
            window,
            theta: 0.5,
            fired: Vec::new(),
        }
    }

    /// Reverse spike time for a unit-range value: larger `x` → later step
    /// (the defining property of reverse coding, opposite to plain TTFS).
    pub fn spike_time(&self, x: f32) -> Option<usize> {
        if x <= 0.0 {
            return None; // zero transmits nothing
        }
        let t = (x.clamp(0.0, 1.0) * (self.window - 1) as f32).floor() as usize;
        Some(t.min(self.window - 1))
    }
}

impl Coding for ReverseCoding {
    fn name(&self) -> &'static str {
        "reverse"
    }

    fn boxed_clone(&self) -> Box<dyn Coding> {
        Box::new(self.clone())
    }

    fn reset(&mut self) {
        self.fired.clear();
    }

    fn encode(&mut self, images: &Tensor, t: usize) -> (Tensor, u64) {
        if t >= self.window {
            return (Tensor::zeros(images.shape().clone()), 0);
        }
        let drive = images.map(|x| match self.spike_time(x) {
            Some(ts) if ts == t => 1.0,
            _ => 0.0,
        });
        let count = drive.iter().filter(|&&s| s != 0.0).count() as u64;
        (drive, count)
    }

    fn fire(&mut self, potential: &mut Tensor, _t: usize, layer: usize) -> (Tensor, u64) {
        if self.fired.len() <= layer {
            self.fired.resize(layer + 1, None);
        }
        let fired =
            self.fired[layer].get_or_insert_with(|| Tensor::zeros(potential.shape().clone()));
        let mut spikes = Tensor::zeros(potential.shape().clone());
        let sd = spikes.data_mut();
        let mut count = 0u64;
        for ((u, f), s) in potential
            .data_mut()
            .iter_mut()
            .zip(fired.data_mut())
            .zip(sd.iter_mut())
        {
            if *f == 0.0 && *u >= self.theta {
                *f = 1.0; // permanent refractory: at most one spike
                *s = 1.0;
                count += 1;
            }
        }
        (spikes, count)
    }

    fn bias_scale(&self, _t: usize) -> f32 {
        1.0 / self.window as f32
    }

    fn synop_needs_mult(&self) -> bool {
        false
    }

    fn decode_window(&self) -> usize {
        self.window
    }
}

/// Analytic operation-count model for TDSNN, per the paper's Sec. V.
///
/// * Multiplications: one exponential update per **leaky** IF neuron per
///   time step (computed via LUT/multiply in practice).
/// * Additions: the same per-step leak accumulation plus one accumulate per
///   ticking-neuron spike — ticking neurons fire every step.
///
/// # Examples
///
/// ```
/// use t2fsnn_snn::coding::TdsnnCostModel;
///
/// let model = TdsnnCostModel { neurons: 1_000, total_steps: 100, spikes: 5_000 };
/// assert_eq!(model.mults(), 100_000);
/// assert!(model.adds() > model.mults()); // ticking overhead dominates
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TdsnnCostModel {
    /// Total number of (leaky) IF neurons in the network.
    pub neurons: u64,
    /// Total simulated time steps (layers × per-layer window).
    pub total_steps: u64,
    /// Regular (non-ticking) spike count of the inference.
    pub spikes: u64,
}

impl TdsnnCostModel {
    /// Multiplication count: exponential leak per neuron per step.
    pub fn mults(&self) -> u64 {
        self.neurons * self.total_steps
    }

    /// Addition count: leak update per neuron-step, plus ticking-neuron
    /// accumulations (one ticking input per neuron per step), plus regular
    /// spike accumulations.
    pub fn adds(&self) -> u64 {
        2 * self.neurons * self.total_steps + self.spikes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_values_spike_later() {
        let c = ReverseCoding::new(16);
        let t_small = c.spike_time(0.1).unwrap();
        let t_large = c.spike_time(0.9).unwrap();
        assert!(t_large > t_small, "{t_large} vs {t_small}");
        assert_eq!(c.spike_time(0.0), None);
        assert_eq!(c.spike_time(1.0), Some(15));
    }

    #[test]
    fn encode_emits_each_pixel_once() {
        let mut c = ReverseCoding::new(8);
        let img = Tensor::from_vec([1, 3], vec![0.2, 0.7, 0.0]).unwrap();
        let mut total = 0u64;
        for t in 0..8 {
            let (_, n) = c.encode(&img, t);
            total += n;
        }
        assert_eq!(total, 2); // the 0.0 pixel never spikes
                              // Past the window: silence.
        let (_, n) = c.encode(&img, 100);
        assert_eq!(n, 0);
    }

    #[test]
    fn hidden_neurons_fire_at_most_once() {
        let mut c = ReverseCoding::new(8);
        let mut u = Tensor::from_vec([1, 1], vec![5.0]).unwrap();
        let (_, n1) = c.fire(&mut u, 0, 0);
        let (_, n2) = c.fire(&mut u, 1, 0);
        assert_eq!(n1, 1);
        assert_eq!(n2, 0, "refractory must block the second spike");
        c.reset();
        let (_, n3) = c.fire(&mut u, 0, 0);
        assert_eq!(n3, 1, "reset must clear refractory state");
    }

    #[test]
    fn cost_model_scales_with_neurons_and_steps() {
        let base = TdsnnCostModel {
            neurons: 100,
            total_steps: 10,
            spikes: 50,
        };
        let wider = TdsnnCostModel {
            neurons: 200,
            ..base
        };
        assert_eq!(wider.mults(), 2 * base.mults());
        assert!(wider.adds() > base.adds());
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let _ = ReverseCoding::new(0);
    }
}
