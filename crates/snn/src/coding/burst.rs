//! Burst coding: short inter-spike-interval bursts carry exponentially
//! growing weight.
//!
//! Following "Fast and efficient information transmission with burst
//! spikes in deep spiking neural networks" (Park et al., DAC 2019 — ref
//! [10] of the paper): a neuron may emit a *burst* of up to `n_max` spikes
//! in one time step; the `i`-th spike of a burst carries weight `2^i·θ`, so
//! a burst of `n` spikes transmits `θ·(2^n − 1)`. Large membrane
//! potentials therefore drain in `O(log u)` spikes instead of the `O(u)`
//! spikes rate coding needs — the mechanism behind burst coding's large
//! spike-count reduction in Table II.

use serde::{Deserialize, Serialize};
use t2fsnn_tensor::{SpikeBatch, Tensor};

use super::Coding;

/// Burst coding with geometric intra-burst spike weights.
///
/// # Examples
///
/// ```
/// use t2fsnn_snn::coding::{BurstCoding, Coding};
/// use t2fsnn_tensor::Tensor;
///
/// let mut coding = BurstCoding::new(5);
/// let mut u = Tensor::from_vec([1, 1], vec![3.0]).unwrap();
/// let (spikes, n) = coding.fire(&mut u, 0, 0);
/// assert_eq!(n, 2);                  // burst of 2 spikes
/// assert_eq!(spikes.data()[0], 3.0); // transmits θ(2²−1) = 3
/// assert_eq!(u.data()[0], 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstCoding {
    /// Maximum burst length per time step.
    pub n_max: u32,
    /// Base firing threshold.
    pub theta: f32,
}

impl BurstCoding {
    /// Creates burst coding with the given maximum burst length and θ = 1.
    ///
    /// # Panics
    ///
    /// Panics if `n_max == 0` or `n_max > 16`.
    pub fn new(n_max: u32) -> Self {
        assert!(
            (1..=16).contains(&n_max),
            "burst length must be in 1..=16, got {n_max}"
        );
        BurstCoding { n_max, theta: 1.0 }
    }

    /// Value transmitted by a burst of `n` spikes: `θ·(2ⁿ − 1)`.
    pub fn burst_value(&self, n: u32) -> f32 {
        self.theta * ((1u64 << n) - 1) as f32
    }

    /// Largest burst (≤ `n_max`) affordable by membrane potential `u`.
    fn burst_for(&self, u: f32) -> u32 {
        let mut n = 0u32;
        while n < self.n_max && self.burst_value(n + 1) <= u {
            n += 1;
        }
        n
    }
}

impl Coding for BurstCoding {
    fn name(&self) -> &'static str {
        "burst"
    }

    fn boxed_clone(&self) -> Box<dyn Coding> {
        Box::new(*self)
    }

    fn encode(&mut self, images: &Tensor, _t: usize) -> (Tensor, u64) {
        // Constant analog current, as in rate coding; bursts arise in the
        // hidden layers where potentials accumulate faster.
        (images.clone(), 0)
    }

    fn fire(&mut self, potential: &mut Tensor, _t: usize, _layer: usize) -> (Tensor, u64) {
        let mut spikes = Tensor::zeros(potential.shape().clone());
        let sd = spikes.data_mut();
        let mut count = 0u64;
        for (u, s) in potential.data_mut().iter_mut().zip(sd.iter_mut()) {
            let n = self.burst_for(*u);
            if n > 0 {
                let v = self.burst_value(n);
                *u -= v;
                *s = v;
                count += n as u64;
            }
        }
        (spikes, count)
    }

    fn fire_events(
        &mut self,
        potential: &mut Tensor,
        _t: usize,
        _layer: usize,
        events: &mut SpikeBatch,
    ) -> u64 {
        let feature: usize = potential.dims()[1..].iter().product();
        let feature_dims = potential.dims()[1..].to_vec();
        events.begin(&feature_dims);
        let mut count = 0u64;
        // A burst needs `u ≥ burst_value(1) = θ`, so the SIMD threshold
        // scan finds exactly the bursting neurons (ascending order);
        // the per-neuron burst sizing stays scalar.
        let mut hits: Vec<u32> = Vec::new();
        for image in potential.data_mut().chunks_exact_mut(feature.max(1)) {
            hits.clear();
            t2fsnn_tensor::simd::collect_ge(image, self.theta, &mut hits);
            for &j in &hits {
                let u = &mut image[j as usize];
                let n = self.burst_for(*u);
                debug_assert!(n > 0, "collect_ge hit implies an affordable burst");
                let v = self.burst_value(n);
                *u -= v;
                events.push(j, v);
                count += n as u64;
            }
            events.end_image();
        }
        count
    }

    fn bias_scale(&self, _t: usize) -> f32 {
        1.0
    }

    fn synop_needs_mult(&self) -> bool {
        true // burst weight multiplies the synapse (LUT in hardware)
    }

    fn decode_window(&self) -> usize {
        1
    }

    fn input_period(&self) -> Option<usize> {
        Some(1) // constant analog current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_value_is_geometric() {
        let c = BurstCoding::new(5);
        assert_eq!(c.burst_value(0), 0.0);
        assert_eq!(c.burst_value(1), 1.0);
        assert_eq!(c.burst_value(2), 3.0);
        assert_eq!(c.burst_value(3), 7.0);
    }

    #[test]
    fn large_potential_drains_logarithmically() {
        let mut c = BurstCoding::new(5);
        let mut u = Tensor::from_vec([1, 1], vec![30.0]).unwrap();
        // Rate coding would need 30 steps; bursts need far fewer.
        let mut steps = 0;
        let mut spikes = 0u64;
        while u.data()[0] >= 1.0 && steps < 10 {
            let (_, n) = c.fire(&mut u, steps, 0);
            spikes += n;
            steps += 1;
        }
        assert!(steps <= 3, "drained in {steps} steps");
        assert!(spikes <= 10, "{spikes} spikes");
    }

    #[test]
    fn burst_respects_n_max() {
        let mut c = BurstCoding::new(2);
        let mut u = Tensor::from_vec([1, 1], vec![100.0]).unwrap();
        let (s, n) = c.fire(&mut u, 0, 0);
        assert_eq!(n, 2);
        assert_eq!(s.data()[0], 3.0);
        assert_eq!(u.data()[0], 97.0);
    }

    #[test]
    fn transmitted_value_conserved() {
        // Whatever the potential, post-fire residual + transmitted = initial.
        let mut c = BurstCoding::new(5);
        for &v in &[0.5f32, 1.0, 2.7, 9.9, 31.5] {
            let mut u = Tensor::from_vec([1, 1], vec![v]).unwrap();
            let (s, _) = c.fire(&mut u, 0, 0);
            assert!((u.data()[0] + s.data()[0] - v).abs() < 1e-5);
        }
    }

    #[test]
    fn sub_threshold_is_silent() {
        let mut c = BurstCoding::new(5);
        let mut u = Tensor::from_vec([1, 1], vec![0.99]).unwrap();
        let (s, n) = c.fire(&mut u, 0, 0);
        assert_eq!(n, 0);
        assert_eq!(s.data()[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "burst length")]
    fn zero_burst_panics() {
        let _ = BurstCoding::new(0);
    }
}
