//! Rate coding: firing frequency carries the value.
//!
//! The oldest and most robust scheme (Adrian 1926; refs [7, 8] of the
//! paper): a neuron transmitting value `x ∈ [0, 1]` fires `x·T` spikes in a
//! window of `T` steps. Following Rueckauer et al. 2017, the input image is
//! injected as a constant analog current (more accurate than Poisson
//! spikes) and hidden IF neurons reset by subtraction.
//!
//! Characteristics the comparison experiments reproduce: high accuracy,
//! but a *large* number of spikes and slow convergence — the number of
//! spikes grows linearly with the simulation window.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use t2fsnn_tensor::{SpikeBatch, Tensor};

use super::Coding;

/// How the input image drives the first layer under rate coding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RateInput {
    /// Constant analog current equal to the pixel value (Rueckauer 2017's
    /// recommendation — lower variance, no input spikes to count).
    Analog,
    /// Bernoulli spike trains: each pixel spikes with probability equal to
    /// its value at every step (the classic Diehl 2015 Poisson-style
    /// input). Binary input spikes keep the whole network accumulate-only.
    Bernoulli {
        /// RNG seed, re-applied on every [`Coding::reset`].
        seed: u64,
    },
}

/// Rate coding with reset-by-subtraction hidden neurons and a choice of
/// input drive.
///
/// # Examples
///
/// ```
/// use t2fsnn_snn::coding::{Coding, RateCoding};
/// use t2fsnn_tensor::Tensor;
///
/// let mut coding = RateCoding::new();
/// let image = Tensor::full([1, 4], 0.5);
/// let (drive, input_spikes) = coding.encode(&image, 0);
/// assert_eq!(drive.data(), &[0.5, 0.5, 0.5, 0.5]); // analog current
/// assert_eq!(input_spikes, 0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateCoding {
    /// Firing threshold of hidden neurons.
    pub theta: f32,
    /// Input drive variant.
    pub input: RateInput,
    #[serde(skip)]
    rng: Option<ChaCha8Rng>,
}

impl PartialEq for RateCoding {
    fn eq(&self, other: &Self) -> bool {
        self.theta == other.theta && self.input == other.input
    }
}

impl RateCoding {
    /// Creates rate coding with the standard threshold θ = 1 (activations
    /// are normalized to `[0, 1]`) and analog-current input.
    pub fn new() -> Self {
        RateCoding {
            theta: 1.0,
            input: RateInput::Analog,
            rng: None,
        }
    }

    /// Creates rate coding with Bernoulli (Poisson-style) spiking input.
    pub fn bernoulli(seed: u64) -> Self {
        RateCoding {
            theta: 1.0,
            input: RateInput::Bernoulli { seed },
            rng: None,
        }
    }
}

impl Default for RateCoding {
    fn default() -> Self {
        RateCoding::new()
    }
}

impl Coding for RateCoding {
    fn name(&self) -> &'static str {
        "rate"
    }

    fn boxed_clone(&self) -> Box<dyn Coding> {
        Box::new(self.clone())
    }

    fn batch_divisible(&self) -> bool {
        // The Bernoulli input draws one RNG sample per element in batch
        // order, so splitting the batch would change each image's spike
        // train; analog input is element-independent.
        matches!(self.input, RateInput::Analog)
    }

    fn reset(&mut self) {
        self.rng = match self.input {
            RateInput::Analog => None,
            RateInput::Bernoulli { seed } => Some(ChaCha8Rng::seed_from_u64(seed)),
        };
    }

    fn encode(&mut self, images: &Tensor, _t: usize) -> (Tensor, u64) {
        match self.input {
            // Constant current injection: the image itself, every step.
            RateInput::Analog => (images.clone(), 0),
            RateInput::Bernoulli { seed } => {
                let rng = self
                    .rng
                    .get_or_insert_with(|| ChaCha8Rng::seed_from_u64(seed));
                let mut count = 0u64;
                let drive = Tensor::from_vec(
                    images.shape().clone(),
                    images
                        .iter()
                        .map(|&x| {
                            if rng.gen::<f32>() < x {
                                count += 1;
                                1.0
                            } else {
                                0.0
                            }
                        })
                        .collect(),
                )
                .expect("sized by construction");
                (drive, count)
            }
        }
    }

    fn fire(&mut self, potential: &mut Tensor, _t: usize, _layer: usize) -> (Tensor, u64) {
        let mut spikes = Tensor::zeros(potential.shape().clone());
        let sd = spikes.data_mut();
        let mut count = 0u64;
        for (u, s) in potential.data_mut().iter_mut().zip(sd.iter_mut()) {
            if *u >= self.theta {
                *u -= self.theta;
                *s = 1.0;
                count += 1;
            }
        }
        (spikes, count)
    }

    fn fire_events(
        &mut self,
        potential: &mut Tensor,
        _t: usize,
        _layer: usize,
        events: &mut SpikeBatch,
    ) -> u64 {
        super::fire_subtract_events(potential, self.theta, 1.0, events)
    }

    fn bias_scale(&self, _t: usize) -> f32 {
        // One full bias contribution per step matches the per-step analog
        // input current.
        1.0
    }

    fn synop_needs_mult(&self) -> bool {
        false // binary spikes: accumulate-only
    }

    fn decode_window(&self) -> usize {
        1
    }

    fn input_period(&self) -> Option<usize> {
        match self.input {
            RateInput::Analog => Some(1),
            RateInput::Bernoulli { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fire_rate_tracks_drive() {
        let mut coding = RateCoding::new();
        let mut u = Tensor::zeros([1, 1]);
        let x = 0.3f32;
        let mut spikes = 0u64;
        let steps = 100;
        for t in 0..steps {
            u.data_mut()[0] += x;
            let (_, n) = coding.fire(&mut u, t, 0);
            spikes += n;
        }
        let rate = spikes as f32 / steps as f32;
        assert!((rate - x).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn values_above_one_saturate_at_one_spike_per_step() {
        let mut coding = RateCoding::new();
        let mut u = Tensor::from_vec([1, 1], vec![5.0]).unwrap();
        let (s, n) = coding.fire(&mut u, 0, 0);
        // One spike per step regardless of how far above threshold.
        assert_eq!(n, 1);
        assert_eq!(s.data()[0], 1.0);
        assert_eq!(u.data()[0], 4.0);
    }

    #[test]
    fn encode_is_constant_current() {
        let mut coding = RateCoding::new();
        let img = Tensor::from_vec([1, 2], vec![0.2, 0.9]).unwrap();
        let (d0, _) = coding.encode(&img, 0);
        let (d9, _) = coding.encode(&img, 9);
        assert_eq!(d0, d9);
    }

    #[test]
    fn metadata() {
        let coding = RateCoding::new();
        assert!(!coding.synop_needs_mult());
        assert_eq!(coding.bias_scale(3), 1.0);
        assert_eq!(coding.decode_window(), 1);
    }

    #[test]
    fn bernoulli_input_rate_tracks_pixel_value() {
        let mut coding = RateCoding::bernoulli(5);
        coding.reset();
        let img = Tensor::from_vec([1, 2], vec![0.25, 0.9]).unwrap();
        let steps = 2000;
        let mut counts = [0u64; 2];
        for t in 0..steps {
            let (d, _) = coding.encode(&img, t);
            for (c, &v) in counts.iter_mut().zip(d.iter()) {
                if v != 0.0 {
                    *c += 1;
                }
            }
        }
        let r0 = counts[0] as f32 / steps as f32;
        let r1 = counts[1] as f32 / steps as f32;
        assert!((r0 - 0.25).abs() < 0.05, "rate {r0}");
        assert!((r1 - 0.9).abs() < 0.05, "rate {r1}");
    }

    #[test]
    fn bernoulli_spikes_are_binary_and_counted() {
        let mut coding = RateCoding::bernoulli(6);
        coding.reset();
        let img = Tensor::full([1, 100], 0.5);
        let (d, count) = coding.encode(&img, 0);
        assert!(d.iter().all(|&v| v == 0.0 || v == 1.0));
        assert_eq!(count, d.iter().filter(|&&v| v != 0.0).count() as u64);
        assert!(count > 20 && count < 80, "{count}");
    }

    #[test]
    fn reset_reproduces_the_spike_train() {
        let mut coding = RateCoding::bernoulli(7);
        let img = Tensor::full([1, 32], 0.5);
        coding.reset();
        let (a, _) = coding.encode(&img, 0);
        coding.reset();
        let (b, _) = coding.encode(&img, 0);
        assert_eq!(a, b);
    }
}
