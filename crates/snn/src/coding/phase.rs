//! Phase coding: spike *position within a global oscillation* carries
//! weight.
//!
//! Following "Deep neural networks with weighted spikes" (Kim et al.,
//! Neurocomputing 2018 — ref [11] of the paper): time is divided into
//! periods of `K` phases and a spike in phase `k` carries weight
//! `2^-(1+k)`. A value `x ∈ [0, 1)` is transmitted once per period as its
//! `K`-bit binary expansion, so one period moves a full activation value —
//! much faster than rate coding, at one extra multiply per synaptic event
//! (realizable as a shift / lookup table).
//!
//! The paper's observation that phase coding can emit *more* spikes than
//! rate coding on easy datasets (Table II, MNIST) comes from the periodic
//! re-transmission: every neuron re-sends its bits every `K` steps.

use serde::{Deserialize, Serialize};
use t2fsnn_tensor::{SpikeBatch, Tensor};

use super::Coding;

/// Phase coding with a global `K`-phase oscillator.
///
/// # Examples
///
/// ```
/// use t2fsnn_snn::coding::{Coding, PhaseCoding};
/// use t2fsnn_tensor::Tensor;
///
/// let mut coding = PhaseCoding::new(8);
/// // 0.5 has binary expansion .1000…: a spike only in phase 0.
/// let image = Tensor::full([1, 1], 0.5);
/// let (d0, n0) = coding.encode(&image, 0);
/// assert_eq!(d0.data()[0], 0.5); // weight 2^-1
/// assert_eq!(n0, 1);
/// let (d1, n1) = coding.encode(&image, 1);
/// assert_eq!(d1.data()[0], 0.0);
/// assert_eq!(n1, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseCoding {
    /// Number of phases per period (8 in the reference implementation).
    pub period: usize,
}

impl PhaseCoding {
    /// Creates phase coding with the given period.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` or `period > 24` (weights would underflow
    /// `f32` usefulness).
    pub fn new(period: usize) -> Self {
        assert!(
            period > 0 && period <= 24,
            "phase period must be in 1..=24, got {period}"
        );
        PhaseCoding { period }
    }

    /// Weight of a spike in the phase of time step `t`: `2^-(1 + t mod K)`.
    pub fn phase_weight(&self, t: usize) -> f32 {
        let k = t % self.period;
        0.5f32.powi(k as i32 + 1)
    }

    /// Whether bit `k` of `x`'s binary expansion is set (bit 0 is the
    /// most significant fractional bit, weight 1/2).
    fn bit_of(&self, x: f32, k: usize) -> bool {
        // x in [0,1): shift left by k+1 bits and test the integer parity.
        let shifted = (x.clamp(0.0, 1.0 - f32::EPSILON)) * (1u32 << (k + 1)) as f32;
        (shifted as u32) % 2 == 1
    }
}

impl Coding for PhaseCoding {
    fn name(&self) -> &'static str {
        "phase"
    }

    fn boxed_clone(&self) -> Box<dyn Coding> {
        Box::new(*self)
    }

    fn encode(&mut self, images: &Tensor, t: usize) -> (Tensor, u64) {
        let k = t % self.period;
        let weight = self.phase_weight(t);
        let drive = images.map(|x| if self.bit_of(x, k) { weight } else { 0.0 });
        let count = images.iter().filter(|&&x| self.bit_of(x, k)).count() as u64;
        (drive, count)
    }

    fn fire(&mut self, potential: &mut Tensor, t: usize, _layer: usize) -> (Tensor, u64) {
        // A neuron fires a weighted spike whenever its membrane can afford
        // the current phase's weight. Reset by subtracting the transmitted
        // weight, so residual information carries into later phases.
        let weight = self.phase_weight(t);
        let mut spikes = Tensor::zeros(potential.shape().clone());
        let sd = spikes.data_mut();
        let mut count = 0u64;
        for (u, s) in potential.data_mut().iter_mut().zip(sd.iter_mut()) {
            if *u >= weight {
                *u -= weight;
                *s = weight;
                count += 1;
            }
        }
        (spikes, count)
    }

    fn fire_events(
        &mut self,
        potential: &mut Tensor,
        t: usize,
        _layer: usize,
        events: &mut SpikeBatch,
    ) -> u64 {
        let weight = self.phase_weight(t);
        super::fire_subtract_events(potential, weight, weight, events)
    }

    fn bias_scale(&self, _t: usize) -> f32 {
        // One full value arrives per period, so spread the bias over it.
        1.0 / self.period as f32
    }

    fn synop_needs_mult(&self) -> bool {
        true // spike weight multiplies the synapse (shift/LUT in hardware)
    }

    fn decode_window(&self) -> usize {
        self.period
    }

    fn input_period(&self) -> Option<usize> {
        Some(self.period) // the bit pattern repeats every period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_weights_halve() {
        let c = PhaseCoding::new(8);
        assert_eq!(c.phase_weight(0), 0.5);
        assert_eq!(c.phase_weight(1), 0.25);
        assert_eq!(c.phase_weight(7), 0.5f32.powi(8));
        assert_eq!(c.phase_weight(8), 0.5); // periodic
    }

    #[test]
    fn one_period_transmits_binary_expansion() {
        let mut c = PhaseCoding::new(8);
        let x = 0.6875f32; // 0.1011₂
        let img = Tensor::from_vec([1, 1], vec![x]).unwrap();
        let mut total = 0.0f32;
        let mut spikes = 0u64;
        for t in 0..8 {
            let (d, n) = c.encode(&img, t);
            total += d.data()[0];
            spikes += n;
        }
        assert!((total - x).abs() < 1.0 / 256.0, "decoded {total} vs {x}");
        assert_eq!(spikes, 3); // bits 1011 → 3 ones
    }

    #[test]
    fn encoding_repeats_each_period() {
        let mut c = PhaseCoding::new(8);
        let img = Tensor::from_vec([1, 1], vec![0.3]).unwrap();
        for t in 0..8 {
            let (a, _) = c.encode(&img, t);
            let (b, _) = c.encode(&img, t + 8);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn fire_retransmits_value_over_period() {
        let mut c = PhaseCoding::new(8);
        let v = 0.8125f32;
        let mut u = Tensor::from_vec([1, 1], vec![v]).unwrap();
        let mut sent = 0.0;
        for t in 0..8 {
            let (s, _) = c.fire(&mut u, t, 0);
            sent += s.data()[0];
        }
        assert!((sent - v).abs() < 1.0 / 128.0, "sent {sent} vs {v}");
    }

    #[test]
    fn bias_scale_spreads_over_period() {
        let c = PhaseCoding::new(8);
        let total: f32 = (0..8).map(|t| c.bias_scale(t)).sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_panics() {
        let _ = PhaseCoding::new(0);
    }

    #[test]
    fn needs_mult() {
        assert!(PhaseCoding::new(8).synop_needs_mult());
    }
}
