//! The execution engine: per-step dense vs event-driven dispatch.
//!
//! Spiking workloads spend almost all their time pushing *mostly-zero*
//! tensors through weighted ops. The engine exploits that with a simple
//! rule, applied independently at every weighted op of every time step:
//!
//! 1. scan the incoming signal into a [`SpikeBatch`] event list, **bailing
//!    out** as soon as more than `sparsity_threshold × numel` non-zeros
//!    are seen (so the scan never costs more than a bounded prefix);
//! 2. if the scan completed, propagate the event list through the
//!    scatter kernel (work ∝ events); otherwise fall back to the dense
//!    zero-skipping twin, which walks the signal row-major instead of
//!    materializing the event list.
//!
//! Dispatch can never change a result: every kernel of a pair performs
//! the same floating-point operations on each output element in the same
//! order — ascending `(channel, tap)` for convolutions, ascending input
//! index for linear layers, zeros skipped everywhere — so `SimOutcome`s
//! are bit-identical between [`SimEngine::Dense`] and any event
//! threshold (the simulator's test suite asserts this across engines,
//! codings, and worker counts). Weights are re-laid-out once per run
//! (linear: `[I, O]`; conv: `[C·KH·KW, O]`) so all paths stream weight
//! rows contiguously.

use serde::{Deserialize, Serialize};
use t2fsnn_tensor::ops::sparse;
use t2fsnn_tensor::{Result, SpikeBatch, Tensor};

use crate::network::SnnOp;

/// Engine selection for clock-driven simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SimEngine {
    /// Always use the dense zero-skipping kernels (the reference path).
    Dense,
    /// Use event-list propagation whenever a signal's density is at or
    /// below the threshold (fraction of non-zero entries in `0..=1`);
    /// fall back to dense above it. Results are bit-identical to
    /// [`SimEngine::Dense`] at every threshold.
    Event {
        /// Maximum signal density still propagated as events.
        sparsity_threshold: f32,
    },
}

impl SimEngine {
    /// The default event engine (threshold 0.25: spike tensors denser
    /// than one non-zero in four are propagated densely).
    pub fn event() -> Self {
        SimEngine::Event {
            sparsity_threshold: 0.25,
        }
    }

    /// The dense reference engine.
    pub fn dense() -> Self {
        SimEngine::Dense
    }

    fn threshold(&self) -> f32 {
        match self {
            SimEngine::Dense => 0.0,
            SimEngine::Event { sparsity_threshold } => sparsity_threshold.clamp(0.0, 1.0),
        }
    }
}

impl Default for SimEngine {
    /// [`SimEngine::event`].
    fn default() -> Self {
        SimEngine::event()
    }
}

/// Above this density an event-form convolution signal is densified and
/// propagated through im2col + blocked GEMM: the vectorized dense kernel
/// overtakes the sparsity-proportional scatter once roughly one entry in
/// three is active (measured on the workspace's scaled-VGG shapes).
const GEMM_DENSITY: f32 = 0.35;

/// Per-run execution state: cached transposed linear weights plus a
/// reusable event-list scratch buffer.
///
/// Create one per simulation run and route every op propagation through
/// [`OpExecutor::propagate`]; it returns exactly what
/// [`SnnOp::propagate`] would, faster.
pub struct OpExecutor {
    /// `weight.transpose()` for every [`SnnOp::Linear`], else `None`.
    weight_t: Vec<Option<Tensor>>,
    /// `[C·KH·KW, O]` filter layout for every [`SnnOp::Conv`], else
    /// `None` (consumed by the gather kernel).
    filter_t: Vec<Option<Tensor>>,
    threshold: f32,
    scratch: SpikeBatch,
}

impl OpExecutor {
    /// Prepares the executor for a fixed op sequence.
    pub fn new(ops: &[SnnOp], engine: SimEngine) -> Self {
        let weight_t = ops
            .iter()
            .map(|op| match op {
                SnnOp::Linear { weight, .. } => {
                    Some(weight.transpose().expect("linear weight is rank 2"))
                }
                _ => None,
            })
            .collect();
        let filter_t = ops
            .iter()
            .map(|op| match op {
                SnnOp::Conv { weight, .. } => {
                    Some(sparse::transpose_filter(weight).expect("conv weight is rank 4"))
                }
                _ => None,
            })
            .collect();
        OpExecutor {
            weight_t,
            filter_t,
            threshold: engine.threshold(),
            scratch: SpikeBatch::empty(),
        }
    }

    /// Scans `signal` into the scratch event list; `true` when its
    /// density is at or below the engine threshold.
    fn try_events(&mut self, signal: &Tensor) -> Result<bool> {
        if self.threshold <= 0.0 {
            return Ok(false);
        }
        let cap = (self.threshold as f64 * signal.numel() as f64) as usize;
        self.scratch.refill_bounded(signal, cap)
    }

    /// Propagates `signal` through `ops[i]`, dispatching weighted ops to
    /// the sparse or dense kernel by the engine rule. Returns the
    /// postsynaptic drive and the synaptic accumulate count — identical,
    /// bit for bit, to [`SnnOp::propagate`].
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn propagate(&mut self, ops: &[SnnOp], i: usize, signal: &Tensor) -> Result<(Tensor, u64)> {
        match &ops[i] {
            SnnOp::Conv { weight, spec, .. } => {
                let use_events = self.try_events(signal)?;
                let filter_t = self.filter_t[i]
                    .as_ref()
                    .expect("conv op has a transposed filter");
                let kernel = (weight.dims()[2], weight.dims()[3]);
                if use_events {
                    sparse::conv2d_scatter_events(&self.scratch, filter_t, kernel, *spec)
                } else {
                    sparse::conv2d_scatter_t(signal, filter_t, kernel, *spec)
                }
            }
            SnnOp::Linear { .. } => {
                let use_events = self.try_events(signal)?;
                let weight_t = self.weight_t[i]
                    .as_ref()
                    .expect("linear op has a transposed weight");
                if use_events {
                    sparse::linear_scatter_events(&self.scratch, weight_t)
                } else {
                    sparse::linear_scatter_t(signal, weight_t)
                }
            }
            other => other.propagate(signal),
        }
    }

    /// [`OpExecutor::propagate`] for a signal already in event form:
    /// returns the dense drive and synop count a dense signal with the
    /// same non-zeros would produce, without the scan.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch or if `ops[i]` is not a
    /// weighted op.
    pub fn propagate_events(
        &mut self,
        ops: &[SnnOp],
        i: usize,
        events: &SpikeBatch,
    ) -> Result<(Tensor, u64)> {
        match &ops[i] {
            SnnOp::Conv { weight, spec, .. } => {
                let filter_t = self.filter_t[i]
                    .as_ref()
                    .expect("conv op has a transposed filter");
                let kernel = (weight.dims()[2], weight.dims()[3]);
                sparse::conv2d_scatter_events(events, filter_t, kernel, *spec)
            }
            SnnOp::Linear { .. } => {
                let weight_t = self.weight_t[i]
                    .as_ref()
                    .expect("linear op has a transposed weight");
                sparse::linear_scatter_events(events, weight_t)
            }
            _ => Err(t2fsnn_tensor::TensorError::InvalidArgument {
                op: "OpExecutor::propagate_events",
                message: format!("op {i} is not a weighted op"),
            }),
        }
    }

    /// Computes a weighted op's full drive — synaptic propagation plus
    /// `bias · bias_scale` — and integrates it into `potential` in one
    /// fused pass. Per element the membrane receives exactly the value
    /// the unfused `propagate` → `inject_bias` → `integrate` sequence
    /// adds (the position-major accumulator already holds the summed
    /// drive, so the intermediate tensor was a pure copy), without
    /// materializing that tensor.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch or if `ops[i]` is not a
    /// weighted op.
    pub fn accumulate_weighted(
        &mut self,
        ops: &[SnnOp],
        i: usize,
        signal: &Tensor,
        bias_scale: f32,
        potential: &mut Tensor,
    ) -> Result<u64> {
        match &ops[i] {
            SnnOp::Conv {
                weight, bias, spec, ..
            } => {
                let use_events = self.try_events(signal)?;
                let filter_t = self.filter_t[i]
                    .as_ref()
                    .expect("conv op has a transposed filter");
                let kernel = (weight.dims()[2], weight.dims()[3]);
                if use_events {
                    sparse::conv2d_scatter_events_acc(
                        &self.scratch,
                        filter_t,
                        kernel,
                        *spec,
                        bias,
                        bias_scale,
                        potential,
                    )
                } else {
                    sparse::conv2d_scatter_t_acc(
                        signal, filter_t, kernel, *spec, bias, bias_scale, potential,
                    )
                }
            }
            SnnOp::Linear { .. } => {
                // Linear drives are small ([N, O]); the unfused sequence
                // keeps its exact summation order.
                let (mut z, synops) = self.propagate(ops, i, signal)?;
                ops[i].inject_bias(&mut z, bias_scale)?;
                potential.add_scaled(&z, 1.0)?;
                Ok(synops)
            }
            _ => Err(t2fsnn_tensor::TensorError::InvalidArgument {
                op: "OpExecutor::accumulate_weighted",
                message: format!("op {i} is not a weighted op"),
            }),
        }
    }

    /// [`OpExecutor::accumulate_weighted`] for a signal already in event
    /// form (e.g. produced by [`crate::coding::Coding::fire_events`]):
    /// no scan, no dense intermediate.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch or if `ops[i]` is not a
    /// weighted op.
    pub fn accumulate_weighted_events(
        &mut self,
        ops: &[SnnOp],
        i: usize,
        events: &SpikeBatch,
        bias_scale: f32,
        potential: &mut Tensor,
    ) -> Result<u64> {
        match &ops[i] {
            SnnOp::Conv {
                weight, bias, spec, ..
            } => {
                let kernel = (weight.dims()[2], weight.dims()[3]);
                // Event lists carry their density for free, so very
                // dense steps (phase/burst coding re-transmissions) can
                // take the vectorized im2col GEMM instead of the
                // sparsity-proportional scatter — same f32 results
                // either way (see t2fsnn_tensor::ops::sparse).
                if events.density() > GEMM_DENSITY {
                    let dense = events.to_dense();
                    let mut z = sparse::conv2d_gemm(&dense, weight, *spec)?;
                    let synops =
                        sparse::conv2d_synops_events(events, weight.dims()[0], kernel, *spec)?;
                    ops[i].inject_bias(&mut z, bias_scale)?;
                    potential.add_scaled(&z, 1.0)?;
                    return Ok(synops);
                }
                let filter_t = self.filter_t[i]
                    .as_ref()
                    .expect("conv op has a transposed filter");
                sparse::conv2d_scatter_events_acc(
                    events, filter_t, kernel, *spec, bias, bias_scale, potential,
                )
            }
            SnnOp::Linear { .. } => {
                let weight_t = self.weight_t[i]
                    .as_ref()
                    .expect("linear op has a transposed weight");
                let (mut z, synops) = sparse::linear_scatter_events(events, weight_t)?;
                ops[i].inject_bias(&mut z, bias_scale)?;
                potential.add_scaled(&z, 1.0)?;
                Ok(synops)
            }
            _ => Err(t2fsnn_tensor::TensorError::InvalidArgument {
                op: "OpExecutor::accumulate_weighted_events",
                message: format!("op {i} is not a weighted op"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2fsnn_tensor::ops::Conv2dSpec;

    fn ops() -> Vec<SnnOp> {
        vec![
            SnnOp::Conv {
                name: "c".into(),
                weight: Tensor::from_fn([2, 1, 3, 3], |i| {
                    ((i[0] * 9 + i[2] * 3 + i[3]) % 5) as f32 * 0.2 - 0.3
                }),
                bias: Tensor::zeros([2]),
                spec: Conv2dSpec::new(1, 1),
            },
            SnnOp::AvgPool {
                window: 2,
                stride: 2,
            },
            SnnOp::Flatten,
            SnnOp::Linear {
                name: "l".into(),
                weight: Tensor::from_fn([3, 8], |i| ((i[0] * 8 + i[1]) % 7) as f32 * 0.1),
                bias: Tensor::zeros([3]),
            },
        ]
    }

    fn sparse_signal() -> Tensor {
        let mut t = Tensor::zeros([2, 1, 4, 4]);
        t.set(&[0, 0, 1, 2], 1.0).unwrap();
        t.set(&[1, 0, 3, 3], 0.5).unwrap();
        t
    }

    #[test]
    fn executor_matches_reference_propagate_on_every_engine() {
        let ops = ops();
        for engine in [
            SimEngine::Dense,
            SimEngine::event(),
            SimEngine::Event {
                sparsity_threshold: 1.0,
            },
        ] {
            let mut exec = OpExecutor::new(&ops, engine);
            let mut signal = sparse_signal();
            for i in 0..ops.len() {
                let (want, want_synops) = ops[i].propagate(&signal).unwrap();
                let (got, got_synops) = exec.propagate(&ops, i, &signal).unwrap();
                assert_eq!(got, want, "op {i} under {engine:?}");
                assert_eq!(got_synops, want_synops, "op {i} under {engine:?}");
                signal = got;
            }
        }
    }

    #[test]
    fn dense_engine_never_builds_events() {
        let ops = ops();
        let mut exec = OpExecutor::new(&ops, SimEngine::dense());
        let (_, synops) = exec.propagate(&ops, 0, &sparse_signal()).unwrap();
        assert!(synops > 0);
        assert_eq!(exec.scratch.nnz(), 0, "dense engine skips the scan");
    }

    #[test]
    fn default_is_event_engine() {
        assert_eq!(SimEngine::default(), SimEngine::event());
        assert_eq!(SimEngine::dense().threshold(), 0.0);
    }
}
