//! The execution engine: per-step dense vs event-driven dispatch over
//! **position-major** membrane state.
//!
//! Spiking workloads spend almost all their time pushing *mostly-zero*
//! signals through weighted ops. The engine exploits that with a simple
//! rule, applied independently at every weighted op of every time step:
//!
//! 1. scan the incoming signal into a [`SpikeBatch`] event list, **bailing
//!    out** as soon as more than `sparsity_threshold × numel` non-zeros
//!    are seen (so the scan never costs more than a bounded prefix);
//! 2. if the scan completed, scatter the event list straight into the
//!    target membrane potentials (work ∝ events); otherwise fall back to
//!    the dense zero-skipping twin, which walks the signal row-major
//!    instead of materializing the event list.
//!
//! All feature maps downstream of the first weighted op live in the
//! **position-major** `[N, H, W, C]` layout: membrane potentials, spike
//! flags and pooling gates alike. Fire phases therefore emit events with
//! a contiguous scan whose order — ascending `(y, x, c)` — is the
//! canonical accumulation order every kernel follows, and the conv
//! scatter's axpy rows land directly in the next layer's membrane tensor
//! with no intermediate accumulator to clear or flush. Weights are
//! re-laid-out once per run (linear: `[I, O]`, row-permuted to the
//! position-major feature order after a flatten; conv: `[C·KH·KW, O]`
//! reversed-KW plus a tap-major `[KH·KW·C, O]` GEMM operand).
//!
//! Dispatch can never change a result: every kernel of a pair performs
//! the same floating-point operations on each output element in the same
//! canonical order, so `SimOutcome`s are bit-identical between
//! [`SimEngine::Dense`] and any event threshold (the simulator's test
//! suite asserts this across engines, codings, and worker counts).

use serde::{Deserialize, Serialize};
use t2fsnn_tensor::ops::sparse::{self, PoolScratch};
use t2fsnn_tensor::ops::{avg_pool2d_pm, max_pool2d_pm};
use t2fsnn_tensor::{trace, Result, SpikeBatch, Tensor, TensorError};

use crate::network::SnnOp;

/// Engine selection for clock-driven simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SimEngine {
    /// Always use the dense zero-skipping kernels (the reference path).
    Dense,
    /// Use event-list propagation whenever a signal's density is at or
    /// below the threshold (fraction of non-zero entries in `0..=1`);
    /// fall back to dense above it. Results are bit-identical to
    /// [`SimEngine::Dense`] at every threshold.
    Event {
        /// Maximum signal density still propagated as events.
        sparsity_threshold: f32,
    },
}

impl SimEngine {
    /// The default event engine (threshold 0.25: spike tensors denser
    /// than one non-zero in four are propagated densely).
    pub fn event() -> Self {
        SimEngine::Event {
            sparsity_threshold: 0.25,
        }
    }

    /// The dense reference engine.
    pub fn dense() -> Self {
        SimEngine::Dense
    }

    fn threshold(&self) -> f32 {
        match self {
            SimEngine::Dense => 0.0,
            SimEngine::Event { sparsity_threshold } => sparsity_threshold.clamp(0.0, 1.0),
        }
    }
}

impl Default for SimEngine {
    /// [`SimEngine::event`].
    fn default() -> Self {
        SimEngine::event()
    }
}

/// Above this density an event-form convolution signal is densified and
/// propagated through position-major im2col + blocked GEMM straight into
/// the membrane: with the fill/flush gone the direct scatter stays ahead
/// of the vectorized GEMM until roughly every second entry is active
/// (measured on the workspace's scaled-VGG shapes; PR 2's accumulator
/// scatter lost to the GEMM already at ~1/3).
const GEMM_DENSITY: f32 = 0.5;

/// The per-image state dims of a feature shape in the simulator's native
/// layout: 3-D channel-major `[C, H, W]` shapes become position-major
/// `[H, W, C]`; everything else (dense-layer `[O]` vectors) is unchanged.
pub fn position_major_dims(dims: &[usize]) -> Vec<usize> {
    match dims {
        [c, h, w] => vec![*h, *w, *c],
        other => other.to_vec(),
    }
}

/// Per-run execution state: cached re-laid-out weights plus reusable
/// event-list and pooling scratch buffers.
///
/// Create one per simulation run and route every op propagation through
/// it; all paths are bit-identical to each other (the canonical-order
/// invariant) and the membrane-accumulating entry points are the fast
/// ones.
pub struct OpExecutor {
    /// `[I, O]` transposed weight for every [`SnnOp::Linear`] — rows
    /// permuted to the position-major feature order when the layer
    /// consumes flattened conv features — else `None`.
    weight_t: Vec<Option<Tensor>>,
    /// `[C·KH·KW, O]` reversed-KW filter for every [`SnnOp::Conv`]
    /// (consumed by the scatter kernels), else `None`.
    filter_t: Vec<Option<Tensor>>,
    /// `[KH·KW·C, O]` tap-major filter for every [`SnnOp::Conv`]
    /// (consumed by the GEMM fallback), else `None`.
    filter_r: Vec<Option<Tensor>>,
    /// Position-major per-image output dims for every op.
    pm_shapes: Vec<Vec<usize>>,
    /// Index of the first weighted op: everything before it runs in the
    /// channel-major image domain, everything after in position-major.
    first_weighted: usize,
    threshold: f32,
    scratch: SpikeBatch,
    pool_out: SpikeBatch,
    pool_scratch: PoolScratch,
}

impl OpExecutor {
    /// Prepares the executor for a fixed op sequence over `[C, H, W]`
    /// inputs (`input_dims` excludes the batch axis).
    ///
    /// # Errors
    ///
    /// Returns an error if the op shapes do not chain over `input_dims`
    /// or the network has no weighted op.
    pub fn new(ops: &[SnnOp], engine: SimEngine, input_dims: &[usize]) -> Result<Self> {
        let first_weighted =
            ops.iter()
                .position(SnnOp::is_weighted)
                .ok_or(TensorError::InvalidArgument {
                    op: "OpExecutor::new",
                    message: "network has no weighted ops".to_string(),
                })?;
        let mut shapes: Vec<Vec<usize>> = Vec::with_capacity(ops.len());
        let mut cur = input_dims.to_vec();
        for op in ops {
            cur = op.output_shape(&cur)?;
            shapes.push(cur.clone());
        }
        let mut weight_t: Vec<Option<Tensor>> = Vec::with_capacity(ops.len());
        let mut filter_t: Vec<Option<Tensor>> = Vec::with_capacity(ops.len());
        let mut filter_r: Vec<Option<Tensor>> = Vec::with_capacity(ops.len());
        // `[C, H, W]` dims recorded at a position-major flatten: the next
        // linear layer's weight rows are permuted to match the flattened
        // (y, x, c) feature order.
        let mut pm_flatten_src: Option<[usize; 3]> = None;
        let mut prev_dims = input_dims.to_vec();
        for (i, op) in ops.iter().enumerate() {
            match op {
                SnnOp::Conv { weight, .. } => {
                    filter_t.push(Some(sparse::transpose_filter(weight)?));
                    filter_r.push(Some(sparse::reorder_filter_taps(weight)?));
                    weight_t.push(None);
                }
                SnnOp::Linear { weight, .. } => {
                    let wt = match pm_flatten_src.take() {
                        Some([c, h, w]) => permuted_weight_t(weight, c, h * w)?,
                        None => weight.transpose()?,
                    };
                    weight_t.push(Some(wt));
                    filter_t.push(None);
                    filter_r.push(None);
                }
                SnnOp::Flatten => {
                    if i > first_weighted && prev_dims.len() == 3 {
                        pm_flatten_src = Some([prev_dims[0], prev_dims[1], prev_dims[2]]);
                    }
                    weight_t.push(None);
                    filter_t.push(None);
                    filter_r.push(None);
                }
                _ => {
                    weight_t.push(None);
                    filter_t.push(None);
                    filter_r.push(None);
                }
            }
            prev_dims = shapes[i].clone();
        }
        let pm_shapes = shapes.iter().map(|s| position_major_dims(s)).collect();
        Ok(OpExecutor {
            weight_t,
            filter_t,
            filter_r,
            pm_shapes,
            first_weighted,
            threshold: engine.threshold(),
            scratch: SpikeBatch::empty(),
            pool_out: SpikeBatch::empty(),
            pool_scratch: PoolScratch::new(),
        })
    }

    /// Index of the first weighted op (the boundary between the
    /// channel-major input domain and the position-major layer domain).
    pub fn first_weighted(&self) -> usize {
        self.first_weighted
    }

    /// Position-major per-image output dims of op `i` — the shape of its
    /// membrane state (minus the batch axis).
    pub fn state_dims(&self, i: usize) -> &[usize] {
        &self.pm_shapes[i]
    }

    /// Scans `signal` into the scratch event list; `true` when its
    /// density is at or below the engine threshold.
    fn try_events(&mut self, signal: &Tensor) -> Result<bool> {
        if self.threshold <= 0.0 {
            return Ok(false);
        }
        let cap = (self.threshold as f64 * signal.numel() as f64) as usize;
        self.scratch.refill_bounded(signal, cap)
    }

    /// Propagates `signal` through `ops[i]`, dispatching weighted ops to
    /// the sparse or dense kernel by the engine rule. Signals before the
    /// first weighted op are channel-major (the image domain); the first
    /// weighted conv transposes once and everything downstream — input
    /// and output — is position-major. Returns the postsynaptic drive
    /// and the synaptic accumulate count.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn propagate(&mut self, ops: &[SnnOp], i: usize, signal: &Tensor) -> Result<(Tensor, u64)> {
        match &ops[i] {
            SnnOp::Conv { weight, spec, .. } => {
                let kernel = (weight.dims()[2], weight.dims()[3]);
                let spec = *spec;
                if i == self.first_weighted {
                    let pm_signal = signal.to_position_major()?;
                    self.conv_dispatch(i, kernel, spec, &pm_signal)
                } else {
                    self.conv_dispatch(i, kernel, spec, signal)
                }
            }
            SnnOp::Linear { .. } => {
                let use_events = self.try_events(signal)?;
                let weight_t = self.weight_t[i]
                    .as_ref()
                    .expect("linear op has a transposed weight");
                if use_events {
                    sparse::linear_scatter_events(&self.scratch, weight_t)
                } else {
                    sparse::linear_scatter_t(signal, weight_t)
                }
            }
            op if i < self.first_weighted => op.propagate(signal),
            SnnOp::AvgPool { window, stride } => Ok((avg_pool2d_pm(signal, *window, *stride)?, 0)),
            SnnOp::MaxPool { window, stride } => Ok((max_pool2d_pm(signal, *window, *stride)?, 0)),
            SnnOp::Flatten => {
                let n = signal.dims()[0];
                let rest: usize = signal.dims()[1..].iter().product();
                Ok((signal.reshape([n, rest])?, 0))
            }
        }
    }

    /// [`OpExecutor::propagate`] for a signal **already in position-major
    /// layout** at the first weighted conv (e.g. the TTFS input drive,
    /// built position-major at encode time): skips the per-step
    /// transpose. Identical to [`OpExecutor::propagate`] for every other
    /// op.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn propagate_input_pm(
        &mut self,
        ops: &[SnnOp],
        i: usize,
        signal: &Tensor,
    ) -> Result<(Tensor, u64)> {
        match &ops[i] {
            SnnOp::Conv { weight, spec, .. } if i == self.first_weighted => {
                let kernel = (weight.dims()[2], weight.dims()[3]);
                self.conv_dispatch(i, kernel, *spec, signal)
            }
            _ => self.propagate(ops, i, signal),
        }
    }

    /// Event-or-dense dispatch of a position-major conv signal.
    fn conv_dispatch(
        &mut self,
        i: usize,
        kernel: (usize, usize),
        spec: t2fsnn_tensor::ops::Conv2dSpec,
        pm_signal: &Tensor,
    ) -> Result<(Tensor, u64)> {
        let use_events = self.try_events(pm_signal)?;
        let filter_t = self.filter_t[i]
            .as_ref()
            .expect("conv op has a transposed filter");
        if use_events {
            let _s = trace::span("op/conv_scatter_events");
            sparse::conv2d_scatter_events_pm(&self.scratch, filter_t, kernel, spec)
        } else {
            let _s = trace::span("op/conv_dense_walk");
            sparse::conv2d_scatter_pm(pm_signal, filter_t, kernel, spec)
        }
    }

    /// Computes a weighted op's synaptic drive and integrates it — plus
    /// `bias · bias_scale` — **straight into `potential`**: the membrane
    /// tensor is the accumulator, so there is no intermediate drive
    /// tensor, no per-step clear, and no flush. The signal must be
    /// position-major (i.e. `ops[i]` is downstream of the first weighted
    /// op).
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch or if `ops[i]` is not a
    /// weighted op.
    pub fn accumulate_weighted(
        &mut self,
        ops: &[SnnOp],
        i: usize,
        signal: &Tensor,
        bias_scale: f32,
        potential: &mut Tensor,
    ) -> Result<u64> {
        let synops = match &ops[i] {
            SnnOp::Conv { weight, spec, .. } => {
                let kernel = (weight.dims()[2], weight.dims()[3]);
                let use_events = self.try_events(signal)?;
                let filter_t = self.filter_t[i]
                    .as_ref()
                    .expect("conv op has a transposed filter");
                if use_events {
                    let _s = trace::span("op/conv_scatter_events");
                    sparse::conv2d_scatter_events_pm_acc(
                        &self.scratch,
                        filter_t,
                        kernel,
                        *spec,
                        potential,
                    )?
                } else {
                    let _s = trace::span("op/conv_dense_walk");
                    sparse::conv2d_scatter_pm_acc(signal, filter_t, kernel, *spec, potential)?
                }
            }
            SnnOp::Linear { .. } => {
                let use_events = self.try_events(signal)?;
                let weight_t = self.weight_t[i]
                    .as_ref()
                    .expect("linear op has a transposed weight");
                if use_events {
                    let _s = trace::span("op/linear_events");
                    sparse::linear_scatter_events_acc(&self.scratch, weight_t, potential)?
                } else {
                    let _s = trace::span("op/linear_dense");
                    sparse::linear_scatter_t_acc(signal, weight_t, potential)?
                }
            }
            _ => {
                return Err(TensorError::InvalidArgument {
                    op: "OpExecutor::accumulate_weighted",
                    message: format!("op {i} is not a weighted op"),
                })
            }
        };
        self.inject_bias(ops, i, potential, bias_scale)?;
        Ok(synops)
    }

    /// [`OpExecutor::accumulate_weighted`] for a signal already in event
    /// form (e.g. produced by [`crate::coding::Coding::fire_events`]):
    /// no scan, no dense intermediate. Very dense steps (phase/burst
    /// re-transmissions) take the position-major im2col GEMM, which
    /// accumulates into the membrane in the same canonical order as the
    /// scatter — same results either way.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch or if `ops[i]` is not a
    /// weighted op.
    pub fn accumulate_weighted_events(
        &mut self,
        ops: &[SnnOp],
        i: usize,
        events: &SpikeBatch,
        bias_scale: f32,
        potential: &mut Tensor,
    ) -> Result<u64> {
        let synops = match &ops[i] {
            SnnOp::Conv { weight, spec, .. } => {
                let kernel = (weight.dims()[2], weight.dims()[3]);
                if events.density() > GEMM_DENSITY {
                    let _s = trace::span("op/conv_gemm_pm");
                    let dense = events.to_dense();
                    let weight_r = self.filter_r[i]
                        .as_ref()
                        .expect("conv op has a tap-major filter");
                    sparse::conv2d_gemm_pm_acc(&dense, weight_r, kernel, *spec, potential)?;
                    sparse::conv2d_synops_events(events, weight.dims()[0], kernel, *spec)?
                } else {
                    let _s = trace::span("op/conv_scatter_events");
                    let filter_t = self.filter_t[i]
                        .as_ref()
                        .expect("conv op has a transposed filter");
                    sparse::conv2d_scatter_events_pm_acc(
                        events, filter_t, kernel, *spec, potential,
                    )?
                }
            }
            SnnOp::Linear { .. } => {
                let _s = trace::span("op/linear_events");
                let weight_t = self.weight_t[i]
                    .as_ref()
                    .expect("linear op has a transposed weight");
                sparse::linear_scatter_events_acc(events, weight_t, potential)?
            }
            _ => {
                return Err(TensorError::InvalidArgument {
                    op: "OpExecutor::accumulate_weighted_events",
                    message: format!("op {i} is not a weighted op"),
                })
            }
        };
        self.inject_bias(ops, i, potential, bias_scale)?;
        Ok(synops)
    }

    /// Per-image synaptic-accumulate counts `ops[i]` would charge for an
    /// event-form signal, written into `out` (one slot per image). The
    /// counts are exactly what [`OpExecutor::accumulate_weighted_events`]
    /// charges in total — resolved per image so an online-serving request
    /// can be billed its own synops; images never interact, so
    /// `out.sum()` equals the batch charge.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches or if `ops[i]` is not a
    /// weighted op.
    pub fn synops_events_by_image(
        &self,
        ops: &[SnnOp],
        i: usize,
        events: &SpikeBatch,
        out: &mut [u64],
    ) -> Result<()> {
        match &ops[i] {
            SnnOp::Conv { weight, spec, .. } => {
                let kernel = (weight.dims()[2], weight.dims()[3]);
                sparse::conv2d_synops_events_by_image(events, weight.dims()[0], kernel, *spec, out)
            }
            SnnOp::Linear { weight, .. } => {
                if out.len() != events.batch() {
                    return Err(TensorError::InvalidArgument {
                        op: "OpExecutor::synops_events_by_image",
                        message: format!(
                            "{} images but out has {} slots",
                            events.batch(),
                            out.len()
                        ),
                    });
                }
                let o = weight.dims()[0] as u64;
                for (ni, slot) in out.iter_mut().enumerate() {
                    *slot = events.image_events(ni).0.len() as u64 * o;
                }
                Ok(())
            }
            _ => Err(TensorError::InvalidArgument {
                op: "OpExecutor::synops_events_by_image",
                message: format!("op {i} is not a weighted op"),
            }),
        }
    }

    /// [`OpExecutor::synops_events_by_image`] for a dense position-major
    /// signal (`[N, OH, OW, C]` for convolutions, `[N, I]` for linear
    /// layers): each non-zero entry is charged its `valid taps × O`
    /// accumulates.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches or if `ops[i]` is not a
    /// weighted op.
    pub fn synops_pm_by_image(
        &self,
        ops: &[SnnOp],
        i: usize,
        signal: &Tensor,
        out: &mut [u64],
    ) -> Result<()> {
        match &ops[i] {
            SnnOp::Conv { weight, spec, .. } => {
                let kernel = (weight.dims()[2], weight.dims()[3]);
                sparse::conv2d_synops_pm_by_image(signal, weight.dims()[0], kernel, *spec, out)
            }
            SnnOp::Linear { weight, .. } => {
                if signal.rank() != 2 || out.len() != signal.dims()[0] {
                    return Err(TensorError::InvalidArgument {
                        op: "OpExecutor::synops_pm_by_image",
                        message: format!(
                            "signal {} does not give one row per out slot ({})",
                            signal.shape(),
                            out.len()
                        ),
                    });
                }
                let o = weight.dims()[0] as u64;
                let features = signal.dims()[1];
                for (row, slot) in signal.data().chunks_exact(features.max(1)).zip(out) {
                    *slot = row.iter().filter(|&&v| v != 0.0).count() as u64 * o;
                }
                Ok(())
            }
            _ => Err(TensorError::InvalidArgument {
                op: "OpExecutor::synops_pm_by_image",
                message: format!("op {i} is not a weighted op"),
            }),
        }
    }

    /// Adds `scale × bias` to a position-major drive or membrane tensor
    /// (`[N, OH, OW, C]` for convolutions — each position's channel row
    /// gets the bias vector — or `[N, O]` for dense layers). No-op for
    /// unbiased ops or `scale == 0`.
    ///
    /// # Errors
    ///
    /// Returns an error if `drive`'s shape is incompatible.
    pub fn inject_bias(
        &self,
        ops: &[SnnOp],
        i: usize,
        drive: &mut Tensor,
        scale: f32,
    ) -> Result<()> {
        let bias = match ops[i].bias() {
            Some(b) => b,
            None => return Ok(()),
        };
        if scale == 0.0 {
            return Ok(());
        }
        let _s = trace::span("op/bias_inject");
        let c = bias.dims()[0];
        let ok = match &ops[i] {
            SnnOp::Conv { .. } => drive.rank() == 4 && drive.dims()[3] == c,
            SnnOp::Linear { .. } => drive.rank() == 2 && drive.dims()[1] == c,
            _ => unreachable!("bias() is Some only for weighted ops"),
        };
        if !ok {
            return Err(TensorError::InvalidArgument {
                op: "OpExecutor::inject_bias",
                message: format!(
                    "drive {} does not match bias [{c}] for op {i}",
                    drive.shape()
                ),
            });
        }
        t2fsnn_tensor::simd::add_scaled_rows(drive.data_mut(), bias.data(), scale);
        Ok(())
    }

    /// Average-pools an event stream in place (position-major `[H, W, C]`
    /// features), reusing internal buffers: the signal stays in event
    /// form between a fire phase and the next integrate.
    ///
    /// # Errors
    ///
    /// Returns an error on feature-shape mismatches.
    pub fn avg_pool_events(
        &mut self,
        events: &mut SpikeBatch,
        window: usize,
        stride: usize,
    ) -> Result<()> {
        let _s = trace::span("op/pool_events");
        sparse::avg_pool2d_events(
            events,
            window,
            stride,
            &mut self.pool_out,
            &mut self.pool_scratch,
        )?;
        std::mem::swap(events, &mut self.pool_out);
        Ok(())
    }

    /// Max-pools an event stream in place under the TTFS first-spike
    /// rule, latching `gate` (position-major pooled shape) — max-pool
    /// networks never densify between fire and integrate.
    ///
    /// # Errors
    ///
    /// Returns an error on feature/gate shape mismatches.
    pub fn max_pool_events(
        &mut self,
        events: &mut SpikeBatch,
        window: usize,
        stride: usize,
        gate: &mut Tensor,
    ) -> Result<()> {
        let _s = trace::span("op/pool_events");
        sparse::max_pool2d_events(
            events,
            window,
            stride,
            gate,
            &mut self.pool_out,
            &mut self.pool_scratch,
        )?;
        std::mem::swap(events, &mut self.pool_out);
        Ok(())
    }
}

/// Builds the `[I, O]` transposed weight of a linear layer with rows
/// permuted from the channel-major flatten order (`c·HW + p`) to the
/// position-major order (`p·C + c`) its flattened input arrives in.
fn permuted_weight_t(weight: &Tensor, c: usize, hw: usize) -> Result<Tensor> {
    let (o, i) = (weight.dims()[0], weight.dims()[1]);
    if c * hw != i {
        return Err(TensorError::InvalidArgument {
            op: "permuted_weight_t",
            message: format!("flatten of [{c}, {hw}] features does not match weight [{o}, {i}]"),
        });
    }
    let wd = weight.data();
    let mut out = vec![0.0f32; i * o];
    for p in 0..hw {
        for ci in 0..c {
            let row = p * c + ci;
            let src = ci * hw + p;
            for (oc, slot) in out[row * o..(row + 1) * o].iter_mut().enumerate() {
                *slot = wd[oc * i + src];
            }
        }
    }
    Tensor::from_vec([i, o], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2fsnn_tensor::ops::Conv2dSpec;

    fn ops() -> Vec<SnnOp> {
        vec![
            SnnOp::Conv {
                name: "c".into(),
                weight: Tensor::from_fn([2, 1, 3, 3], |i| {
                    ((i[0] * 9 + i[2] * 3 + i[3]) % 5) as f32 * 0.2 - 0.3
                }),
                bias: Tensor::zeros([2]),
                spec: Conv2dSpec::new(1, 1),
            },
            SnnOp::AvgPool {
                window: 2,
                stride: 2,
            },
            SnnOp::Flatten,
            SnnOp::Linear {
                name: "l".into(),
                weight: Tensor::from_fn([3, 8], |i| ((i[0] * 8 + i[1]) % 7) as f32 * 0.1),
                bias: Tensor::zeros([3]),
            },
        ]
    }

    fn sparse_signal() -> Tensor {
        let mut t = Tensor::zeros([2, 1, 4, 4]);
        t.set(&[0, 0, 1, 2], 1.0).unwrap();
        t.set(&[1, 0, 3, 3], 0.5).unwrap();
        t
    }

    /// Chains the full op list through the executor, returning the final
    /// signal and total synops.
    fn run_chain(engine: SimEngine) -> (Tensor, u64) {
        let ops = ops();
        let mut exec = OpExecutor::new(&ops, engine, &[1, 4, 4]).unwrap();
        let mut signal = sparse_signal();
        let mut synops = 0u64;
        for i in 0..ops.len() {
            let (next, s) = exec.propagate(&ops, i, &signal).unwrap();
            synops += s;
            signal = next;
        }
        (signal, synops)
    }

    #[test]
    fn engines_are_bit_identical_across_the_chain() {
        let (dense, s_dense) = run_chain(SimEngine::Dense);
        for engine in [
            SimEngine::event(),
            SimEngine::Event {
                sparsity_threshold: 1.0,
            },
        ] {
            let (event, s_event) = run_chain(engine);
            assert_eq!(dense, event, "{engine:?}");
            assert_eq!(s_dense, s_event, "{engine:?}");
        }
    }

    #[test]
    fn first_conv_matches_reference_modulo_layout() {
        // The executor's position-major output must carry the same bits
        // as the channel-major reference kernel, permuted.
        let ops = ops();
        let mut exec = OpExecutor::new(&ops, SimEngine::event(), &[1, 4, 4]).unwrap();
        let signal = sparse_signal();
        let (got, synops) = exec.propagate(&ops, 0, &signal).unwrap();
        let (want, want_synops) = ops[0].propagate(&signal).unwrap();
        assert_eq!(got.to_channel_major().unwrap(), want);
        assert_eq!(synops, want_synops);
    }

    #[test]
    fn accumulate_paths_agree_between_dense_and_event_signals() {
        let ops = ops();
        let mut exec = OpExecutor::new(&ops, SimEngine::event(), &[1, 4, 4]).unwrap();
        // A sparse position-major signal entering the hidden linear op.
        let signal = Tensor::from_vec(
            [2, 8],
            vec![
                0.0, 1.0, 0.0, 0.0, 0.5, 0.0, 0.0, 0.0, //
                0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 0.0,
            ],
        )
        .unwrap();
        let base = Tensor::from_fn([2, 3], |i| (i[0] + i[1]) as f32 * 0.1);
        let mut via_dense = base.clone();
        let s1 = exec
            .accumulate_weighted(&ops, 3, &signal, 0.5, &mut via_dense)
            .unwrap();
        let events = SpikeBatch::from_dense(&signal).unwrap();
        let mut via_events = base.clone();
        let s2 = exec
            .accumulate_weighted_events(&ops, 3, &events, 0.5, &mut via_events)
            .unwrap();
        assert_eq!(via_dense, via_events);
        assert_eq!(s1, s2);
        // Non-weighted ops are rejected.
        assert!(exec
            .accumulate_weighted(&ops, 1, &signal, 0.0, &mut via_dense)
            .is_err());
        assert!(exec
            .accumulate_weighted_events(&ops, 1, &events, 0.0, &mut via_events)
            .is_err());
    }

    #[test]
    fn dense_engine_never_builds_events() {
        let ops = ops();
        let mut exec = OpExecutor::new(&ops, SimEngine::dense(), &[1, 4, 4]).unwrap();
        let (_, synops) = exec.propagate(&ops, 0, &sparse_signal()).unwrap();
        assert!(synops > 0);
        assert_eq!(exec.scratch.nnz(), 0, "dense engine skips the scan");
    }

    #[test]
    fn state_dims_are_position_major() {
        let ops = ops();
        let exec = OpExecutor::new(&ops, SimEngine::event(), &[1, 4, 4]).unwrap();
        assert_eq!(exec.state_dims(0), &[4, 4, 2]); // conv output [H, W, C]
        assert_eq!(exec.state_dims(3), &[3]); // linear output
        assert_eq!(exec.first_weighted(), 0);
        assert_eq!(position_major_dims(&[2, 4, 4]), vec![4, 4, 2]);
        assert_eq!(position_major_dims(&[7]), vec![7]);
    }

    #[test]
    fn permuted_linear_weights_match_flatten_order() {
        // Feed a one-hot through pool+flatten on both layouts: the
        // executor's permuted weight must produce the same logits the
        // reference channel-major chain produces.
        let ops = ops();
        let mut exec = OpExecutor::new(&ops, SimEngine::dense(), &[1, 4, 4]).unwrap();
        let signal = sparse_signal();
        // Reference: channel-major propagation all the way.
        let mut want = signal.clone();
        for op in &ops {
            want = op.propagate(&want).unwrap().0;
        }
        let (got, _) = run_chain_from(&mut exec, &ops, signal);
        assert!(got.all_close(&want, 1e-5));
    }

    fn run_chain_from(exec: &mut OpExecutor, ops: &[SnnOp], mut signal: Tensor) -> (Tensor, u64) {
        let mut synops = 0u64;
        for i in 0..ops.len() {
            let (next, s) = exec.propagate(ops, i, &signal).unwrap();
            synops += s;
            signal = next;
        }
        (signal, synops)
    }

    #[test]
    fn per_image_synops_sum_to_accumulate_charge() {
        let ops = ops();
        let mut exec = OpExecutor::new(&ops, SimEngine::event(), &[1, 4, 4]).unwrap();
        // Conv op on a position-major signal.
        let pm = sparse_signal().to_position_major().unwrap();
        let events = SpikeBatch::from_dense(&pm).unwrap();
        let mut potential = Tensor::zeros([2, 4, 4, 2]);
        let charged = exec
            .accumulate_weighted_events(&ops, 0, &events, 0.0, &mut potential)
            .unwrap();
        let mut by_image = vec![0u64; 2];
        exec.synops_events_by_image(&ops, 0, &events, &mut by_image)
            .unwrap();
        assert_eq!(by_image.iter().sum::<u64>(), charged);
        let mut by_image_dense = vec![0u64; 2];
        exec.synops_pm_by_image(&ops, 0, &pm, &mut by_image_dense)
            .unwrap();
        assert_eq!(by_image_dense, by_image);
        // Linear op: nnz × O per image.
        let signal = Tensor::from_vec(
            [2, 8],
            vec![
                0.0, 1.0, 0.0, 0.0, 0.5, 0.0, 0.0, 0.0, //
                0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 0.0,
            ],
        )
        .unwrap();
        let lin_events = SpikeBatch::from_dense(&signal).unwrap();
        let mut lin = vec![0u64; 2];
        exec.synops_events_by_image(&ops, 3, &lin_events, &mut lin)
            .unwrap();
        assert_eq!(lin, vec![2 * 3, 3]);
        let mut lin_dense = vec![0u64; 2];
        exec.synops_pm_by_image(&ops, 3, &signal, &mut lin_dense)
            .unwrap();
        assert_eq!(lin_dense, lin);
        // Non-weighted ops are rejected.
        assert!(exec
            .synops_events_by_image(&ops, 1, &events, &mut by_image)
            .is_err());
        assert!(exec
            .synops_pm_by_image(&ops, 1, &pm, &mut by_image)
            .is_err());
    }

    #[test]
    fn default_is_event_engine() {
        assert_eq!(SimEngine::default(), SimEngine::event());
        assert_eq!(SimEngine::dense().threshold(), 0.0);
    }
}
