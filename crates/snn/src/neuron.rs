//! Integrate-and-fire neuron state arrays.

use serde::{Deserialize, Serialize};
use t2fsnn_tensor::{Result, Tensor, TensorError};

/// Membrane-potential state for one layer's population of IF neurons
/// (Eq. 3 of the paper: `u(t) = u(t-1) + z(t)`).
///
/// The array covers a whole batch: shape `[N, ...neurons]`.
///
/// # Examples
///
/// ```
/// use t2fsnn_snn::IfState;
/// use t2fsnn_tensor::Tensor;
///
/// # fn main() -> Result<(), t2fsnn_tensor::TensorError> {
/// let mut state = IfState::new([1, 3]);
/// state.integrate(&Tensor::from_vec([1, 3], vec![0.5, 1.5, 2.5])?)?;
/// let (spikes, count) = state.fire_subtract(1.0);
/// assert_eq!(count, 2); // the 1.5 and 2.5 neurons fire
/// assert_eq!(spikes.data(), &[0.0, 1.0, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IfState {
    potential: Tensor,
}

impl IfState {
    /// Creates a zero-potential population with the given `[N, ...]` shape.
    pub fn new(shape: impl Into<t2fsnn_tensor::Shape>) -> Self {
        IfState {
            potential: Tensor::zeros(shape),
        }
    }

    /// Current membrane potentials.
    pub fn potential(&self) -> &Tensor {
        &self.potential
    }

    /// Mutable membrane potentials (used by codings with custom reset
    /// rules).
    pub fn potential_mut(&mut self) -> &mut Tensor {
        &mut self.potential
    }

    /// Adds the postsynaptic drive `z` to the membrane (Eq. 3).
    ///
    /// # Errors
    ///
    /// Returns an error if `z`'s shape differs from the population shape.
    pub fn integrate(&mut self, z: &Tensor) -> Result<()> {
        if z.shape() != self.potential.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "IfState::integrate",
                lhs: self.potential.shape().clone(),
                rhs: z.shape().clone(),
            });
        }
        self.potential.add_scaled(z, 1.0)
    }

    /// Fires every neuron whose potential reaches `theta`, resetting by
    /// subtraction (the Rueckauer conversion rule, which avoids quantization
    /// bias). Returns the binary spike tensor and the spike count.
    pub fn fire_subtract(&mut self, theta: f32) -> (Tensor, u64) {
        let mut count = 0u64;
        let mut spikes = Tensor::zeros(self.potential.shape().clone());
        let sd = spikes.data_mut();
        for (u, s) in self.potential.data_mut().iter_mut().zip(sd.iter_mut()) {
            if *u >= theta {
                *u -= theta;
                *s = 1.0;
                count += 1;
            }
        }
        (spikes, count)
    }

    /// Resets all potentials to zero (start of a new inference).
    pub fn reset(&mut self) {
        self.potential.map_inplace(|_| 0.0);
    }

    /// Number of neurons (including the batch axis).
    pub fn len(&self) -> usize {
        self.potential.numel()
    }

    /// Returns `true` for an empty population.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrate_accumulates() {
        let mut s = IfState::new([1, 2]);
        let z = Tensor::from_vec([1, 2], vec![0.3, 0.6]).unwrap();
        s.integrate(&z).unwrap();
        s.integrate(&z).unwrap();
        assert!(s
            .potential()
            .all_close(&Tensor::from_vec([1, 2], vec![0.6, 1.2]).unwrap(), 1e-6));
    }

    #[test]
    fn integrate_validates_shape() {
        let mut s = IfState::new([1, 2]);
        assert!(s.integrate(&Tensor::zeros([2, 2])).is_err());
    }

    #[test]
    fn fire_subtract_keeps_residual() {
        let mut s = IfState::new([1, 1]);
        s.integrate(&Tensor::from_vec([1, 1], vec![1.7]).unwrap())
            .unwrap();
        let (spikes, n) = s.fire_subtract(1.0);
        assert_eq!(n, 1);
        assert_eq!(spikes.data(), &[1.0]);
        assert!((s.potential().data()[0] - 0.7).abs() < 1e-6);
        // Second step without new input: no spike.
        let (_, n) = s.fire_subtract(1.0);
        assert_eq!(n, 0);
    }

    #[test]
    fn rate_over_window_approximates_input() {
        // Constant drive x < 1 should make the neuron fire at rate ≈ x.
        let mut s = IfState::new([1, 1]);
        let x = 0.37f32;
        let drive = Tensor::from_vec([1, 1], vec![x]).unwrap();
        let steps = 1000;
        let mut total = 0u64;
        for _ in 0..steps {
            s.integrate(&drive).unwrap();
            let (_, n) = s.fire_subtract(1.0);
            total += n;
        }
        let rate = total as f32 / steps as f32;
        assert!((rate - x).abs() < 0.01, "rate {rate} vs {x}");
    }

    #[test]
    fn reset_clears_state() {
        let mut s = IfState::new([2, 2]);
        s.integrate(&Tensor::ones([2, 2])).unwrap();
        s.reset();
        assert_eq!(s.potential().sum(), 0.0);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    fn negative_potential_never_fires() {
        let mut s = IfState::new([1, 1]);
        s.integrate(&Tensor::from_vec([1, 1], vec![-5.0]).unwrap())
            .unwrap();
        let (_, n) = s.fire_subtract(1.0);
        assert_eq!(n, 0);
        assert_eq!(s.potential().data()[0], -5.0);
    }
}
