//! Neuromorphic energy estimation (Table II, "Normalized Energy").
//!
//! The paper estimates inference energy as
//! `E = (#spikes)·E_dyn + (latency)·E_sta`, with dynamic/static parameters
//! taken from TrueNorth (Merolla et al., Science 2014) and SpiNNaker
//! (Furber et al., Proc. IEEE 2014), and reports it *normalized against
//! rate coding* on the same dataset. This module implements exactly that
//! estimator with the paper's parameter pairs.

use serde::{DeError, Deserialize, Serialize, Value};

/// A neuromorphic platform's relative dynamic/static energy split.
///
/// The platform name is a `&'static str` so the [`TRUENORTH`]/
/// [`SPINNAKER`] presets can be `const`; deserialization therefore
/// cannot be derived and is implemented by hand — see the
/// [`Deserialize`] impl for the name-resolution rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EnergyModel {
    /// Platform name for reports.
    pub name: &'static str,
    /// Weight of the spike-count (dynamic) term.
    pub e_dyn: f32,
    /// Weight of the latency (static) term.
    pub e_sta: f32,
}

/// Interns a platform name as `&'static str`: preset names resolve to
/// the consts' own strings, and each distinct custom name is leaked
/// exactly once (subsequent deserializations reuse the interned copy),
/// so memory grows with the number of distinct platforms, not records.
fn intern_name(name: String) -> &'static str {
    use std::sync::Mutex;
    if let Some(preset) = [TRUENORTH, SPINNAKER]
        .iter()
        .find(|preset| preset.name == name)
    {
        return preset.name;
    }
    static INTERNED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut interned = INTERNED.lock().expect("intern table poisoned");
    if let Some(existing) = interned.iter().find(|s| **s == name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.into_boxed_str());
    interned.push(leaked);
    leaked
}

/// Manual deserialization for the `&'static str` name, resolved through
/// [`intern_name`].
impl Deserialize for EnergyModel {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let name: String = serde::__field(value, "name", "EnergyModel")?;
        let e_dyn: f32 = serde::__field(value, "e_dyn", "EnergyModel")?;
        let e_sta: f32 = serde::__field(value, "e_sta", "EnergyModel")?;
        Ok(EnergyModel {
            name: intern_name(name),
            e_dyn,
            e_sta,
        })
    }
}

/// TrueNorth parameters from the paper: `(E_dyn, E_sta) = (0.4, 0.6)`.
pub const TRUENORTH: EnergyModel = EnergyModel {
    name: "TrueNorth",
    e_dyn: 0.4,
    e_sta: 0.6,
};

/// SpiNNaker parameters from the paper: `(E_dyn, E_sta) = (0.64, 0.36)`.
pub const SPINNAKER: EnergyModel = EnergyModel {
    name: "SpiNNaker",
    e_dyn: 0.64,
    e_sta: 0.36,
};

impl EnergyModel {
    /// Normalized energy of a measurement against a reference (by
    /// convention the rate-coding run on the same dataset, which therefore
    /// scores exactly 1.0):
    ///
    /// `E_norm = E_dyn·(spikes/ref_spikes) + E_sta·(latency/ref_latency)`.
    ///
    /// # Panics
    ///
    /// Panics if either reference quantity is zero.
    pub fn normalized(&self, spikes: f64, latency: f64, ref_spikes: f64, ref_latency: f64) -> f64 {
        assert!(
            ref_spikes > 0.0 && ref_latency > 0.0,
            "reference spikes/latency must be positive"
        );
        self.e_dyn as f64 * (spikes / ref_spikes) + self.e_sta as f64 * (latency / ref_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_scores_one() {
        for model in [TRUENORTH, SPINNAKER] {
            let e = model.normalized(1000.0, 200.0, 1000.0, 200.0);
            assert!((e - 1.0).abs() < 1e-6, "{}: {e}", model.name);
        }
    }

    #[test]
    fn parameters_sum_to_one() {
        assert!((TRUENORTH.e_dyn + TRUENORTH.e_sta - 1.0).abs() < 1e-6);
        assert!((SPINNAKER.e_dyn + SPINNAKER.e_sta - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fewer_spikes_and_latency_cost_less() {
        let e = TRUENORTH.normalized(10.0, 20.0, 1000.0, 200.0);
        assert!(e < 1.0);
        // Spike-dominated platform (SpiNNaker) rewards spike reduction more.
        let tn = TRUENORTH.normalized(10.0, 200.0, 1000.0, 200.0);
        let sn = SPINNAKER.normalized(10.0, 200.0, 1000.0, 200.0);
        assert!(sn < tn);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_reference_panics() {
        let _ = TRUENORTH.normalized(1.0, 1.0, 0.0, 1.0);
    }

    #[test]
    fn presets_round_trip_through_json() {
        for model in [TRUENORTH, SPINNAKER] {
            let json = serde_json::to_vec(&model).unwrap();
            let back: EnergyModel = serde_json::from_slice(&json).unwrap();
            assert_eq!(back, model);
        }
    }

    #[test]
    fn custom_platforms_round_trip() {
        let custom = EnergyModel {
            name: "Loihi-2",
            e_dyn: 0.7,
            e_sta: 0.3,
        };
        let json = serde_json::to_vec(&custom).unwrap();
        let back: EnergyModel = serde_json::from_slice(&json).unwrap();
        assert_eq!(back, custom);
        assert_eq!(back.name, "Loihi-2");
        // Repeated deserializations reuse one interned allocation.
        let again: EnergyModel = serde_json::from_slice(&json).unwrap();
        assert!(std::ptr::eq(back.name.as_ptr(), again.name.as_ptr()));
    }

    #[test]
    fn deserialize_rejects_missing_fields() {
        let r: Result<EnergyModel, _> = serde_json::from_slice(br#"{"name":"x"}"#);
        assert!(r.is_err());
        let r: Result<EnergyModel, _> =
            serde_json::from_slice(br#"{"name":7,"e_dyn":0.5,"e_sta":0.5}"#);
        assert!(r.is_err());
    }
}
