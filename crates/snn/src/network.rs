//! The converted spiking network: weight-carrying ops with sparse spike
//! propagation.
//!
//! A [`SnnNetwork`] is produced from a trained, weight-normalized
//! [`t2fsnn_dnn::Network`] by [`SnnNetwork::from_dnn`]. ReLU layers are
//! dropped (integrate-and-fire neurons implement rectification natively)
//! and every convolution / dense layer becomes a weighted op whose outputs
//! feed a population of IF neurons. Average pooling and flatten are linear
//! pass-throughs with no neurons.
//!
//! Propagation is *event-driven at the arithmetic level*: only non-zero
//! entries of the incoming spike tensor do work, and every op reports the
//! exact number of synaptic operations it performed — the quantity the
//! paper's Table III counts.

use serde::{Deserialize, Serialize};
use t2fsnn_dnn::layers::{Layer, PoolKind};
use t2fsnn_dnn::Network;
use t2fsnn_tensor::ops::Conv2dSpec;
use t2fsnn_tensor::{Result, Tensor, TensorError};

/// One op of a converted spiking network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SnnOp {
    /// Convolution synapses (`weight: [O, I, K, K]`, `bias: [O]`); outputs
    /// drive IF neurons.
    Conv {
        /// Layer name inherited from the source DNN (e.g. `"conv2_1"`).
        name: String,
        /// Filter bank.
        weight: Tensor,
        /// Per-channel bias, injected as a constant current.
        bias: Tensor,
        /// Stride/padding of the source layer.
        spec: Conv2dSpec,
    },
    /// Dense synapses (`weight: [O, I]`); outputs drive IF neurons.
    Linear {
        /// Layer name inherited from the source DNN (e.g. `"fc6"`).
        name: String,
        /// Weight matrix.
        weight: Tensor,
        /// Bias, injected as a constant current.
        bias: Tensor,
    },
    /// Linear average pooling; spikes are scaled, no neurons.
    AvgPool {
        /// Window edge length.
        window: usize,
        /// Stride.
        stride: usize,
    },
    /// Max pooling. Exact under TTFS coding only: the earliest spike in a
    /// window belongs to the largest value, so a first-spike gate (kept by
    /// the TTFS engine) implements the max. The baseline-coding simulator
    /// rejects networks containing this op — rate/phase/burst coding have
    /// no exact spiking max (the conversion literature substitutes average
    /// pooling for them).
    MaxPool {
        /// Window edge length.
        window: usize,
        /// Stride.
        stride: usize,
    },
    /// Shape adapter between conv and dense sections; no neurons.
    Flatten,
}

impl SnnOp {
    /// Returns `true` if this op's outputs are integrate-and-fire neurons.
    pub fn is_weighted(&self) -> bool {
        matches!(self, SnnOp::Conv { .. } | SnnOp::Linear { .. })
    }

    /// The op's name, if it is a weighted op.
    pub fn name(&self) -> Option<&str> {
        match self {
            SnnOp::Conv { name, .. } | SnnOp::Linear { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Output shape (excluding the batch axis) for the given input shape.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with the op.
    pub fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        match self {
            SnnOp::Conv { weight, spec, .. } => {
                if input.len() != 3 || input[0] != weight.dims()[1] {
                    return Err(TensorError::InvalidArgument {
                        op: "SnnOp::output_shape",
                        message: format!(
                            "conv expects [{}, H, W] input, got {input:?}",
                            weight.dims()[1]
                        ),
                    });
                }
                let k = weight.dims()[2];
                Ok(vec![
                    weight.dims()[0],
                    spec.output_dim(input[1], k),
                    spec.output_dim(input[2], k),
                ])
            }
            SnnOp::Linear { weight, .. } => {
                let numel: usize = input.iter().product();
                if input.len() != 1 || numel != weight.dims()[1] {
                    return Err(TensorError::InvalidArgument {
                        op: "SnnOp::output_shape",
                        message: format!(
                            "linear expects [{}] input, got {input:?}",
                            weight.dims()[1]
                        ),
                    });
                }
                Ok(vec![weight.dims()[0]])
            }
            SnnOp::AvgPool { window, stride } | SnnOp::MaxPool { window, stride } => {
                if input.len() != 3 {
                    return Err(TensorError::InvalidArgument {
                        op: "SnnOp::output_shape",
                        message: format!("pool expects [C, H, W] input, got {input:?}"),
                    });
                }
                let down = |d: usize| {
                    if d < *window {
                        0
                    } else {
                        (d - window) / stride + 1
                    }
                };
                Ok(vec![input[0], down(input[1]), down(input[2])])
            }
            SnnOp::Flatten => Ok(vec![input.iter().product()]),
        }
    }

    /// Propagates a spike (or current) tensor through the op, *without*
    /// bias, returning the postsynaptic drive and the number of synaptic
    /// accumulate operations performed.
    ///
    /// Only non-zero input entries trigger work, so sparse spike tensors
    /// are cheap. `input` carries the batch axis: `[N, ...]`.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn propagate(&self, input: &Tensor) -> Result<(Tensor, u64)> {
        match self {
            SnnOp::Conv { weight, spec, .. } => conv_scatter(input, weight, *spec),
            SnnOp::Linear { weight, .. } => linear_scatter(input, weight),
            SnnOp::AvgPool { window, stride } => {
                let out = t2fsnn_tensor::ops::avg_pool2d(input, *window, *stride)?;
                Ok((out, 0))
            }
            SnnOp::MaxPool { window, stride } => {
                // Stateless spatial max of the instantaneous values. Exact
                // for dense decoded tensors (the analytic path); the TTFS
                // clock engine adds first-spike gating on top for
                // step-by-step correctness.
                let (out, _) = t2fsnn_tensor::ops::max_pool2d(input, *window, *stride)?;
                Ok((out, 0))
            }
            SnnOp::Flatten => {
                let n = input.dims()[0];
                let rest: usize = input.dims()[1..].iter().product();
                Ok((input.reshape([n, rest])?, 0))
            }
        }
    }

    /// The bias tensor, if this is a weighted op.
    pub fn bias(&self) -> Option<&Tensor> {
        match self {
            SnnOp::Conv { bias, .. } | SnnOp::Linear { bias, .. } => Some(bias),
            _ => None,
        }
    }

    /// Adds `scale × bias` to a `[N, ...]` drive tensor (constant bias
    /// current injection).
    ///
    /// # Errors
    ///
    /// Returns an error if `drive`'s shape is incompatible.
    pub fn inject_bias(&self, drive: &mut Tensor, scale: f32) -> Result<()> {
        let bias = match self.bias() {
            Some(b) => b,
            None => return Ok(()),
        };
        if scale == 0.0 {
            return Ok(());
        }
        match self {
            SnnOp::Conv { .. } => {
                let dims = drive.dims().to_vec();
                if dims.len() != 4 || dims[1] != bias.dims()[0] {
                    return Err(TensorError::InvalidArgument {
                        op: "SnnOp::inject_bias",
                        message: format!("conv drive {:?} vs bias {:?}", dims, bias.dims()),
                    });
                }
                let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
                let dd = drive.data_mut();
                for ni in 0..n {
                    for ci in 0..c {
                        let b = bias.data()[ci] * scale;
                        let base = (ni * c + ci) * h * w;
                        for v in &mut dd[base..base + h * w] {
                            *v += b;
                        }
                    }
                }
                Ok(())
            }
            SnnOp::Linear { .. } => {
                let dims = drive.dims().to_vec();
                if dims.len() != 2 || dims[1] != bias.dims()[0] {
                    return Err(TensorError::InvalidArgument {
                        op: "SnnOp::inject_bias",
                        message: format!("linear drive {:?} vs bias {:?}", dims, bias.dims()),
                    });
                }
                let (n, o) = (dims[0], dims[1]);
                let dd = drive.data_mut();
                for ni in 0..n {
                    for (j, v) in dd[ni * o..(ni + 1) * o].iter_mut().enumerate() {
                        *v += bias.data()[j] * scale;
                    }
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

/// Sparse scatter convolution: for every non-zero input element, add its
/// weighted kernel patch into the output. Returns `(output, synops)`.
///
/// Delegates to the shared cache-friendly kernel in
/// [`t2fsnn_tensor::ops::sparse`]; the event-list variant used by the
/// [`crate::engine`] is bit-identical to it.
fn conv_scatter(input: &Tensor, weight: &Tensor, spec: Conv2dSpec) -> Result<(Tensor, u64)> {
    t2fsnn_tensor::ops::sparse::conv2d_scatter(input, weight, spec)
}

/// Sparse dense-layer propagation: only non-zero inputs touch weights.
fn linear_scatter(input: &Tensor, weight: &Tensor) -> Result<(Tensor, u64)> {
    if input.rank() != 2 || input.dims()[1] != weight.dims()[1] {
        return Err(TensorError::InvalidArgument {
            op: "linear_scatter",
            message: format!(
                "expected [N, {}] input, got {}",
                weight.dims()[1],
                input.shape()
            ),
        });
    }
    let (n, i) = (input.dims()[0], input.dims()[1]);
    let o = weight.dims()[0];
    let mut out = Tensor::zeros([n, o]);
    let od = out.data_mut();
    let id = input.data();
    let wd = weight.data();
    let mut synops = 0u64;
    for ni in 0..n {
        for ii in 0..i {
            let v = id[ni * i + ii];
            if v == 0.0 {
                continue;
            }
            for oi in 0..o {
                od[ni * o + oi] += wd[oi * i + ii] * v;
            }
            synops += o as u64;
        }
    }
    Ok((out, synops))
}

/// A converted spiking network.
///
/// # Examples
///
/// ```no_run
/// use rand::SeedableRng;
/// use t2fsnn_data::DatasetSpec;
/// use t2fsnn_dnn::architectures;
/// use t2fsnn_snn::SnnNetwork;
///
/// # fn main() -> Result<(), t2fsnn_tensor::TensorError> {
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let spec = DatasetSpec::cifar10_like();
/// let dnn = architectures::vgg_scaled(&mut rng, &spec, Default::default());
/// let snn = SnnNetwork::from_dnn(&dnn)?;
/// assert!(snn.weighted_count() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnnNetwork {
    ops: Vec<SnnOp>,
}

impl SnnNetwork {
    /// Converts a trained DNN into a spiking network.
    ///
    /// ReLU layers are dropped (IF neurons rectify natively); average
    /// pooling and flatten are carried over as linear pass-throughs.
    ///
    /// # Errors
    ///
    /// Returns an error if the network contains max pooling, which has no
    /// exact spiking equivalent in this conversion scheme (use
    /// `PoolKind::Avg` when building the DNN, as the conversion literature
    /// recommends).
    pub fn from_dnn(dnn: &Network) -> Result<Self> {
        let mut ops = Vec::new();
        for (name, layer) in dnn.names().iter().zip(dnn.layers()) {
            match layer {
                Layer::Conv2d(l) => ops.push(SnnOp::Conv {
                    name: name.clone(),
                    weight: l.weight.clone(),
                    bias: l.bias.clone(),
                    spec: l.spec,
                }),
                Layer::Linear(l) => ops.push(SnnOp::Linear {
                    name: name.clone(),
                    weight: l.weight.clone(),
                    bias: l.bias.clone(),
                }),
                // ReLU is realized by the IF firing condition; dropout is
                // identity at inference. Both vanish in conversion.
                Layer::Relu(_) | Layer::Dropout(_) => {}
                Layer::BatchNorm(_) => {
                    return Err(TensorError::InvalidArgument {
                        op: "SnnNetwork::from_dnn",
                        message: format!(
                            "layer `{name}`: fold batch norm into the preceding convolution \
                             first (Network::fold_batchnorm)"
                        ),
                    })
                }
                Layer::Pool(p) => match p.kind {
                    PoolKind::Avg => ops.push(SnnOp::AvgPool {
                        window: p.window,
                        stride: p.stride,
                    }),
                    PoolKind::Max => ops.push(SnnOp::MaxPool {
                        window: p.window,
                        stride: p.stride,
                    }),
                },
                Layer::Flatten(_) => ops.push(SnnOp::Flatten),
            }
        }
        if !ops.iter().any(SnnOp::is_weighted) {
            return Err(TensorError::InvalidArgument {
                op: "SnnNetwork::from_dnn",
                message: "network has no weighted layers".to_string(),
            });
        }
        Ok(SnnNetwork { ops })
    }

    /// The ops, in propagation order.
    pub fn ops(&self) -> &[SnnOp] {
        &self.ops
    }

    /// Visits every weight row of every weighted op, in order, as
    /// `f(layer, row, weights)` — `layer` is the weighted op's ordinal
    /// (0-based), `row` the output-neuron index, and `weights` the row's
    /// mutable fan-in slice (`[I·K·K]` for convs, `[I]` for linears).
    /// This is the mutation point for deterministic weight-fault
    /// injection: callers key their RNG streams on `(layer, row)`, so
    /// visit order carries no entropy.
    pub fn for_each_weight_row(&mut self, mut f: impl FnMut(usize, usize, &mut [f32])) {
        let mut layer = 0usize;
        for op in &mut self.ops {
            let weight = match op {
                SnnOp::Conv { weight, .. } => weight,
                SnnOp::Linear { weight, .. } => weight,
                _ => continue,
            };
            let rows = weight.dims()[0];
            let fan_in: usize = weight.dims()[1..].iter().product();
            if fan_in > 0 {
                for (row, slice) in weight.data_mut().chunks_exact_mut(fan_in).enumerate() {
                    debug_assert!(row < rows);
                    f(layer, row, slice);
                }
            }
            layer += 1;
        }
    }

    /// Returns `true` if the network contains max-pooling ops (supported
    /// by the TTFS engine only — see [`SnnOp::MaxPool`]).
    pub fn has_max_pool(&self) -> bool {
        self.ops
            .iter()
            .any(|op| matches!(op, SnnOp::MaxPool { .. }))
    }

    /// Number of weighted (neuron-bearing) ops.
    pub fn weighted_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_weighted()).count()
    }

    /// Names of the weighted ops, in order.
    pub fn weighted_names(&self) -> Vec<&str> {
        self.ops.iter().filter_map(SnnOp::name).collect()
    }

    /// Per-op output shapes (excluding batch) for a `[C, H, W]` input.
    ///
    /// # Errors
    ///
    /// Returns an error if shapes do not chain.
    pub fn output_shapes(&self, input: &[usize]) -> Result<Vec<Vec<usize>>> {
        let mut shapes = Vec::with_capacity(self.ops.len());
        let mut cur = input.to_vec();
        for op in &self.ops {
            cur = op.output_shape(&cur)?;
            shapes.push(cur.clone());
        }
        Ok(shapes)
    }

    /// Total number of IF neurons for a `[C, H, W]` input.
    ///
    /// # Errors
    ///
    /// Returns an error if shapes do not chain.
    pub fn neuron_count(&self, input: &[usize]) -> Result<usize> {
        let shapes = self.output_shapes(input)?;
        Ok(self
            .ops
            .iter()
            .zip(&shapes)
            .filter(|(op, _)| op.is_weighted())
            .map(|(_, s)| s.iter().product::<usize>())
            .sum())
    }

    /// Equivalent dense multiply-accumulate count of the source DNN for a
    /// `[C, H, W]` input (the "DNN" column of Table III).
    ///
    /// # Errors
    ///
    /// Returns an error if shapes do not chain.
    pub fn dense_macs(&self, input: &[usize]) -> Result<u64> {
        let shapes = self.output_shapes(input)?;
        let mut macs = 0u64;
        let mut prev: Vec<usize> = input.to_vec();
        for (op, shape) in self.ops.iter().zip(&shapes) {
            match op {
                SnnOp::Conv { weight, .. } => {
                    let k = weight.dims()[2] as u64;
                    let out_numel: u64 = shape.iter().product::<usize>() as u64;
                    macs += out_numel * weight.dims()[1] as u64 * k * k;
                }
                SnnOp::Linear { weight, .. } => {
                    macs += (weight.dims()[0] * weight.dims()[1]) as u64;
                }
                _ => {}
            }
            prev = shape.clone();
        }
        let _ = prev;
        Ok(macs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use t2fsnn_data::DatasetSpec;
    use t2fsnn_dnn::architectures::{cnn_small, mlp_tiny};
    use t2fsnn_dnn::layers::{Pool, PoolKind};
    use t2fsnn_tensor::ops;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(17)
    }

    #[test]
    fn conversion_drops_relu_and_keeps_weights() {
        let spec = DatasetSpec::tiny();
        let dnn = mlp_tiny(&mut rng(), &spec);
        let snn = SnnNetwork::from_dnn(&dnn).unwrap();
        // flatten + fc1 + fc2 (relu dropped)
        assert_eq!(snn.ops().len(), 3);
        assert_eq!(snn.weighted_count(), 2);
        assert_eq!(snn.weighted_names(), vec!["fc1", "fc2"]);
    }

    #[test]
    fn conversion_carries_max_pool_through() {
        let spec = DatasetSpec::new("t", 1, 16, 16, 4);
        let dnn = cnn_small(&mut rng(), &spec, PoolKind::Max);
        let snn = SnnNetwork::from_dnn(&dnn).unwrap();
        assert!(snn.has_max_pool());
        let avg = SnnNetwork::from_dnn(&cnn_small(&mut rng(), &spec, PoolKind::Avg)).unwrap();
        assert!(!avg.has_max_pool());
    }

    #[test]
    fn max_pool_op_takes_spatial_max() {
        let op = SnnOp::MaxPool {
            window: 2,
            stride: 2,
        };
        let mut input = Tensor::zeros([1, 1, 4, 4]);
        input.set(&[0, 0, 0, 0], 0.3).unwrap();
        input.set(&[0, 0, 1, 1], 0.7).unwrap();
        input.set(&[0, 0, 2, 3], 0.5).unwrap();
        let (out, synops) = op.propagate(&input).unwrap();
        assert_eq!(synops, 0);
        assert_eq!(out.get(&[0, 0, 0, 0]), Some(0.7));
        assert_eq!(out.get(&[0, 0, 1, 1]), Some(0.5));
        assert_eq!(op.output_shape(&[1, 4, 4]).unwrap(), vec![1, 2, 2]);
    }

    #[test]
    fn conversion_rejects_pure_pooling_network() {
        let mut dnn = t2fsnn_dnn::Network::new();
        dnn.push("pool", Pool::down2(PoolKind::Avg));
        assert!(SnnNetwork::from_dnn(&dnn).is_err());
    }

    #[test]
    fn output_shapes_chain() {
        let spec = DatasetSpec::new("t", 1, 16, 16, 4);
        let dnn = cnn_small(&mut rng(), &spec, PoolKind::Avg);
        let snn = SnnNetwork::from_dnn(&dnn).unwrap();
        let shapes = snn.output_shapes(&[1, 16, 16]).unwrap();
        assert_eq!(shapes.first().unwrap(), &vec![8, 16, 16]);
        assert_eq!(shapes.last().unwrap(), &vec![4]);
    }

    #[test]
    fn conv_scatter_matches_dense_conv() {
        let weight = Tensor::from_fn([2, 3, 3, 3], |i| {
            ((i[0] * 27 + i[1] * 9 + i[2] * 3 + i[3]) % 7) as f32 * 0.1 - 0.2
        });
        let spec = Conv2dSpec::new(1, 1);
        let op = SnnOp::Conv {
            name: "c".into(),
            weight: weight.clone(),
            bias: Tensor::zeros([2]),
            spec,
        };
        // Sparse spike-like input.
        let mut input = Tensor::zeros([2, 3, 5, 5]);
        input.set(&[0, 0, 0, 0], 1.0).unwrap();
        input.set(&[0, 2, 3, 4], 1.0).unwrap();
        input.set(&[1, 1, 2, 2], 2.0).unwrap();
        let (sparse, synops) = op.propagate(&input).unwrap();
        let dense = ops::conv2d(&input, &weight, &Tensor::zeros([2]), spec).unwrap();
        assert!(sparse.all_close(&dense, 1e-5));
        assert!(synops > 0);
    }

    #[test]
    fn conv_scatter_with_stride_matches_dense() {
        let weight = Tensor::from_fn([2, 1, 2, 2], |i| (i[0] + i[2] + i[3]) as f32 * 0.5 - 0.3);
        let spec = Conv2dSpec::new(2, 0);
        let op = SnnOp::Conv {
            name: "c".into(),
            weight: weight.clone(),
            bias: Tensor::zeros([2]),
            spec,
        };
        let input = Tensor::from_fn([1, 1, 6, 6], |i| ((i[2] * 6 + i[3]) % 3) as f32);
        let (sparse, _) = op.propagate(&input).unwrap();
        let dense = ops::conv2d(&input, &weight, &Tensor::zeros([2]), spec).unwrap();
        assert!(sparse.all_close(&dense, 1e-5));
    }

    #[test]
    fn linear_scatter_matches_matvec() {
        let weight = Tensor::from_fn([3, 4], |i| (i[0] * 4 + i[1]) as f32 * 0.1);
        let op = SnnOp::Linear {
            name: "l".into(),
            weight: weight.clone(),
            bias: Tensor::zeros([3]),
        };
        let input = Tensor::from_vec([2, 4], vec![1.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        let (out, synops) = op.propagate(&input).unwrap();
        // Only 2 non-zero inputs × 3 outputs = 6 synops.
        assert_eq!(synops, 6);
        let expect = ops::matmul_a_bt(&input, &weight).unwrap();
        assert!(out.all_close(&expect, 1e-6));
    }

    #[test]
    fn zero_input_costs_zero_synops() {
        let op = SnnOp::Linear {
            name: "l".into(),
            weight: Tensor::ones([3, 4]),
            bias: Tensor::zeros([3]),
        };
        let (out, synops) = op.propagate(&Tensor::zeros([1, 4])).unwrap();
        assert_eq!(synops, 0);
        assert_eq!(out.sum(), 0.0);
    }

    #[test]
    fn inject_bias_scales() {
        let op = SnnOp::Linear {
            name: "l".into(),
            weight: Tensor::ones([2, 2]),
            bias: Tensor::from_vec([2], vec![1.0, -2.0]).unwrap(),
        };
        let mut drive = Tensor::zeros([1, 2]);
        op.inject_bias(&mut drive, 0.5).unwrap();
        assert_eq!(drive.data(), &[0.5, -1.0]);
        let mut wrong = Tensor::zeros([1, 3]);
        assert!(op.inject_bias(&mut wrong, 1.0).is_err());
    }

    #[test]
    fn neuron_count_and_macs() {
        let spec = DatasetSpec::new("t", 1, 16, 16, 4);
        let dnn = cnn_small(&mut rng(), &spec, PoolKind::Avg);
        let snn = SnnNetwork::from_dnn(&dnn).unwrap();
        // conv1: 8×16×16, conv2: 16×8×8, fc3: 64, fc4: 4
        let neurons = snn.neuron_count(&[1, 16, 16]).unwrap();
        assert_eq!(neurons, 8 * 16 * 16 + 16 * 8 * 8 + 64 + 4);
        let macs = snn.dense_macs(&[1, 16, 16]).unwrap();
        let expect = (16 * 16 * 8 * 9) as u64
            + (8 * 8 * 16 * 8 * 9) as u64
            + (16 * 4 * 4 * 64) as u64
            + (64 * 4) as u64;
        assert_eq!(macs, expect);
    }

    #[test]
    fn avg_pool_op_passes_scaled_spikes() {
        let op = SnnOp::AvgPool {
            window: 2,
            stride: 2,
        };
        let mut input = Tensor::zeros([1, 1, 4, 4]);
        input.set(&[0, 0, 0, 0], 1.0).unwrap();
        let (out, synops) = op.propagate(&input).unwrap();
        assert_eq!(synops, 0);
        assert_eq!(out.get(&[0, 0, 0, 0]), Some(0.25));
    }

    #[test]
    fn weight_rows_visit_every_weighted_op_with_correct_fan_in() {
        let spec = DatasetSpec::new("t", 1, 16, 16, 4);
        let dnn = cnn_small(&mut rng(), &spec, PoolKind::Avg);
        let mut snn = SnnNetwork::from_dnn(&dnn).unwrap();
        // conv1 [8,1,3,3], conv2 [16,8,3,3], fc3 [64,256], fc4 [4,64].
        let mut seen: Vec<(usize, usize, usize)> = Vec::new();
        snn.for_each_weight_row(|layer, row, weights| {
            seen.push((layer, row, weights.len()));
        });
        assert_eq!(seen.len(), 8 + 16 + 64 + 4);
        assert_eq!(seen[0], (0, 0, 9));
        assert_eq!(seen[8], (1, 0, 8 * 9));
        assert_eq!(seen[8 + 16], (2, 0, 256));
        assert_eq!(seen.last(), Some(&(3, 3, 64)));
        // Rows arrive in (layer, row) order, each exactly once.
        let mut expect = Vec::new();
        for (layer, rows, fan_in) in [(0, 8, 9), (1, 16, 72), (2, 64, 256), (3, 4, 64)] {
            for row in 0..rows {
                expect.push((layer, row, fan_in));
            }
        }
        assert_eq!(seen, expect);
        // Writes through the callback land in the op's weights.
        snn.for_each_weight_row(|layer, row, weights| {
            if layer == 0 && row == 2 {
                weights[0] = 42.0;
            }
        });
        match &snn.ops()[0] {
            SnnOp::Conv { weight, .. } => assert_eq!(weight.data()[2 * 9], 42.0),
            _ => panic!("first op should be a conv"),
        }
    }
}
