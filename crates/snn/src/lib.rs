//! # t2fsnn-snn
//!
//! Clock-driven spiking-neural-network simulator for the [T2FSNN (DAC
//! 2020)] reproduction.
//!
//! This crate is the substrate the paper's *comparison baselines* run on:
//!
//! * [`SnnNetwork`] — a trained DNN converted into weighted spiking ops
//!   with event-driven (sparsity-exploiting) propagation and exact synaptic
//!   operation counting;
//! * [`IfState`] — integrate-and-fire membrane dynamics (Eq. 2–4 of the
//!   paper);
//! * [`coding`] — rate, phase (weighted spikes), burst, and reverse
//!   (TDSNN-like) neural codings (Fig. 1);
//! * [`simulate`] — the engine producing accuracy-vs-time curves (Fig. 6),
//!   spike counts (Tables I–II) and operation counts (Table III);
//! * [`energy`] — the TrueNorth/SpiNNaker normalized energy estimator
//!   (Table II).
//!
//! The paper's own coding — TTFS with kernel-based dynamic threshold and
//! dendrite — lives in the `t2fsnn` core crate, built on the same
//! substrate.
//!
//! ## Quick example
//!
//! ```no_run
//! use rand::SeedableRng;
//! use t2fsnn_data::{DatasetSpec, SyntheticConfig};
//! use t2fsnn_dnn::{architectures, normalize_for_snn, train, TrainConfig};
//! use t2fsnn_snn::coding::RateCoding;
//! use t2fsnn_snn::{simulate, SimConfig, SnnNetwork};
//!
//! # fn main() -> Result<(), t2fsnn_tensor::TensorError> {
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let data = SyntheticConfig::new(DatasetSpec::cifar10_like(), 1).generate(128);
//! let (train_set, test_set) = data.split(96);
//! let mut dnn = architectures::vgg_scaled(&mut rng, &data.spec, Default::default());
//! train(&mut dnn, &train_set, &TrainConfig::default(), &mut rng)?;
//! normalize_for_snn(&mut dnn, &train_set.images, 0.999)?;
//! let snn = SnnNetwork::from_dnn(&dnn)?;
//! let outcome = simulate(
//!     &snn,
//!     &mut RateCoding::new(),
//!     &test_set.images,
//!     &test_set.labels,
//!     &SimConfig::new(512, 64),
//! )?;
//! println!("rate coding: {:.1}% with {} spikes",
//!          outcome.final_accuracy * 100.0, outcome.total_spikes());
//! # Ok(())
//! # }
//! ```
//!
//! [T2FSNN (DAC 2020)]: https://arxiv.org/abs/2003.11741

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod coding;
pub mod energy;
pub mod engine;
mod network;
mod neuron;
mod sim;

pub use engine::{OpExecutor, SimEngine};
pub use network::{SnnNetwork, SnnOp};
pub use neuron::IfState;
pub use sim::{simulate, simulate_on, CurvePoint, SimConfig, SimOutcome};
