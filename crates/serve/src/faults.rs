//! Deterministic fault injection for the serving path.
//!
//! Enabled by `T2FSNN_SERVE_FAULTS=<seed>:<spec>`, where `<spec>` is a
//! comma-separated list of `kind=rate` or `kind=rate@param_ms` entries:
//!
//! | kind          | effect                                              | param        |
//! |---------------|-----------------------------------------------------|--------------|
//! | `slow_read`   | stall before serving a connection's next request    | stall ms (default 50) |
//! | `abort_read`  | drop the connection before reading the request      | —            |
//! | `drop_resp`   | write half the response body, then drop the socket  | —            |
//! | `panic`       | panic inside batch execution (tests `catch_unwind`) | —            |
//! | `batch_delay` | sleep before executing a batch (inflates latency)   | sleep ms (default 10) |
//! | `model_panic` | panic inside batch execution, *burst*: fires on `N` consecutive batches, then never again (trips the per-model circuit breaker) | burst length `N` (default 1) |
//! | `canary_fail` | poison the next `N` runtime canary runs (reload promotions and quarantine probes), then never again | burst length `N` (default 1) |
//!
//! Example: `T2FSNN_SERVE_FAULTS=42:slow_read=0.05@40,drop_resp=0.02,panic=0.01`.
//!
//! The two lifecycle kinds (`model_panic`, `canary_fail`) are
//! **one-shot bursts**, not per-event Bernoulli rates: the first draw
//! that fires arms a burst of `N` consecutive hits, after which the
//! kind is permanently exhausted for the process. That shape is what
//! the lifecycle gates need — "this model fails exactly 3 batches,
//! trips, then heals" is deterministic; a rate never stops firing.
//!
//! Every decision draws exactly one value per configured kind from one
//! seeded ChaCha8 stream (the workspace's deterministic RNG shim), so a
//! given seed produces the same *sequence* of fault decisions run after
//! run; which request lands on which decision still depends on thread
//! interleaving, which is why the chaos gates assert aggregate
//! invariants (every accepted request answered, successful responses
//! bit-identical, bounded error rates) rather than per-request
//! outcomes.
//!
//! The layer is injection-only: it never touches inference state, so a
//! response that does come back carries exactly the bits a fault-free
//! server would have sent.

use std::sync::Mutex;
use std::time::Duration;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Fault drawn for a connection about to read its next request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// Stall this worker for the duration before reading (a slow read).
    Delay(Duration),
    /// Drop the connection without reading or answering (the client
    /// sees a truncated/failed read).
    Abort,
}

/// Fault drawn for a response about to be written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseFault {
    /// Write only half the body, then drop the connection.
    DropMid,
}

/// Fault drawn for a batch about to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchFault {
    /// Sleep before executing (artificial execution delay).
    Delay(Duration),
    /// Panic in the batcher (exercises panic isolation).
    Panic,
}

/// Parsed injection rates; a rate of 0 disables its kind.
#[derive(Debug, Clone, PartialEq)]
struct Spec {
    slow_read_rate: f64,
    slow_read_delay: Duration,
    abort_read_rate: f64,
    drop_resp_rate: f64,
    panic_rate: f64,
    batch_delay_rate: f64,
    batch_delay: Duration,
    model_panic_rate: f64,
    model_panic_burst: u64,
    canary_fail_rate: f64,
    canary_fail_burst: u64,
}

/// State of a one-shot burst kind: unarmed → armed (counting down) →
/// exhausted, never back.
#[derive(Debug, Default)]
struct Burst {
    armed: bool,
    remaining: u64,
    exhausted: bool,
}

impl Burst {
    /// One consultation: the first firing `roll` arms a burst of
    /// `burst_len` consecutive hits (this consultation is the first);
    /// once the burst drains the kind never fires again.
    fn consult(&mut self, fired: bool, burst_len: u64) -> bool {
        if self.exhausted {
            return false;
        }
        if !self.armed {
            if !fired {
                return false;
            }
            self.armed = true;
            self.remaining = burst_len.max(1);
        }
        self.remaining -= 1;
        if self.remaining == 0 {
            self.armed = false;
            self.exhausted = true;
        }
        true
    }
}

impl Default for Spec {
    fn default() -> Self {
        Spec {
            slow_read_rate: 0.0,
            slow_read_delay: Duration::from_millis(50),
            abort_read_rate: 0.0,
            drop_resp_rate: 0.0,
            panic_rate: 0.0,
            batch_delay_rate: 0.0,
            batch_delay: Duration::from_millis(10),
            model_panic_rate: 0.0,
            model_panic_burst: 1,
            canary_fail_rate: 0.0,
            canary_fail_burst: 1,
        }
    }
}

/// The seeded fault injector; `None` from [`Faults::from_env`] means
/// faults are off (the production default) and the serving path pays
/// nothing.
pub struct Faults {
    spec: Spec,
    rng: Mutex<ChaCha8Rng>,
    model_panic: Mutex<Burst>,
    canary_fail: Mutex<Burst>,
}

impl Faults {
    /// Parses `T2FSNN_SERVE_FAULTS`. Unset or empty means no injection.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first grammar violation — a
    /// misconfigured chaos run should fail loudly, not silently run
    /// fault-free.
    pub fn from_env() -> Result<Option<Faults>, String> {
        match std::env::var("T2FSNN_SERVE_FAULTS") {
            Ok(v) if !v.trim().is_empty() => Faults::parse(v.trim()).map(Some),
            _ => Ok(None),
        }
    }

    /// Parses a `<seed>:<kind>=<rate>[@<param_ms>],...` spec.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first grammar violation.
    pub fn parse(text: &str) -> Result<Faults, String> {
        let (seed_text, spec_text) = text
            .split_once(':')
            .ok_or_else(|| format!("fault spec `{text}` needs the form <seed>:<kind>=<rate>,…"))?;
        let seed: u64 = seed_text
            .trim()
            .parse()
            .map_err(|_| format!("fault seed `{seed_text}` is not a u64"))?;
        let mut spec = Spec::default();
        for entry in spec_text.split(',').filter(|e| !e.trim().is_empty()) {
            let (kind, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault entry `{entry}` needs kind=rate"))?;
            let (rate_text, param_text) = match value.split_once('@') {
                Some((r, p)) => (r, Some(p)),
                None => (value, None),
            };
            let rate: f64 = rate_text
                .trim()
                .parse()
                .map_err(|_| format!("fault rate `{rate_text}` is not a float"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault rate {rate} outside [0, 1] in `{entry}`"));
            }
            let param_ms: Option<u64> = match param_text {
                Some(p) => Some(
                    p.trim()
                        .parse()
                        .map_err(|_| format!("fault param `{p}` is not integer milliseconds"))?,
                ),
                None => None,
            };
            match kind.trim() {
                "slow_read" => {
                    spec.slow_read_rate = rate;
                    if let Some(ms) = param_ms {
                        spec.slow_read_delay = Duration::from_millis(ms);
                    }
                }
                "abort_read" => spec.abort_read_rate = rate,
                "drop_resp" => spec.drop_resp_rate = rate,
                "panic" => spec.panic_rate = rate,
                "batch_delay" => {
                    spec.batch_delay_rate = rate;
                    if let Some(ms) = param_ms {
                        spec.batch_delay = Duration::from_millis(ms);
                    }
                }
                "model_panic" => {
                    spec.model_panic_rate = rate;
                    if let Some(n) = param_ms {
                        spec.model_panic_burst = n.max(1);
                    }
                }
                "canary_fail" => {
                    spec.canary_fail_rate = rate;
                    if let Some(n) = param_ms {
                        spec.canary_fail_burst = n.max(1);
                    }
                }
                other => {
                    return Err(format!(
                        "unknown fault kind `{other}` (slow_read, abort_read, drop_resp, panic, \
                         batch_delay, model_panic, canary_fail)"
                    ))
                }
            }
        }
        Ok(Faults {
            spec,
            rng: Mutex::new(ChaCha8Rng::seed_from_u64(seed)),
            model_panic: Mutex::new(Burst::default()),
            canary_fail: Mutex::new(Burst::default()),
        })
    }

    /// One Bernoulli draw; rate 0 never draws (so disabled kinds do not
    /// consume stream positions and specs stay comparable across runs).
    fn roll(&self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
        rng.gen_range(0.0f64..1.0) < rate
    }

    /// Draws the fault (if any) for a connection about to read a
    /// request. Abort outranks delay when both fire.
    pub fn read_fault(&self) -> Option<ReadFault> {
        let abort = self.roll(self.spec.abort_read_rate);
        let slow = self.roll(self.spec.slow_read_rate);
        if abort {
            Some(ReadFault::Abort)
        } else if slow {
            Some(ReadFault::Delay(self.spec.slow_read_delay))
        } else {
            None
        }
    }

    /// Draws the fault (if any) for a response about to be written.
    pub fn response_fault(&self) -> Option<ResponseFault> {
        self.roll(self.spec.drop_resp_rate)
            .then_some(ResponseFault::DropMid)
    }

    /// Draws the fault (if any) for a batch about to execute. Panic
    /// outranks delay when both fire.
    pub fn batch_fault(&self) -> Option<BatchFault> {
        let panic = self.roll(self.spec.panic_rate);
        let delay = self.roll(self.spec.batch_delay_rate);
        if panic {
            Some(BatchFault::Panic)
        } else if delay {
            Some(BatchFault::Delay(self.spec.batch_delay))
        } else {
            None
        }
    }

    /// One-shot burst consultation for the model-attributed panic kind;
    /// the batcher asks once per batch execution. Fires on `N`
    /// consecutive batches once armed, then never again.
    pub fn model_panic_fault(&self) -> bool {
        let fired = self.roll(self.spec.model_panic_rate);
        let mut burst = self.model_panic.lock().unwrap_or_else(|e| e.into_inner());
        burst.consult(fired, self.spec.model_panic_burst)
    }

    /// One-shot burst consultation for the canary-poisoning kind; the
    /// loader thread asks once per *runtime* canary (reload promotions
    /// with an incumbent, and quarantine probes — never boot loads).
    pub fn canary_fault(&self) -> bool {
        let fired = self.roll(self.spec.canary_fail_rate);
        let mut burst = self.canary_fail.lock().unwrap_or_else(|e| e.into_inner());
        burst.consult(fired, self.spec.canary_fail_burst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_grammar() {
        let f = Faults::parse(
            "7:slow_read=0.5@40,abort_read=0.25,drop_resp=0.1,panic=1,batch_delay=0.75@5",
        )
        .unwrap();
        assert!((f.spec.slow_read_rate - 0.5).abs() < 1e-12);
        assert_eq!(f.spec.slow_read_delay, Duration::from_millis(40));
        assert!((f.spec.abort_read_rate - 0.25).abs() < 1e-12);
        assert!((f.spec.drop_resp_rate - 0.1).abs() < 1e-12);
        assert!((f.spec.panic_rate - 1.0).abs() < 1e-12);
        assert_eq!(f.spec.batch_delay, Duration::from_millis(5));
    }

    #[test]
    fn parse_rejects_bad_specs() {
        for bad in [
            "no-colon",
            "x:slow_read=0.5",
            "1:slow_read",
            "1:slow_read=2.0",
            "1:slow_read=-0.5",
            "1:slow_read=0.5@abc",
            "1:warp_core=0.5",
        ] {
            assert!(Faults::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn same_seed_same_decision_sequence() {
        let a = Faults::parse("42:panic=0.3,batch_delay=0.3@1").unwrap();
        let b = Faults::parse("42:panic=0.3,batch_delay=0.3@1").unwrap();
        let seq_a: Vec<_> = (0..64).map(|_| a.batch_fault()).collect();
        let seq_b: Vec<_> = (0..64).map(|_| b.batch_fault()).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|f| f == &Some(BatchFault::Panic)));
        assert!(seq_a.iter().any(Option::is_none));
    }

    #[test]
    fn burst_kinds_fire_exactly_n_times_then_exhaust() {
        let f = Faults::parse("5:model_panic=1@3,canary_fail=1").unwrap();
        let hits: Vec<bool> = (0..8).map(|_| f.model_panic_fault()).collect();
        assert_eq!(
            hits,
            [true, true, true, false, false, false, false, false],
            "burst of 3, then exhausted forever"
        );
        assert!(f.canary_fault(), "default burst length is 1");
        assert!(!f.canary_fault(), "exhausted after its single hit");
        // Unconfigured burst kinds never fire and never draw.
        let off = Faults::parse("5:panic=1").unwrap();
        assert!(!off.model_panic_fault());
        assert!(!off.canary_fault());
    }

    #[test]
    fn burst_parse_accepts_count_params() {
        let f = Faults::parse("9:canary_fail=0.5@4").unwrap();
        assert!((f.spec.canary_fail_rate - 0.5).abs() < 1e-12);
        assert_eq!(f.spec.canary_fail_burst, 4);
        assert_eq!(f.spec.model_panic_burst, 1, "default burst");
        assert!(
            Faults::parse("9:model_panic=1@0")
                .unwrap()
                .spec
                .model_panic_burst
                >= 1
        );
    }

    #[test]
    fn rate_one_always_fires_rate_zero_never() {
        let f = Faults::parse("1:abort_read=1").unwrap();
        for _ in 0..16 {
            assert_eq!(f.read_fault(), Some(ReadFault::Abort));
            assert_eq!(f.response_fault(), None);
            assert_eq!(f.batch_fault(), None);
        }
    }
}
