//! Serving metrics: lock-free counters rendered as a Prometheus-style
//! text exposition at `GET /metrics`.
//!
//! Tracked: response counts per status, queue depth/rejections, the
//! batch-size histogram, request latency (histogram buckets → p50/p95/
//! p99 upper-bound estimates), early-exit decisions, and — when
//! `T2FSNN_PROFILE` is enabled — the per-phase profiler table (the
//! batcher flushes its thread-local spans after every batch, so the
//! endpoint sees them).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use t2fsnn_tensor::profile;

/// Latency histogram bucket upper bounds, microseconds.
const LATENCY_BUCKETS_US: [u64; 14] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 5_000_000,
];

/// Statuses with dedicated counters (anything else lands in the last
/// `other` slot).
const STATUSES: [u16; 8] = [200, 400, 404, 408, 413, 429, 500, 503];

/// The server's metric registry; shared by workers, batcher and the
/// `/metrics` endpoint. All methods are `&self` and lock-free.
pub struct Metrics {
    responses: [AtomicU64; 9],
    queue_depth: AtomicUsize,
    queue_rejections: AtomicU64,
    batches: AtomicU64,
    /// `batch_hist[k]` counts batches of size `k + 1`.
    batch_hist: Vec<AtomicU64>,
    /// `latency_hist[i]` counts requests at or under
    /// `LATENCY_BUCKETS_US[i]`; the extra slot is the overflow bucket.
    latency_hist: [AtomicU64; 15],
    latency_sum_us: AtomicU64,
    latency_count: AtomicU64,
    early_exit_decided: AtomicU64,
    infer_errors: AtomicU64,
}

impl Metrics {
    /// A fresh registry sized for batches up to `max_batch`.
    pub fn new(max_batch: usize) -> Self {
        Metrics {
            responses: Default::default(),
            queue_depth: AtomicUsize::new(0),
            queue_rejections: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_hist: (0..max_batch.max(1)).map(|_| AtomicU64::new(0)).collect(),
            latency_hist: Default::default(),
            latency_sum_us: AtomicU64::new(0),
            latency_count: AtomicU64::new(0),
            early_exit_decided: AtomicU64::new(0),
            infer_errors: AtomicU64::new(0),
        }
    }

    /// Counts one response by status.
    pub fn observe_response(&self, status: u16) {
        let slot = STATUSES
            .iter()
            .position(|&s| s == status)
            .unwrap_or(STATUSES.len());
        self.responses[slot].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a refused admission (`429`).
    pub fn observe_queue_rejection(&self) {
        self.queue_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Updates the queue-depth gauge (called with `queue.len()` after
    /// pushes and batch formation).
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Counts one executed batch of `size` images.
    pub fn observe_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        let slot = size.clamp(1, self.batch_hist.len()) - 1;
        self.batch_hist[slot].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one completed request's end-to-end latency.
    pub fn observe_latency_us(&self, us: u64) {
        let slot = LATENCY_BUCKETS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.latency_hist[slot].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts whether a request was decided by the early-exit fire
    /// phase.
    pub fn observe_decision(&self, decided: bool) {
        if decided {
            self.early_exit_decided.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts a failed batch execution.
    pub fn observe_infer_error(&self) {
        self.infer_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of batches whose size exceeded one — the signal that
    /// micro-batching is actually engaging.
    pub fn batches_beyond_one(&self) -> u64 {
        self.batch_hist[1..]
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Latency quantile upper-bound estimate from the histogram, `q` in
    /// `0..=1`. Returns 0 with no observations.
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        let total = self.latency_count.load(Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, count) in self.latency_hist.iter().enumerate() {
            seen += count.load(Ordering::Relaxed);
            if seen >= rank {
                return LATENCY_BUCKETS_US.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    /// The text exposition served at `GET /metrics`.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        for (i, &status) in STATUSES.iter().enumerate() {
            let count = self.responses[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "t2fsnn_serve_responses_total{{code=\"{status}\"}} {count}\n"
            ));
        }
        out.push_str(&format!(
            "t2fsnn_serve_responses_total{{code=\"other\"}} {}\n",
            self.responses[STATUSES.len()].load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_queue_depth {}\n",
            self.queue_depth.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_queue_rejections_total {}\n",
            self.queue_rejections.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_batches_total {}\n",
            self.batches.load(Ordering::Relaxed)
        ));
        for (i, count) in self.batch_hist.iter().enumerate() {
            out.push_str(&format!(
                "t2fsnn_serve_batch_size_total{{size=\"{}\"}} {}\n",
                i + 1,
                count.load(Ordering::Relaxed)
            ));
        }
        for (i, &bound) in LATENCY_BUCKETS_US.iter().enumerate() {
            out.push_str(&format!(
                "t2fsnn_serve_latency_us_bucket{{le=\"{bound}\"}} {}\n",
                self.latency_hist[i].load(Ordering::Relaxed)
            ));
        }
        out.push_str(&format!(
            "t2fsnn_serve_latency_us_bucket{{le=\"+Inf\"}} {}\n",
            self.latency_hist[LATENCY_BUCKETS_US.len()].load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_latency_us_sum {}\n",
            self.latency_sum_us.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_latency_us_count {}\n",
            self.latency_count.load(Ordering::Relaxed)
        ));
        for (q, label) in [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
            out.push_str(&format!(
                "t2fsnn_serve_latency_us{{quantile=\"{label}\"}} {}\n",
                self.latency_quantile_us(q)
            ));
        }
        out.push_str(&format!(
            "t2fsnn_serve_early_exit_decided_total {}\n",
            self.early_exit_decided.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_infer_errors_total {}\n",
            self.infer_errors.load(Ordering::Relaxed)
        ));
        if profile::enabled() {
            for entry in profile::entries() {
                out.push_str(&format!(
                    "t2fsnn_profile_ms{{key=\"{}\"}} {:.3}\n",
                    entry.key,
                    entry.nanos as f64 / 1e6
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_quantiles() {
        let m = Metrics::new(4);
        m.observe_response(200);
        m.observe_response(200);
        m.observe_response(429);
        m.observe_response(418); // lands in `other`
        m.observe_batch(1);
        m.observe_batch(3);
        m.observe_batch(99); // clamped into the top bucket
        for us in [80, 90, 400, 30_000] {
            m.observe_latency_us(us);
        }
        m.observe_decision(true);
        m.observe_decision(false);
        m.set_queue_depth(7);
        assert_eq!(m.batches_beyond_one(), 2);
        assert_eq!(m.latency_quantile_us(0.5), 100);
        assert_eq!(m.latency_quantile_us(0.99), 50_000);
        let text = m.render();
        assert!(text.contains("t2fsnn_serve_responses_total{code=\"200\"} 2"));
        assert!(text.contains("t2fsnn_serve_responses_total{code=\"429\"} 1"));
        assert!(text.contains("t2fsnn_serve_responses_total{code=\"other\"} 1"));
        assert!(text.contains("t2fsnn_serve_batch_size_total{size=\"3\"} 1"));
        assert!(text.contains("t2fsnn_serve_batch_size_total{size=\"4\"} 1"));
        assert!(text.contains("t2fsnn_serve_queue_depth 7"));
        assert!(text.contains("t2fsnn_serve_early_exit_decided_total 1"));
        assert!(text.contains("quantile=\"p50\"} 100"));
    }

    #[test]
    fn empty_metrics_render() {
        let m = Metrics::new(2);
        assert_eq!(m.latency_quantile_us(0.5), 0);
        assert!(m.render().contains("t2fsnn_serve_latency_us_count 0"));
    }
}
