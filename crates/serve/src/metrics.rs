//! Serving metrics: lock-free counters rendered as a Prometheus-style
//! text exposition at `GET /metrics`.
//!
//! Tracked: response counts per status, queue depth/rejections, the
//! batch-size histogram, request latency (histogram buckets → p50/p95/
//! p99 upper-bound estimates), per-model per-stage latency histograms
//! (queue wait / batch execution / end-to-end), early-exit decisions,
//! the robustness counters (deadline sheds, late answers, forced
//! early-exits, worker panics, batcher respawns, per-model-unavailable
//! refusals, injected faults, the load-time perturbation footprint)
//! with a slack-at-dispatch histogram, and — when `T2FSNN_PROFILE` is
//! enabled — the per-phase profiler table ([`profile::entries`] drains
//! every live thread, so the endpoint never misses the batcher's
//! spans).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use t2fsnn_tensor::profile;

/// Latency histogram bucket upper bounds, microseconds.
const LATENCY_BUCKETS_US: [u64; 14] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 5_000_000,
];

/// Statuses with dedicated counters (anything else lands in the last
/// `other` slot).
const STATUSES: [u16; 9] = [200, 400, 404, 408, 413, 429, 500, 503, 504];

/// Slack-at-dispatch histogram bucket upper bounds, microseconds: how
/// much deadline budget a request had left when its batch started.
const SLACK_BUCKETS_US: [u64; 8] = [500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000];

/// The per-request lifecycle stages broken out per model in
/// `t2fsnn_serve_request_stage_us_*`: time queued before the batch
/// started, time the batch spent in inference, and end-to-end latency.
const STAGES: [&str; 3] = ["queue", "exec", "total"];

/// One stage's histogram over [`LATENCY_BUCKETS_US`] plus sum/count.
/// Plain integers — it lives behind the per-registry stage mutex.
#[derive(Default, Clone)]
struct StageHist {
    buckets: [u64; LATENCY_BUCKETS_US.len() + 1],
    sum_us: u64,
    count: u64,
}

impl StageHist {
    fn observe(&mut self, us: u64) {
        let slot = LATENCY_BUCKETS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.buckets[slot] += 1;
        self.sum_us += us;
        self.count += 1;
    }
}

/// One model's stage histograms, indexed like [`STAGES`].
#[derive(Default, Clone)]
struct ModelStages([StageHist; STAGES.len()]);

/// The server's metric registry; shared by workers, batcher, loader and
/// the `/metrics` endpoint. All methods are `&self`; everything on the
/// hot path is lock-free (only the per-model quota-rejection map, an
/// off-hot-path refusal counter, takes a mutex).
pub struct Metrics {
    responses: [AtomicU64; 10],
    queue_depth: AtomicUsize,
    queue_rejections: AtomicU64,
    batches: AtomicU64,
    /// `batch_hist[k]` counts batches of size `k + 1`.
    batch_hist: Vec<AtomicU64>,
    /// `latency_hist[i]` counts requests at or under
    /// `LATENCY_BUCKETS_US[i]`; the extra slot is the overflow bucket.
    latency_hist: [AtomicU64; 15],
    latency_sum_us: AtomicU64,
    latency_count: AtomicU64,
    early_exit_decided: AtomicU64,
    infer_errors: AtomicU64,
    deadline_shed: AtomicU64,
    unmeetable_shed: AtomicU64,
    deadline_late_answers: AtomicU64,
    forced_early_exit: AtomicU64,
    worker_panics: AtomicU64,
    batcher_respawns: AtomicU64,
    model_unavailable: AtomicU64,
    faults_injected: AtomicU64,
    perturbed_models: AtomicU64,
    perturbed_weight_rows: AtomicU64,
    /// `slack_hist[i]` counts dispatches at or under
    /// `SLACK_BUCKETS_US[i]`; the extra slot is the overflow bucket.
    slack_hist: [AtomicU64; 9],
    canary_rejections: AtomicU64,
    quarantine_trips: AtomicU64,
    quarantine_probes: AtomicU64,
    quarantine_readmissions: AtomicU64,
    model_loads: AtomicU64,
    model_unloads: AtomicU64,
    /// Per-model quota rejections, keyed by model name; a `BTreeMap`
    /// keeps the exposition order deterministic. The lock is touched
    /// only on the (rare, already-refused) overflow path and at render.
    model_quota_rejections: Mutex<BTreeMap<String, u64>>,
    /// Per-model per-stage latency histograms; one short uncontended
    /// lock per completed request (all three stages land in one take).
    request_stages: Mutex<BTreeMap<String, ModelStages>>,
}

impl Metrics {
    /// A fresh registry sized for batches up to `max_batch`.
    pub fn new(max_batch: usize) -> Self {
        Metrics {
            responses: Default::default(),
            queue_depth: AtomicUsize::new(0),
            queue_rejections: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_hist: (0..max_batch.max(1)).map(|_| AtomicU64::new(0)).collect(),
            latency_hist: Default::default(),
            latency_sum_us: AtomicU64::new(0),
            latency_count: AtomicU64::new(0),
            early_exit_decided: AtomicU64::new(0),
            infer_errors: AtomicU64::new(0),
            deadline_shed: AtomicU64::new(0),
            unmeetable_shed: AtomicU64::new(0),
            deadline_late_answers: AtomicU64::new(0),
            forced_early_exit: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            batcher_respawns: AtomicU64::new(0),
            model_unavailable: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            perturbed_models: AtomicU64::new(0),
            perturbed_weight_rows: AtomicU64::new(0),
            slack_hist: Default::default(),
            canary_rejections: AtomicU64::new(0),
            quarantine_trips: AtomicU64::new(0),
            quarantine_probes: AtomicU64::new(0),
            quarantine_readmissions: AtomicU64::new(0),
            model_loads: AtomicU64::new(0),
            model_unloads: AtomicU64::new(0),
            model_quota_rejections: Mutex::new(BTreeMap::new()),
            request_stages: Mutex::new(BTreeMap::new()),
        }
    }

    /// Counts one response by status.
    pub fn observe_response(&self, status: u16) {
        let slot = STATUSES
            .iter()
            .position(|&s| s == status)
            .unwrap_or(STATUSES.len());
        self.responses[slot].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a refused admission (`429`).
    pub fn observe_queue_rejection(&self) {
        self.queue_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Updates the queue-depth gauge (called with `queue.len()` after
    /// pushes and batch formation).
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Counts one executed batch of `size` images.
    pub fn observe_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        let slot = size.clamp(1, self.batch_hist.len()) - 1;
        self.batch_hist[slot].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one completed request's end-to-end latency.
    pub fn observe_latency_us(&self, us: u64) {
        let slot = LATENCY_BUCKETS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.latency_hist[slot].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts whether a request was decided by the early-exit fire
    /// phase.
    pub fn observe_decision(&self, decided: bool) {
        if decided {
            self.early_exit_decided.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts a failed batch execution.
    pub fn observe_infer_error(&self) {
        self.infer_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request shed because its deadline had already passed
    /// before execution could start (`504`).
    pub fn observe_deadline_shed(&self) {
        self.deadline_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a shed taken by the ladder's last rung: the request still
    /// had slack, but less than the anytime execution estimate — it
    /// could not possibly have answered in time (also counted in
    /// `deadline_shed`).
    pub fn observe_unmeetable_shed(&self) {
        self.unmeetable_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request that was answered, but only after its deadline
    /// had passed (it was dispatched with slack and ran long).
    pub fn observe_deadline_late_answer(&self) {
        self.deadline_late_answers.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request the degradation ladder forced onto the anytime
    /// early-exit path because its slack shrank below the full-window
    /// estimate.
    pub fn observe_forced_early_exit(&self) {
        self.forced_early_exit.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a batch execution that panicked and was isolated by the
    /// batcher (its requests answered `500`, the worker survived).
    pub fn observe_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a batcher-thread death that the supervisor respawned (the
    /// backstop behind per-batch panic isolation).
    pub fn observe_batcher_respawn(&self) {
        self.batcher_respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Batcher respawns so far (the chaos gate asserts this stays 0
    /// when per-batch isolation is doing its job).
    pub fn batcher_respawns(&self) -> u64 {
        self.batcher_respawns.load(Ordering::Relaxed)
    }

    /// Counts a request refused because its model is loaded-but-broken
    /// (`503` per-model unavailability, not a shutdown).
    pub fn observe_model_unavailable(&self) {
        self.model_unavailable.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one injected fault firing (any kind).
    pub fn observe_fault_injected(&self) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a model version refused promotion by the canary battery
    /// (the incumbent kept serving).
    pub fn observe_canary_rejection(&self) {
        self.canary_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a circuit-breaker trip: a model fenced off after repeated
    /// execution failures.
    pub fn observe_quarantine_trip(&self) {
        self.quarantine_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a canary probe run against a quarantined model.
    pub fn observe_quarantine_probe(&self) {
        self.quarantine_probes.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a quarantined model re-admitted to serving after a
    /// passing probe.
    pub fn observe_quarantine_readmission(&self) {
        self.quarantine_readmissions.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a model version promoted to serving (boot loads excluded;
    /// this is the runtime lifecycle counter).
    pub fn observe_model_load(&self) {
        self.model_loads.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a model explicitly unloaded via the admin endpoint.
    pub fn observe_model_unload(&self) {
        self.model_unloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request refused because its model's queued share hit
    /// the per-model admission quota (`429`).
    pub fn observe_model_quota_rejection(&self, model: &str) {
        let mut map = self
            .model_quota_rejections
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *map.entry(model.to_string()).or_insert(0) += 1;
    }

    /// Records one completed request's stage breakdown against its
    /// model: queue wait, batch execution and end-to-end latency, all
    /// in one lock take.
    pub fn observe_request_stages(&self, model: &str, queue_us: u64, infer_us: u64, total_us: u64) {
        let mut map = self
            .request_stages
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let stages = match map.get_mut(model) {
            Some(s) => s,
            None => map.entry(model.to_string()).or_default(),
        };
        stages.0[0].observe(queue_us);
        stages.0[1].observe(infer_us);
        stages.0[2].observe(total_us);
    }

    /// Records the load-time perturbation footprint: how many models
    /// came up perturbed and how many weight rows were rewritten (set
    /// once at startup from the registry's counts; 0/0 = clean server).
    pub fn set_perturbation(&self, models: u64, weight_rows: u64) {
        self.perturbed_models.store(models, Ordering::Relaxed);
        self.perturbed_weight_rows
            .store(weight_rows, Ordering::Relaxed);
    }

    /// Records a deadline-carrying request's remaining slack when its
    /// batch was dispatched.
    pub fn observe_slack_us(&self, us: u64) {
        let slot = SLACK_BUCKETS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(SLACK_BUCKETS_US.len());
        self.slack_hist[slot].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of batches whose size exceeded one — the signal that
    /// micro-batching is actually engaging.
    pub fn batches_beyond_one(&self) -> u64 {
        self.batch_hist[1..]
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Latency quantile upper-bound estimate from the histogram, `q` in
    /// `0..=1`. Returns 0 with no observations.
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        let total = self.latency_count.load(Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, count) in self.latency_hist.iter().enumerate() {
            seen += count.load(Ordering::Relaxed);
            if seen >= rank {
                return LATENCY_BUCKETS_US.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    /// The text exposition served at `GET /metrics`.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        for (i, &status) in STATUSES.iter().enumerate() {
            let count = self.responses[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "t2fsnn_serve_responses_total{{code=\"{status}\"}} {count}\n"
            ));
        }
        out.push_str(&format!(
            "t2fsnn_serve_responses_total{{code=\"other\"}} {}\n",
            self.responses[STATUSES.len()].load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_queue_depth {}\n",
            self.queue_depth.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_queue_rejections_total {}\n",
            self.queue_rejections.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_batches_total {}\n",
            self.batches.load(Ordering::Relaxed)
        ));
        for (i, count) in self.batch_hist.iter().enumerate() {
            out.push_str(&format!(
                "t2fsnn_serve_batch_size_total{{size=\"{}\"}} {}\n",
                i + 1,
                count.load(Ordering::Relaxed)
            ));
        }
        for (i, &bound) in LATENCY_BUCKETS_US.iter().enumerate() {
            out.push_str(&format!(
                "t2fsnn_serve_latency_us_bucket{{le=\"{bound}\"}} {}\n",
                self.latency_hist[i].load(Ordering::Relaxed)
            ));
        }
        out.push_str(&format!(
            "t2fsnn_serve_latency_us_bucket{{le=\"+Inf\"}} {}\n",
            self.latency_hist[LATENCY_BUCKETS_US.len()].load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_latency_us_sum {}\n",
            self.latency_sum_us.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_latency_us_count {}\n",
            self.latency_count.load(Ordering::Relaxed)
        ));
        for (q, label) in [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
            out.push_str(&format!(
                "t2fsnn_serve_latency_us{{quantile=\"{label}\"}} {}\n",
                self.latency_quantile_us(q)
            ));
        }
        out.push_str(&format!(
            "t2fsnn_serve_early_exit_decided_total {}\n",
            self.early_exit_decided.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_infer_errors_total {}\n",
            self.infer_errors.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_deadline_shed_total {}\n",
            self.deadline_shed.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_unmeetable_shed_total {}\n",
            self.unmeetable_shed.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_deadline_late_answers_total {}\n",
            self.deadline_late_answers.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_forced_early_exit_total {}\n",
            self.forced_early_exit.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_worker_panics_total {}\n",
            self.worker_panics.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_batcher_respawns_total {}\n",
            self.batcher_respawns.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_model_unavailable_total {}\n",
            self.model_unavailable.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_faults_injected_total {}\n",
            self.faults_injected.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_perturbed_models_total {}\n",
            self.perturbed_models.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_perturbed_weight_rows_total {}\n",
            self.perturbed_weight_rows.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_canary_rejections_total {}\n",
            self.canary_rejections.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_quarantine_trips_total {}\n",
            self.quarantine_trips.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_quarantine_probes_total {}\n",
            self.quarantine_probes.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_quarantine_readmissions_total {}\n",
            self.quarantine_readmissions.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_model_loads_total {}\n",
            self.model_loads.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "t2fsnn_serve_model_unloads_total {}\n",
            self.model_unloads.load(Ordering::Relaxed)
        ));
        {
            let map = self
                .model_quota_rejections
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            for (model, count) in map.iter() {
                out.push_str(&format!(
                    "t2fsnn_serve_model_quota_rejections_total{{model=\"{model}\"}} {count}\n"
                ));
            }
        }
        {
            let map = self
                .request_stages
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            for (model, stages) in map.iter() {
                for (stage, hist) in STAGES.iter().zip(&stages.0) {
                    for (i, &bound) in LATENCY_BUCKETS_US.iter().enumerate() {
                        out.push_str(&format!(
                            "t2fsnn_serve_request_stage_us_bucket{{model=\"{model}\",\
                             stage=\"{stage}\",le=\"{bound}\"}} {}\n",
                            hist.buckets[i]
                        ));
                    }
                    out.push_str(&format!(
                        "t2fsnn_serve_request_stage_us_bucket{{model=\"{model}\",\
                         stage=\"{stage}\",le=\"+Inf\"}} {}\n",
                        hist.buckets[LATENCY_BUCKETS_US.len()]
                    ));
                    out.push_str(&format!(
                        "t2fsnn_serve_request_stage_us_sum{{model=\"{model}\",\
                         stage=\"{stage}\"}} {}\n",
                        hist.sum_us
                    ));
                    out.push_str(&format!(
                        "t2fsnn_serve_request_stage_us_count{{model=\"{model}\",\
                         stage=\"{stage}\"}} {}\n",
                        hist.count
                    ));
                }
            }
        }
        for (i, &bound) in SLACK_BUCKETS_US.iter().enumerate() {
            out.push_str(&format!(
                "t2fsnn_serve_dispatch_slack_us_bucket{{le=\"{bound}\"}} {}\n",
                self.slack_hist[i].load(Ordering::Relaxed)
            ));
        }
        out.push_str(&format!(
            "t2fsnn_serve_dispatch_slack_us_bucket{{le=\"+Inf\"}} {}\n",
            self.slack_hist[SLACK_BUCKETS_US.len()].load(Ordering::Relaxed)
        ));
        if profile::enabled() {
            for entry in profile::entries() {
                out.push_str(&format!(
                    "t2fsnn_profile_ms{{key=\"{}\"}} {:.3}\n",
                    entry.key,
                    entry.nanos as f64 / 1e6
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_quantiles() {
        let m = Metrics::new(4);
        m.observe_response(200);
        m.observe_response(200);
        m.observe_response(429);
        m.observe_response(418); // lands in `other`
        m.observe_batch(1);
        m.observe_batch(3);
        m.observe_batch(99); // clamped into the top bucket
        for us in [80, 90, 400, 30_000] {
            m.observe_latency_us(us);
        }
        m.observe_decision(true);
        m.observe_decision(false);
        m.set_queue_depth(7);
        assert_eq!(m.batches_beyond_one(), 2);
        assert_eq!(m.latency_quantile_us(0.5), 100);
        assert_eq!(m.latency_quantile_us(0.99), 50_000);
        let text = m.render();
        assert!(text.contains("t2fsnn_serve_responses_total{code=\"200\"} 2"));
        assert!(text.contains("t2fsnn_serve_responses_total{code=\"429\"} 1"));
        assert!(text.contains("t2fsnn_serve_responses_total{code=\"other\"} 1"));
        assert!(text.contains("t2fsnn_serve_batch_size_total{size=\"3\"} 1"));
        assert!(text.contains("t2fsnn_serve_batch_size_total{size=\"4\"} 1"));
        assert!(text.contains("t2fsnn_serve_queue_depth 7"));
        assert!(text.contains("t2fsnn_serve_early_exit_decided_total 1"));
        assert!(text.contains("quantile=\"p50\"} 100"));
    }

    #[test]
    fn robustness_counters_render() {
        let m = Metrics::new(2);
        m.observe_response(504);
        m.observe_deadline_shed();
        m.observe_deadline_shed();
        m.observe_deadline_late_answer();
        m.observe_forced_early_exit();
        m.observe_worker_panic();
        m.observe_batcher_respawn();
        m.observe_model_unavailable();
        m.observe_fault_injected();
        m.set_perturbation(2, 37);
        m.observe_slack_us(400);
        m.observe_slack_us(7_000);
        m.observe_slack_us(999_999);
        assert_eq!(m.batcher_respawns(), 1);
        let text = m.render();
        assert!(text.contains("t2fsnn_serve_responses_total{code=\"504\"} 1"));
        assert!(text.contains("t2fsnn_serve_deadline_shed_total 2"));
        assert!(text.contains("t2fsnn_serve_deadline_late_answers_total 1"));
        assert!(text.contains("t2fsnn_serve_forced_early_exit_total 1"));
        assert!(text.contains("t2fsnn_serve_worker_panics_total 1"));
        assert!(text.contains("t2fsnn_serve_batcher_respawns_total 1"));
        assert!(text.contains("t2fsnn_serve_model_unavailable_total 1"));
        assert!(text.contains("t2fsnn_serve_faults_injected_total 1"));
        assert!(text.contains("t2fsnn_serve_perturbed_models_total 2"));
        assert!(text.contains("t2fsnn_serve_perturbed_weight_rows_total 37"));
        assert!(text.contains("t2fsnn_serve_dispatch_slack_us_bucket{le=\"500\"} 1"));
        assert!(text.contains("t2fsnn_serve_dispatch_slack_us_bucket{le=\"10000\"} 1"));
        assert!(text.contains("t2fsnn_serve_dispatch_slack_us_bucket{le=\"+Inf\"} 1"));
    }

    #[test]
    fn lifecycle_counters_render() {
        let m = Metrics::new(2);
        m.observe_canary_rejection();
        m.observe_quarantine_trip();
        m.observe_quarantine_probe();
        m.observe_quarantine_probe();
        m.observe_quarantine_readmission();
        m.observe_model_load();
        m.observe_model_load();
        m.observe_model_unload();
        m.observe_model_quota_rejection("tiny");
        m.observe_model_quota_rejection("tiny");
        m.observe_model_quota_rejection("mnist-like");
        let text = m.render();
        assert!(text.contains("t2fsnn_serve_canary_rejections_total 1"));
        assert!(text.contains("t2fsnn_serve_quarantine_trips_total 1"));
        assert!(text.contains("t2fsnn_serve_quarantine_probes_total 2"));
        assert!(text.contains("t2fsnn_serve_quarantine_readmissions_total 1"));
        assert!(text.contains("t2fsnn_serve_model_loads_total 2"));
        assert!(text.contains("t2fsnn_serve_model_unloads_total 1"));
        assert!(text.contains("t2fsnn_serve_model_quota_rejections_total{model=\"tiny\"} 2"));
        assert!(text.contains("t2fsnn_serve_model_quota_rejections_total{model=\"mnist-like\"} 1"));
        // Unhit models have no row at all (no spurious zero series).
        let empty = Metrics::new(2);
        assert!(!empty.render().contains("model_quota_rejections"));
    }

    #[test]
    fn stage_histograms_render_per_model() {
        let m = Metrics::new(2);
        m.observe_request_stages("tiny", 90, 400, 520);
        m.observe_request_stages("tiny", 30_000, 400, 31_000);
        m.observe_request_stages("mnist-like", 10, 10, 10_000_000);
        let text = m.render();
        assert!(text.contains(
            "t2fsnn_serve_request_stage_us_bucket{model=\"tiny\",stage=\"queue\",le=\"100\"} 1"
        ));
        assert!(text.contains(
            "t2fsnn_serve_request_stage_us_bucket{model=\"tiny\",stage=\"exec\",le=\"500\"} 2"
        ));
        assert!(text
            .contains("t2fsnn_serve_request_stage_us_sum{model=\"tiny\",stage=\"queue\"} 30090"));
        assert!(
            text.contains("t2fsnn_serve_request_stage_us_count{model=\"tiny\",stage=\"total\"} 2")
        );
        // Overflow lands in +Inf; untouched models get no series.
        assert!(text.contains(
            "t2fsnn_serve_request_stage_us_bucket{model=\"mnist-like\",stage=\"total\",le=\"+Inf\"} 1"
        ));
        assert!(!Metrics::new(2).render().contains("request_stage"));
    }

    #[test]
    fn empty_metrics_render() {
        let m = Metrics::new(2);
        assert_eq!(m.latency_quantile_us(0.5), 0);
        assert!(m.render().contains("t2fsnn_serve_latency_us_count 0"));
    }
}
