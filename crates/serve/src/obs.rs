//! Slow-request exemplars — the bounded ring behind `GET /debug/slow`.
//!
//! A latency histogram says *that* the tail exists; an exemplar says
//! *which request* was in it and where the time went. Every completed
//! inference whose end-to-end latency reaches the configured threshold
//! ([`crate::ServeConfig::slow_us`]) is captured here with its trace id,
//! so the operator can jump from the exemplar straight to the request's
//! span tree in `/debug/trace` (filter by `args.trace`).
//!
//! The ring is bounded ([`SlowLog::CAP`] entries, newest win) and
//! mutex-guarded — it is touched only on the slow path, by definition.

use std::collections::VecDeque;
use std::sync::Mutex;

use serde::Serialize;

/// One captured slow request.
#[derive(Debug, Clone, Serialize)]
pub struct SlowExemplar {
    /// The request's trace id (0 when tracing was off) — filter
    /// `/debug/trace` spans by `args.trace == <this>`.
    pub trace: u64,
    /// Trace id of the micro-batch that executed it.
    pub batch_trace: u64,
    /// Model that served the request.
    pub model: String,
    /// End-to-end latency, admission to response assembly (µs).
    pub total_us: u64,
    /// Time queued before its batch started (µs).
    pub queue_us: u64,
    /// Time its batch spent in inference (µs).
    pub infer_us: u64,
    /// Size of the micro-batch it executed in.
    pub batch_size: usize,
    /// Whether the degradation ladder forced early-exit.
    pub degraded: bool,
}

/// Bounded ring of the most recent slow requests.
#[derive(Default)]
pub struct SlowLog {
    entries: Mutex<VecDeque<SlowExemplar>>,
}

impl SlowLog {
    /// Ring capacity; the newest exemplars evict the oldest.
    pub const CAP: usize = 64;

    /// Captures one exemplar, evicting the oldest past [`Self::CAP`].
    pub fn record(&self, exemplar: SlowExemplar) {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if entries.len() == Self::CAP {
            entries.pop_front();
        }
        entries.push_back(exemplar);
    }

    /// The retained exemplars, oldest first.
    pub fn snapshot(&self) -> Vec<SlowExemplar> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.iter().cloned().collect()
    }

    /// Serialized `GET /debug/slow` body:
    /// `{"threshold_us":…,"exemplars":[…]}`.
    pub fn to_json(&self, threshold_us: u64) -> Vec<u8> {
        #[derive(Serialize)]
        struct Body {
            threshold_us: u64,
            exemplars: Vec<SlowExemplar>,
        }
        serde_json::to_vec(&Body {
            threshold_us,
            exemplars: self.snapshot(),
        })
        .unwrap_or_else(|_| b"{\"threshold_us\":0,\"exemplars\":[]}".to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exemplar(trace: u64, total_us: u64) -> SlowExemplar {
        SlowExemplar {
            trace,
            batch_trace: trace + 1,
            model: "tiny".into(),
            total_us,
            queue_us: total_us / 4,
            infer_us: total_us / 2,
            batch_size: 2,
            degraded: false,
        }
    }

    #[test]
    fn ring_keeps_newest_and_bounds_memory() {
        let log = SlowLog::default();
        for i in 0..(SlowLog::CAP as u64 + 10) {
            log.record(exemplar(i, 1000 + i));
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), SlowLog::CAP);
        assert_eq!(snap.first().unwrap().trace, 10, "oldest evicted");
        assert_eq!(snap.last().unwrap().trace, SlowLog::CAP as u64 + 9);
    }

    #[test]
    fn json_body_carries_threshold_and_fields() {
        let log = SlowLog::default();
        log.record(exemplar(7, 60_000));
        let body = String::from_utf8(log.to_json(50_000)).unwrap();
        assert!(body.contains("\"threshold_us\":50000"), "{body}");
        assert!(body.contains("\"trace\":7"), "{body}");
        assert!(body.contains("\"total_us\":60000"), "{body}");
        assert!(body.contains("\"model\":\"tiny\""), "{body}");
    }
}
