//! The JSON wire protocol. Kept dependency-free on purpose: clients
//! (e.g. the bench crate's `serve_load` generator) speak it with their
//! own struct mirrors, so the shapes here are the contract.

use serde::{Deserialize, Serialize};

/// `POST /v1/infer` request body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InferRequest {
    /// Registry model to run; the server's default model when omitted.
    pub model: Option<String>,
    /// Flat `[C·H·W]` image, channel-major, unit-range pixels.
    pub image: Vec<f32>,
    /// Per-request early-exit override; the server default when omitted.
    pub early_exit: Option<bool>,
    /// Relative deadline in milliseconds, measured from admission. A
    /// request that cannot start execution before its deadline is shed
    /// with `504` instead of answered late; one whose slack has shrunk
    /// below the full-window estimate is degraded to a forced anytime
    /// early-exit answer. The `x-deadline-ms` header sets the same
    /// budget; this JSON field wins when both are present. Omitted (and
    /// no header, and no `T2FSNN_SERVE_DEADLINE_MS` server default)
    /// means no deadline.
    pub deadline_ms: Option<u64>,
    /// Opt-in: `true` asks for a [`Timing`] breakdown in the response.
    /// Purely observational — the computed answer is bit-identical with
    /// or without it.
    pub timing: Option<bool>,
}

/// Per-request observability breakdown, present in [`InferResponse`]
/// only when the request set `timing: true`. Wall-clock figures, never
/// part of the model answer — bit-identity checks exclude it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Timing {
    /// The request's trace id — filter `/debug/trace` by
    /// `args.trace == <this>` to see the request's span tree.
    pub trace: u64,
    /// Trace id of the micro-batch that executed the request (its
    /// engine-phase spans are tagged with it); 0 when tracing is off.
    pub batch_trace: u64,
    /// Microseconds queued before the batch started.
    pub queue_us: u64,
    /// Microseconds the batch spent in inference.
    pub infer_us: u64,
    /// End-to-end microseconds from admission to response assembly.
    pub total_us: u64,
}

/// `POST /v1/infer` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InferResponse {
    /// Model that served the request.
    pub model: String,
    /// Version of the model that served the request. A request is
    /// pinned at admission: a swap promoted mid-flight does not change
    /// which version answers, and the echoed version proves it.
    pub version: u64,
    /// Predicted class.
    pub label: usize,
    /// Global step (1-based) of the first output spike when the
    /// early-exit fire phase decided the request; `null` otherwise.
    pub decision_step: Option<usize>,
    /// Steps the request was simulated for (its anytime latency).
    pub steps: usize,
    /// Winning output neuron's membrane potential (decision margin).
    pub top_potential: f32,
    /// Input-encoding spikes of this request.
    pub input_spikes: u64,
    /// Hidden-layer spikes of this request.
    pub hidden_spikes: u64,
    /// Synaptic accumulates charged to this request.
    pub synop_adds: u64,
    /// Kernel multiplies charged to this request.
    pub synop_mults: u64,
    /// TrueNorth-weighted energy estimate in the paper's relative
    /// units: `E_dyn·spikes + E_sta·steps`.
    pub energy_truenorth: f64,
    /// Size of the micro-batch this request executed in.
    pub batch_size: usize,
    /// Microseconds spent queued before its batch started.
    pub queue_us: u64,
    /// Microseconds its batch spent in inference.
    pub infer_us: u64,
    /// Whether the degradation ladder forced this request onto the
    /// anytime early-exit path (the request asked for — or defaulted
    /// to — a full-window answer, but its deadline slack had shrunk
    /// below the full-window estimate). A degraded response is
    /// bit-identical to the same request explicitly sent with
    /// `early_exit: true`.
    pub degraded: bool,
    /// Observability breakdown; present only when the request asked via
    /// `timing: true`. Omitted (`null`) otherwise.
    pub timing: Option<Timing>,
}

/// One entry of `GET /v1/models`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelInfo {
    /// Registry name (scenario name).
    pub name: String,
    /// Serving version (1-based, bumped by every promoted load).
    pub version: u64,
    /// Input channels.
    pub channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Number of classes.
    pub classes: usize,
    /// Per-layer TTFS time window `T`.
    pub time_window: usize,
    /// Weighted (neuron-bearing) layer count.
    pub weighted_layers: usize,
    /// Deterministic full-window pipeline latency in steps.
    pub latency_steps: usize,
    /// Source-DNN test accuracy of the cached scenario network.
    pub dnn_accuracy: f32,
}

/// `GET /healthz` readiness report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthReport {
    /// `"ok"` (every model ready), `"degraded"` (some models
    /// unavailable but at least one ready) or `"unavailable"` (draining,
    /// or no model can serve); the latter is sent with status `503`.
    pub status: String,
    /// Whether the server is draining for shutdown.
    pub draining: bool,
    /// Jobs currently in the admission queue.
    pub queue_depth: usize,
    /// Admission-queue capacity (depth / capacity = saturation).
    pub queue_capacity: usize,
    /// Per-model availability.
    pub models: Vec<ModelHealth>,
}

/// One model's slot in the `GET /healthz` report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelHealth {
    /// Registry name.
    pub name: String,
    /// Whether the model is loaded and serving; `false` means requests
    /// naming it are answered `503`.
    pub available: bool,
    /// Lifecycle state: `ready`, `loading`, `failed`, `unloaded` or
    /// `quarantined`.
    pub state: String,
    /// Serving (or, while quarantined, fenced) version; 0 when no
    /// version exists.
    pub version: u64,
    /// Load/convert/canary/quarantine message for an unavailable model.
    pub error: Option<String>,
}

/// `POST /admin/models/<name>/{load,unload,reload}` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LifecycleAck {
    /// Model the action targeted.
    pub model: String,
    /// The action taken (`load`, `unload` or `reload`).
    pub action: String,
    /// Slot state right after the action was accepted (`loading` for
    /// the asynchronous load path — poll `/healthz` for promotion).
    pub state: String,
}

/// Any non-2xx response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Human-readable cause.
    pub error: String,
}

impl ErrorResponse {
    /// Serialized error body.
    pub fn json(error: impl Into<String>) -> Vec<u8> {
        serde_json::to_vec(&ErrorResponse {
            error: error.into(),
        })
        .unwrap_or_else(|_| b"{\"error\":\"unknown\"}".to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optional_fields_default_when_missing() {
        let req: InferRequest = serde_json::from_str(r#"{"image": [0.5, 1.0]}"#).unwrap();
        assert_eq!(req.model, None);
        assert_eq!(req.early_exit, None);
        assert_eq!(req.deadline_ms, None);
        assert_eq!(req.timing, None);
        assert_eq!(req.image, vec![0.5, 1.0]);
    }

    #[test]
    fn deadline_field_parses() {
        let req: InferRequest =
            serde_json::from_str(r#"{"image": [0.5], "deadline_ms": 25}"#).unwrap();
        assert_eq!(req.deadline_ms, Some(25));
    }

    #[test]
    fn responses_round_trip() {
        let resp = InferResponse {
            model: "tiny".into(),
            version: 2,
            label: 3,
            decision_step: Some(41),
            steps: 41,
            top_potential: 0.75,
            input_spikes: 100,
            hidden_spikes: 40,
            synop_adds: 12345,
            synop_mults: 140,
            energy_truenorth: 80.6,
            batch_size: 4,
            queue_us: 1500,
            infer_us: 900,
            degraded: true,
            timing: None,
        };
        let bytes = serde_json::to_vec(&resp).unwrap();
        let back: InferResponse = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back.label, 3);
        assert_eq!(back.version, 2);
        assert_eq!(back.decision_step, Some(41));
        assert_eq!(back.batch_size, 4);
        assert!(back.degraded);
        assert!(back.timing.is_none());
    }

    /// The timing breakdown is additive: old clients that don't know
    /// the field must still parse responses carrying it, and a
    /// request-side `timing: true` must round-trip.
    #[test]
    fn timing_breakdown_round_trips() {
        let req: InferRequest =
            serde_json::from_str(r#"{"image": [0.5], "timing": true}"#).unwrap();
        assert_eq!(req.timing, Some(true));
        let timing = Timing {
            trace: 42,
            batch_trace: 43,
            queue_us: 120,
            infer_us: 800,
            total_us: 950,
        };
        let bytes = serde_json::to_vec(&timing).unwrap();
        let back: Timing = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back.trace, 42);
        assert_eq!(back.batch_trace, 43);
        assert_eq!(back.total_us, 950);
    }

    #[test]
    fn lifecycle_ack_round_trips() {
        let ack = LifecycleAck {
            model: "mnist-like".into(),
            action: "reload".into(),
            state: "loading".into(),
        };
        let bytes = serde_json::to_vec(&ack).unwrap();
        let back: LifecycleAck = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back.model, "mnist-like");
        assert_eq!(back.state, "loading");
    }

    #[test]
    fn health_report_round_trips() {
        let report = HealthReport {
            status: "degraded".into(),
            draining: false,
            queue_depth: 3,
            queue_capacity: 128,
            models: vec![
                ModelHealth {
                    name: "tiny".into(),
                    available: true,
                    state: "ready".into(),
                    version: 1,
                    error: None,
                },
                ModelHealth {
                    name: "mnist-like".into(),
                    available: false,
                    state: "failed".into(),
                    version: 0,
                    error: Some("conversion failed".into()),
                },
            ],
        };
        let bytes = serde_json::to_vec(&report).unwrap();
        let back: HealthReport = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back.status, "degraded");
        assert_eq!(back.models.len(), 2);
        assert!(!back.models[1].available);
    }
}
