//! The JSON wire protocol. Kept dependency-free on purpose: clients
//! (e.g. the bench crate's `serve_load` generator) speak it with their
//! own struct mirrors, so the shapes here are the contract.

use serde::{Deserialize, Serialize};

/// `POST /v1/infer` request body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InferRequest {
    /// Registry model to run; the server's default model when omitted.
    pub model: Option<String>,
    /// Flat `[C·H·W]` image, channel-major, unit-range pixels.
    pub image: Vec<f32>,
    /// Per-request early-exit override; the server default when omitted.
    pub early_exit: Option<bool>,
}

/// `POST /v1/infer` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InferResponse {
    /// Model that served the request.
    pub model: String,
    /// Predicted class.
    pub label: usize,
    /// Global step (1-based) of the first output spike when the
    /// early-exit fire phase decided the request; `null` otherwise.
    pub decision_step: Option<usize>,
    /// Steps the request was simulated for (its anytime latency).
    pub steps: usize,
    /// Winning output neuron's membrane potential (decision margin).
    pub top_potential: f32,
    /// Input-encoding spikes of this request.
    pub input_spikes: u64,
    /// Hidden-layer spikes of this request.
    pub hidden_spikes: u64,
    /// Synaptic accumulates charged to this request.
    pub synop_adds: u64,
    /// Kernel multiplies charged to this request.
    pub synop_mults: u64,
    /// TrueNorth-weighted energy estimate in the paper's relative
    /// units: `E_dyn·spikes + E_sta·steps`.
    pub energy_truenorth: f64,
    /// Size of the micro-batch this request executed in.
    pub batch_size: usize,
    /// Microseconds spent queued before its batch started.
    pub queue_us: u64,
    /// Microseconds its batch spent in inference.
    pub infer_us: u64,
}

/// One entry of `GET /v1/models`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelInfo {
    /// Registry name (scenario name).
    pub name: String,
    /// Input channels.
    pub channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Number of classes.
    pub classes: usize,
    /// Per-layer TTFS time window `T`.
    pub time_window: usize,
    /// Weighted (neuron-bearing) layer count.
    pub weighted_layers: usize,
    /// Deterministic full-window pipeline latency in steps.
    pub latency_steps: usize,
    /// Source-DNN test accuracy of the cached scenario network.
    pub dnn_accuracy: f32,
}

/// Any non-2xx response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Human-readable cause.
    pub error: String,
}

impl ErrorResponse {
    /// Serialized error body.
    pub fn json(error: impl Into<String>) -> Vec<u8> {
        serde_json::to_vec(&ErrorResponse {
            error: error.into(),
        })
        .unwrap_or_else(|_| b"{\"error\":\"unknown\"}".to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optional_fields_default_when_missing() {
        let req: InferRequest = serde_json::from_str(r#"{"image": [0.5, 1.0]}"#).unwrap();
        assert_eq!(req.model, None);
        assert_eq!(req.early_exit, None);
        assert_eq!(req.image, vec![0.5, 1.0]);
    }

    #[test]
    fn responses_round_trip() {
        let resp = InferResponse {
            model: "tiny".into(),
            label: 3,
            decision_step: Some(41),
            steps: 41,
            top_potential: 0.75,
            input_spikes: 100,
            hidden_spikes: 40,
            synop_adds: 12345,
            synop_mults: 140,
            energy_truenorth: 80.6,
            batch_size: 4,
            queue_us: 1500,
            infer_us: 900,
        };
        let bytes = serde_json::to_vec(&resp).unwrap();
        let back: InferResponse = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back.label, 3);
        assert_eq!(back.decision_step, Some(41));
        assert_eq!(back.batch_size, 4);
    }
}
