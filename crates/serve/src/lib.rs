//! # t2fsnn-serve
//!
//! A batched online-inference server for T2FSNN models, std-only (the
//! workspace is offline): HTTP/1.1 is hand-rolled over
//! [`std::net::TcpListener`] in the same spirit as the serde/JSON shims.
//!
//! The request path:
//!
//! 1. **Admission** — connection workers parse requests (bounded read
//!    with a timeout and size caps, so a slow or malformed client cannot
//!    wedge a worker) and push inference jobs into a bounded
//!    [`queue::Queue`]; overflow is answered `429` immediately
//!    (backpressure, not buffering).
//! 2. **Micro-batching** — a single batcher thread coalesces queued jobs
//!    with the same `(model, early_exit)` key, flushing on `max_batch`
//!    or `max_delay_us` after the first job, whichever comes first.
//! 3. **Execution** — batches run through [`t2fsnn::T2fsnn::infer`] on
//!    the scoped thread pool. Inference is **batch-invariant**: a
//!    request's bits are identical whether it ran solo, in any batch, or
//!    at any worker count, so batching is purely a throughput knob.
//! 4. **Anytime early-exit** — TTFS-native: the first output spike *is*
//!    the decision, so a request can report its label and decision
//!    timestep (and stop spending spikes/synops) before the time window
//!    closes. Per-request override via the `early_exit` field.
//!
//! `/metrics` exposes queue depth, the batch-size histogram,
//! latency quantiles, per-model per-stage latency histograms, response
//! counters and — when `T2FSNN_PROFILE` is set — the per-phase profiler
//! table.
//!
//! Observability is end-to-end and strictly read-only: every request
//! gets a trace id, its admission → queue wait → batch formation →
//! engine execution → respond phases land as spans in the
//! [`t2fsnn_tensor::trace`] flight recorder (`GET /debug/trace` exports
//! Chrome trace JSON), slow requests are captured as exemplars
//! (`GET /debug/slow`, see [`obs`]), responses carry an opt-in `timing`
//! breakdown, and lifecycle prints go through the structured JSON
//! logger ([`t2fsnn_tensor::log`], `T2FSNN_LOG`). Responses are
//! bit-identical with tracing on or off.
//!
//! Robustness is first-class (see [`batcher`] for the degradation
//! ladder, [`faults`] for the deterministic fault-injection layer, and
//! `/healthz` for readiness): requests may carry deadlines, overload
//! degrades to the TTFS anytime path before it sheds, batch panics are
//! isolated to their own requests, and a model that fails to load
//! answers `503` instead of killing the process.
//!
//! The registry is a *mutable* runtime component (see [`registry`] and
//! [`lifecycle`]): `POST /admin/models/<name>/{load,unload,reload}`
//! load, retire and hot-swap model versions under traffic. Promotion is
//! canary-gated (a seeded golden-input battery, checked bit-exact
//! against the recorded response digest) and atomic (an `Arc` slot
//! swap; in-flight requests finish on the version they were admitted
//! against), and a model that goes bad at runtime is quarantined by a
//! per-model circuit breaker with deterministic seeded-backoff canary
//! probes — `503` for that model only, everything else keeps serving.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batcher;
pub mod faults;
pub mod http;
pub mod lifecycle;
pub mod metrics;
pub mod obs;
pub mod protocol;
pub mod queue;
pub mod registry;
pub mod server;

use std::time::Duration;

pub use registry::{Registry, ServeModel};
pub use server::{start, ServerHandle};

/// Server configuration; every knob has an environment-variable twin
/// read by [`ServeConfig::from_env`] (documented per field).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`T2FSNN_SERVE_ADDR`, default `127.0.0.1:7878`;
    /// use port `0` to let the OS pick).
    pub addr: String,
    /// Scenario names to load into the registry at startup
    /// (`T2FSNN_SERVE_MODELS`, comma-separated, default `tiny`). The
    /// first entry is the default model for requests that name none.
    pub models: Vec<String>,
    /// Maximum images per micro-batch (`T2FSNN_SERVE_MAX_BATCH`,
    /// default 8).
    pub max_batch: usize,
    /// How long the batcher may hold the first job of a batch while
    /// waiting for company, in microseconds
    /// (`T2FSNN_SERVE_MAX_DELAY_US`, default 2000).
    pub max_delay_us: u64,
    /// Bounded admission-queue capacity; a full queue answers `429`
    /// (`T2FSNN_SERVE_QUEUE`, default 128).
    pub queue_capacity: usize,
    /// Connection worker threads — the keep-alive concurrency limit
    /// (`T2FSNN_SERVE_WORKERS`, default 8).
    pub workers: usize,
    /// Default for requests that do not set `early_exit`
    /// (`T2FSNN_SERVE_EARLY_EXIT`, default on; `0` disables).
    pub early_exit: bool,
    /// Per-read socket timeout; a half-written request is answered
    /// `408` when it expires (`T2FSNN_SERVE_READ_TIMEOUT_MS`,
    /// default 2000).
    pub read_timeout: Duration,
    /// Request body cap in bytes; larger bodies are answered `413`
    /// (`T2FSNN_SERVE_MAX_BODY`, default 4 MiB).
    pub max_body_bytes: usize,
    /// Default deadline in milliseconds applied to requests that carry
    /// none (`T2FSNN_SERVE_DEADLINE_MS`, default 0 = no deadline).
    /// Requests override it with a `deadline_ms` JSON field or an
    /// `x-deadline-ms` header.
    pub default_deadline_ms: u64,
    /// Static slack threshold (µs) below which a full-window request is
    /// degraded to forced early-exit (`T2FSNN_SERVE_FORCE_EE_SLACK_US`,
    /// default 0 = adaptive: per-model full-window EWMA + `max_delay`).
    pub force_ee_slack_us: u64,
    /// Perturbation spec applied to every model at load time
    /// (`T2FSNN_SERVE_PERTURB`, default unset = clean). The grammar is
    /// [`t2fsnn_tensor::perturb::PerturbSpec::parse`]; event families
    /// (`jitter`, `drop`) become the model's noise config and weight
    /// families (`wgauss`, `wstuck`, `wbitflip`) rewrite the loaded
    /// weights deterministically. Robustness harness knob — a malformed
    /// spec fails startup loudly rather than silently serving clean.
    pub perturb: Option<String>,
    /// Per-model admission quota: the maximum queued jobs any single
    /// model may hold; overflow answers `429` with a per-model counter
    /// (`T2FSNN_SERVE_MODEL_QUOTA`, default 0 = off).
    pub model_quota: usize,
    /// Consecutive batch-execution failures that trip a model's
    /// quarantine (`T2FSNN_SERVE_QUARANTINE_THRESHOLD`, default 3).
    pub quarantine_threshold: u32,
    /// Base quarantine probe backoff in milliseconds; doubles per failed
    /// probe with deterministic seeded jitter
    /// (`T2FSNN_SERVE_QUARANTINE_BACKOFF_MS`, default 250).
    pub quarantine_backoff_ms: u64,
    /// Whether the server turns the span flight recorder on at startup
    /// so `/debug/trace` and slow-request exemplars always have data
    /// (`T2FSNN_SERVE_TRACE`, default on; `0` disables). Tracing is
    /// read-only — responses are bit-identical either way.
    pub trace: bool,
    /// Slow-request exemplar threshold in microseconds: a request whose
    /// end-to-end latency reaches it is captured in the bounded
    /// `/debug/slow` ring (`T2FSNN_SERVE_SLOW_US`, default 50 000;
    /// 0 disables capture).
    pub slow_us: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            models: vec!["tiny".to_string()],
            max_batch: 8,
            max_delay_us: 2000,
            queue_capacity: 128,
            workers: 8,
            early_exit: true,
            read_timeout: Duration::from_millis(2000),
            max_body_bytes: 4 << 20,
            default_deadline_ms: 0,
            force_ee_slack_us: 0,
            perturb: None,
            model_quota: 0,
            quarantine_threshold: 3,
            quarantine_backoff_ms: 250,
            trace: true,
            slow_us: 50_000,
        }
    }
}

impl ServeConfig {
    /// Builds a config from the environment (see the field docs for the
    /// variable names); unset or unparsable variables keep defaults.
    pub fn from_env() -> Self {
        let mut config = ServeConfig::default();
        if let Ok(v) = std::env::var("T2FSNN_SERVE_ADDR") {
            if !v.trim().is_empty() {
                config.addr = v.trim().to_string();
            }
        }
        if let Ok(v) = std::env::var("T2FSNN_SERVE_MODELS") {
            let names: Vec<String> = v
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
            if !names.is_empty() {
                config.models = names;
            }
        }
        if let Some(v) = env_parse::<usize>("T2FSNN_SERVE_MAX_BATCH") {
            config.max_batch = v.max(1);
        }
        if let Some(v) = env_parse::<u64>("T2FSNN_SERVE_MAX_DELAY_US") {
            config.max_delay_us = v;
        }
        if let Some(v) = env_parse::<usize>("T2FSNN_SERVE_QUEUE") {
            config.queue_capacity = v.max(1);
        }
        if let Some(v) = env_parse::<usize>("T2FSNN_SERVE_WORKERS") {
            config.workers = v.max(1);
        }
        if let Ok(v) = std::env::var("T2FSNN_SERVE_EARLY_EXIT") {
            config.early_exit = v.trim() != "0";
        }
        if let Some(v) = env_parse::<u64>("T2FSNN_SERVE_READ_TIMEOUT_MS") {
            config.read_timeout = Duration::from_millis(v.max(1));
        }
        if let Some(v) = env_parse::<usize>("T2FSNN_SERVE_MAX_BODY") {
            config.max_body_bytes = v.max(1024);
        }
        if let Some(v) = env_parse::<u64>("T2FSNN_SERVE_DEADLINE_MS") {
            config.default_deadline_ms = v;
        }
        if let Some(v) = env_parse::<u64>("T2FSNN_SERVE_FORCE_EE_SLACK_US") {
            config.force_ee_slack_us = v;
        }
        if let Ok(v) = std::env::var("T2FSNN_SERVE_PERTURB") {
            if !v.trim().is_empty() {
                config.perturb = Some(v.trim().to_string());
            }
        }
        if let Some(v) = env_parse::<usize>("T2FSNN_SERVE_MODEL_QUOTA") {
            config.model_quota = v;
        }
        if let Some(v) = env_parse::<u32>("T2FSNN_SERVE_QUARANTINE_THRESHOLD") {
            config.quarantine_threshold = v.max(1);
        }
        if let Some(v) = env_parse::<u64>("T2FSNN_SERVE_QUARANTINE_BACKOFF_MS") {
            config.quarantine_backoff_ms = v.max(1);
        }
        if let Ok(v) = std::env::var("T2FSNN_SERVE_TRACE") {
            config.trace = v.trim() != "0";
        }
        if let Some(v) = env_parse::<u64>("T2FSNN_SERVE_SLOW_US") {
            config.slow_us = v;
        }
        config
    }
}

fn env_parse<T: std::str::FromStr>(key: &str) -> Option<T> {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::default();
        assert!(c.max_batch >= 1);
        assert!(c.queue_capacity >= 1);
        assert!(c.workers >= 1);
        assert_eq!(c.models, vec!["tiny".to_string()]);
    }
}
