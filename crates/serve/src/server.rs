//! The server loop: a polling accept thread, a bounded pool of
//! connection workers, and the batcher thread, tied together with a
//! shutdown flag.
//!
//! Thread layout (all joined by [`ServerHandle::join`]):
//!
//! * **accept** — non-blocking accept poll (so the shutdown flag is
//!   honored without a self-connect trick); accepted streams get their
//!   timeouts set and are pushed into a bounded connection queue. An
//!   overflowing connection queue is answered `503` right on the accept
//!   thread — bounded work, no buildup.
//! * **worker ×N** — pop connections, serve keep-alive request loops
//!   (bounded reads, see [`crate::http`]), push inference jobs and block
//!   on their reply channel.
//! * **batcher** — see [`crate::batcher`]; supervised — if the thread
//!   ever dies by panic (its batches already run under `catch_unwind`,
//!   so this is a backstop, exercised only by tests), the supervisor
//!   respawns it and counts `t2fsnn_serve_batcher_respawns_total`.
//! * **loader** — the model-lifecycle thread: executes
//!   `POST /admin/models/<name>/{load,reload}` commands (prepare →
//!   convert → canary → promote, all off the request path; the admin
//!   response is an immediate `202` and `/healthz` tracks progress) and
//!   runs the quarantine probe schedule. Exactly one loader means loads
//!   are serialized — no concurrent conversions fighting over cores —
//!   and the registry's `Loading` guard makes duplicate commands
//!   no-ops.
//!
//! Readiness: `GET /healthz` reports per-model availability and queue
//! saturation, answering `503` while draining or when no model serves —
//! a load balancer can stop routing here before clients see errors.
//!
//! Shutdown (the "ctrl channel"): `POST /admin/shutdown` — or
//! [`ServerHandle::shutdown`] from the embedding process — sets the
//! flag and closes both queues. Workers finish their current
//! connection, the batcher drains admitted jobs, accept stops; `join`
//! then returns. A `SIGTERM` falls back to the OS default (process
//! exit); the ctrl channel is the graceful path, and the load
//! generator's smoke mode exercises it.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use t2fsnn_tensor::{log, trace};

use crate::batcher::{self, BatcherConfig, InferJob, JobError};
use crate::faults::{Faults, ReadFault, ResponseFault};
use crate::http::{Conn, HttpError, Request};
use crate::lifecycle;
use crate::metrics::Metrics;
use crate::obs::{SlowExemplar, SlowLog};
use crate::protocol::{
    ErrorResponse, HealthReport, InferRequest, InferResponse, LifecycleAck, ModelInfo, Timing,
};
use crate::queue::{PushError, Queue};
use crate::registry::{
    scenario_by_name, QuarantinePolicy, Registry, Resolution, ServeModel, SlotState,
};
use crate::ServeConfig;

/// How long a connection worker waits for its batch to answer before
/// giving up with `500` (generous: covers a cold model or a deep queue).
const REPLY_TIMEOUT: Duration = Duration::from_secs(60);

/// Accept-poll interval while idle; bounds shutdown-flag latency.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// How long the loader thread waits for a lifecycle command before
/// checking the quarantine probe schedule and the shutdown flag.
const LOADER_POLL: Duration = Duration::from_millis(25);

/// One queued lifecycle command for the loader thread.
struct LoadCommand {
    name: String,
}

/// Shared server state.
struct Ctx {
    config: ServeConfig,
    registry: Registry,
    metrics: Metrics,
    jobs: Queue<InferJob>,
    lifecycle: Queue<LoadCommand>,
    shutdown: AtomicBool,
    faults: Option<Faults>,
    /// Slow-request exemplars behind `GET /debug/slow`.
    slow: SlowLog,
}

/// A running server; dropping it does **not** stop the threads — call
/// [`ServerHandle::shutdown`] and/or [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metric registry.
    pub fn metrics(&self) -> &Metrics {
        &self.ctx.metrics
    }

    /// Initiates a graceful shutdown (idempotent): stop admissions,
    /// drain admitted jobs, stop accepting.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.ctx);
    }

    /// Waits for every server thread to exit. Call after
    /// [`ServerHandle::shutdown`] (or rely on `POST /admin/shutdown`).
    pub fn join(self) {
        for thread in self.threads {
            let _ = thread.join();
        }
    }
}

fn initiate_shutdown(ctx: &Ctx) {
    // Flag before the queue closes: the loader's wait returns
    // immediately on a closed queue, and the flag is what tells it to
    // exit instead of spinning.
    ctx.shutdown.store(true, Ordering::SeqCst);
    // Stop admissions; the batcher drains what was already accepted.
    ctx.jobs.close();
    ctx.lifecycle.close();
}

/// Binds and starts the server threads. Fault injection is read from
/// `T2FSNN_SERVE_FAULTS` (see [`crate::faults`]); unset means off.
///
/// # Errors
///
/// Returns the bind error, or `InvalidInput` for a malformed fault
/// spec (a chaos run must fail loudly, not silently run fault-free).
pub fn start(config: ServeConfig, mut registry: Registry) -> std::io::Result<ServerHandle> {
    let faults =
        Faults::from_env().map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
    // The flight recorder is on by default while serving so
    // `/debug/trace` and the slow-request exemplars always have data;
    // `T2FSNN_SERVE_TRACE=0` opts out. Tracing is read-only — the
    // bit-identity property tests pin that responses cannot change.
    trace::set_enabled(config.trace);
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    registry.set_quarantine_policy(QuarantinePolicy {
        threshold: config.quarantine_threshold.max(1),
        backoff: Duration::from_millis(config.quarantine_backoff_ms.max(1)),
        ..QuarantinePolicy::default()
    });
    let metrics = Metrics::new(config.max_batch);
    metrics.set_perturbation(
        registry.perturbed_models(),
        registry.perturbed_weight_rows(),
    );
    let jobs = Queue::new(config.queue_capacity);
    let workers = config.workers;
    let batcher_config = BatcherConfig {
        max_batch: config.max_batch,
        max_delay: Duration::from_micros(config.max_delay_us),
        force_ee_slack_us: config.force_ee_slack_us,
    };
    let ctx = Arc::new(Ctx {
        config,
        registry,
        metrics,
        jobs,
        // Lifecycle commands are rare operator actions; a short queue
        // refuses floods with `429` instead of buffering them.
        lifecycle: Queue::new(16),
        shutdown: AtomicBool::new(false),
        faults,
        slow: SlowLog::default(),
    });
    // Connections queue: accepted streams waiting for a worker. Sized
    // past the worker count so short bursts park instead of bouncing.
    let conns: Arc<Queue<TcpStream>> = Arc::new(Queue::new(workers * 2));

    let mut threads = Vec::with_capacity(workers + 2);
    {
        let ctx = Arc::clone(&ctx);
        let conns = Arc::clone(&conns);
        threads.push(
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&listener, &ctx, &conns))
                .expect("spawn accept thread"),
        );
    }
    for i in 0..workers {
        let ctx = Arc::clone(&ctx);
        let conns = Arc::clone(&conns);
        threads.push(
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&ctx, &conns))
                .expect("spawn worker thread"),
        );
    }
    {
        let ctx = Arc::clone(&ctx);
        threads.push(
            std::thread::Builder::new()
                .name("serve-batcher-supervisor".into())
                .spawn(move || supervise_batcher(&ctx, &batcher_config))
                .expect("spawn batcher supervisor thread"),
        );
    }
    {
        let ctx = Arc::clone(&ctx);
        threads.push(
            std::thread::Builder::new()
                .name("serve-loader".into())
                .spawn(move || loader_loop(&ctx))
                .expect("spawn loader thread"),
        );
    }
    Ok(ServerHandle { addr, ctx, threads })
}

/// The loader thread: serialized lifecycle loads and the quarantine
/// probe schedule, all off the request path.
fn loader_loop(ctx: &Arc<Ctx>) {
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let commands = ctx
            .lifecycle
            .collect_matching(Instant::now() + LOADER_POLL, 1, |_| true);
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
        for command in commands {
            perform_load(ctx, &command.name);
        }
        let now = Instant::now();
        while let Some((name, fenced, digest)) = ctx.registry.due_probe(now) {
            run_probe(ctx, &name, &fenced, digest);
        }
    }
}

/// One lifecycle load, end to end: ticket → convert (cache or train) →
/// canary → promote, with rollback on any failure. Runs on the loader
/// thread only; the registry lock is held just for the O(1) ticket and
/// swap operations.
fn perform_load(ctx: &Ctx, name: &str) {
    let ticket = match ctx.registry.begin_load(name) {
        Ok(ticket) => ticket,
        Err(e) => {
            log::warn(
                "load_skipped",
                &[("model", name.into()), ("reason", (&e).into())],
            );
            return;
        }
    };
    let spec = ctx.registry.perturb_spec();
    match Registry::convert_model(name, spec.as_ref(), ticket.version) {
        Err(error) => {
            log::error(
                "model_load_failed",
                &[("model", name.into()), ("error", (&error).into())],
            );
            ctx.registry.reject_load(name, error);
        }
        Ok(model) => {
            // The canary_fail burst poisons *runtime* re-promotions
            // only: a boot-shaped first load has no incumbent to
            // protect, so it does not consume burst hits.
            let injected =
                ticket.replaces_incumbent && ctx.faults.as_ref().is_some_and(Faults::canary_fault);
            let verdict = if injected {
                ctx.metrics.observe_fault_injected();
                Err("injected canary failure (fault spec)".to_string())
            } else {
                lifecycle::canary(&model, ticket.expected_digest)
            };
            match verdict {
                Ok(digest) => {
                    let version = model.version;
                    match ctx.registry.promote(name, model, digest) {
                        Ok(_) => {
                            ctx.metrics.observe_model_load();
                            let digest_hex = format!("{digest:#010x}");
                            log::info(
                                "model_promoted",
                                &[
                                    ("model", name.into()),
                                    ("version", version.into()),
                                    ("canary_digest", (&digest_hex).into()),
                                ],
                            );
                        }
                        Err(e) => log::warn(
                            "model_discarded",
                            &[
                                ("model", name.into()),
                                ("version", version.into()),
                                ("reason", (&e).into()),
                            ],
                        ),
                    }
                }
                Err(e) => {
                    ctx.metrics.observe_canary_rejection();
                    log::warn(
                        "canary_rejected",
                        &[
                            ("model", name.into()),
                            ("version", ticket.version.into()),
                            ("reason", (&e).into()),
                        ],
                    );
                    ctx.registry
                        .reject_load(name, format!("canary rejected: {e}"));
                }
            }
        }
    }
    // Lifecycle ops change which perturbed models serve.
    ctx.metrics.set_perturbation(
        ctx.registry.perturbed_models(),
        ctx.registry.perturbed_weight_rows(),
    );
}

/// One quarantine probe: a canary re-run on the fenced version — never
/// live traffic. A pass re-admits the exact fenced `Arc` (bits and
/// version unchanged); a failure escalates the deterministic backoff.
fn run_probe(ctx: &Ctx, name: &str, fenced: &Arc<ServeModel>, digest: Option<u32>) {
    ctx.metrics.observe_quarantine_probe();
    let injected = ctx.faults.as_ref().is_some_and(Faults::canary_fault);
    let verdict = if injected {
        ctx.metrics.observe_fault_injected();
        Err("injected canary failure (fault spec)".to_string())
    } else {
        lifecycle::canary(fenced, digest).map(|_| ())
    };
    match verdict {
        Ok(()) => {
            if let Some(version) = ctx.registry.readmit(name) {
                ctx.metrics.observe_quarantine_readmission();
                log::info(
                    "quarantine_readmitted",
                    &[("model", name.into()), ("version", version.into())],
                );
            }
        }
        Err(e) => {
            let probe = lifecycle::describe_probe(fenced);
            log::warn(
                "quarantine_probe_failed",
                &[("probe", (&probe).into()), ("reason", (&e).into())],
            );
            ctx.registry.probe_failed(name, Instant::now(), e);
        }
    }
}

/// Runs the batcher, respawning it if it ever dies by panic. Batch
/// panics are already caught inside [`batcher::run`]; this is the
/// respawn-on-death backstop for anything that escapes.
fn supervise_batcher(ctx: &Arc<Ctx>, config: &BatcherConfig) {
    loop {
        let child_ctx = Arc::clone(ctx);
        let child_config = BatcherConfig { ..*config };
        let handle = std::thread::Builder::new()
            .name("serve-batcher".into())
            .spawn(move || {
                let breaker = lifecycle::Breaker {
                    registry: &child_ctx.registry,
                    jobs: &child_ctx.jobs,
                    metrics: &child_ctx.metrics,
                };
                batcher::run(
                    &child_ctx.jobs,
                    &child_ctx.metrics,
                    &child_config,
                    child_ctx.faults.as_ref(),
                    Some(&breaker),
                )
            })
            .expect("spawn batcher thread");
        match handle.join() {
            // Clean exit: the queue closed and drained (shutdown).
            Ok(()) => break,
            Err(_) => {
                ctx.metrics.observe_batcher_respawn();
                log::error("batcher_respawned", &[]);
            }
        }
    }
}

fn accept_loop(listener: &TcpListener, ctx: &Ctx, conns: &Queue<TcpStream>) {
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_read_timeout(Some(ctx.config.read_timeout));
                let _ = stream.set_write_timeout(Some(ctx.config.read_timeout));
                let _ = stream.set_nodelay(true);
                if let Err(PushError::Full(stream) | PushError::Closed(stream)) = conns.push(stream)
                {
                    // All workers busy and the parking lot is full:
                    // bounded refusal instead of unbounded buildup.
                    ctx.metrics.observe_response(503);
                    let mut conn = Conn::new(stream);
                    let _ = conn.write_response(
                        503,
                        "application/json",
                        &ErrorResponse::json("server overloaded"),
                        false,
                    );
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // No more connections will arrive; workers drain and exit.
    conns.close();
}

fn worker_loop(ctx: &Ctx, conns: &Queue<TcpStream>) {
    while let Some(stream) = conns.pop_blocking() {
        handle_connection(ctx, Conn::new(stream));
    }
}

/// Serves one connection's keep-alive loop.
fn handle_connection(ctx: &Ctx, mut conn: Conn) {
    loop {
        if let Some(faults) = &ctx.faults {
            match faults.read_fault() {
                Some(ReadFault::Delay(delay)) => {
                    ctx.metrics.observe_fault_injected();
                    std::thread::sleep(delay);
                }
                Some(ReadFault::Abort) => {
                    // Drop the connection cold: the client sees a
                    // closed socket where an answer should have been.
                    ctx.metrics.observe_fault_injected();
                    break;
                }
                None => {}
            }
        }
        match conn.read_request(ctx.config.max_body_bytes) {
            Ok(request) => {
                let keep_alive = request.keep_alive() && !ctx.shutdown.load(Ordering::SeqCst);
                let (status, body) = route(ctx, &request);
                ctx.metrics.observe_response(status);
                if let Some(faults) = &ctx.faults {
                    if let Some(ResponseFault::DropMid) = faults.response_fault() {
                        // Half the body, then the floor: exercises
                        // client-side detection of truncated responses.
                        ctx.metrics.observe_fault_injected();
                        let _ = conn.write_truncated_response(status, "application/json", &body);
                        break;
                    }
                }
                let keep_alive = keep_alive && !ctx.shutdown.load(Ordering::SeqCst);
                if conn
                    .write_response(status, "application/json", &body, keep_alive)
                    .is_err()
                    || !keep_alive
                {
                    break;
                }
            }
            Err(HttpError::Timeout { partial }) => {
                if partial {
                    // A half-written request: answer 408 and drop the
                    // connection — the worker is free again.
                    ctx.metrics.observe_response(408);
                    let _ = conn.write_response(
                        408,
                        "application/json",
                        &ErrorResponse::json("request incomplete after read timeout"),
                        false,
                    );
                }
                break;
            }
            Err(HttpError::TooLarge) => {
                ctx.metrics.observe_response(413);
                let _ = conn.write_response(
                    413,
                    "application/json",
                    &ErrorResponse::json("request exceeds size cap"),
                    false,
                );
                break;
            }
            Err(HttpError::Malformed(cause)) => {
                ctx.metrics.observe_response(400);
                let _ = conn.write_response(
                    400,
                    "application/json",
                    &ErrorResponse::json(format!("malformed request: {cause}")),
                    false,
                );
                break;
            }
            Err(HttpError::Closed) | Err(HttpError::Io(_)) => break,
        }
    }
}

/// Routes one request to its `(status, body)`.
fn route(ctx: &Ctx, request: &Request) -> (u16, Vec<u8>) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => healthz_route(ctx),
        ("GET", "/metrics") => {
            ctx.metrics.set_queue_depth(ctx.jobs.len());
            (200, ctx.metrics.render().into_bytes())
        }
        // Flight-recorder export: the retained spans as Chrome
        // trace-event JSON (load in Perfetto / chrome://tracing). Empty
        // when tracing is off (`T2FSNN_SERVE_TRACE=0`).
        ("GET", "/debug/trace") => (200, trace::chrome_trace_json().into_bytes()),
        // Slow-request exemplars: trace ids + stage breakdown of the
        // most recent requests over the `slow_us` threshold.
        ("GET", "/debug/slow") => (200, ctx.slow.to_json(ctx.config.slow_us)),
        ("GET", "/v1/models") => {
            let infos: Vec<ModelInfo> = ctx.registry.models().iter().map(|m| m.info()).collect();
            match serde_json::to_vec(&infos) {
                Ok(body) => (200, body),
                Err(e) => (500, ErrorResponse::json(format!("serialization: {e}"))),
            }
        }
        ("POST", "/v1/infer") => infer_route(ctx, request),
        ("POST", "/admin/shutdown") => {
            initiate_shutdown(ctx);
            (200, b"{\"status\":\"shutting down\"}".to_vec())
        }
        ("POST", path) if path.starts_with("/admin/models/") => admin_model_route(ctx, path),
        ("GET" | "POST", _) => (404, ErrorResponse::json("no such endpoint")),
        _ => (405, ErrorResponse::json("method not allowed")),
    }
}

/// `POST /admin/models/<name>/{load,unload,reload}` — the lifecycle
/// control surface. Loads are asynchronous (`202`; the loader thread
/// converts, canaries and promotes — poll `/healthz`); unloads take
/// effect immediately, evicting the model's queued jobs to `503` in
/// admission order while in-flight batches finish on their pinned
/// version.
fn admin_model_route(ctx: &Ctx, path: &str) -> (u16, Vec<u8>) {
    let rest = &path["/admin/models/".len()..];
    let Some((name, action)) = rest.rsplit_once('/') else {
        return (
            404,
            ErrorResponse::json("expected /admin/models/<name>/<load|unload|reload>"),
        );
    };
    if name.is_empty() || name.contains('/') {
        return (404, ErrorResponse::json(format!("bad model name `{name}`")));
    }
    match action {
        "load" | "reload" => {
            if scenario_by_name(name).is_none() && !ctx.registry.is_configured(name) {
                return (
                    404,
                    ErrorResponse::json(format!(
                        "unknown model `{name}` (not a scenario; see GET /v1/models)"
                    )),
                );
            }
            // A plain `load` of an already-serving model is a no-op
            // (idempotent); `reload` always converts a fresh version.
            if action == "load" {
                if let Some((SlotState::Ready, _)) = ctx.registry.lifecycle_state(name) {
                    return lifecycle_ack(name, action, "ready", 200);
                }
            }
            let command = LoadCommand {
                name: name.to_string(),
            };
            match ctx.lifecycle.push(command) {
                Ok(()) => lifecycle_ack(name, action, "loading", 202),
                Err(PushError::Full(_)) => (
                    429,
                    ErrorResponse::json("lifecycle queue full — retry with backoff"),
                ),
                Err(PushError::Closed(_)) => (503, ErrorResponse::json("server is shutting down")),
            }
        }
        "unload" => match ctx.registry.unload(name) {
            Ok(()) => {
                ctx.metrics.observe_model_unload();
                let evicted =
                    lifecycle::drain_model_jobs(&ctx.jobs, name, "was unloaded", &ctx.metrics);
                if evicted > 0 {
                    log::warn(
                        "unload_evicted_jobs",
                        &[("model", name.into()), ("evicted", evicted.into())],
                    );
                }
                log::info("model_unloaded", &[("model", name.into())]);
                lifecycle_ack(name, action, "unloaded", 200)
            }
            Err(e) => (404, ErrorResponse::json(e)),
        },
        _ => (
            404,
            ErrorResponse::json(format!(
                "unknown lifecycle action `{action}` (load, unload, reload)"
            )),
        ),
    }
}

/// Serialized [`LifecycleAck`] with its status code.
fn lifecycle_ack(model: &str, action: &str, state: &str, code: u16) -> (u16, Vec<u8>) {
    let ack = LifecycleAck {
        model: model.to_string(),
        action: action.to_string(),
        state: state.to_string(),
    };
    match serde_json::to_vec(&ack) {
        Ok(body) => (code, body),
        Err(e) => (500, ErrorResponse::json(format!("serialization: {e}"))),
    }
}

/// Readiness: `503` while draining or with no serving model, `200`
/// otherwise; the body always carries the full per-model picture.
fn healthz_route(ctx: &Ctx) -> (u16, Vec<u8>) {
    let draining = ctx.shutdown.load(Ordering::SeqCst);
    let models = ctx.registry.health();
    let any_ready = ctx.registry.any_ready();
    let status = if draining || !any_ready {
        "unavailable"
    } else if models.iter().all(|m| m.available) {
        "ok"
    } else {
        "degraded"
    };
    let report = HealthReport {
        status: status.to_string(),
        draining,
        queue_depth: ctx.jobs.len(),
        queue_capacity: ctx.config.queue_capacity,
        models,
    };
    let code = if draining || !any_ready { 503 } else { 200 };
    match serde_json::to_vec(&report) {
        Ok(body) => (code, body),
        Err(e) => (500, ErrorResponse::json(format!("serialization: {e}"))),
    }
}

/// The request's deadline budget in milliseconds: JSON field first,
/// then the `x-deadline-ms` header, then the server default (0 = none).
/// `Some(0)` is a valid budget — it is already due at admission and
/// deterministically sheds `504`.
fn deadline_budget_ms(ctx: &Ctx, request: &Request, parsed: &InferRequest) -> Option<u64> {
    parsed
        .deadline_ms
        .or_else(|| {
            request
                .header("x-deadline-ms")
                .and_then(|v| v.trim().parse().ok())
        })
        .or(if ctx.config.default_deadline_ms > 0 {
            Some(ctx.config.default_deadline_ms)
        } else {
            None
        })
}

fn infer_route(ctx: &Ctx, request: &Request) -> (u16, Vec<u8>) {
    // One trace per request: the `serve/request` root span covers
    // admission to response assembly on this worker thread; phases
    // measured elsewhere (queue wait, batch execution) are recorded
    // retroactively under it, and the batch's own trace is cross-linked
    // via the exec span's aux value.
    let trace_id = if trace::enabled() {
        trace::next_trace_id()
    } else {
        0
    };
    let _trace = trace::trace_scope(trace_id);
    let root = trace::span("serve/request");
    let parsed: InferRequest = {
        let _parse = trace::span("serve/parse");
        match serde_json::from_slice(&request.body) {
            Ok(p) => p,
            Err(e) => return (400, ErrorResponse::json(format!("bad request body: {e}"))),
        }
    };
    let model = match ctx.registry.resolve(parsed.model.as_deref()) {
        Resolution::Ready(m) => m,
        Resolution::Unavailable { name, error } => {
            ctx.metrics.observe_model_unavailable();
            return (
                503,
                ErrorResponse::json(format!("model `{name}` unavailable: {error}")),
            );
        }
        Resolution::Unknown => {
            return (
                404,
                ErrorResponse::json(format!(
                    "unknown model {:?} (see GET /v1/models)",
                    parsed.model.as_deref().unwrap_or("<default>")
                )),
            );
        }
    };
    if parsed.image.len() != model.input_len() {
        return (
            400,
            ErrorResponse::json(format!(
                "image has {} values, model `{}` expects {} (= {:?})",
                parsed.image.len(),
                model.name,
                model.input_len(),
                model.image_dims()
            )),
        );
    }
    // Per-model admission quota: one hot model may only hold a bounded
    // share of the queue, so it cannot starve the rest. The census and
    // the push are not atomic — a racing admission can overshoot by one
    // — which is fine for a fairness quota (a soft bound, not an
    // invariant).
    let quota = ctx.config.model_quota;
    if quota > 0 && ctx.jobs.count_matching(|j| j.model.name == model.name) >= quota {
        ctx.metrics.observe_model_quota_rejection(&model.name);
        return (
            429,
            ErrorResponse::json(format!(
                "model `{}` admission quota ({quota}) full — retry with backoff",
                model.name
            )),
        );
    }
    let early_exit = parsed.early_exit.unwrap_or(ctx.config.early_exit);
    let want_timing = parsed.timing.unwrap_or(false);
    let enqueued = Instant::now();
    let deadline =
        deadline_budget_ms(ctx, request, &parsed).map(|ms| enqueued + Duration::from_millis(ms));
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = InferJob {
        model: Arc::clone(&model),
        image: parsed.image,
        early_exit,
        deadline,
        enqueued,
        reply: reply_tx,
    };
    match ctx.jobs.push(job) {
        Ok(()) => {}
        Err(PushError::Full(_)) => {
            ctx.metrics.observe_queue_rejection();
            return (
                429,
                ErrorResponse::json("admission queue full — retry with backoff"),
            );
        }
        Err(PushError::Closed(_)) => {
            return (503, ErrorResponse::json("server is shutting down"));
        }
    }
    ctx.metrics.set_queue_depth(ctx.jobs.len());
    match reply_rx.recv_timeout(REPLY_TIMEOUT) {
        Ok(Ok(outcome)) => {
            let latency_us = enqueued.elapsed().as_micros() as u64;
            ctx.metrics.observe_latency_us(latency_us);
            ctx.metrics.observe_request_stages(
                &model.name,
                outcome.queue_us,
                outcome.infer_us,
                latency_us,
            );
            if trace_id != 0 {
                // Queue wait and batch execution happened off this
                // thread; reconstruct them under the request root from
                // the batcher's measurements. The exec span's aux is
                // the batch's own trace id — follow it to the shared
                // `serve/batch_exec` tree with the engine phases.
                trace::record_complete(
                    "serve/queue_wait",
                    enqueued,
                    Duration::from_micros(outcome.queue_us),
                    trace_id,
                    root.id(),
                    0,
                );
                trace::record_complete(
                    "serve/exec",
                    enqueued + Duration::from_micros(outcome.queue_us),
                    Duration::from_micros(outcome.infer_us),
                    trace_id,
                    root.id(),
                    outcome.batch_trace,
                );
            }
            if ctx.config.slow_us > 0 && latency_us >= ctx.config.slow_us {
                ctx.slow.record(SlowExemplar {
                    trace: trace_id,
                    batch_trace: outcome.batch_trace,
                    model: model.name.clone(),
                    total_us: latency_us,
                    queue_us: outcome.queue_us,
                    infer_us: outcome.infer_us,
                    batch_size: outcome.batch_size,
                    degraded: outcome.degraded,
                });
                log::debug(
                    "slow_request",
                    &[
                        ("model", (&model.name).into()),
                        ("trace", trace_id.into()),
                        ("total_us", latency_us.into()),
                        ("queue_us", outcome.queue_us.into()),
                        ("infer_us", outcome.infer_us.into()),
                        ("batch_size", outcome.batch_size.into()),
                    ],
                );
            }
            let timing = want_timing.then_some(Timing {
                trace: trace_id,
                batch_trace: outcome.batch_trace,
                queue_us: outcome.queue_us,
                infer_us: outcome.infer_us,
                total_us: latency_us,
            });
            let _respond = trace::span("serve/respond");
            let response = InferResponse {
                model: model.name.clone(),
                version: model.version,
                label: outcome.result.label,
                decision_step: outcome.result.decision_step,
                steps: outcome.result.steps,
                top_potential: outcome.result.top_potential,
                input_spikes: outcome.result.input_spikes,
                hidden_spikes: outcome.result.hidden_spikes,
                synop_adds: outcome.result.synop_adds,
                synop_mults: outcome.result.synop_mults,
                energy_truenorth: outcome.energy_truenorth(),
                batch_size: outcome.batch_size,
                queue_us: outcome.queue_us,
                infer_us: outcome.infer_us,
                degraded: outcome.degraded,
                timing,
            };
            match serde_json::to_vec(&response) {
                Ok(body) => (200, body),
                Err(e) => (500, ErrorResponse::json(format!("serialization: {e}"))),
            }
        }
        Ok(Err(JobError::Shed { waited_us })) => (
            504,
            ErrorResponse::json(format!(
                "deadline exceeded before dispatch (waited {waited_us} µs in queue)"
            )),
        ),
        Ok(Err(JobError::Late { total_us })) => (
            504,
            ErrorResponse::json(format!(
                "deadline exceeded during execution (answer ready after {total_us} µs)"
            )),
        ),
        Ok(Err(JobError::Failed(message))) => (500, ErrorResponse::json(message)),
        // The eviction itself was already counted (model_unavailable)
        // by the drain; this arm only shapes the answer.
        Ok(Err(JobError::Evicted { model, reason })) => (
            503,
            ErrorResponse::json(format!("model `{model}` {reason} while request was queued")),
        ),
        Err(_) => (500, ErrorResponse::json("inference timed out")),
    }
}
