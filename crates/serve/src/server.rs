//! The server loop: a polling accept thread, a bounded pool of
//! connection workers, and the batcher thread, tied together with a
//! shutdown flag.
//!
//! Thread layout (all joined by [`ServerHandle::join`]):
//!
//! * **accept** — non-blocking accept poll (so the shutdown flag is
//!   honored without a self-connect trick); accepted streams get their
//!   timeouts set and are pushed into a bounded connection queue. An
//!   overflowing connection queue is answered `503` right on the accept
//!   thread — bounded work, no buildup.
//! * **worker ×N** — pop connections, serve keep-alive request loops
//!   (bounded reads, see [`crate::http`]), push inference jobs and block
//!   on their reply channel.
//! * **batcher** — see [`crate::batcher`]; supervised — if the thread
//!   ever dies by panic (its batches already run under `catch_unwind`,
//!   so this is a backstop, exercised only by tests), the supervisor
//!   respawns it and counts `t2fsnn_serve_batcher_respawns_total`.
//!
//! Readiness: `GET /healthz` reports per-model availability and queue
//! saturation, answering `503` while draining or when no model serves —
//! a load balancer can stop routing here before clients see errors.
//!
//! Shutdown (the "ctrl channel"): `POST /admin/shutdown` — or
//! [`ServerHandle::shutdown`] from the embedding process — sets the
//! flag and closes both queues. Workers finish their current
//! connection, the batcher drains admitted jobs, accept stops; `join`
//! then returns. A `SIGTERM` falls back to the OS default (process
//! exit); the ctrl channel is the graceful path, and the load
//! generator's smoke mode exercises it.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use crate::batcher::{self, BatcherConfig, InferJob, JobError};
use crate::faults::{Faults, ReadFault, ResponseFault};
use crate::http::{Conn, HttpError, Request};
use crate::metrics::Metrics;
use crate::protocol::{ErrorResponse, HealthReport, InferRequest, InferResponse, ModelInfo};
use crate::queue::{PushError, Queue};
use crate::registry::{Registry, Resolution};
use crate::ServeConfig;

/// How long a connection worker waits for its batch to answer before
/// giving up with `500` (generous: covers a cold model or a deep queue).
const REPLY_TIMEOUT: Duration = Duration::from_secs(60);

/// Accept-poll interval while idle; bounds shutdown-flag latency.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Shared server state.
struct Ctx {
    config: ServeConfig,
    registry: Registry,
    metrics: Metrics,
    jobs: Queue<InferJob>,
    shutdown: AtomicBool,
    faults: Option<Faults>,
}

/// A running server; dropping it does **not** stop the threads — call
/// [`ServerHandle::shutdown`] and/or [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metric registry.
    pub fn metrics(&self) -> &Metrics {
        &self.ctx.metrics
    }

    /// Initiates a graceful shutdown (idempotent): stop admissions,
    /// drain admitted jobs, stop accepting.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.ctx);
    }

    /// Waits for every server thread to exit. Call after
    /// [`ServerHandle::shutdown`] (or rely on `POST /admin/shutdown`).
    pub fn join(self) {
        for thread in self.threads {
            let _ = thread.join();
        }
    }
}

fn initiate_shutdown(ctx: &Ctx) {
    ctx.shutdown.store(true, Ordering::SeqCst);
    // Stop admissions; the batcher drains what was already accepted.
    ctx.jobs.close();
}

/// Binds and starts the server threads. Fault injection is read from
/// `T2FSNN_SERVE_FAULTS` (see [`crate::faults`]); unset means off.
///
/// # Errors
///
/// Returns the bind error, or `InvalidInput` for a malformed fault
/// spec (a chaos run must fail loudly, not silently run fault-free).
pub fn start(config: ServeConfig, registry: Registry) -> std::io::Result<ServerHandle> {
    let faults =
        Faults::from_env().map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let metrics = Metrics::new(config.max_batch);
    metrics.set_perturbation(
        registry.perturbed_models(),
        registry.perturbed_weight_rows(),
    );
    let jobs = Queue::new(config.queue_capacity);
    let workers = config.workers;
    let batcher_config = BatcherConfig {
        max_batch: config.max_batch,
        max_delay: Duration::from_micros(config.max_delay_us),
        force_ee_slack_us: config.force_ee_slack_us,
    };
    let ctx = Arc::new(Ctx {
        config,
        registry,
        metrics,
        jobs,
        shutdown: AtomicBool::new(false),
        faults,
    });
    // Connections queue: accepted streams waiting for a worker. Sized
    // past the worker count so short bursts park instead of bouncing.
    let conns: Arc<Queue<TcpStream>> = Arc::new(Queue::new(workers * 2));

    let mut threads = Vec::with_capacity(workers + 2);
    {
        let ctx = Arc::clone(&ctx);
        let conns = Arc::clone(&conns);
        threads.push(
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&listener, &ctx, &conns))
                .expect("spawn accept thread"),
        );
    }
    for i in 0..workers {
        let ctx = Arc::clone(&ctx);
        let conns = Arc::clone(&conns);
        threads.push(
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&ctx, &conns))
                .expect("spawn worker thread"),
        );
    }
    {
        let ctx = Arc::clone(&ctx);
        threads.push(
            std::thread::Builder::new()
                .name("serve-batcher-supervisor".into())
                .spawn(move || supervise_batcher(&ctx, &batcher_config))
                .expect("spawn batcher supervisor thread"),
        );
    }
    Ok(ServerHandle { addr, ctx, threads })
}

/// Runs the batcher, respawning it if it ever dies by panic. Batch
/// panics are already caught inside [`batcher::run`]; this is the
/// respawn-on-death backstop for anything that escapes.
fn supervise_batcher(ctx: &Arc<Ctx>, config: &BatcherConfig) {
    loop {
        let child_ctx = Arc::clone(ctx);
        let child_config = BatcherConfig { ..*config };
        let handle = std::thread::Builder::new()
            .name("serve-batcher".into())
            .spawn(move || {
                batcher::run(
                    &child_ctx.jobs,
                    &child_ctx.metrics,
                    &child_config,
                    child_ctx.faults.as_ref(),
                )
            })
            .expect("spawn batcher thread");
        match handle.join() {
            // Clean exit: the queue closed and drained (shutdown).
            Ok(()) => break,
            Err(_) => {
                ctx.metrics.observe_batcher_respawn();
                eprintln!("[serve] batcher thread died; respawning");
            }
        }
    }
}

fn accept_loop(listener: &TcpListener, ctx: &Ctx, conns: &Queue<TcpStream>) {
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_read_timeout(Some(ctx.config.read_timeout));
                let _ = stream.set_write_timeout(Some(ctx.config.read_timeout));
                let _ = stream.set_nodelay(true);
                if let Err(PushError::Full(stream) | PushError::Closed(stream)) = conns.push(stream)
                {
                    // All workers busy and the parking lot is full:
                    // bounded refusal instead of unbounded buildup.
                    ctx.metrics.observe_response(503);
                    let mut conn = Conn::new(stream);
                    let _ = conn.write_response(
                        503,
                        "application/json",
                        &ErrorResponse::json("server overloaded"),
                        false,
                    );
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // No more connections will arrive; workers drain and exit.
    conns.close();
}

fn worker_loop(ctx: &Ctx, conns: &Queue<TcpStream>) {
    while let Some(stream) = conns.pop_blocking() {
        handle_connection(ctx, Conn::new(stream));
    }
}

/// Serves one connection's keep-alive loop.
fn handle_connection(ctx: &Ctx, mut conn: Conn) {
    loop {
        if let Some(faults) = &ctx.faults {
            match faults.read_fault() {
                Some(ReadFault::Delay(delay)) => {
                    ctx.metrics.observe_fault_injected();
                    std::thread::sleep(delay);
                }
                Some(ReadFault::Abort) => {
                    // Drop the connection cold: the client sees a
                    // closed socket where an answer should have been.
                    ctx.metrics.observe_fault_injected();
                    break;
                }
                None => {}
            }
        }
        match conn.read_request(ctx.config.max_body_bytes) {
            Ok(request) => {
                let keep_alive = request.keep_alive() && !ctx.shutdown.load(Ordering::SeqCst);
                let (status, body) = route(ctx, &request);
                ctx.metrics.observe_response(status);
                if let Some(faults) = &ctx.faults {
                    if let Some(ResponseFault::DropMid) = faults.response_fault() {
                        // Half the body, then the floor: exercises
                        // client-side detection of truncated responses.
                        ctx.metrics.observe_fault_injected();
                        let _ = conn.write_truncated_response(status, "application/json", &body);
                        break;
                    }
                }
                let keep_alive = keep_alive && !ctx.shutdown.load(Ordering::SeqCst);
                if conn
                    .write_response(status, "application/json", &body, keep_alive)
                    .is_err()
                    || !keep_alive
                {
                    break;
                }
            }
            Err(HttpError::Timeout { partial }) => {
                if partial {
                    // A half-written request: answer 408 and drop the
                    // connection — the worker is free again.
                    ctx.metrics.observe_response(408);
                    let _ = conn.write_response(
                        408,
                        "application/json",
                        &ErrorResponse::json("request incomplete after read timeout"),
                        false,
                    );
                }
                break;
            }
            Err(HttpError::TooLarge) => {
                ctx.metrics.observe_response(413);
                let _ = conn.write_response(
                    413,
                    "application/json",
                    &ErrorResponse::json("request exceeds size cap"),
                    false,
                );
                break;
            }
            Err(HttpError::Malformed(cause)) => {
                ctx.metrics.observe_response(400);
                let _ = conn.write_response(
                    400,
                    "application/json",
                    &ErrorResponse::json(format!("malformed request: {cause}")),
                    false,
                );
                break;
            }
            Err(HttpError::Closed) | Err(HttpError::Io(_)) => break,
        }
    }
}

/// Routes one request to its `(status, body)`.
fn route(ctx: &Ctx, request: &Request) -> (u16, Vec<u8>) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => healthz_route(ctx),
        ("GET", "/metrics") => {
            ctx.metrics.set_queue_depth(ctx.jobs.len());
            (200, ctx.metrics.render().into_bytes())
        }
        ("GET", "/v1/models") => {
            let infos: Vec<ModelInfo> = ctx.registry.models().iter().map(|m| m.info()).collect();
            match serde_json::to_vec(&infos) {
                Ok(body) => (200, body),
                Err(e) => (500, ErrorResponse::json(format!("serialization: {e}"))),
            }
        }
        ("POST", "/v1/infer") => infer_route(ctx, request),
        ("POST", "/admin/shutdown") => {
            initiate_shutdown(ctx);
            (200, b"{\"status\":\"shutting down\"}".to_vec())
        }
        ("GET" | "POST", _) => (404, ErrorResponse::json("no such endpoint")),
        _ => (405, ErrorResponse::json("method not allowed")),
    }
}

/// Readiness: `503` while draining or with no serving model, `200`
/// otherwise; the body always carries the full per-model picture.
fn healthz_route(ctx: &Ctx) -> (u16, Vec<u8>) {
    let draining = ctx.shutdown.load(Ordering::SeqCst);
    let models = ctx.registry.health();
    let any_ready = ctx.registry.any_ready();
    let status = if draining || !any_ready {
        "unavailable"
    } else if models.iter().all(|m| m.available) {
        "ok"
    } else {
        "degraded"
    };
    let report = HealthReport {
        status: status.to_string(),
        draining,
        queue_depth: ctx.jobs.len(),
        queue_capacity: ctx.config.queue_capacity,
        models,
    };
    let code = if draining || !any_ready { 503 } else { 200 };
    match serde_json::to_vec(&report) {
        Ok(body) => (code, body),
        Err(e) => (500, ErrorResponse::json(format!("serialization: {e}"))),
    }
}

/// The request's deadline budget in milliseconds: JSON field first,
/// then the `x-deadline-ms` header, then the server default (0 = none).
/// `Some(0)` is a valid budget — it is already due at admission and
/// deterministically sheds `504`.
fn deadline_budget_ms(ctx: &Ctx, request: &Request, parsed: &InferRequest) -> Option<u64> {
    parsed
        .deadline_ms
        .or_else(|| {
            request
                .header("x-deadline-ms")
                .and_then(|v| v.trim().parse().ok())
        })
        .or(if ctx.config.default_deadline_ms > 0 {
            Some(ctx.config.default_deadline_ms)
        } else {
            None
        })
}

fn infer_route(ctx: &Ctx, request: &Request) -> (u16, Vec<u8>) {
    let parsed: InferRequest = match serde_json::from_slice(&request.body) {
        Ok(p) => p,
        Err(e) => return (400, ErrorResponse::json(format!("bad request body: {e}"))),
    };
    let model = match ctx.registry.resolve(parsed.model.as_deref()) {
        Resolution::Ready(m) => m,
        Resolution::Unavailable { name, error } => {
            ctx.metrics.observe_model_unavailable();
            return (
                503,
                ErrorResponse::json(format!("model `{name}` unavailable: {error}")),
            );
        }
        Resolution::Unknown => {
            return (
                404,
                ErrorResponse::json(format!(
                    "unknown model {:?} (see GET /v1/models)",
                    parsed.model.as_deref().unwrap_or("<default>")
                )),
            );
        }
    };
    if parsed.image.len() != model.input_len() {
        return (
            400,
            ErrorResponse::json(format!(
                "image has {} values, model `{}` expects {} (= {:?})",
                parsed.image.len(),
                model.name,
                model.input_len(),
                model.image_dims()
            )),
        );
    }
    let early_exit = parsed.early_exit.unwrap_or(ctx.config.early_exit);
    let enqueued = Instant::now();
    let deadline =
        deadline_budget_ms(ctx, request, &parsed).map(|ms| enqueued + Duration::from_millis(ms));
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = InferJob {
        model: Arc::clone(model),
        image: parsed.image,
        early_exit,
        deadline,
        enqueued,
        reply: reply_tx,
    };
    match ctx.jobs.push(job) {
        Ok(()) => {}
        Err(PushError::Full(_)) => {
            ctx.metrics.observe_queue_rejection();
            return (
                429,
                ErrorResponse::json("admission queue full — retry with backoff"),
            );
        }
        Err(PushError::Closed(_)) => {
            return (503, ErrorResponse::json("server is shutting down"));
        }
    }
    ctx.metrics.set_queue_depth(ctx.jobs.len());
    match reply_rx.recv_timeout(REPLY_TIMEOUT) {
        Ok(Ok(outcome)) => {
            let latency_us = enqueued.elapsed().as_micros() as u64;
            ctx.metrics.observe_latency_us(latency_us);
            let response = InferResponse {
                model: model.name.clone(),
                label: outcome.result.label,
                decision_step: outcome.result.decision_step,
                steps: outcome.result.steps,
                top_potential: outcome.result.top_potential,
                input_spikes: outcome.result.input_spikes,
                hidden_spikes: outcome.result.hidden_spikes,
                synop_adds: outcome.result.synop_adds,
                synop_mults: outcome.result.synop_mults,
                energy_truenorth: outcome.energy_truenorth(),
                batch_size: outcome.batch_size,
                queue_us: outcome.queue_us,
                infer_us: outcome.infer_us,
                degraded: outcome.degraded,
            };
            match serde_json::to_vec(&response) {
                Ok(body) => (200, body),
                Err(e) => (500, ErrorResponse::json(format!("serialization: {e}"))),
            }
        }
        Ok(Err(JobError::Shed { waited_us })) => (
            504,
            ErrorResponse::json(format!(
                "deadline exceeded before dispatch (waited {waited_us} µs in queue)"
            )),
        ),
        Ok(Err(JobError::Late { total_us })) => (
            504,
            ErrorResponse::json(format!(
                "deadline exceeded during execution (answer ready after {total_us} µs)"
            )),
        ),
        Ok(Err(JobError::Failed(message))) => (500, ErrorResponse::json(message)),
        Err(_) => (500, ErrorResponse::json("inference timed out")),
    }
}
