//! A bounded MPMC queue with backpressure, built on
//! [`std::sync::Mutex`] + [`std::sync::Condvar`].
//!
//! Admission control is the point: [`Queue::push`] never blocks — a full
//! queue returns the item to the caller, which answers `429`. Consumers
//! block in [`Queue::pop_blocking`] (connection workers popping accepted
//! streams, or the batcher popping the first job of a batch) and the
//! batcher additionally gathers batch company with
//! [`Queue::collect_matching`], which waits out the batching deadline.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Why a push was refused; carries the item back to the caller.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue was at capacity (backpressure → `429`).
    Full(T),
    /// The queue was closed (shutdown → `503`).
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue.
pub struct Queue<T> {
    inner: Mutex<Inner<T>>,
    cond: Condvar,
    capacity: usize,
}

impl<T> Queue<T> {
    /// A queue admitting at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        Queue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Non-blocking admission; a full or closed queue refuses and hands
    /// the item back.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`Queue::close`].
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_front(item);
        // Items live front-to-back newest-to-oldest so consumers pop
        // the oldest from the back — FIFO.
        self.cond.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (FIFO) or the queue is closed
    /// *and* drained, returning `None` only in the latter case — close
    /// is graceful: queued work is still handed out.
    pub fn pop_blocking(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = inner.items.pop_back() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.cond.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Gathers up to `max` items matching `pred` (FIFO among matches,
    /// non-matching items stay queued in order), waiting until
    /// `deadline` for more to arrive. Returns early when `max` matches
    /// are collected or the queue closes.
    pub fn collect_matching(
        &self,
        deadline: Instant,
        max: usize,
        pred: impl Fn(&T) -> bool,
    ) -> Vec<T> {
        let mut collected = Vec::new();
        if max == 0 {
            return collected;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            // Scan oldest → newest, stealing matches.
            let mut kept = VecDeque::with_capacity(inner.items.len());
            while let Some(item) = inner.items.pop_back() {
                if collected.len() < max && pred(&item) {
                    collected.push(item);
                } else {
                    kept.push_front(item);
                }
            }
            inner.items = kept;
            if collected.len() >= max || inner.closed {
                return collected;
            }
            let now = Instant::now();
            if now >= deadline {
                return collected;
            }
            let (guard, _) = self
                .cond
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Removes and returns every queued item matching `pred` (in FIFO
    /// order among matches), without waiting. Survivors keep their
    /// exact relative order — this is the shedding primitive: the
    /// batcher drains deadline-expired jobs with it and answers them
    /// `504`, and the jobs it leaves behind are dispatched in the same
    /// order they would have been without the shed.
    pub fn drain_matching(&self, pred: impl Fn(&T) -> bool) -> Vec<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut drained = Vec::new();
        let mut kept = VecDeque::with_capacity(inner.items.len());
        // Scan oldest → newest (pop from the back).
        while let Some(item) = inner.items.pop_back() {
            if pred(&item) {
                drained.push(item);
            } else {
                kept.push_front(item);
            }
        }
        inner.items = kept;
        drained
    }

    /// Counts queued items matching `pred`, without removing anything —
    /// the admission-quota primitive (a point-in-time census; callers
    /// racing a concurrent push may briefly over- or under-count by the
    /// in-flight item, which is fine for a soft quota).
    pub fn count_matching(&self, pred: impl Fn(&T) -> bool) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .iter()
            .filter(|item| pred(item))
            .count()
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: pushes fail from now on, consumers drain what
    /// is left and then see `None`.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        self.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_backpressure() {
        let q = Queue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        match q.push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_blocking(), Some(1));
        assert_eq!(q.pop_blocking(), Some(2));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Queue::new(4);
        q.push("a").unwrap();
        q.close();
        match q.push("b") {
            Err(PushError::Closed("b")) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop_blocking(), Some("a"));
        assert_eq!(q.pop_blocking(), None);
    }

    #[test]
    fn collect_matching_filters_and_preserves_the_rest() {
        let q = Queue::new(8);
        for item in [1, 2, 3, 4, 5, 6] {
            q.push(item).unwrap();
        }
        let evens = q.collect_matching(Instant::now(), 2, |x| x % 2 == 0);
        assert_eq!(evens, vec![2, 4]);
        // Others stay in FIFO order (6 was beyond max).
        assert_eq!(q.pop_blocking(), Some(1));
        assert_eq!(q.pop_blocking(), Some(3));
        assert_eq!(q.pop_blocking(), Some(5));
        assert_eq!(q.pop_blocking(), Some(6));
    }

    #[test]
    fn collect_matching_waits_for_late_arrivals() {
        let q = Arc::new(Queue::new(8));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                q.push(7).unwrap();
            })
        };
        let got = q.collect_matching(Instant::now() + Duration::from_millis(500), 1, |_| true);
        assert_eq!(got, vec![7]);
        producer.join().unwrap();
    }

    #[test]
    fn collect_matching_respects_deadline() {
        let q: Queue<i32> = Queue::new(4);
        let start = Instant::now();
        let got = q.collect_matching(start + Duration::from_millis(40), 3, |_| true);
        assert!(got.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(40));
    }

    #[test]
    fn drain_matching_takes_matches_and_keeps_survivor_order() {
        let q = Queue::new(8);
        for item in [1, 2, 3, 4, 5, 6] {
            q.push(item).unwrap();
        }
        let evens = q.drain_matching(|x| x % 2 == 0);
        assert_eq!(evens, vec![2, 4, 6]);
        assert_eq!(q.pop_blocking(), Some(1));
        assert_eq!(q.pop_blocking(), Some(3));
        assert_eq!(q.pop_blocking(), Some(5));
        assert!(q.is_empty());
        assert!(q.drain_matching(|_| true).is_empty());
    }

    #[test]
    fn count_matching_is_a_nondestructive_census() {
        let q = Queue::new(8);
        for item in [1, 2, 3, 4, 5] {
            q.push(item).unwrap();
        }
        assert_eq!(q.count_matching(|x| x % 2 == 0), 2);
        assert_eq!(q.len(), 5, "counting removes nothing");
        assert_eq!(q.pop_blocking(), Some(1), "order untouched");
    }

    #[test]
    fn blocked_pop_wakes_on_push_and_close() {
        let q = Arc::new(Queue::new(2));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || (q.pop_blocking(), q.pop_blocking()))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.push(9).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        let (first, second) = popper.join().unwrap();
        assert_eq!(first, Some(9));
        assert_eq!(second, None);
    }
}
