//! Canary battery and per-model circuit breaker — the gatekeepers of
//! the registry's lifecycle.
//!
//! **Canary** ([`canary`]): before any model version serves a byte it
//! must run a fixed seeded golden-input battery through
//! [`t2fsnn::T2fsnn::infer`] and come out bit-exact. The battery checks
//! three contracts:
//!
//! 1. **Determinism / batch invariance** — the golden batch inferred
//!    together must match each image inferred solo, bit for bit.
//! 2. **Anytime consistency** — the early-exit pass must agree with the
//!    full-window pass on every label and never spend more spikes or
//!    synops on a decided image (sound because serving conversions
//!    leave early *firing* off, so a decided TTFS early-exit answer is
//!    the full-window answer by construction).
//! 3. **Digest stability** — the battery's responses are folded into a
//!    CRC-32 digest (the same CRC discipline as the `T2FB` artifact
//!    format); a reload's candidate must reproduce the digest recorded
//!    when the incumbent was promoted, or promotion is rejected and the
//!    incumbent keeps serving.
//!
//! A panic anywhere in the battery is a rejection, not a crash
//! ([`std::panic::catch_unwind`]).
//!
//! **Breaker** ([`Breaker`]): attributes every batch execution outcome
//! to its model slot; repeated failures trip the registry's quarantine
//! ([`crate::registry::Registry::record_execution`]), which fences that
//! model off (`503` for it alone) and drains its queued jobs in
//! admission order. Re-admission is by canary probe on the loader
//! thread — never by live traffic.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use t2fsnn::{ImageInference, InferOptions};
use t2fsnn_tensor::Tensor;

use crate::batcher::{InferJob, JobError};
use crate::metrics::Metrics;
use crate::queue::Queue;
use crate::registry::{Registry, ServeModel};

/// Images in the golden batch.
const CANARY_IMAGES: usize = 3;

/// Seed of the golden-input stream; fixed so every version of a model
/// with the same input dims sees the same pixels.
const CANARY_SEED: u64 = 0x7E_57CA_4A11;

/// Runs the canary battery on a candidate model version and returns its
/// response digest.
///
/// # Errors
///
/// Returns a structured message when any battery check fails — infer
/// error, panic, batch-invariance violation, early-exit inconsistency,
/// or (when `expected` carries the incumbent's recorded digest) a
/// digest mismatch. The caller keeps the old version serving on `Err`.
pub fn canary(model: &ServeModel, expected: Option<u32>) -> Result<u32, String> {
    let outcome = catch_unwind(AssertUnwindSafe(|| canary_battery(model)));
    let digest = match outcome {
        Ok(result) => result?,
        Err(_) => return Err("canary battery panicked".to_string()),
    };
    if let Some(want) = expected {
        if digest != want {
            return Err(format!(
                "response digest mismatch: recorded {want:#010x}, candidate {digest:#010x}"
            ));
        }
    }
    Ok(digest)
}

fn canary_battery(model: &ServeModel) -> Result<u32, String> {
    let [c, h, w] = model.image_dims();
    let pixel_count = c * h * w;
    let mut rng = ChaCha8Rng::seed_from_u64(CANARY_SEED);
    let data: Vec<f32> = (0..CANARY_IMAGES * pixel_count)
        .map(|_| rng.gen_range(0.0f32..1.0))
        .collect();

    // Full-window pass, batched.
    let batch = Tensor::from_vec(vec![CANARY_IMAGES, c, h, w], data.clone())
        .map_err(|e| format!("golden batch tensor: {e}"))?;
    let full = model
        .model
        .infer(&batch, InferOptions { early_exit: false })
        .map_err(|e| format!("full-window canary infer: {e}"))?;
    if full.len() != CANARY_IMAGES {
        return Err(format!(
            "full-window canary returned {} results for {CANARY_IMAGES} images",
            full.len()
        ));
    }

    // Batch invariance: each image solo must reproduce its batch bits.
    for (i, batched) in full.iter().enumerate() {
        let image = data[i * pixel_count..(i + 1) * pixel_count].to_vec();
        let solo_batch =
            Tensor::from_vec(vec![1, c, h, w], image).map_err(|e| format!("solo tensor: {e}"))?;
        let solo = model
            .model
            .infer(&solo_batch, InferOptions { early_exit: false })
            .map_err(|e| format!("solo canary infer: {e}"))?;
        if encode(&solo[0]) != encode(batched) {
            return Err(format!("canary image {i} is not batch-invariant"));
        }
    }

    // Anytime pass: early-exit labels must equal the full-window labels
    // (decided or not — serving conversions leave early firing off, so
    // the output fire phase starts after integration completes), and a
    // decided image froze early, so it cannot have spent more spikes or
    // synops than the full run. Note an *undecided* early-exit image
    // legitimately simulates past the full window (the output fire
    // phase extends the schedule), so step counts are not comparable.
    let ee_batch = Tensor::from_vec(vec![CANARY_IMAGES, c, h, w], data)
        .map_err(|e| format!("golden batch tensor: {e}"))?;
    let anytime = model
        .model
        .infer(&ee_batch, InferOptions { early_exit: true })
        .map_err(|e| format!("early-exit canary infer: {e}"))?;
    for (i, (ee, fw)) in anytime.iter().zip(&full).enumerate() {
        if ee.label != fw.label {
            return Err(format!(
                "canary image {i}: early-exit label {} != full-window label {}",
                ee.label, fw.label
            ));
        }
        if ee.decision_step.is_some()
            && (ee.total_spikes() > fw.total_spikes() || ee.synop_adds > fw.synop_adds)
        {
            return Err(format!(
                "canary image {i}: decided early-exit outspent the full window \
                 ({} vs {} spikes, {} vs {} adds)",
                ee.total_spikes(),
                fw.total_spikes(),
                ee.synop_adds,
                fw.synop_adds
            ));
        }
    }

    // Fold both passes into the response digest.
    let mut bytes = Vec::new();
    for r in full.iter().chain(anytime.iter()) {
        bytes.extend_from_slice(&encode(r));
    }
    Ok(t2fsnn_bench::binfmt::crc32(&bytes))
}

/// Canonical byte encoding of one inference result — every
/// bit-identity-relevant field, fixed width, little-endian
/// (`top_potential` via its IEEE bits, `decision_step: None` as
/// `u64::MAX`).
fn encode(r: &ImageInference) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 * 8);
    out.extend_from_slice(&(r.label as u64).to_le_bytes());
    out.extend_from_slice(&r.decision_step.map_or(u64::MAX, |s| s as u64).to_le_bytes());
    out.extend_from_slice(&(r.steps as u64).to_le_bytes());
    out.extend_from_slice(&u64::from(r.top_potential.to_bits()).to_le_bytes());
    out.extend_from_slice(&r.input_spikes.to_le_bytes());
    out.extend_from_slice(&r.hidden_spikes.to_le_bytes());
    out.extend_from_slice(&r.synop_adds.to_le_bytes());
    out.extend_from_slice(&r.synop_mults.to_le_bytes());
    out
}

/// The batcher's hook into the circuit breaker: everything needed to
/// attribute a batch outcome and, on a trip, fence the model and drain
/// its queued jobs.
pub struct Breaker<'a> {
    /// The registry holding the per-slot failure counters.
    pub registry: &'a Registry,
    /// The admission queue, drained of the model's jobs on a trip.
    pub jobs: &'a Queue<InferJob>,
    /// Metrics sink for trip/eviction counters.
    pub metrics: &'a Metrics,
}

impl Breaker<'_> {
    /// Records one batch execution outcome for `model`'s slot. On the
    /// failure that trips the quarantine, counts the trip and evicts
    /// the model's queued jobs to `503` in admission order — jobs for
    /// other models are untouched and unreordered.
    pub fn record(&self, model: &ServeModel, ok: bool) {
        if let Some(trip) = self.registry.record_execution(&model.name, ok) {
            self.metrics.observe_quarantine_trip();
            t2fsnn_tensor::log::warn(
                "model_quarantined",
                &[
                    ("model", (&model.name).into()),
                    ("version", model.version.into()),
                    ("trip", trip.into()),
                ],
            );
            drain_model_jobs(self.jobs, &model.name, "was quarantined", self.metrics);
        }
    }
}

/// Evicts every queued job for `name` (any version) to `503` in
/// admission order, leaving the other models' jobs in their exact
/// relative order ([`Queue::drain_matching`] contract). In-flight jobs
/// already popped by a batcher finish on their pinned `Arc`. Returns
/// the eviction count.
pub fn drain_model_jobs(
    jobs: &Queue<InferJob>,
    name: &str,
    reason: &str,
    metrics: &Metrics,
) -> usize {
    let evicted = jobs.drain_matching(|job| job.model.name == name);
    let count = evicted.len();
    for job in evicted {
        metrics.observe_model_unavailable();
        let _ = job.reply.send(Err(JobError::Evicted {
            model: name.to_string(),
            reason: reason.to_string(),
        }));
    }
    count
}

/// A canary probe on a quarantined model, counted and attributed; used
/// by the loader thread's probe loop (`ok` = injected-fault-free canary
/// verdict).
pub fn describe_probe(model: &Arc<ServeModel>) -> String {
    format!("probe of `{}` v{}", model.name, model.version)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canary_digest_is_stable_and_gates_mismatches() {
        let registry = Registry::load(&["tiny".to_string()]).unwrap();
        let model = registry.get(None).unwrap();
        let a = canary(&model, None).expect("tiny passes its canary");
        let b = canary(&model, Some(a)).expect("same model, same digest");
        assert_eq!(a, b);
        let err = canary(&model, Some(a ^ 1)).expect_err("wrong digest rejected");
        assert!(err.contains("digest mismatch"), "{err}");
    }

    #[test]
    fn encode_is_injective_on_the_fields_that_matter() {
        let base = ImageInference {
            label: 1,
            decision_step: Some(3),
            steps: 40,
            top_potential: 0.5,
            input_spikes: 10,
            hidden_spikes: 20,
            synop_adds: 30,
            synop_mults: 40,
        };
        let same = encode(&base);
        assert_eq!(same, encode(&base.clone()));
        let mut other = base.clone();
        other.decision_step = None;
        assert_ne!(encode(&base), encode(&other));
        let mut flipped = base.clone();
        flipped.top_potential = -0.5;
        assert_ne!(encode(&base), encode(&flipped));
    }
}
