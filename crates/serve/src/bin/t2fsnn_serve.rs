//! The serving binary: loads the registry from the scenario cache
//! (training on a cold cache), binds, and serves until the ctrl channel
//! (`POST /admin/shutdown`) asks it to stop.
//!
//! Configuration is environment-only (see [`t2fsnn_serve::ServeConfig`]):
//! `T2FSNN_SERVE_ADDR`, `T2FSNN_SERVE_MODELS`, `T2FSNN_SERVE_MAX_BATCH`,
//! `T2FSNN_SERVE_MAX_DELAY_US`, `T2FSNN_SERVE_QUEUE`,
//! `T2FSNN_SERVE_WORKERS`, `T2FSNN_SERVE_EARLY_EXIT`,
//! `T2FSNN_SERVE_READ_TIMEOUT_MS`, `T2FSNN_SERVE_MAX_BODY` — plus the
//! engine-wide `T2FSNN_THREADS`/`T2FSNN_SIMD`/`T2FSNN_PROFILE`.

use std::io::Write;

use t2fsnn_serve::{start, Registry, ServeConfig};

fn main() {
    let config = ServeConfig::from_env();
    let registry = match Registry::load(&config.models) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("[serve] FATAL: {e}");
            std::process::exit(2);
        }
    };
    let handle = match start(config.clone(), registry) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("[serve] FATAL: cannot bind {}: {e}", config.addr);
            std::process::exit(2);
        }
    };
    // The "listening" line is the readiness signal harnesses wait for;
    // flush so a piped parent sees it immediately.
    println!("[serve] listening on {}", handle.addr());
    println!(
        "[serve] models: {}; max_batch {}, max_delay {} µs, queue {}, workers {}, early_exit {}",
        config.models.join(","),
        config.max_batch,
        config.max_delay_us,
        config.queue_capacity,
        config.workers,
        config.early_exit,
    );
    let _ = std::io::stdout().flush();
    handle.join();
    println!("[serve] shut down cleanly");
}
