//! The serving binary: loads the registry from the scenario cache
//! (training on a cold cache), binds, and serves until the ctrl channel
//! (`POST /admin/shutdown`) asks it to stop.
//!
//! Configuration is environment-only (see [`t2fsnn_serve::ServeConfig`]):
//! `T2FSNN_SERVE_ADDR`, `T2FSNN_SERVE_MODELS`, `T2FSNN_SERVE_MAX_BATCH`,
//! `T2FSNN_SERVE_MAX_DELAY_US`, `T2FSNN_SERVE_QUEUE`,
//! `T2FSNN_SERVE_WORKERS`, `T2FSNN_SERVE_EARLY_EXIT`,
//! `T2FSNN_SERVE_READ_TIMEOUT_MS`, `T2FSNN_SERVE_MAX_BODY`,
//! `T2FSNN_SERVE_DEADLINE_MS`, `T2FSNN_SERVE_FORCE_EE_SLACK_US`,
//! `T2FSNN_SERVE_FAULTS`, `T2FSNN_SERVE_PERTURB`,
//! `T2FSNN_SERVE_MODEL_QUOTA`, `T2FSNN_SERVE_QUARANTINE_THRESHOLD`,
//! `T2FSNN_SERVE_QUARANTINE_BACKOFF_MS`, `T2FSNN_SERVE_TRACE`,
//! `T2FSNN_SERVE_SLOW_US` — plus the engine-wide
//! `T2FSNN_THREADS`/`T2FSNN_SIMD`/`T2FSNN_PROFILE` and the
//! observability pair `T2FSNN_TRACE` (flight recorder, exported at
//! `GET /debug/trace`) / `T2FSNN_LOG` (structured JSON-lines log level
//! on stderr).
//!
//! A model that fails to load does not kill the process: its slot
//! answers `503` and `/healthz` reports it, so a fleet can keep the
//! healthy models serving. Only a bind failure (or zero configured
//! model names) is fatal. At runtime the registry is mutable:
//! `POST /admin/models/<name>/{load,unload,reload}` hot-swap model
//! versions behind a canary gate, and a per-model circuit breaker
//! quarantines a model that keeps failing (see the crate docs).

use std::io::Write;

use t2fsnn_serve::{start, Registry, ServeConfig};
use t2fsnn_tensor::log;
use t2fsnn_tensor::perturb::PerturbSpec;

fn main() {
    let config = ServeConfig::from_env();
    // A malformed perturbation spec fails startup loudly: a robustness
    // run must never silently serve clean models.
    let perturb = match config.perturb.as_deref().map(PerturbSpec::parse) {
        None => None,
        Some(Ok(spec)) => Some(spec),
        Some(Err(e)) => {
            log::error(
                "startup_failed",
                &[("error", (&format!("bad T2FSNN_SERVE_PERTURB: {e}")).into())],
            );
            std::process::exit(2);
        }
    };
    let registry = match Registry::load_perturbed(&config.models, perturb.as_ref()) {
        Ok(r) => r,
        Err(e) => {
            log::error("startup_failed", &[("error", (&e.to_string()).into())]);
            std::process::exit(2);
        }
    };
    if !registry.any_ready() {
        log::warn(
            "no_model_ready",
            &[("effect", "every inference will answer 503".into())],
        );
    }
    let handle = match start(config.clone(), registry) {
        Ok(h) => h,
        Err(e) => {
            let error = format!("cannot start on {}: {e}", config.addr);
            log::error("startup_failed", &[("error", (&error).into())]);
            std::process::exit(2);
        }
    };
    // The "listening" line is the readiness signal harnesses wait for;
    // flush so a piped parent sees it immediately.
    println!("[serve] listening on {}", handle.addr());
    println!(
        "[serve] models: {}; max_batch {}, max_delay {} µs, queue {}, workers {}, early_exit {}",
        config.models.join(","),
        config.max_batch,
        config.max_delay_us,
        config.queue_capacity,
        config.workers,
        config.early_exit,
    );
    if config.default_deadline_ms > 0 {
        println!("[serve] default deadline {} ms", config.default_deadline_ms);
    }
    if let Ok(spec) = std::env::var("T2FSNN_SERVE_FAULTS") {
        if !spec.trim().is_empty() {
            println!("[serve] FAULT INJECTION ACTIVE: {}", spec.trim());
        }
    }
    if let Some(spec) = &perturb {
        if spec.is_identity() {
            println!(
                "[serve] perturbation spec `{}` is identity: serving clean models",
                spec.render()
            );
        } else {
            println!("[serve] PERTURBATION ACTIVE: {}", spec.render());
        }
    }
    let _ = std::io::stdout().flush();
    handle.join();
    println!("[serve] shut down cleanly");
}
