//! Minimal HTTP/1.1 framing over a [`TcpStream`], with the connection
//! hygiene the accept loop relies on: every read is bounded by the
//! stream's read timeout and by explicit header/body size caps, so a
//! slow, silent, or malformed client costs a worker at most one timeout
//! — never a wedge.
//!
//! Supported surface: request line + headers + `Content-Length` bodies,
//! keep-alive (the default in 1.1) and `Connection: close`. Chunked
//! transfer encoding is rejected with `400` — no shipped client uses it.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Why reading a request failed.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection cleanly before sending anything.
    Closed,
    /// The read timeout expired; `partial` says whether any bytes of a
    /// request had already arrived (a half-written request → `408`)
    /// or the connection was simply idle (close silently).
    Timeout {
        /// Whether a partial request was on the wire.
        partial: bool,
    },
    /// Headers or body exceeded the configured caps (→ `413`).
    TooLarge,
    /// The bytes did not parse as an HTTP/1.1 request (→ `400`).
    Malformed(String),
    /// An I/O error other than a timeout.
    Io(std::io::Error),
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target (path + optional query), as sent.
    pub path: String,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open (HTTP/1.1
    /// default unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// One server side of a connection: the stream plus a carry-over buffer
/// so pipelined bytes past a request boundary are not lost between
/// keep-alive requests.
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// Cap on the request line + headers, separate from the body cap.
const MAX_HEAD_BYTES: usize = 16 * 1024;

impl Conn {
    /// Wraps an accepted stream. The caller is expected to have set the
    /// stream's read/write timeouts.
    pub fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            buf: Vec::new(),
        }
    }

    /// Reads and parses one request, enforcing the head cap and
    /// `max_body` (plus the stream's read timeout per `read` call).
    ///
    /// # Errors
    ///
    /// See [`HttpError`].
    pub fn read_request(&mut self, max_body: usize) -> Result<Request, HttpError> {
        // Find the end of the head, reading more as needed.
        let head_end = loop {
            if let Some(pos) = find_subslice(&self.buf, b"\r\n\r\n") {
                break pos + 4;
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(HttpError::TooLarge);
            }
            self.fill(!self.buf.is_empty())?;
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or_default();
        let mut parts = request_line.split(' ');
        let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(p), Some(v)) if !m.is_empty() && !p.is_empty() => {
                (m.to_string(), p.to_string(), v)
            }
            _ => {
                return Err(HttpError::Malformed(format!(
                    "bad request line: {request_line:?}"
                )))
            }
        };
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed(format!("bad version: {version:?}")));
        }
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(HttpError::Malformed(format!("bad header line: {line:?}")));
            };
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        let request = Request {
            method,
            path,
            headers,
            body: Vec::new(),
        };
        if request.header("transfer-encoding").is_some() {
            return Err(HttpError::Malformed(
                "chunked transfer encoding is not supported".to_string(),
            ));
        }
        let content_length = match request.header("content-length") {
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length: {v:?}")))?,
            None => 0,
        };
        if content_length > max_body {
            return Err(HttpError::TooLarge);
        }
        // Read the body, then carry any pipelined surplus over.
        while self.buf.len() < head_end + content_length {
            self.fill(true)?;
        }
        let mut request = request;
        request.body = self.buf[head_end..head_end + content_length].to_vec();
        self.buf.drain(..head_end + content_length);
        Ok(request)
    }

    /// Reads more bytes into the carry-over buffer. `partial` marks
    /// whether a request is already in flight (decides the timeout
    /// flavor).
    fn fill(&mut self, partial: bool) -> Result<(), HttpError> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => {
                if self.buf.is_empty() && !partial {
                    Err(HttpError::Closed)
                } else {
                    Err(HttpError::Malformed(
                        "connection closed mid-request".to_string(),
                    ))
                }
            }
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(())
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Err(HttpError::Timeout {
                    partial: partial || !self.buf.is_empty(),
                })
            }
            Err(e) => Err(HttpError::Io(e)),
        }
    }

    /// Writes one response. `keep_alive` controls the `Connection`
    /// header — the framing a compliant client needs to reuse the
    /// connection.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn write_response(
        &mut self,
        status: u16,
        content_type: &str,
        body: &[u8],
        keep_alive: bool,
    ) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            status_reason(status),
            body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()
    }

    /// Deliberately writes only a prefix of the response and stops —
    /// the fault-injection layer's mid-response connection drop. The
    /// head advertises the full `Content-Length`, so a client that
    /// trusts the framing sees an unexpected EOF mid-body, exactly like
    /// a server crashing between `write` calls. The caller must drop
    /// the connection afterwards.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn write_truncated_response(
        &mut self,
        status: u16,
        content_type: &str,
        body: &[u8],
    ) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            status_reason(status),
            body.len(),
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(&body[..body.len() / 2])?;
        self.stream.flush()
    }
}

/// Canonical reason phrase of the status codes this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server
            .set_read_timeout(Some(std::time::Duration::from_millis(200)))
            .unwrap();
        (client, Conn::new(server))
    }

    #[test]
    fn parses_request_with_body_and_keeps_pipelined_surplus() {
        let (mut client, mut conn) = pair();
        client
            .write_all(b"POST /v1/infer HTTP/1.1\r\nContent-Length: 5\r\nX-Test: a\r\n\r\nhelloGET /healthz HTTP/1.1\r\n\r\n")
            .unwrap();
        let req = conn.read_request(1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/infer");
        assert_eq!(req.header("x-test"), Some("a"));
        assert_eq!(req.body, b"hello");
        assert!(req.keep_alive());
        let next = conn.read_request(1024).unwrap();
        assert_eq!(next.method, "GET");
        assert_eq!(next.path, "/healthz");
    }

    #[test]
    fn half_written_request_times_out_as_partial() {
        let (mut client, mut conn) = pair();
        client
            .write_all(b"POST /v1/infer HTTP/1.1\r\nContent-Len")
            .unwrap();
        match conn.read_request(1024) {
            Err(HttpError::Timeout { partial }) => assert!(partial),
            other => panic!("expected partial timeout, got {other:?}"),
        }
    }

    #[test]
    fn idle_connection_times_out_as_non_partial() {
        let (_client, mut conn) = pair();
        match conn.read_request(1024) {
            Err(HttpError::Timeout { partial }) => assert!(!partial),
            other => panic!("expected idle timeout, got {other:?}"),
        }
    }

    #[test]
    fn clean_close_before_any_bytes_is_closed() {
        let (client, mut conn) = pair();
        drop(client);
        assert!(matches!(conn.read_request(1024), Err(HttpError::Closed)));
    }

    #[test]
    fn oversized_body_is_rejected_before_reading_it() {
        let (mut client, mut conn) = pair();
        client
            .write_all(b"POST /x HTTP/1.1\r\nContent-Length: 999999\r\n\r\n")
            .unwrap();
        assert!(matches!(conn.read_request(1024), Err(HttpError::TooLarge)));
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        let cases: [&[u8]; 4] = [
            b"NOT-HTTP\r\n\r\n",
            b"GET /x SPDY/3\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n",
            b"GET /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ];
        for case in cases {
            let (mut client, mut conn) = pair();
            client.write_all(case).unwrap();
            assert!(
                matches!(conn.read_request(1024), Err(HttpError::Malformed(_))),
                "{}",
                String::from_utf8_lossy(case)
            );
        }
    }

    #[test]
    fn truncated_response_stops_mid_body() {
        let (mut client, mut conn) = pair();
        conn.write_truncated_response(200, "application/json", b"0123456789")
            .unwrap();
        drop(conn);
        let mut raw = Vec::new();
        client.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw);
        assert!(text.contains("Content-Length: 10"));
        assert!(text.ends_with("01234"), "got {text:?}");
    }

    #[test]
    fn connection_close_is_honored() {
        let (mut client, mut conn) = pair();
        client
            .write_all(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let req = conn.read_request(1024).unwrap();
        assert!(!req.keep_alive());
        conn.write_response(200, "text/plain", b"bye", false)
            .unwrap();
        drop(conn); // server closes; the client read below needs the EOF
        let mut response = String::new();
        client.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(response.contains("Connection: close"));
        assert!(response.ends_with("bye"));
    }
}
