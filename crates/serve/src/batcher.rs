//! The dynamic micro-batcher: one thread that turns the admission queue
//! into inference batches.
//!
//! Policy: pop the oldest job, then gather company with the same
//! `(model, early_exit)` key until the batch is full (`max_batch`) or
//! the deadline — `max_delay` past the first job's *enqueue* time —
//! expires; a backlogged queue therefore flushes full batches with no
//! added latency. Jobs for other keys stay queued in order for the next
//! round.
//!
//! Because [`t2fsnn::T2fsnn::infer`] is batch-invariant (bit-identical
//! per image regardless of batch composition), batching is purely a
//! throughput/latency trade — it can never change a response.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use t2fsnn::{ImageInference, InferOptions};
use t2fsnn_snn::energy::TRUENORTH;
use t2fsnn_tensor::{profile, Tensor};

use crate::metrics::Metrics;
use crate::queue::Queue;
use crate::registry::ServeModel;

/// One admitted inference job.
pub struct InferJob {
    /// Model to run (resolved at admission).
    pub model: Arc<ServeModel>,
    /// Flat `[C·H·W]` image (length validated at admission).
    pub image: Vec<f32>,
    /// Resolved early-exit flag (request override or server default).
    pub early_exit: bool,
    /// Admission time, for the batching deadline and queue-time metric.
    pub enqueued: Instant,
    /// Where the outcome goes; the connection worker blocks on the
    /// receiving end.
    pub reply: mpsc::Sender<Result<JobOutcome, String>>,
}

impl InferJob {
    /// Batch compatibility key: same model instance, same early-exit
    /// mode.
    fn key(&self) -> (*const ServeModel, bool) {
        (Arc::as_ptr(&self.model), self.early_exit)
    }
}

/// What the batcher hands back per job.
pub struct JobOutcome {
    /// The per-image inference result.
    pub result: ImageInference,
    /// Size of the batch the job executed in.
    pub batch_size: usize,
    /// Microseconds the job waited before its batch started.
    pub queue_us: u64,
    /// Microseconds the batch spent in inference.
    pub infer_us: u64,
}

impl JobOutcome {
    /// TrueNorth-weighted relative energy of this request
    /// (`E_dyn·spikes + E_sta·steps`, the paper's estimator un-normalized).
    pub fn energy_truenorth(&self) -> f64 {
        TRUENORTH.e_dyn as f64 * self.result.total_spikes() as f64
            + TRUENORTH.e_sta as f64 * self.result.steps as f64
    }
}

/// Runs the batching loop until the queue closes and drains. Intended
/// for a dedicated thread; shutdown is graceful — jobs admitted before
/// the close are still executed and answered.
pub fn run(queue: &Queue<InferJob>, metrics: &Metrics, max_batch: usize, max_delay: Duration) {
    while let Some(first) = queue.pop_blocking() {
        let key = first.key();
        let deadline = first.enqueued + max_delay;
        let mut batch = vec![first];
        if max_batch > 1 {
            batch.extend(queue.collect_matching(deadline, max_batch - 1, |job| job.key() == key));
        }
        metrics.set_queue_depth(queue.len());
        execute(batch, metrics);
        // Make this thread's profiler spans visible to `/metrics`.
        profile::flush();
    }
}

/// Executes one homogeneous batch and replies to every job. Reply sends
/// ignore errors: a worker that timed out and closed its receiver just
/// loses the (already-paid-for) answer.
fn execute(batch: Vec<InferJob>, metrics: &Metrics) {
    let model = Arc::clone(&batch[0].model);
    let early_exit = batch[0].early_exit;
    let k = batch.len();
    metrics.observe_batch(k);
    let [c, h, w] = model.image_dims();
    let mut data = Vec::with_capacity(k * c * h * w);
    for job in &batch {
        data.extend_from_slice(&job.image);
    }
    let started = Instant::now();
    let outcome = Tensor::from_vec(vec![k, c, h, w], data)
        .and_then(|images| model.model.infer(&images, InferOptions { early_exit }));
    let infer_us = started.elapsed().as_micros() as u64;
    match outcome {
        Ok(results) => {
            debug_assert_eq!(results.len(), k);
            for (job, result) in batch.into_iter().zip(results) {
                metrics.observe_decision(result.decided());
                let queue_us = started.saturating_duration_since(job.enqueued).as_micros() as u64;
                let _ = job.reply.send(Ok(JobOutcome {
                    result,
                    batch_size: k,
                    queue_us,
                    infer_us,
                }));
            }
        }
        Err(e) => {
            metrics.observe_infer_error();
            let message = format!("inference failed: {e}");
            for job in batch {
                let _ = job.reply.send(Err(message.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(spikes: u64, steps: usize) -> JobOutcome {
        JobOutcome {
            result: ImageInference {
                label: 0,
                decision_step: None,
                steps,
                top_potential: 0.0,
                input_spikes: spikes,
                hidden_spikes: 0,
                synop_adds: 0,
                synop_mults: 0,
            },
            batch_size: 1,
            queue_us: 0,
            infer_us: 0,
        }
    }

    #[test]
    fn energy_estimate_weights_spikes_and_latency() {
        let a = outcome(100, 40);
        let b = outcome(10, 40);
        assert!(a.energy_truenorth() > b.energy_truenorth());
        let c = outcome(10, 400);
        assert!(c.energy_truenorth() > b.energy_truenorth());
        assert!((b.energy_truenorth() - (0.4 * 10.0 + 0.6 * 40.0)).abs() < 1e-4);
    }
}
