//! The dynamic micro-batcher: one thread that turns the admission queue
//! into inference batches, degrading deadline-pressed requests instead
//! of wedging on them.
//!
//! Batching policy: pop the oldest job, then gather company with the
//! same `(model, effective early-exit mode)` key until the batch is full
//! (`max_batch`) or the flush deadline — `max_delay` past the first
//! job's *enqueue* time, capped by its request deadline — expires; a
//! backlogged queue therefore flushes full batches with no added
//! latency. Jobs for other keys stay queued in order for the next
//! round.
//!
//! Deadline policy (the degradation ladder, applied per job every
//! cycle):
//!
//! 1. **Full window** — enough slack: the request runs exactly as
//!    asked.
//! 2. **Forced anytime early-exit** — slack below the full-window
//!    estimate (a per-model EWMA of batch execution time plus the batch
//!    wait, or the static `T2FSNN_SERVE_FORCE_EE_SLACK_US` override):
//!    the request is dispatched with `early_exit = true` even though it
//!    asked for a full-window answer. The response is bit-identical to
//!    an explicit `early_exit: true` request — the TTFS anytime path is
//!    the pressure valve, not a different model.
//! 3. **Shed** — the deadline has already passed, *or* the remaining
//!    slack is below even the anytime execution reserve (1.25× the
//!    per-model decaying peak of batch execution time, so the answer
//!    could not possibly land in time): the job is answered `504`
//!    without executing. *Queue*
//!    shedding ([`crate::queue::Queue::drain_matching`]) only ever
//!    takes already-expired jobs — it never touches a job with
//!    remaining slack and never reorders the survivors; the
//!    unmeetable-slack shed is a head-of-queue decision by the batcher
//!    (counted separately as `unmeetable_shed`).
//!
//! The company wait is capped so it never erodes the head's slack below
//! the execution reserve: a batch is flushed early rather than turning
//! a servable head into a late answer.
//!
//! Fault policy: batch execution runs under [`std::panic::catch_unwind`]
//! — a poisoned batch answers `500` for exactly its own requests and the
//! batcher thread survives to serve the next batch (the server
//! additionally respawns the whole thread as a backstop).
//!
//! Because [`t2fsnn::T2fsnn::infer`] is batch-invariant (bit-identical
//! per image regardless of batch composition), batching and forced
//! early-exit can never change the bits of a response relative to the
//! same image inferred solo in the same mode.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use t2fsnn::{ImageInference, InferOptions};
use t2fsnn_snn::energy::TRUENORTH;
use t2fsnn_tensor::{profile, trace, Tensor};

use crate::faults::{BatchFault, Faults};
use crate::lifecycle::Breaker;
use crate::metrics::Metrics;
use crate::queue::Queue;
use crate::registry::ServeModel;

/// One admitted inference job.
pub struct InferJob {
    /// Model to run (resolved at admission).
    pub model: Arc<ServeModel>,
    /// Flat `[C·H·W]` image (length validated at admission).
    pub image: Vec<f32>,
    /// Requested early-exit flag (request override or server default).
    pub early_exit: bool,
    /// Absolute deadline, when the request carries one; past it the job
    /// is shed with `504` instead of executed.
    pub deadline: Option<Instant>,
    /// Admission time, for the batching deadline and queue-time metric.
    pub enqueued: Instant,
    /// Where the outcome goes; the connection worker blocks on the
    /// receiving end.
    pub reply: mpsc::Sender<Result<JobOutcome, JobError>>,
}

impl InferJob {
    /// Whether the job's deadline has passed at `now`.
    pub fn expired_at(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }

    /// Remaining slack at `now` (`None` without a deadline).
    fn slack_at(&self, now: Instant) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(now))
    }
}

/// Why a job was answered without a result.
#[derive(Debug, Clone)]
pub enum JobError {
    /// The job could not be executed inside its deadline — either the
    /// deadline had already passed, or the remaining slack was below
    /// the anytime execution estimate (`504`); the carried value is how
    /// long the job had waited, in microseconds.
    Shed {
        /// Microseconds between admission and the shed decision.
        waited_us: u64,
    },
    /// The job executed, but its result landed after the deadline; the
    /// deadline contract is enforced strictly, so the stale result is
    /// withheld and the request answers `504` (counted as a late
    /// answer in `/metrics`).
    Late {
        /// Microseconds between admission and the (too-late) answer.
        total_us: u64,
    },
    /// Inference failed or the batch panicked (`500`).
    Failed(String),
    /// The job's model left service (unload or quarantine) while the
    /// job was still queued; it is answered `503` without executing.
    Evicted {
        /// The model that left service.
        model: String,
        /// Why it left (`"unloaded"` / `"was quarantined"`).
        reason: String,
    },
}

/// What the batcher hands back per successful job.
pub struct JobOutcome {
    /// The per-image inference result.
    pub result: ImageInference,
    /// Size of the batch the job executed in.
    pub batch_size: usize,
    /// Microseconds the job waited before its batch started.
    pub queue_us: u64,
    /// Microseconds the batch spent in inference.
    pub infer_us: u64,
    /// Whether the degradation ladder forced the anytime early-exit
    /// path on this job (it asked for a full-window answer).
    pub degraded: bool,
    /// Trace id of the micro-batch that executed the job (its
    /// `serve/batch_*` and engine-phase spans carry it); 0 when tracing
    /// is off. Lets a request's span tree cross-link to the shared
    /// batch execution it rode in.
    pub batch_trace: u64,
}

impl JobOutcome {
    /// TrueNorth-weighted relative energy of this request
    /// (`E_dyn·spikes + E_sta·steps`, the paper's estimator un-normalized).
    pub fn energy_truenorth(&self) -> f64 {
        TRUENORTH.e_dyn as f64 * self.result.total_spikes() as f64
            + TRUENORTH.e_sta as f64 * self.result.steps as f64
    }
}

/// Per-model EWMA of batch execution time in one mode (full-window or
/// anytime) — the ladder keeps one per rung: the full-window estimate
/// decides when to force early-exit, the anytime estimate decides when
/// even that cannot land in time.
#[derive(Default)]
struct ExecEstimator {
    /// Smoothed mean and decaying peak of batch execution time, µs.
    stats_us: HashMap<*const ServeModel, (u64, u64)>,
}

impl ExecEstimator {
    /// Smoothed mean execution time (0 until the first sample).
    fn get(&self, model: &Arc<ServeModel>) -> u64 {
        self.stats_us
            .get(&Arc::as_ptr(model))
            .map(|&(mean, _)| mean)
            .unwrap_or(0)
    }

    /// Decaying peak execution time (0 until the first sample): jumps
    /// to a spike instantly, then decays slowly back toward the mean.
    /// Batch time is composition-dependent — an anytime batch runs
    /// until its slowest image's first output spike — so the tail, not
    /// the mean, is what a deadline promise has to budget for.
    fn peak(&self, model: &Arc<ServeModel>) -> u64 {
        self.stats_us
            .get(&Arc::as_ptr(model))
            .map(|&(_, peak)| peak)
            .unwrap_or(0)
    }

    fn update(&mut self, model: &Arc<ServeModel>, infer_us: u64) {
        let (mean, peak) = self.stats_us.entry(Arc::as_ptr(model)).or_insert((0, 0));
        *mean = if *mean == 0 {
            infer_us
        } else {
            (*mean * 3 + infer_us) / 4
        };
        *peak = infer_us.max((*peak * 7 + infer_us) / 8);
    }
}

/// The execution reserve for a decaying-peak estimate: 1.25× the peak,
/// the margin the ladder insists on between dispatch and the deadline.
/// Zero while there is no sample yet (cold start serves
/// optimistically).
fn exec_reserve(peak_us: u64) -> Duration {
    Duration::from_micros(peak_us + peak_us / 4)
}

/// Knobs of one batching loop.
pub struct BatcherConfig {
    /// Maximum images per batch.
    pub max_batch: usize,
    /// How long the first job of a batch may wait for company.
    pub max_delay: Duration,
    /// Static forced-early-exit slack threshold in microseconds; 0
    /// means adaptive (full-window EWMA + `max_delay`).
    pub force_ee_slack_us: u64,
}

impl BatcherConfig {
    /// The slack below which a full-window request is degraded to the
    /// anytime early-exit path.
    fn force_threshold(&self, full_estimate_us: u64) -> Duration {
        if self.force_ee_slack_us > 0 {
            Duration::from_micros(self.force_ee_slack_us)
        } else {
            Duration::from_micros(full_estimate_us) + self.max_delay
        }
    }
}

/// Runs the batching loop until the queue closes and drains. Intended
/// for a dedicated thread; shutdown is graceful — jobs admitted before
/// the close are still executed (or shed, when their deadline passed
/// while queued) and answered.
pub fn run(
    queue: &Queue<InferJob>,
    metrics: &Metrics,
    config: &BatcherConfig,
    faults: Option<&Faults>,
    breaker: Option<&Breaker<'_>>,
) {
    let mut full_estimator = ExecEstimator::default();
    let mut anytime_estimator = ExecEstimator::default();
    while let Some(first) = queue.pop_blocking() {
        let now = Instant::now();
        if first.expired_at(now) {
            shed(first, now, metrics);
            continue;
        }
        // Shed every queued job whose deadline has already passed —
        // survivors keep their exact order (drain_matching contract).
        for job in queue.drain_matching(|job| job.expired_at(now)) {
            shed(job, now, metrics);
        }

        // Degradation rung of the head job decides the batch mode.
        let full_estimate = full_estimator.get(&first.model);
        let threshold = config.force_threshold(full_estimate);
        let forced_head = !first.early_exit && first.slack_at(now).is_some_and(|s| s < threshold);
        let effective_ee = first.early_exit || forced_head;
        // Last rung: the head still has slack, but less than the
        // execution reserve of the mode it would run in — the answer
        // cannot possibly land before the deadline, so shed now instead
        // of burning a batch slot on a guaranteed-late response.
        let reserve = exec_reserve(if effective_ee {
            anytime_estimator.peak(&first.model)
        } else {
            full_estimator.peak(&first.model)
        });
        if !reserve.is_zero() && first.slack_at(now).is_some_and(|s| s < reserve) {
            metrics.observe_unmeetable_shed();
            shed(first, now, metrics);
            continue;
        }
        let model_ptr = Arc::as_ptr(&first.model);
        let mut flush = first.enqueued + config.max_delay;
        if let Some(d) = first.deadline {
            // Waiting for company past the point where the head can
            // still execute inside its deadline is pointless — it would
            // turn a servable job into a late answer or a shed.
            flush = flush.min(d.checked_sub(reserve).unwrap_or(now));
        }
        let mut batch = vec![first];
        if config.max_batch > 1 {
            batch.extend(queue.collect_matching(flush, config.max_batch - 1, |job| {
                if Arc::as_ptr(&job.model) != model_ptr {
                    return false;
                }
                // Fresh clock per candidate: a doomed job that arrived
                // during the company wait must not ride into a batch.
                let now = Instant::now();
                if job.expired_at(now) {
                    return false;
                }
                // A candidate below the batch's execution reserve would
                // only ride to a late answer; leave it queued for the
                // head-of-queue ladder decision.
                if job.slack_at(now).is_some_and(|s| s < reserve) {
                    return false;
                }
                let forced = !job.early_exit && job.slack_at(now).is_some_and(|s| s < threshold);
                (job.early_exit || forced) == effective_ee
            }));
        }
        metrics.set_queue_depth(queue.len());

        // Dispatch-time accounting: per-job degradation flags and the
        // slack histogram.
        let dispatched = Instant::now();
        let degraded: Vec<bool> = batch
            .iter()
            .map(|job| effective_ee && !job.early_exit)
            .collect();
        for (job, &was_forced) in batch.iter().zip(&degraded) {
            if let Some(slack) = job.slack_at(dispatched) {
                metrics.observe_slack_us(slack.as_micros() as u64);
            }
            if was_forced {
                metrics.observe_forced_early_exit();
            }
        }
        // One trace id per batch: `serve/batch_form` covers pop-to-
        // dispatch (shedding + company gathering), `serve/batch_exec`
        // (inside `execute`) wraps inference, and every engine-phase
        // span on this thread nests under it. Requests cross-link via
        // `JobOutcome::batch_trace`.
        let batch_trace = if trace::enabled() {
            trace::next_trace_id()
        } else {
            0
        };
        if batch_trace != 0 {
            trace::record_complete(
                "serve/batch_form",
                now,
                dispatched.saturating_duration_since(now),
                batch_trace,
                0,
                batch.len() as u64,
            );
        }
        let infer_us = execute(
            &batch,
            effective_ee,
            &degraded,
            metrics,
            faults,
            batch_trace,
        );
        // Attribute the outcome to the model's slot: the circuit
        // breaker counts consecutive failures per model and fences a
        // repeat offender off without touching other models' traffic.
        if let Some(breaker) = breaker {
            breaker.record(&batch[0].model, infer_us.is_some());
        }
        if let Some(us) = infer_us {
            if effective_ee {
                anytime_estimator.update(&batch[0].model, us);
            } else {
                full_estimator.update(&batch[0].model, us);
            }
        }
        // Make this thread's profiler spans visible to `/metrics`.
        profile::flush();
    }
}

/// Answers one shed job (expired, or unmeetable within its remaining
/// slack) `504` and counts the shed.
fn shed(job: InferJob, now: Instant, metrics: &Metrics) {
    metrics.observe_deadline_shed();
    let waited_us = now.saturating_duration_since(job.enqueued).as_micros() as u64;
    let _ = job.reply.send(Err(JobError::Shed { waited_us }));
}

/// Executes one homogeneous batch under panic isolation and replies to
/// every job; returns the execution time on success. Reply sends ignore
/// errors: a worker that timed out and closed its receiver just loses
/// the (already-paid-for) answer.
fn execute(
    batch: &[InferJob],
    early_exit: bool,
    degraded: &[bool],
    metrics: &Metrics,
    faults: Option<&Faults>,
    batch_trace: u64,
) -> Option<u64> {
    // Tag inference (and the engine-phase spans it opens on this
    // thread) with the batch's trace id; guards drop in reverse order,
    // closing the exec span before the scope restores the context.
    let _batch_scope = trace::trace_scope(batch_trace);
    let _exec_span = trace::span_with_aux("serve/batch_exec", batch.len() as u64);
    let model = Arc::clone(&batch[0].model);
    let k = batch.len();
    metrics.observe_batch(k);
    let [c, h, w] = model.image_dims();
    let mut data = Vec::with_capacity(k * c * h * w);
    for job in batch {
        data.extend_from_slice(&job.image);
    }
    let fault = faults.and_then(Faults::batch_fault);
    // The model-attributed burst kind: deterministic consecutive panics
    // that drive the circuit breaker (distinct from the Bernoulli
    // `panic` kind, which scatters failures across the run).
    let model_fault = faults.is_some_and(Faults::model_panic_fault);
    if let Some(BatchFault::Delay(delay)) = fault {
        metrics.observe_fault_injected();
        std::thread::sleep(delay);
    }
    let started = Instant::now();
    // Panic isolation: a poisoned batch answers 500 for its own
    // requests only; the batcher lives on. The model and tensors are
    // not mutated by `infer`, so resuming with them after an unwind is
    // sound (AssertUnwindSafe).
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        if matches!(fault, Some(BatchFault::Panic)) {
            metrics.observe_fault_injected();
            panic!("injected batch-execution fault");
        }
        if model_fault {
            metrics.observe_fault_injected();
            panic!("injected model-execution fault");
        }
        Tensor::from_vec(vec![k, c, h, w], data)
            .and_then(|images| model.model.infer(&images, InferOptions { early_exit }))
    }));
    let infer_us = started.elapsed().as_micros() as u64;
    match outcome {
        Ok(Ok(results)) => {
            debug_assert_eq!(results.len(), k);
            let answered = Instant::now();
            for ((job, result), &was_forced) in batch.iter().zip(results).zip(degraded) {
                metrics.observe_decision(result.decided());
                // Strict deadline contract: a result that lands past
                // the deadline is withheld — the client asked for an
                // answer *by* the deadline, not a stale one after it.
                if job.deadline.is_some_and(|d| answered > d) {
                    metrics.observe_deadline_late_answer();
                    let total_us =
                        answered.saturating_duration_since(job.enqueued).as_micros() as u64;
                    let _ = job.reply.send(Err(JobError::Late { total_us }));
                    continue;
                }
                let queue_us = started.saturating_duration_since(job.enqueued).as_micros() as u64;
                let _ = job.reply.send(Ok(JobOutcome {
                    result,
                    batch_size: k,
                    queue_us,
                    infer_us,
                    degraded: was_forced,
                    batch_trace,
                }));
            }
            Some(infer_us)
        }
        Ok(Err(e)) => {
            metrics.observe_infer_error();
            let message = format!("inference failed: {e}");
            for job in batch {
                let _ = job.reply.send(Err(JobError::Failed(message.clone())));
            }
            None
        }
        Err(_) => {
            metrics.observe_worker_panic();
            let message =
                "batch execution panicked; only this batch's requests are affected".to_string();
            for job in batch {
                let _ = job.reply.send(Err(JobError::Failed(message.clone())));
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(spikes: u64, steps: usize) -> JobOutcome {
        JobOutcome {
            result: ImageInference {
                label: 0,
                decision_step: None,
                steps,
                top_potential: 0.0,
                input_spikes: spikes,
                hidden_spikes: 0,
                synop_adds: 0,
                synop_mults: 0,
            },
            batch_size: 1,
            queue_us: 0,
            infer_us: 0,
            degraded: false,
            batch_trace: 0,
        }
    }

    #[test]
    fn energy_estimate_weights_spikes_and_latency() {
        let a = outcome(100, 40);
        let b = outcome(10, 40);
        assert!(a.energy_truenorth() > b.energy_truenorth());
        let c = outcome(10, 400);
        assert!(c.energy_truenorth() > b.energy_truenorth());
        assert!((b.energy_truenorth() - (0.4 * 10.0 + 0.6 * 40.0)).abs() < 1e-4);
    }

    #[test]
    fn force_threshold_static_override_wins() {
        let adaptive = BatcherConfig {
            max_batch: 8,
            max_delay: Duration::from_micros(2_000),
            force_ee_slack_us: 0,
        };
        assert_eq!(
            adaptive.force_threshold(5_000),
            Duration::from_micros(7_000)
        );
        // No estimate yet: only the batch wait itself forces.
        assert_eq!(adaptive.force_threshold(0), Duration::from_micros(2_000));
        let fixed = BatcherConfig {
            force_ee_slack_us: 12_345,
            ..adaptive
        };
        assert_eq!(fixed.force_threshold(5_000), Duration::from_micros(12_345));
    }

    #[test]
    fn exec_reserve_scales_the_peak() {
        assert_eq!(exec_reserve(0), Duration::ZERO);
        assert_eq!(exec_reserve(4_000), Duration::from_micros(5_000));
        assert_eq!(exec_reserve(8), Duration::from_micros(10));
    }
}
