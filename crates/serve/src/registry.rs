//! The model registry: named, ready-to-serve T2FSNN models loaded from
//! the bench crate's `T2FB` scenario cache.
//!
//! [`Registry::load`] resolves scenario names through
//! [`t2fsnn_bench::prepare`], which reads the cached trained+normalized
//! network when warm and trains it when cold — a server on a fresh
//! machine comes up self-contained, just slower on first boot. The
//! DNN→SNN conversion happens once per model at load time.
//!
//! Loading is hardened: a model whose preparation or conversion fails
//! (including by panic — the load runs under
//! [`std::panic::catch_unwind`]) occupies a [`ModelSlot::Failed`] slot
//! instead of killing the process. Requests for it are answered `503`
//! with the load error, `/healthz` reports it unavailable, and every
//! other model keeps serving.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use t2fsnn::{NoiseConfig, T2fsnn, T2fsnnConfig};
use t2fsnn_bench::{prepare, Scenario};
use t2fsnn_data::DatasetSpec;
use t2fsnn_tensor::perturb::PerturbSpec;

use crate::protocol::{ModelHealth, ModelInfo};

/// One servable model.
pub struct ServeModel {
    /// Registry name (the scenario name).
    pub name: String,
    /// The converted, ready-to-run model.
    pub model: T2fsnn,
    /// Input/output specification of the scenario dataset.
    pub spec: DatasetSpec,
    /// Source-DNN test accuracy (from the scenario cache).
    pub dnn_accuracy: f32,
    /// Weight rows rewritten by the load-time perturbation (0 = clean
    /// or event-only perturbation).
    pub perturbed_weight_rows: u64,
}

impl ServeModel {
    /// Flat image length a request must carry (`C·H·W`).
    pub fn input_len(&self) -> usize {
        self.spec.channels * self.spec.height * self.spec.width
    }

    /// `[C, H, W]` input dims.
    pub fn image_dims(&self) -> [usize; 3] {
        [self.spec.channels, self.spec.height, self.spec.width]
    }

    /// The `GET /v1/models` description of this model.
    pub fn info(&self) -> ModelInfo {
        ModelInfo {
            name: self.name.clone(),
            channels: self.spec.channels,
            height: self.spec.height,
            width: self.spec.width,
            classes: self.spec.classes,
            time_window: self.model.config().time_window,
            weighted_layers: self.model.weighted_count(),
            latency_steps: self.model.total_steps(),
            dnn_accuracy: self.dnn_accuracy,
        }
    }
}

/// Scenario lookup by stable name (see [`Scenario::name`]).
pub fn scenario_by_name(name: &str) -> Option<Scenario> {
    [
        Scenario::Tiny,
        Scenario::MnistLike,
        Scenario::Cifar10Like,
        Scenario::Cifar100Like,
    ]
    .into_iter()
    .find(|s| s.name() == name)
}

/// One named registry slot: a model either serves or carries the reason
/// it cannot.
pub enum ModelSlot {
    /// Loaded and serving.
    Ready(Arc<ServeModel>),
    /// Load or conversion failed; requests answer `503` with the error.
    Failed {
        /// The requested model name.
        name: String,
        /// Why the load failed.
        error: String,
    },
}

impl ModelSlot {
    /// The slot's registry name.
    pub fn name(&self) -> &str {
        match self {
            ModelSlot::Ready(m) => &m.name,
            ModelSlot::Failed { name, .. } => name,
        }
    }
}

/// What a request's model name resolves to.
pub enum Resolution<'a> {
    /// A serving model.
    Ready(&'a Arc<ServeModel>),
    /// A configured model that failed to load (`503`).
    Unavailable {
        /// The model's registry name.
        name: &'a str,
        /// The load error, echoed to the client.
        error: &'a str,
    },
    /// A name the registry never heard of (`404`).
    Unknown,
}

/// Named model slots. The first *configured* slot is the default for
/// requests that name none — even when it failed to load, so a broken
/// default answers `503` rather than silently serving a different
/// model.
pub struct Registry {
    slots: Vec<ModelSlot>,
    /// Models that came up with a non-identity perturbation applied.
    perturbed_models: u64,
    /// Weight rows actually rewritten across all perturbed models.
    perturbed_weight_rows: u64,
}

impl Registry {
    /// Loads (training on a cold cache) every named scenario and
    /// converts it for TTFS serving with the scenario's time window and
    /// initial kernel. A model that fails to load — by error or by
    /// panic — degrades to a [`ModelSlot::Failed`] slot; the registry
    /// itself always comes up.
    ///
    /// # Errors
    ///
    /// Only an empty name list is a hard error: a server with nothing
    /// configured to serve is a deployment bug, not a degraded state.
    pub fn load(names: &[String]) -> Result<Registry, String> {
        Registry::load_perturbed(names, None)
    }

    /// [`Registry::load`] with an optional perturbation applied to every
    /// model as it comes up (the robustness harness path). Event
    /// families (`jitter`, `drop`) become the model's
    /// [`NoiseConfig`]; weight families (`wgauss`, `wstuck`,
    /// `wbitflip`) rewrite the converted weights through per-row seeded
    /// streams, so a given `(spec, model)` pair always serves the same
    /// bits. An identity spec (or `None`) loads clean models and counts
    /// nothing.
    ///
    /// # Errors
    ///
    /// Only an empty name list is a hard error, as for
    /// [`Registry::load`].
    pub fn load_perturbed(
        names: &[String],
        spec: Option<&PerturbSpec>,
    ) -> Result<Registry, String> {
        if names.is_empty() {
            return Err("registry needs at least one model name".to_string());
        }
        let spec = spec.filter(|s| !s.is_identity());
        let mut perturbed_models = 0u64;
        let mut perturbed_weight_rows = 0u64;
        let slots = names
            .iter()
            .map(|name| {
                let slot = Registry::load_one(name, spec);
                if spec.is_some() && matches!(slot, ModelSlot::Ready(_)) {
                    perturbed_models += 1;
                    if let ModelSlot::Ready(m) = &slot {
                        perturbed_weight_rows += m.perturbed_weight_rows;
                    }
                }
                slot
            })
            .collect();
        Ok(Registry {
            slots,
            perturbed_models,
            perturbed_weight_rows,
        })
    }

    /// Models loaded with a non-identity perturbation applied.
    pub fn perturbed_models(&self) -> u64 {
        self.perturbed_models
    }

    /// Weight rows rewritten across all perturbed models.
    pub fn perturbed_weight_rows(&self) -> u64 {
        self.perturbed_weight_rows
    }

    fn load_one(name: &str, spec: Option<&PerturbSpec>) -> ModelSlot {
        let failed = |error: String| {
            eprintln!("[serve] model `{name}` UNAVAILABLE: {error}");
            ModelSlot::Failed {
                name: name.to_string(),
                error,
            }
        };
        let Some(scenario) = scenario_by_name(name) else {
            return failed(format!("unknown scenario `{name}` (see /v1/models names)"));
        };
        eprintln!("[serve] loading model `{name}`…");
        // catch_unwind: a panic in cache/train/convert/perturb must cost
        // one slot, not the process. Nothing mutable outlives the
        // closure.
        let loaded = catch_unwind(AssertUnwindSafe(|| {
            let prepared = prepare(scenario);
            let mut config = T2fsnnConfig::new(scenario.time_window());
            if let Some(p) = spec {
                if p.has_event() {
                    config.noise = Some(NoiseConfig {
                        jitter: p.event_jitter,
                        drop_prob: p.event_drop,
                        seed: p.seed,
                    });
                }
            }
            T2fsnn::from_dnn(&prepared.dnn, config, scenario.initial_kernel()).map(|mut model| {
                let mut rows = 0u64;
                if let Some(p) = spec {
                    if p.has_weight() {
                        let (changed, total) = model.perturb_weights(p);
                        rows = changed;
                        eprintln!(
                            "[serve] model `{name}` perturbed: {changed}/{total} weight rows \
                             rewritten by `{}`",
                            p.render()
                        );
                    }
                }
                (model, prepared, rows)
            })
        }));
        match loaded {
            Ok(Ok((model, prepared, perturbed_weight_rows))) => {
                eprintln!(
                    "[serve] model `{name}` ready: {} weighted layers, T = {}, window latency {} \
                     steps, DNN accuracy {:.1}%",
                    model.weighted_count(),
                    scenario.time_window(),
                    model.total_steps(),
                    prepared.dnn_accuracy * 100.0
                );
                ModelSlot::Ready(Arc::new(ServeModel {
                    name: name.to_string(),
                    model,
                    spec: prepared.test.spec.clone(),
                    dnn_accuracy: prepared.dnn_accuracy,
                    perturbed_weight_rows,
                }))
            }
            Ok(Err(e)) => failed(format!("cannot convert `{name}` for serving: {e}")),
            Err(_) => failed(format!("panic while loading `{name}`")),
        }
    }

    /// Resolves a request's model name; `None` means the default (first
    /// configured) slot.
    pub fn resolve(&self, name: Option<&str>) -> Resolution<'_> {
        let slot = match name {
            None => self.slots.first(),
            Some(n) => self.slots.iter().find(|s| s.name() == n),
        };
        match slot {
            Some(ModelSlot::Ready(m)) => Resolution::Ready(m),
            Some(ModelSlot::Failed { name, error }) => Resolution::Unavailable { name, error },
            None => Resolution::Unknown,
        }
    }

    /// Resolves to a *ready* model only (legacy accessor; prefer
    /// [`Registry::resolve`] where `503` vs `404` matters).
    pub fn get(&self, name: Option<&str>) -> Option<&Arc<ServeModel>> {
        match self.resolve(name) {
            Resolution::Ready(m) => Some(m),
            _ => None,
        }
    }

    /// Every ready (serving) model, in configured order.
    pub fn models(&self) -> Vec<&Arc<ServeModel>> {
        self.slots
            .iter()
            .filter_map(|s| match s {
                ModelSlot::Ready(m) => Some(m),
                ModelSlot::Failed { .. } => None,
            })
            .collect()
    }

    /// Whether at least one model serves.
    pub fn any_ready(&self) -> bool {
        self.slots.iter().any(|s| matches!(s, ModelSlot::Ready(_)))
    }

    /// Per-slot availability for `/healthz`.
    pub fn health(&self) -> Vec<ModelHealth> {
        self.slots
            .iter()
            .map(|slot| match slot {
                ModelSlot::Ready(m) => ModelHealth {
                    name: m.name.clone(),
                    available: true,
                    error: None,
                },
                ModelSlot::Failed { name, error } => ModelHealth {
                    name: name.clone(),
                    available: false,
                    error: Some(error.clone()),
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_resolve() {
        assert_eq!(scenario_by_name("tiny"), Some(Scenario::Tiny));
        assert_eq!(scenario_by_name("mnist-like"), Some(Scenario::MnistLike));
        assert_eq!(scenario_by_name("nope"), None);
    }

    #[test]
    fn load_rejects_only_empty() {
        assert!(Registry::load(&[]).is_err());
    }

    #[test]
    fn unknown_scenario_degrades_to_unavailable() {
        let registry = Registry::load(&["not-a-scenario".to_string()]).unwrap();
        assert!(!registry.any_ready());
        assert!(registry.get(None).is_none());
        match registry.resolve(None) {
            Resolution::Unavailable { name, error } => {
                assert_eq!(name, "not-a-scenario");
                assert!(error.contains("unknown scenario"));
            }
            _ => panic!("expected Unavailable"),
        }
        match registry.resolve(Some("never-configured")) {
            Resolution::Unknown => {}
            _ => panic!("expected Unknown"),
        }
        let health = registry.health();
        assert_eq!(health.len(), 1);
        assert!(!health[0].available);
        assert!(health[0].error.is_some());
    }

    #[test]
    fn tiny_model_loads_and_describes_itself() {
        let registry = Registry::load(&["tiny".to_string()]).unwrap();
        let model = registry.get(None).unwrap();
        assert_eq!(model.name, "tiny");
        assert_eq!(model.input_len(), 16 * 16);
        let info = model.info();
        assert_eq!(info.classes, 4);
        assert!(info.weighted_layers >= 2);
        assert_eq!(registry.get(Some("tiny")).unwrap().name, "tiny");
        assert!(registry.get(Some("missing")).is_none());
        assert!(registry.any_ready());
        assert!(registry.health()[0].available);
    }

    #[test]
    fn perturbed_load_is_deterministic_and_counted() {
        let spec = PerturbSpec::parse("7:jitter=2,drop=0.1,wstuck=0.5").unwrap();
        let names = ["tiny".to_string()];
        let a = Registry::load_perturbed(&names, Some(&spec)).unwrap();
        let b = Registry::load_perturbed(&names, Some(&spec)).unwrap();
        assert_eq!(a.perturbed_models(), 1);
        assert!(a.perturbed_weight_rows() > 0, "wstuck=0.5 must hit rows");
        // Same spec, fresh load: the same rows are rewritten.
        assert_eq!(a.perturbed_weight_rows(), b.perturbed_weight_rows());
        // Event families flow into the model's noise config.
        let model = a.get(None).unwrap();
        let noise = model.model.config().noise.expect("noise config set");
        assert_eq!(noise.jitter, 2);
        assert_eq!(noise.seed, 7);
        assert_eq!(model.perturbed_weight_rows, a.perturbed_weight_rows());
        // An identity spec loads clean and counts nothing.
        let clean = Registry::load_perturbed(&names, Some(&PerturbSpec::identity(7))).unwrap();
        assert_eq!(clean.perturbed_models(), 0);
        assert_eq!(clean.perturbed_weight_rows(), 0);
        let clean_model = clean.get(None).unwrap();
        assert!(clean_model.model.config().noise.is_none());
        assert_eq!(clean_model.perturbed_weight_rows, 0);
    }

    #[test]
    fn mixed_registry_serves_the_ready_model() {
        let registry = Registry::load(&["tiny".to_string(), "bogus".to_string()]).unwrap();
        assert!(registry.any_ready());
        assert_eq!(registry.models().len(), 1);
        assert!(registry.get(Some("tiny")).is_some());
        match registry.resolve(Some("bogus")) {
            Resolution::Unavailable { .. } => {}
            _ => panic!("expected Unavailable"),
        }
    }
}
