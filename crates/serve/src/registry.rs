//! The model registry: named, versioned, ready-to-serve T2FSNN models
//! loaded from the bench crate's `T2FB` scenario cache — a *mutable*
//! runtime component, not a boot-time constant.
//!
//! [`Registry::load`] resolves scenario names through
//! [`t2fsnn_bench::prepare`], which reads the cached trained+normalized
//! network when warm and trains it when cold — a server on a fresh
//! machine comes up self-contained, just slower on first boot. The
//! DNN→SNN conversion happens once per model *version* at load time.
//!
//! Lifecycle: every slot is a small state machine
//! ([`SlotState`]) — `Ready`, `Loading` (a conversion/canary in flight;
//! an incumbent version keeps serving), `Failed`, `Unloaded`
//! (explicitly retired) and `Quarantined` (fenced off by the circuit
//! breaker, kept around for canary probes). Promotion is an **atomic
//! `Arc` swap** under a short [`RwLock`] write section: conversion,
//! training and the canary battery all run *off-lock* on the loader
//! thread, and the write lock is held only to exchange an
//! `Option<Arc<ServeModel>>` — readers never block on a load. In-flight
//! jobs hold their own `Arc` clone resolved at admission, so they
//! finish on the version they were admitted against even across a
//! swap.
//!
//! Loading is hardened: a model whose preparation or conversion fails
//! (including by panic — the load runs under
//! [`std::panic::catch_unwind`]) occupies a failed slot instead of
//! killing the process, and a failed *re*load rolls back to the
//! incumbent version. Requests for an unservable slot are answered
//! `503` with the reason, `/healthz` reports its state, and every other
//! model keeps serving.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use t2fsnn::{NoiseConfig, T2fsnn, T2fsnnConfig};
use t2fsnn_bench::{prepare, Scenario};
use t2fsnn_data::DatasetSpec;
use t2fsnn_tensor::log;
use t2fsnn_tensor::perturb::PerturbSpec;

use crate::lifecycle;
use crate::protocol::{ModelHealth, ModelInfo};

/// One servable model version.
pub struct ServeModel {
    /// Registry name (the scenario name).
    pub name: String,
    /// Monotonic per-slot version, starting at 1; responses echo it so
    /// clients can verify which version answered.
    pub version: u64,
    /// The converted, ready-to-run model.
    pub model: T2fsnn,
    /// Input/output specification of the scenario dataset.
    pub spec: DatasetSpec,
    /// Source-DNN test accuracy (from the scenario cache).
    pub dnn_accuracy: f32,
    /// Weight rows rewritten by the load-time perturbation (0 = clean
    /// or event-only perturbation).
    pub perturbed_weight_rows: u64,
}

impl ServeModel {
    /// Flat image length a request must carry (`C·H·W`).
    pub fn input_len(&self) -> usize {
        self.spec.channels * self.spec.height * self.spec.width
    }

    /// `[C, H, W]` input dims.
    pub fn image_dims(&self) -> [usize; 3] {
        [self.spec.channels, self.spec.height, self.spec.width]
    }

    /// The `GET /v1/models` description of this model.
    pub fn info(&self) -> ModelInfo {
        ModelInfo {
            name: self.name.clone(),
            version: self.version,
            channels: self.spec.channels,
            height: self.spec.height,
            width: self.spec.width,
            classes: self.spec.classes,
            time_window: self.model.config().time_window,
            weighted_layers: self.model.weighted_count(),
            latency_steps: self.model.total_steps(),
            dnn_accuracy: self.dnn_accuracy,
        }
    }
}

/// Scenario lookup by stable name (see [`Scenario::name`]).
pub fn scenario_by_name(name: &str) -> Option<Scenario> {
    [
        Scenario::Tiny,
        Scenario::MnistLike,
        Scenario::Cifar10Like,
        Scenario::Cifar100Like,
    ]
    .into_iter()
    .find(|s| s.name() == name)
}

/// Lifecycle state of one registry slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// Loaded, canary-passed, serving.
    Ready,
    /// A load/reload is in flight on the loader thread; the incumbent
    /// version (if any) keeps serving until the new one is promoted.
    Loading,
    /// Load, conversion or canary failed and there is no incumbent to
    /// serve; requests answer `503` with the error.
    Failed,
    /// Explicitly retired via `POST /admin/models/<name>/unload`;
    /// requests answer `503` until a load brings it back.
    Unloaded,
    /// Fenced off by the per-model circuit breaker after repeated
    /// execution failures; only canary probes touch it until it
    /// re-admits.
    Quarantined,
}

impl SlotState {
    /// The state's wire string for `/healthz`.
    pub fn as_str(self) -> &'static str {
        match self {
            SlotState::Ready => "ready",
            SlotState::Loading => "loading",
            SlotState::Failed => "failed",
            SlotState::Unloaded => "unloaded",
            SlotState::Quarantined => "quarantined",
        }
    }
}

/// One named registry slot.
struct Slot {
    name: String,
    /// The serving version; `None` while failed/unloaded/quarantined or
    /// during an initial load.
    current: Option<Arc<ServeModel>>,
    state: SlotState,
    /// The most recent load/canary/quarantine message.
    error: Option<String>,
    /// Canary response digest recorded when the serving version was
    /// promoted; a reload's candidate must reproduce it bit-exact.
    digest: Option<u32>,
    /// Version number the next promoted load will carry.
    next_version: u64,
    /// Consecutive batch-execution failures (the breaker's counter).
    failures: u32,
    /// Quarantine trips so far (seeds the probe backoff jitter).
    trips: u32,
    /// Probes attempted since the current trip.
    probes: u32,
    /// When the next quarantine probe is due; `None` when one has been
    /// handed out (or the slot is not quarantined).
    next_probe_at: Option<Instant>,
    /// The fenced-off version, kept for canary probes and re-admission
    /// with its bits (and version) intact.
    quarantined: Option<Arc<ServeModel>>,
}

impl Slot {
    fn empty(name: &str) -> Slot {
        Slot {
            name: name.to_string(),
            current: None,
            state: SlotState::Failed,
            error: None,
            digest: None,
            next_version: 1,
            failures: 0,
            trips: 0,
            probes: 0,
            next_probe_at: None,
            quarantined: None,
        }
    }

    /// Whether a request naming this slot would be served right now.
    fn servable(&self) -> bool {
        self.state != SlotState::Quarantined && self.current.is_some()
    }

    fn version(&self) -> u64 {
        self.current
            .as_deref()
            .or(self.quarantined.as_deref())
            .map_or(0, |m| m.version)
    }
}

/// What a request's model name resolves to.
pub enum Resolution {
    /// A serving model, pinned: the `Arc` is cloned out of the slot, so
    /// the caller keeps this exact version across any later swap.
    Ready(Arc<ServeModel>),
    /// A configured model that cannot serve right now (`503`).
    Unavailable {
        /// The model's registry name.
        name: String,
        /// Why it cannot serve, echoed to the client.
        error: String,
    },
    /// A name the registry never heard of (`404`).
    Unknown,
}

/// When and how the per-model circuit breaker trips and probes.
#[derive(Debug, Clone, Copy)]
pub struct QuarantinePolicy {
    /// Consecutive batch-execution failures that trip the quarantine.
    pub threshold: u32,
    /// Base probe backoff; doubles per failed probe (capped at `<< 6`)
    /// plus deterministic seeded jitter of up to half the base.
    pub backoff: Duration,
    /// Seed of the backoff jitter stream (fixed → probe schedules are
    /// machine-independent for a given trip history).
    pub seed: u64,
}

impl Default for QuarantinePolicy {
    fn default() -> Self {
        QuarantinePolicy {
            threshold: 3,
            backoff: Duration::from_millis(250),
            seed: 0x51ED_CA4A,
        }
    }
}

/// What the loader thread needs to carry a load through off-lock.
pub struct LoadTicket {
    /// Slot name being (re)loaded.
    pub name: String,
    /// Version the candidate will carry if promoted.
    pub version: u64,
    /// Digest the candidate's canary battery must reproduce (`None` on
    /// a first load — the digest is recorded at promotion).
    pub expected_digest: Option<u32>,
    /// Whether an incumbent version (serving or quarantined) exists —
    /// i.e. whether a canary rejection has something to roll back to.
    pub replaces_incumbent: bool,
}

/// Named, versioned model slots behind a read-mostly lock. The first
/// *configured* slot is the default for requests that name none — even
/// when it cannot serve, so a broken default answers `503` rather than
/// silently serving a different model.
pub struct Registry {
    slots: RwLock<Vec<Slot>>,
    /// Perturbation applied to every load, boot and runtime alike (the
    /// robustness harness path); `None` = clean.
    perturb: Option<PerturbSpec>,
    policy: QuarantinePolicy,
}

impl Registry {
    /// Loads (training on a cold cache) every named scenario, converts
    /// it for TTFS serving with the scenario's time window and initial
    /// kernel, and gates it behind the canary battery
    /// ([`lifecycle::canary`]). A model that fails to load — by error,
    /// panic or canary rejection — degrades to a failed slot; the
    /// registry itself always comes up.
    ///
    /// # Errors
    ///
    /// Only an empty name list is a hard error: a server with nothing
    /// configured to serve is a deployment bug, not a degraded state.
    pub fn load(names: &[String]) -> Result<Registry, String> {
        Registry::load_perturbed(names, None)
    }

    /// [`Registry::load`] with an optional perturbation applied to every
    /// model as it comes up (the robustness harness path). Event
    /// families (`jitter`, `drop`) become the model's
    /// [`NoiseConfig`]; weight families (`wgauss`, `wstuck`,
    /// `wbitflip`) rewrite the converted weights through per-row seeded
    /// streams, so a given `(spec, model)` pair always serves the same
    /// bits. An identity spec (or `None`) loads clean models and counts
    /// nothing. The spec is remembered and applied identically to every
    /// *runtime* load, so a reload reproduces the boot bits.
    ///
    /// # Errors
    ///
    /// Only an empty name list is a hard error, as for
    /// [`Registry::load`].
    pub fn load_perturbed(
        names: &[String],
        spec: Option<&PerturbSpec>,
    ) -> Result<Registry, String> {
        if names.is_empty() {
            return Err("registry needs at least one model name".to_string());
        }
        let spec = spec.filter(|s| !s.is_identity()).copied();
        let slots = names
            .iter()
            .map(|name| Registry::boot_slot(name, spec.as_ref()))
            .collect();
        Ok(Registry {
            slots: RwLock::new(slots),
            perturb: spec,
            policy: QuarantinePolicy::default(),
        })
    }

    /// Replaces the breaker policy (call before serving starts).
    pub fn set_quarantine_policy(&mut self, policy: QuarantinePolicy) {
        self.policy = policy;
    }

    /// The perturbation spec every load applies (`None` = clean).
    pub fn perturb_spec(&self) -> Option<PerturbSpec> {
        self.perturb
    }

    /// Models currently serving with a non-identity perturbation.
    pub fn perturbed_models(&self) -> u64 {
        if self.perturb.is_none() {
            return 0;
        }
        self.read().iter().filter(|s| s.servable()).count() as u64
    }

    /// Weight rows rewritten across all serving perturbed models.
    pub fn perturbed_weight_rows(&self) -> u64 {
        self.read()
            .iter()
            .filter_map(|s| s.current.as_deref())
            .map(|m| m.perturbed_weight_rows)
            .sum()
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Vec<Slot>> {
        self.slots.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Vec<Slot>> {
        self.slots.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Boot-time slot: convert + canary synchronously (the readiness
    /// line must mean "these models serve"), no incumbent to fall back
    /// to.
    fn boot_slot(name: &str, spec: Option<&PerturbSpec>) -> Slot {
        let mut slot = Slot::empty(name);
        match Registry::convert_model(name, spec, 1) {
            Ok(model) => match lifecycle::canary(&model, None) {
                Ok(digest) => {
                    slot.current = Some(Arc::new(model));
                    slot.state = SlotState::Ready;
                    slot.digest = Some(digest);
                    slot.next_version = 2;
                }
                Err(e) => {
                    let error = format!("canary rejected `{name}`: {e}");
                    log::error(
                        "model_unavailable",
                        &[("model", name.into()), ("error", (&error).into())],
                    );
                    slot.error = Some(error);
                }
            },
            Err(error) => {
                log::error(
                    "model_unavailable",
                    &[("model", name.into()), ("error", (&error).into())],
                );
                slot.error = Some(error);
            }
        }
        slot
    }

    /// Prepares (cache or train), converts and perturbs one model
    /// version, entirely off any registry lock. A panic anywhere inside
    /// costs this load, not the process.
    ///
    /// # Errors
    ///
    /// Returns the preparation/conversion failure (or panic) message.
    pub fn convert_model(
        name: &str,
        spec: Option<&PerturbSpec>,
        version: u64,
    ) -> Result<ServeModel, String> {
        let Some(scenario) = scenario_by_name(name) else {
            return Err(format!("unknown scenario `{name}` (see /v1/models names)"));
        };
        log::info(
            "model_loading",
            &[("model", name.into()), ("version", version.into())],
        );
        // catch_unwind: a panic in cache/train/convert/perturb must cost
        // one load, not the process. Nothing mutable outlives the
        // closure.
        let loaded = catch_unwind(AssertUnwindSafe(|| {
            let prepared = prepare(scenario);
            let mut config = T2fsnnConfig::new(scenario.time_window());
            if let Some(p) = spec {
                if p.has_event() {
                    config.noise = Some(NoiseConfig {
                        jitter: p.event_jitter,
                        drop_prob: p.event_drop,
                        seed: p.seed,
                    });
                }
            }
            T2fsnn::from_dnn(&prepared.dnn, config, scenario.initial_kernel()).map(|mut model| {
                let mut rows = 0u64;
                if let Some(p) = spec {
                    if p.has_weight() {
                        let (changed, total) = model.perturb_weights(p);
                        rows = changed;
                        let spec_text = p.render();
                        log::info(
                            "model_perturbed",
                            &[
                                ("model", name.into()),
                                ("rows_rewritten", changed.into()),
                                ("rows_total", total.into()),
                                ("spec", (&spec_text).into()),
                            ],
                        );
                    }
                }
                (model, prepared, rows)
            })
        }));
        match loaded {
            Ok(Ok((model, prepared, perturbed_weight_rows))) => {
                log::info(
                    "model_converted",
                    &[
                        ("model", name.into()),
                        ("version", version.into()),
                        ("weighted_layers", model.weighted_count().into()),
                        ("time_window", scenario.time_window().into()),
                        ("latency_steps", model.total_steps().into()),
                        ("dnn_accuracy", f64::from(prepared.dnn_accuracy).into()),
                    ],
                );
                Ok(ServeModel {
                    name: name.to_string(),
                    version,
                    model,
                    spec: prepared.test.spec.clone(),
                    dnn_accuracy: prepared.dnn_accuracy,
                    perturbed_weight_rows,
                })
            }
            Ok(Err(e)) => Err(format!("cannot convert `{name}` for serving: {e}")),
            Err(_) => Err(format!("panic while loading `{name}`")),
        }
    }

    /// Resolves a request's model name; `None` means the default (first
    /// configured) slot. A `Ready` resolution clones the slot's `Arc` —
    /// the caller is pinned to that version from here on.
    pub fn resolve(&self, name: Option<&str>) -> Resolution {
        let slots = self.read();
        let slot = match name {
            None => slots.first(),
            Some(n) => slots.iter().find(|s| s.name == n),
        };
        let Some(slot) = slot else {
            return Resolution::Unknown;
        };
        if slot.servable() {
            return Resolution::Ready(Arc::clone(slot.current.as_ref().expect("servable")));
        }
        let error = match slot.state {
            SlotState::Quarantined => slot
                .error
                .clone()
                .unwrap_or_else(|| "quarantined by the circuit breaker".to_string()),
            SlotState::Loading => "still loading".to_string(),
            SlotState::Unloaded => {
                format!(
                    "unloaded (POST /admin/models/{}/load restores it)",
                    slot.name
                )
            }
            _ => slot
                .error
                .clone()
                .unwrap_or_else(|| "failed to load".to_string()),
        };
        Resolution::Unavailable {
            name: slot.name.clone(),
            error,
        }
    }

    /// Resolves to a *ready* model only (legacy accessor; prefer
    /// [`Registry::resolve`] where `503` vs `404` matters).
    pub fn get(&self, name: Option<&str>) -> Option<Arc<ServeModel>> {
        match self.resolve(name) {
            Resolution::Ready(m) => Some(m),
            _ => None,
        }
    }

    /// Every serving model, in configured order.
    pub fn models(&self) -> Vec<Arc<ServeModel>> {
        self.read()
            .iter()
            .filter(|s| s.servable())
            .filter_map(|s| s.current.clone())
            .collect()
    }

    /// Whether a slot with this name exists (in any state).
    pub fn is_configured(&self, name: &str) -> bool {
        self.read().iter().any(|s| s.name == name)
    }

    /// Whether at least one model serves.
    pub fn any_ready(&self) -> bool {
        self.read().iter().any(Slot::servable)
    }

    /// One slot's `(state, version)` — version 0 when no version exists.
    pub fn lifecycle_state(&self, name: &str) -> Option<(SlotState, u64)> {
        self.read()
            .iter()
            .find(|s| s.name == name)
            .map(|s| (s.state, s.version()))
    }

    /// Per-slot lifecycle report for `/healthz`.
    pub fn health(&self) -> Vec<ModelHealth> {
        self.read()
            .iter()
            .map(|slot| ModelHealth {
                name: slot.name.clone(),
                available: slot.servable(),
                state: slot.state.as_str().to_string(),
                version: slot.version(),
                error: slot.error.clone(),
            })
            .collect()
    }

    /// Marks a slot `Loading` (creating it for a never-configured name)
    /// and hands the loader thread its ticket. The incumbent version,
    /// if any, keeps serving until [`Registry::promote`].
    ///
    /// # Errors
    ///
    /// Refuses when a load for this slot is already in flight.
    pub fn begin_load(&self, name: &str) -> Result<LoadTicket, String> {
        let mut slots = self.write();
        let slot = match slots.iter_mut().find(|s| s.name == name) {
            Some(slot) => slot,
            None => {
                slots.push(Slot::empty(name));
                slots.last_mut().expect("just pushed")
            }
        };
        if slot.state == SlotState::Loading {
            return Err(format!("a load of `{name}` is already in flight"));
        }
        let replaces_incumbent = slot.current.is_some() || slot.quarantined.is_some();
        let ticket = LoadTicket {
            name: name.to_string(),
            version: slot.next_version,
            expected_digest: slot.digest,
            replaces_incumbent,
        };
        slot.next_version += 1;
        slot.state = SlotState::Loading;
        Ok(ticket)
    }

    /// Promotes a canary-passed candidate: the atomic swap. In-flight
    /// jobs keep their pinned `Arc` to the old version; new admissions
    /// resolve the new one. Clears any quarantine and breaker state.
    ///
    /// # Errors
    ///
    /// Refuses when the slot left `Loading` since [`Registry::begin_load`]
    /// (e.g. an unload raced the load) — the candidate is discarded.
    pub fn promote(&self, name: &str, model: ServeModel, digest: u32) -> Result<u64, String> {
        let mut slots = self.write();
        let slot = slots
            .iter_mut()
            .find(|s| s.name == name)
            .ok_or_else(|| format!("slot `{name}` vanished during load"))?;
        if slot.state != SlotState::Loading {
            return Err(format!(
                "slot `{name}` is {} (load superseded)",
                slot.state.as_str()
            ));
        }
        let version = model.version;
        slot.current = Some(Arc::new(model));
        slot.state = SlotState::Ready;
        slot.error = None;
        slot.digest = Some(digest);
        slot.failures = 0;
        slot.probes = 0;
        slot.next_probe_at = None;
        slot.quarantined = None;
        Ok(version)
    }

    /// Rejects an in-flight load (conversion failure or canary
    /// rejection) and rolls back: an incumbent keeps serving
    /// (`Ready`), a quarantined version stays fenced (`Quarantined`),
    /// otherwise the slot is `Failed`. The error is surfaced in
    /// `/healthz` either way.
    pub fn reject_load(&self, name: &str, error: String) {
        let mut slots = self.write();
        let Some(slot) = slots.iter_mut().find(|s| s.name == name) else {
            return;
        };
        if slot.state != SlotState::Loading {
            return;
        }
        slot.state = if slot.current.is_some() {
            SlotState::Ready
        } else if slot.quarantined.is_some() {
            SlotState::Quarantined
        } else {
            SlotState::Failed
        };
        slot.error = Some(error);
    }

    /// Retires a slot: the serving (or quarantined) version is dropped,
    /// requests answer `503` until a load brings the slot back, and the
    /// recorded digest is cleared so that a later load records a fresh
    /// reference (an unload+load is the operator's escape hatch for an
    /// intentionally changed artifact). Idempotent.
    ///
    /// # Errors
    ///
    /// Refuses a name that was never configured (`404` material).
    pub fn unload(&self, name: &str) -> Result<(), String> {
        let mut slots = self.write();
        let slot = slots
            .iter_mut()
            .find(|s| s.name == name)
            .ok_or_else(|| format!("model `{name}` is not configured"))?;
        slot.current = None;
        slot.quarantined = None;
        slot.state = SlotState::Unloaded;
        slot.error = None;
        slot.digest = None;
        slot.failures = 0;
        slot.probes = 0;
        slot.next_probe_at = None;
        Ok(())
    }

    /// The circuit breaker's input: one batch execution outcome
    /// attributed to `name`. Success resets the consecutive-failure
    /// counter; `threshold` consecutive failures on a `Ready` slot trip
    /// the quarantine (the serving version is fenced off for probing
    /// and the first probe is scheduled). Returns the trip ordinal when
    /// this call tripped.
    pub fn record_execution(&self, name: &str, ok: bool) -> Option<u32> {
        let mut slots = self.write();
        let slot = slots.iter_mut().find(|s| s.name == name)?;
        if ok {
            slot.failures = 0;
            return None;
        }
        slot.failures += 1;
        if slot.state != SlotState::Ready || slot.failures < self.policy.threshold {
            return None;
        }
        slot.trips += 1;
        slot.failures = 0;
        slot.probes = 0;
        slot.quarantined = slot.current.take();
        slot.state = SlotState::Quarantined;
        slot.error = Some(format!(
            "quarantined after {} consecutive execution failures (trip {})",
            self.policy.threshold, slot.trips
        ));
        let now = Instant::now();
        schedule_probe(slot, now, &self.policy);
        Some(slot.trips)
    }

    /// Claims the next due quarantine probe, if any: returns the slot
    /// name, the fenced version and its recorded digest, and unarms the
    /// timer so the probe runs exactly once. The loader thread reports
    /// back via [`Registry::readmit`] or [`Registry::probe_failed`].
    pub fn due_probe(&self, now: Instant) -> Option<(String, Arc<ServeModel>, Option<u32>)> {
        let mut slots = self.write();
        let slot = slots.iter_mut().find(|s| {
            s.state == SlotState::Quarantined
                && s.quarantined.is_some()
                && s.next_probe_at.is_some_and(|at| now >= at)
        })?;
        slot.next_probe_at = None;
        Some((
            slot.name.clone(),
            Arc::clone(slot.quarantined.as_ref().expect("quarantined version")),
            slot.digest,
        ))
    }

    /// A probe's canary passed: the fenced version — bits and version
    /// number intact — goes back to serving. Returns its version.
    pub fn readmit(&self, name: &str) -> Option<u64> {
        let mut slots = self.write();
        let slot = slots
            .iter_mut()
            .find(|s| s.name == name && s.state == SlotState::Quarantined)?;
        slot.current = slot.quarantined.take();
        slot.state = SlotState::Ready;
        slot.error = None;
        slot.failures = 0;
        slot.probes = 0;
        slot.next_probe_at = None;
        slot.current.as_deref().map(|m| m.version)
    }

    /// A probe's canary failed: escalate the backoff and schedule the
    /// next probe.
    pub fn probe_failed(&self, name: &str, now: Instant, error: String) {
        let mut slots = self.write();
        let Some(slot) = slots
            .iter_mut()
            .find(|s| s.name == name && s.state == SlotState::Quarantined)
        else {
            return;
        };
        slot.probes += 1;
        slot.error = Some(format!(
            "quarantined (probe {} failed: {error})",
            slot.probes
        ));
        schedule_probe(slot, now, &self.policy);
    }
}

/// Deterministic seeded backoff: base `<< min(probes, 6)` plus jitter
/// of up to half that from a SplitMix64 stream keyed on
/// `(seed, name, trip, probe)` — the schedule depends only on the trip
/// history, never on wall-clock or thread timing.
fn schedule_probe(slot: &mut Slot, now: Instant, policy: &QuarantinePolicy) {
    let base_ms = (policy.backoff.as_millis() as u64).max(1) << slot.probes.min(6);
    let key = policy
        .seed
        .wrapping_add(fnv1a(slot.name.as_bytes()))
        .wrapping_add(u64::from(slot.trips) << 32)
        .wrapping_add(u64::from(slot.probes));
    let jitter = splitmix64(key) % (base_ms / 2 + 1);
    slot.next_probe_at = Some(now + Duration::from_millis(base_ms + jitter));
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_resolve() {
        assert_eq!(scenario_by_name("tiny"), Some(Scenario::Tiny));
        assert_eq!(scenario_by_name("mnist-like"), Some(Scenario::MnistLike));
        assert_eq!(scenario_by_name("nope"), None);
    }

    #[test]
    fn load_rejects_only_empty() {
        assert!(Registry::load(&[]).is_err());
    }

    #[test]
    fn unknown_scenario_degrades_to_unavailable() {
        let registry = Registry::load(&["not-a-scenario".to_string()]).unwrap();
        assert!(!registry.any_ready());
        assert!(registry.get(None).is_none());
        match registry.resolve(None) {
            Resolution::Unavailable { name, error } => {
                assert_eq!(name, "not-a-scenario");
                assert!(error.contains("unknown scenario"));
            }
            _ => panic!("expected Unavailable"),
        }
        match registry.resolve(Some("never-configured")) {
            Resolution::Unknown => {}
            _ => panic!("expected Unknown"),
        }
        let health = registry.health();
        assert_eq!(health.len(), 1);
        assert!(!health[0].available);
        assert_eq!(health[0].state, "failed");
        assert_eq!(health[0].version, 0);
        assert!(health[0].error.is_some());
    }

    #[test]
    fn tiny_model_loads_and_describes_itself() {
        let registry = Registry::load(&["tiny".to_string()]).unwrap();
        let model = registry.get(None).unwrap();
        assert_eq!(model.name, "tiny");
        assert_eq!(model.version, 1);
        assert_eq!(model.input_len(), 16 * 16);
        let info = model.info();
        assert_eq!(info.classes, 4);
        assert_eq!(info.version, 1);
        assert!(info.weighted_layers >= 2);
        assert_eq!(registry.get(Some("tiny")).unwrap().name, "tiny");
        assert!(registry.get(Some("missing")).is_none());
        assert!(registry.any_ready());
        let health = registry.health();
        assert!(health[0].available);
        assert_eq!(health[0].state, "ready");
        assert_eq!(health[0].version, 1);
    }

    #[test]
    fn perturbed_load_is_deterministic_and_counted() {
        let spec = PerturbSpec::parse("7:jitter=2,drop=0.1,wstuck=0.5").unwrap();
        let names = ["tiny".to_string()];
        let a = Registry::load_perturbed(&names, Some(&spec)).unwrap();
        let b = Registry::load_perturbed(&names, Some(&spec)).unwrap();
        assert_eq!(a.perturbed_models(), 1);
        assert!(a.perturbed_weight_rows() > 0, "wstuck=0.5 must hit rows");
        // Same spec, fresh load: the same rows are rewritten.
        assert_eq!(a.perturbed_weight_rows(), b.perturbed_weight_rows());
        // Event families flow into the model's noise config.
        let model = a.get(None).unwrap();
        let noise = model.model.config().noise.expect("noise config set");
        assert_eq!(noise.jitter, 2);
        assert_eq!(noise.seed, 7);
        assert_eq!(model.perturbed_weight_rows, a.perturbed_weight_rows());
        // An identity spec loads clean and counts nothing.
        let clean = Registry::load_perturbed(&names, Some(&PerturbSpec::identity(7))).unwrap();
        assert_eq!(clean.perturbed_models(), 0);
        assert_eq!(clean.perturbed_weight_rows(), 0);
        let clean_model = clean.get(None).unwrap();
        assert!(clean_model.model.config().noise.is_none());
        assert_eq!(clean_model.perturbed_weight_rows, 0);
    }

    #[test]
    fn mixed_registry_serves_the_ready_model() {
        let registry = Registry::load(&["tiny".to_string(), "bogus".to_string()]).unwrap();
        assert!(registry.any_ready());
        assert_eq!(registry.models().len(), 1);
        assert!(registry.get(Some("tiny")).is_some());
        match registry.resolve(Some("bogus")) {
            Resolution::Unavailable { .. } => {}
            _ => panic!("expected Unavailable"),
        }
    }

    #[test]
    fn reload_promotes_a_new_version_and_rejection_rolls_back() {
        let registry = Registry::load(&["tiny".to_string()]).unwrap();
        let v1 = registry.get(None).unwrap();
        assert_eq!(v1.version, 1);

        // Reload: the incumbent serves while Loading, and the recorded
        // digest gates the candidate.
        let ticket = registry.begin_load("tiny").unwrap();
        assert_eq!(ticket.version, 2);
        assert!(ticket.replaces_incumbent);
        let expected = ticket.expected_digest.expect("boot digest recorded");
        assert!(registry.begin_load("tiny").is_err(), "double load refused");
        assert_eq!(
            registry.lifecycle_state("tiny"),
            Some((SlotState::Loading, 1))
        );
        assert!(
            registry.get(None).is_some(),
            "incumbent serves while loading"
        );

        // A rejected candidate rolls back to the incumbent.
        registry.reject_load("tiny", "canary rejected: injected".to_string());
        assert_eq!(
            registry.lifecycle_state("tiny"),
            Some((SlotState::Ready, 1))
        );
        let still_v1 = registry.get(None).unwrap();
        assert!(Arc::ptr_eq(&v1, &still_v1), "old Arc keeps serving");
        assert!(registry.health()[0]
            .error
            .as_deref()
            .unwrap()
            .contains("canary"));

        // A promoted candidate swaps atomically; pinned Arcs survive.
        let ticket = registry.begin_load("tiny").unwrap();
        assert_eq!(ticket.version, 3);
        let model = Registry::convert_model("tiny", None, ticket.version).expect("tiny converts");
        let digest = crate::lifecycle::canary(&model, ticket.expected_digest)
            .expect("same scenario, same bits");
        assert_eq!(digest, expected, "deterministic conversion, same digest");
        registry.promote("tiny", model, digest).unwrap();
        let v3 = registry.get(None).unwrap();
        assert_eq!(v3.version, 3);
        assert_eq!(v1.version, 1, "pinned old version intact");
    }

    #[test]
    fn unload_retires_and_load_restores() {
        let registry = Registry::load(&["tiny".to_string()]).unwrap();
        registry.unload("tiny").unwrap();
        assert!(!registry.any_ready());
        assert_eq!(
            registry.lifecycle_state("tiny"),
            Some((SlotState::Unloaded, 0))
        );
        match registry.resolve(Some("tiny")) {
            Resolution::Unavailable { error, .. } => assert!(error.contains("unloaded")),
            _ => panic!("expected Unavailable"),
        }
        assert!(registry.unload("nope").is_err());
        // A fresh load has no digest to match (unload cleared it) and
        // brings the slot back at the next version.
        let ticket = registry.begin_load("tiny").unwrap();
        assert_eq!(ticket.expected_digest, None);
        assert!(!ticket.replaces_incumbent);
        let model = Registry::convert_model("tiny", None, ticket.version).unwrap();
        let digest = crate::lifecycle::canary(&model, None).unwrap();
        registry.promote("tiny", model, digest).unwrap();
        assert!(registry.any_ready());
        assert_eq!(registry.get(None).unwrap().version, 2);
    }

    #[test]
    fn unload_during_load_supersedes_the_promotion() {
        let registry = Registry::load(&["tiny".to_string()]).unwrap();
        let ticket = registry.begin_load("tiny").unwrap();
        registry.unload("tiny").unwrap();
        let model = Registry::convert_model("tiny", None, ticket.version).unwrap();
        let digest = crate::lifecycle::canary(&model, None).unwrap();
        assert!(registry.promote("tiny", model, digest).is_err());
        assert_eq!(
            registry.lifecycle_state("tiny"),
            Some((SlotState::Unloaded, 0))
        );
    }

    #[test]
    fn breaker_trips_probes_and_readmits_deterministically() {
        let mut registry = Registry::load(&["tiny".to_string()]).unwrap();
        registry.set_quarantine_policy(QuarantinePolicy {
            threshold: 3,
            backoff: Duration::from_millis(50),
            seed: 9,
        });
        let v1 = registry.get(None).unwrap();
        // Successes reset the counter; only consecutive failures trip.
        assert_eq!(registry.record_execution("tiny", false), None);
        assert_eq!(registry.record_execution("tiny", false), None);
        assert_eq!(registry.record_execution("tiny", true), None);
        assert_eq!(registry.record_execution("tiny", false), None);
        assert_eq!(registry.record_execution("tiny", false), None);
        let tripped = registry.record_execution("tiny", false);
        assert_eq!(tripped, Some(1));
        assert_eq!(
            registry.lifecycle_state("tiny"),
            Some((SlotState::Quarantined, 1))
        );
        assert!(registry.get(Some("tiny")).is_none());
        assert!(!registry.any_ready());

        // The probe is due after the deterministic backoff, not before.
        let now = Instant::now();
        assert!(registry.due_probe(now).is_none());
        let later = now + Duration::from_millis(200);
        let (name, fenced, digest) = registry.due_probe(later).expect("probe due");
        assert_eq!(name, "tiny");
        assert!(
            Arc::ptr_eq(&fenced, &v1),
            "probes run on the fenced version"
        );
        assert!(digest.is_some());
        // Claimed: no double probe until the outcome is reported.
        assert!(registry.due_probe(later).is_none());

        // A failed probe escalates; a passed probe re-admits v1 intact.
        registry.probe_failed("tiny", later, "still broken".to_string());
        let next = later + Duration::from_millis(400);
        let (_, _, _) = registry.due_probe(next).expect("escalated probe due");
        assert_eq!(registry.readmit("tiny"), Some(1));
        assert_eq!(
            registry.lifecycle_state("tiny"),
            Some((SlotState::Ready, 1))
        );
        let back = registry.get(Some("tiny")).unwrap();
        assert!(Arc::ptr_eq(&back, &v1), "re-admission preserves the bits");
    }
}
