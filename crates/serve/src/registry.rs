//! The model registry: named, ready-to-serve T2FSNN models loaded from
//! the bench crate's `T2FB` scenario cache.
//!
//! [`Registry::load`] resolves scenario names through
//! [`t2fsnn_bench::prepare`], which reads the cached trained+normalized
//! network when warm and trains it when cold — a server on a fresh
//! machine comes up self-contained, just slower on first boot. The
//! DNN→SNN conversion happens once per model at load time.

use std::sync::Arc;

use t2fsnn::{T2fsnn, T2fsnnConfig};
use t2fsnn_bench::{prepare, Scenario};
use t2fsnn_data::DatasetSpec;

use crate::protocol::ModelInfo;

/// One servable model.
pub struct ServeModel {
    /// Registry name (the scenario name).
    pub name: String,
    /// The converted, ready-to-run model.
    pub model: T2fsnn,
    /// Input/output specification of the scenario dataset.
    pub spec: DatasetSpec,
    /// Source-DNN test accuracy (from the scenario cache).
    pub dnn_accuracy: f32,
}

impl ServeModel {
    /// Flat image length a request must carry (`C·H·W`).
    pub fn input_len(&self) -> usize {
        self.spec.channels * self.spec.height * self.spec.width
    }

    /// `[C, H, W]` input dims.
    pub fn image_dims(&self) -> [usize; 3] {
        [self.spec.channels, self.spec.height, self.spec.width]
    }

    /// The `GET /v1/models` description of this model.
    pub fn info(&self) -> ModelInfo {
        ModelInfo {
            name: self.name.clone(),
            channels: self.spec.channels,
            height: self.spec.height,
            width: self.spec.width,
            classes: self.spec.classes,
            time_window: self.model.config().time_window,
            weighted_layers: self.model.weighted_count(),
            latency_steps: self.model.total_steps(),
            dnn_accuracy: self.dnn_accuracy,
        }
    }
}

/// Scenario lookup by stable name (see [`Scenario::name`]).
pub fn scenario_by_name(name: &str) -> Option<Scenario> {
    [
        Scenario::Tiny,
        Scenario::MnistLike,
        Scenario::Cifar10Like,
        Scenario::Cifar100Like,
    ]
    .into_iter()
    .find(|s| s.name() == name)
}

/// Named models, ready to serve. The first loaded model is the default
/// for requests that name none.
pub struct Registry {
    models: Vec<Arc<ServeModel>>,
}

impl Registry {
    /// Loads (training on a cold cache) every named scenario and
    /// converts it for TTFS serving with the scenario's time window and
    /// initial kernel.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first unknown scenario or failed
    /// conversion.
    pub fn load(names: &[String]) -> Result<Registry, String> {
        if names.is_empty() {
            return Err("registry needs at least one model name".to_string());
        }
        let mut models = Vec::with_capacity(names.len());
        for name in names {
            let scenario = scenario_by_name(name)
                .ok_or_else(|| format!("unknown scenario `{name}` (see /v1/models names)"))?;
            eprintln!("[serve] loading model `{name}`…");
            let prepared = prepare(scenario);
            let config = T2fsnnConfig::new(scenario.time_window());
            let model = T2fsnn::from_dnn(&prepared.dnn, config, scenario.initial_kernel())
                .map_err(|e| format!("cannot convert `{name}` for serving: {e}"))?;
            eprintln!(
                "[serve] model `{name}` ready: {} weighted layers, T = {}, window latency {} steps, \
                 DNN accuracy {:.1}%",
                model.weighted_count(),
                scenario.time_window(),
                model.total_steps(),
                prepared.dnn_accuracy * 100.0
            );
            models.push(Arc::new(ServeModel {
                name: name.clone(),
                model,
                spec: prepared.test.spec.clone(),
                dnn_accuracy: prepared.dnn_accuracy,
            }));
        }
        Ok(Registry { models })
    }

    /// Resolves a request's model name; `None` means the default (first
    /// loaded) model.
    pub fn get(&self, name: Option<&str>) -> Option<&Arc<ServeModel>> {
        match name {
            None => self.models.first(),
            Some(n) => self.models.iter().find(|m| m.name == n),
        }
    }

    /// Every loaded model.
    pub fn models(&self) -> &[Arc<ServeModel>] {
        &self.models
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_resolve() {
        assert_eq!(scenario_by_name("tiny"), Some(Scenario::Tiny));
        assert_eq!(scenario_by_name("mnist-like"), Some(Scenario::MnistLike));
        assert_eq!(scenario_by_name("nope"), None);
    }

    #[test]
    fn load_rejects_unknown_and_empty() {
        assert!(Registry::load(&[]).is_err());
        assert!(Registry::load(&["not-a-scenario".to_string()]).is_err());
    }

    #[test]
    fn tiny_model_loads_and_describes_itself() {
        let registry = Registry::load(&["tiny".to_string()]).unwrap();
        let model = registry.get(None).unwrap();
        assert_eq!(model.name, "tiny");
        assert_eq!(model.input_len(), 16 * 16);
        let info = model.info();
        assert_eq!(info.classes, 4);
        assert!(info.weighted_layers >= 2);
        assert_eq!(registry.get(Some("tiny")).unwrap().name, "tiny");
        assert!(registry.get(Some("missing")).is_none());
    }
}
