//! End-to-end server tests over real sockets: routing, validation,
//! connection hygiene (half-written requests), micro-batching with
//! solo-vs-batched bit-identity, backpressure, and graceful ctrl-channel
//! shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use t2fsnn_serve::protocol::{HealthReport, InferRequest, InferResponse, ModelInfo};
use t2fsnn_serve::{start, Registry, ServeConfig, ServerHandle};

/// One blocking HTTP/1.1 exchange on a fresh connection.
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(90)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    read_response(&mut stream)
}

/// Parses `status` and body from a `Connection: close` response.
fn read_response(stream: &mut TcpStream) -> (u16, Vec<u8>) {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> (u16, Vec<u8>) {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head")
        + 4;
    let head = String::from_utf8_lossy(&raw[..head_end]);
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, raw[head_end..].to_vec())
}

fn infer_body(image: &[f32], early_exit: Option<bool>, model: Option<&str>) -> Vec<u8> {
    infer_body_deadline(image, early_exit, model, None)
}

fn infer_body_deadline(
    image: &[f32],
    early_exit: Option<bool>,
    model: Option<&str>,
    deadline_ms: Option<u64>,
) -> Vec<u8> {
    serde_json::to_vec(&InferRequest {
        model: model.map(str::to_string),
        image: image.to_vec(),
        early_exit,
        deadline_ms,
        timing: None,
    })
    .unwrap()
}

/// A started tiny-model server plus a test image from its own dataset.
fn test_server(config: ServeConfig) -> (ServerHandle, Vec<Vec<f32>>) {
    let registry = Registry::load(&["tiny".to_string()]).expect("load tiny model");
    let scenario = t2fsnn_bench::Scenario::Tiny;
    let data = scenario.dataset();
    let feature: usize = data.images.dims()[1..].iter().product();
    let images: Vec<Vec<f32>> = (0..8)
        .map(|i| data.images.data()[i * feature..(i + 1) * feature].to_vec())
        .collect();
    let handle = start(config, registry).expect("bind");
    (handle, images)
}

fn base_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        read_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    }
}

#[test]
fn routes_validation_and_shutdown() {
    let (handle, images) = test_server(base_config());
    let addr = handle.addr();

    let (status, body) = request(addr, "GET", "/healthz", b"");
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let health: HealthReport = serde_json::from_slice(&body).unwrap();
    assert_eq!(health.status, "ok");
    assert!(!health.draining);
    assert_eq!(health.queue_capacity, base_config().queue_capacity);
    assert_eq!(health.models.len(), 1);
    assert!(health.models[0].available);
    assert_eq!(health.models[0].name, "tiny");

    let (status, body) = request(addr, "GET", "/v1/models", b"");
    assert_eq!(status, 200);
    let models: Vec<ModelInfo> = serde_json::from_slice(&body).unwrap();
    assert_eq!(models.len(), 1);
    assert_eq!(models[0].name, "tiny");
    assert_eq!(models[0].classes, 4);

    // A valid inference, early exit off: full-window latency.
    let (status, body) = request(
        addr,
        "POST",
        "/v1/infer",
        &infer_body(&images[0], Some(false), None),
    );
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let resp: InferResponse = serde_json::from_slice(&body).unwrap();
    assert!(resp.label < 4);
    assert_eq!(resp.decision_step, None);
    assert!(resp.batch_size >= 1);
    assert!(resp.input_spikes > 0);
    assert!(resp.synop_adds > 0);
    assert!(resp.energy_truenorth > 0.0);

    // Early exit on (server default): decision step reported when fired.
    let (status, body) = request(
        addr,
        "POST",
        "/v1/infer",
        &infer_body(&images[0], None, None),
    );
    assert_eq!(status, 200);
    let ee: InferResponse = serde_json::from_slice(&body).unwrap();
    assert_eq!(ee.label, resp.label);
    if let Some(step) = ee.decision_step {
        assert_eq!(ee.steps, step);
    }

    // Validation failures.
    let (status, _) = request(addr, "POST", "/v1/infer", b"{not json");
    assert_eq!(status, 400);
    let (status, _) = request(
        addr,
        "POST",
        "/v1/infer",
        &infer_body(&[0.5; 3], None, None),
    );
    assert_eq!(status, 400);
    let (status, _) = request(
        addr,
        "POST",
        "/v1/infer",
        &infer_body(&images[0], None, Some("nope")),
    );
    assert_eq!(status, 404);
    let (status, _) = request(addr, "GET", "/no/such/path", b"");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "DELETE", "/v1/infer", b"");
    assert_eq!(status, 405);

    // An already-expired deadline (budget 0) is deterministically shed
    // with 504 — via the JSON field and via the header.
    let (status, body) = request(
        addr,
        "POST",
        "/v1/infer",
        &infer_body_deadline(&images[0], Some(true), None, Some(0)),
    );
    assert_eq!(status, 504, "{}", String::from_utf8_lossy(&body));
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(90)))
        .unwrap();
    let doomed = infer_body(&images[0], Some(true), None);
    let head = format!(
        "POST /v1/infer HTTP/1.1\r\nHost: t\r\nx-deadline-ms: 0\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        doomed.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(&doomed).unwrap();
    let (status, _) = read_response(&mut stream);
    assert_eq!(status, 504);

    // Body cap: Content-Length beyond the max is refused up front.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"POST /v1/infer HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
        .unwrap();
    let (status, _) = read_response(&mut stream);
    assert_eq!(status, 413);

    // Graceful ctrl-channel shutdown: responds, then joins cleanly.
    let (status, _) = request(addr, "POST", "/admin/shutdown", b"");
    assert_eq!(status, 200);
    handle.join();
}

#[test]
fn half_written_request_gets_408_and_frees_the_worker() {
    let mut config = base_config();
    config.workers = 2;
    let (handle, images) = test_server(config);
    let addr = handle.addr();

    // Two wedge attempts — as many as there are workers.
    let mut stalled: Vec<TcpStream> = (0..2)
        .map(|_| {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"POST /v1/infer HTTP/1.1\r\nContent-Length: 512\r\n\r\n{\"half")
                .unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s
        })
        .collect();

    // Each must be answered 408 once the read timeout expires…
    for s in &mut stalled {
        let (status, _) = read_response(s);
        assert_eq!(status, 408);
    }
    // …and the workers must be free again for a real request.
    let (status, _) = request(
        addr,
        "POST",
        "/v1/infer",
        &infer_body(&images[1], None, None),
    );
    assert_eq!(status, 200);

    handle.shutdown();
    handle.join();
}

#[test]
fn concurrent_load_batches_with_bit_identical_results() {
    let mut config = base_config();
    config.max_batch = 4;
    config.max_delay_us = 50_000; // generous window so batches form
    let (handle, images) = test_server(config);
    let addr = handle.addr();
    let image = &images[2];

    // Solo reference result (batch of one, before any load).
    let (status, body) = request(
        addr,
        "POST",
        "/v1/infer",
        &infer_body(image, Some(true), None),
    );
    assert_eq!(status, 200);
    let solo: InferResponse = serde_json::from_slice(&body).unwrap();
    assert_eq!(solo.batch_size, 1);

    // Concurrent identical requests: batches must form, bits must not move.
    let responses: Vec<InferResponse> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    (0..3)
                        .map(|_| {
                            let (status, body) = request(
                                addr,
                                "POST",
                                "/v1/infer",
                                &infer_body(image, Some(true), None),
                            );
                            assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
                            serde_json::from_slice::<InferResponse>(&body).unwrap()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(responses.len(), 12);
    assert!(
        responses.iter().any(|r| r.batch_size > 1),
        "no batch beyond size 1 formed under concurrent load"
    );
    for r in &responses {
        assert_eq!(r.label, solo.label);
        assert_eq!(r.decision_step, solo.decision_step);
        assert_eq!(r.steps, solo.steps);
        assert_eq!(r.top_potential.to_bits(), solo.top_potential.to_bits());
        assert_eq!(r.input_spikes, solo.input_spikes);
        assert_eq!(r.hidden_spikes, solo.hidden_spikes);
        assert_eq!(r.synop_adds, solo.synop_adds);
        assert_eq!(r.synop_mults, solo.synop_mults);
    }

    // The metrics endpoint reports the batching.
    let (status, body) = request(addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    let text = String::from_utf8_lossy(&body);
    assert!(text.contains("t2fsnn_serve_batches_total"));
    let beyond_one: u64 = handle.metrics().batches_beyond_one();
    assert!(beyond_one > 0, "metrics: {text}");

    handle.shutdown();
    handle.join();
}

#[test]
fn full_admission_queue_answers_429() {
    let mut config = base_config();
    config.max_batch = 4;
    config.queue_capacity = 2;
    config.max_delay_us = 700_000; // hold the first batch open
    config.workers = 12;
    let (handle, images) = test_server(config);
    let addr = handle.addr();
    let image = &images[3];

    // 12 concurrent requests against capacity batcher(4) + queue(2):
    // at least two must be refused with 429, the rest must succeed.
    let statuses: Vec<u16> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..12)
            .map(|_| {
                scope.spawn(|| {
                    request(
                        addr,
                        "POST",
                        "/v1/infer",
                        &infer_body(image, Some(true), None),
                    )
                    .0
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let ok = statuses.iter().filter(|&&s| s == 200).count();
    let rejected = statuses.iter().filter(|&&s| s == 429).count();
    assert_eq!(ok + rejected, 12, "unexpected statuses: {statuses:?}");
    assert!(rejected >= 2, "expected backpressure, got {statuses:?}");
    assert!(ok >= 1);

    handle.shutdown();
    handle.join();
}

#[test]
fn failed_model_degrades_to_503_and_healthz_reports_it() {
    // One good model, one that cannot load: the server still boots, the
    // broken slot answers 503 (not 404 — it *is* configured), health is
    // "degraded", and the good model keeps serving.
    let registry =
        Registry::load(&["tiny".to_string(), "broken".to_string()]).expect("registry boots");
    let scenario = t2fsnn_bench::Scenario::Tiny;
    let data = scenario.dataset();
    let feature: usize = data.images.dims()[1..].iter().product();
    let image: Vec<f32> = data.images.data()[..feature].to_vec();
    let handle = start(base_config(), registry).expect("bind");
    let addr = handle.addr();

    let (status, body) = request(addr, "GET", "/healthz", b"");
    assert_eq!(status, 200, "one model still serves");
    let health: HealthReport = serde_json::from_slice(&body).unwrap();
    assert_eq!(health.status, "degraded");
    assert_eq!(health.models.len(), 2);
    assert!(health.models[0].available);
    assert!(!health.models[1].available);
    assert!(health.models[1].error.is_some());

    let (status, _) = request(
        addr,
        "POST",
        "/v1/infer",
        &infer_body(&image, Some(true), Some("broken")),
    );
    assert_eq!(status, 503);
    let (status, _) = request(
        addr,
        "POST",
        "/v1/infer",
        &infer_body(&image, Some(true), Some("tiny")),
    );
    assert_eq!(status, 200);
    let (status, _) = request(
        addr,
        "POST",
        "/v1/infer",
        &infer_body(&image, Some(true), Some("never-configured")),
    );
    assert_eq!(status, 404);

    handle.shutdown();
    handle.join();
}

#[test]
fn all_models_failed_still_boots_and_healthz_is_503() {
    let registry = Registry::load(&["broken".to_string()]).expect("registry boots");
    let handle = start(base_config(), registry).expect("bind");
    let addr = handle.addr();

    let (status, body) = request(addr, "GET", "/healthz", b"");
    assert_eq!(status, 503);
    let health: HealthReport = serde_json::from_slice(&body).unwrap();
    assert_eq!(health.status, "unavailable");

    let (status, _) = request(
        addr,
        "POST",
        "/v1/infer",
        &infer_body(&[0.0; 4], None, None),
    );
    assert_eq!(status, 503);

    handle.shutdown();
    handle.join();
}

#[test]
fn forced_early_exit_is_bit_identical_to_explicit_early_exit() {
    // A static force threshold far above any realistic slack: every
    // deadline-carrying full-window request is degraded onto the
    // early-exit rung. Its response must carry `degraded: true` and be
    // bit-identical to the same image explicitly requested early-exit.
    let mut config = base_config();
    config.force_ee_slack_us = 3_600_000_000; // one hour of "slack"
    let (handle, images) = test_server(config);
    let addr = handle.addr();
    let image = &images[4];

    let (status, body) = request(
        addr,
        "POST",
        "/v1/infer",
        &infer_body(image, Some(true), None),
    );
    assert_eq!(status, 200);
    let explicit: InferResponse = serde_json::from_slice(&body).unwrap();
    assert!(!explicit.degraded, "explicit early-exit is not degraded");

    let (status, body) = request(
        addr,
        "POST",
        "/v1/infer",
        &infer_body_deadline(image, Some(false), None, Some(30_000)),
    );
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let forced: InferResponse = serde_json::from_slice(&body).unwrap();
    assert!(forced.degraded, "the ladder should have forced early-exit");
    assert_eq!(forced.label, explicit.label);
    assert_eq!(forced.decision_step, explicit.decision_step);
    assert_eq!(forced.steps, explicit.steps);
    assert_eq!(
        forced.top_potential.to_bits(),
        explicit.top_potential.to_bits()
    );
    assert_eq!(forced.input_spikes, explicit.input_spikes);
    assert_eq!(forced.hidden_spikes, explicit.hidden_spikes);
    assert_eq!(forced.synop_adds, explicit.synop_adds);
    assert_eq!(forced.synop_mults, explicit.synop_mults);

    // Without a deadline there is no slack to run out of: the same
    // full-window request is served undegraded.
    let (status, body) = request(
        addr,
        "POST",
        "/v1/infer",
        &infer_body(image, Some(false), None),
    );
    assert_eq!(status, 200);
    let full: InferResponse = serde_json::from_slice(&body).unwrap();
    assert!(!full.degraded);
    assert_eq!(full.decision_step, None);

    handle.shutdown();
    handle.join();
}
