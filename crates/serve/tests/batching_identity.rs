//! The serving-correctness property: a random request stream produces
//! **byte-identical** per-request outputs no matter how the dynamic
//! micro-batcher slices it — batch sizes {1, k, max}, worker counts
//! {1, 2, 4}, early-exit on and off — and whenever the early-exit fire
//! phase decides a request, its label equals the full-window label.
//!
//! This is what makes batching a pure throughput knob: the server can
//! re-batch arbitrarily under load without changing a single response.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use t2fsnn::{ImageInference, InferOptions, T2fsnn, T2fsnnConfig};
use t2fsnn_bench::{prepare, Scenario};
use t2fsnn_tensor::{Tensor, ThreadPool};

/// Builds the tiny scenario model exactly as the serve registry does.
fn tiny_model() -> (T2fsnn, Tensor) {
    let scenario = Scenario::Tiny;
    let prepared = prepare(scenario);
    let model = T2fsnn::from_dnn(
        &prepared.dnn,
        T2fsnnConfig::new(scenario.time_window()),
        scenario.initial_kernel(),
    )
    .unwrap();
    (model, prepared.test.images.clone())
}

/// A random request stream: images sampled (with repeats) from the
/// held-out set.
fn random_stream(images: &Tensor, len: usize, seed: u64) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = images.dims()[0];
    let picks: Vec<Tensor> = (0..len)
        .map(|_| images.index_axis0(rng.gen_range(0..n)).unwrap())
        .collect();
    Tensor::stack(&picks).unwrap()
}

/// Runs the stream through `infer` in consecutive batches of
/// `batch_size` on `workers` workers, concatenating per-request results.
fn run_stream(
    model: &T2fsnn,
    stream: &Tensor,
    batch_size: usize,
    workers: usize,
    early_exit: bool,
) -> Vec<ImageInference> {
    let pool = ThreadPool::new(workers);
    let n = stream.dims()[0];
    let feature: usize = stream.dims()[1..].iter().product();
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    while start < n {
        let end = (start + batch_size).min(n);
        let mut dims = stream.dims().to_vec();
        dims[0] = end - start;
        let batch =
            Tensor::from_vec(dims, stream.data()[start * feature..end * feature].to_vec()).unwrap();
        out.extend(
            model
                .infer_on(&batch, InferOptions { early_exit }, &pool)
                .unwrap(),
        );
        start = end;
    }
    out
}

/// Byte-level equality: every counted field plus the winning potential's
/// exact bit pattern.
fn assert_identical(a: &[ImageInference], b: &[ImageInference], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x, y, "{what}: request {i} differs");
        assert_eq!(
            x.top_potential.to_bits(),
            y.top_potential.to_bits(),
            "{what}: request {i} potential bits differ"
        );
    }
}

#[test]
fn random_streams_are_invariant_to_batching_and_workers() {
    let (model, images) = tiny_model();
    const MAX_BATCH: usize = 8;
    for seed in [11u64, 12] {
        let stream = random_stream(&images, 17, seed);
        for early_exit in [false, true] {
            let reference = run_stream(&model, &stream, 1, 1, early_exit);
            for batch_size in [3usize, MAX_BATCH] {
                for workers in [1usize, 2, 4] {
                    let got = run_stream(&model, &stream, batch_size, workers, early_exit);
                    assert_identical(
                        &reference,
                        &got,
                        &format!(
                            "seed {seed} early_exit {early_exit} \
                             batch {batch_size} workers {workers}"
                        ),
                    );
                }
            }
        }
    }
}

#[test]
fn early_exit_labels_match_full_window_labels() {
    let (model, images) = tiny_model();
    let stream = random_stream(&images, 24, 99);
    let full = run_stream(&model, &stream, 8, 2, false);
    let early = run_stream(&model, &stream, 8, 2, true);
    let mut decided = 0usize;
    for (i, (f, e)) in full.iter().zip(&early).enumerate() {
        assert_eq!(
            f.label, e.label,
            "request {i}: early-exit changed the label"
        );
        if e.decision_step.is_some() {
            decided += 1;
            // A decided request never costs more than the full run.
            assert!(e.total_spikes() <= f.total_spikes());
            assert!(e.synop_adds <= f.synop_adds);
            assert!(e.steps >= model.total_steps());
        }
    }
    assert!(decided > 0, "no request decided early at all");
}
