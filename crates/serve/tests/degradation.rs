//! Degradation-ladder and shedding properties, driven directly against
//! the batcher and queue (no sockets):
//!
//! * shedding takes exactly the deadline-expired jobs — never a job
//!   with remaining slack — and never reorders the survivors;
//! * a full-window request forced onto the early-exit rung produces a
//!   response bit-identical to an explicit early-exit request, across
//!   batch compositions (including mixed explicit/forced batches) and
//!   worker counts {1, 2, 4};
//! * an injected batch panic fails only its own batch's requests and
//!   the batcher keeps serving (no respawn needed);
//! * a registry loaded with a severity-0 perturbation serves bits
//!   identical to a clean registry, and the forced-early-exit identity
//!   holds on a perturbed model too (the ladder and the perturbation
//!   subsystem compose);
//! * unloading a model mid-flight evicts exactly its queued jobs to
//!   `503` in admission order, while the other models' jobs are neither
//!   reordered nor dropped and keep their bit-exact answers.

use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use t2fsnn::{ImageInference, InferOptions};
use t2fsnn_serve::batcher::{self, BatcherConfig, InferJob, JobError, JobOutcome};
use t2fsnn_serve::faults::Faults;
use t2fsnn_serve::metrics::Metrics;
use t2fsnn_serve::queue::Queue;
use t2fsnn_serve::{Registry, ServeModel};
use t2fsnn_tensor::perturb::PerturbSpec;
use t2fsnn_tensor::{Tensor, ThreadPool};

/// The tiny scenario model (as the registry loads it) plus a pool of
/// request images from its own dataset.
fn tiny() -> (Arc<ServeModel>, Vec<Vec<f32>>) {
    let registry = Registry::load(&["tiny".to_string()]).expect("load tiny");
    let model = registry.get(None).expect("tiny ready");
    let data = t2fsnn_bench::Scenario::Tiny.dataset();
    let feature: usize = data.images.dims()[1..].iter().product();
    let images = (0..8)
        .map(|i| data.images.data()[i * feature..(i + 1) * feature].to_vec())
        .collect();
    (model, images)
}

fn make_job(
    model: &Arc<ServeModel>,
    image: Vec<f32>,
    early_exit: bool,
    deadline: Option<Instant>,
) -> (InferJob, mpsc::Receiver<Result<JobOutcome, JobError>>) {
    let (tx, rx) = mpsc::channel();
    (
        InferJob {
            model: Arc::clone(model),
            image,
            early_exit,
            deadline,
            enqueued: Instant::now(),
            reply: tx,
        },
        rx,
    )
}

/// Property: `drain_matching` (the shedding primitive) removes exactly
/// the matching items in FIFO order and the survivors keep their exact
/// relative order — over random queue contents.
#[test]
fn shedding_never_reorders_survivors() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for _ in 0..200 {
        let n = rng.gen_range(1..30);
        let items: Vec<(usize, bool)> = (0..n).map(|i| (i, rng.gen_range(0..100) < 40)).collect();
        let queue = Queue::new(64);
        for item in &items {
            queue.push(*item).expect("push");
        }
        let shed = queue.drain_matching(|(_, expired)| *expired);
        let expected_shed: Vec<_> = items.iter().copied().filter(|(_, e)| *e).collect();
        assert_eq!(shed, expected_shed, "shed set or order wrong");
        let survivors = queue.drain_matching(|_| true);
        let expected_survivors: Vec<_> = items.iter().copied().filter(|(_, e)| !*e).collect();
        assert_eq!(survivors, expected_survivors, "survivor order changed");
    }
}

/// Property: the batcher sheds exactly the jobs whose deadline has
/// passed (answering `Shed`), and every job with remaining slack is
/// executed and answered — over random doomed/healthy mixes.
#[test]
fn batcher_sheds_only_expired_jobs() {
    let (model, images) = tiny();
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    for round in 0..3 {
        let queue = Queue::new(64);
        let metrics = Metrics::new(8);
        let now = Instant::now();
        let mut receivers = Vec::new();
        for i in 0..16 {
            // First two pinned so both classes always occur.
            let doomed = match i {
                0 => true,
                1 => false,
                _ => rng.gen_range(0..100) < 40,
            };
            let deadline = if doomed {
                // Budget 0: already due when the batcher looks at it.
                Some(now)
            } else {
                Some(now + Duration::from_secs(600))
            };
            let (job, rx) = make_job(&model, images[i % images.len()].clone(), true, deadline);
            assert!(queue.push(job).is_ok(), "queue push must succeed");
            receivers.push((rx, doomed));
        }
        queue.close();
        let config = BatcherConfig {
            max_batch: 8,
            max_delay: Duration::from_micros(100),
            force_ee_slack_us: 0,
        };
        batcher::run(&queue, &metrics, &config, None, None);
        let mut sheds = 0;
        for (i, (rx, doomed)) in receivers.iter().enumerate() {
            match rx.try_recv().expect("every admitted job must be answered") {
                Ok(_) => assert!(!doomed, "round {round}: expired job {i} was executed"),
                Err(JobError::Shed { .. }) => {
                    sheds += 1;
                    assert!(doomed, "round {round}: job {i} had slack and was shed");
                }
                Err(JobError::Late { .. }) => {
                    panic!("round {round}: job {i} answered late despite huge slack")
                }
                Err(JobError::Failed(e)) => panic!("round {round}: job {i} failed: {e}"),
                Err(JobError::Evicted { .. }) => {
                    panic!("round {round}: job {i} evicted with no lifecycle op")
                }
            }
        }
        let rendered = metrics.render();
        assert!(
            rendered.contains(&format!("t2fsnn_serve_deadline_shed_total {sheds}")),
            "shed counter mismatch: {rendered}"
        );
    }
}

/// The ladder's bit-identity contract: forced early-exit equals
/// explicit early-exit, byte for byte, across batch compositions
/// (solo, partial, full, and mixed explicit/forced batches) and worker
/// counts {1, 2, 4}.
#[test]
fn forced_early_exit_matches_explicit_across_batches_and_workers() {
    let (model, images) = tiny();
    let [c, h, w] = model.image_dims();

    // Reference: explicit early-exit, solo, for every worker count —
    // all must agree bit-for-bit (worker invariance), giving one
    // canonical answer per image.
    let mut references: Vec<ImageInference> = Vec::new();
    for image in &images {
        let tensor = Tensor::from_vec(vec![1, c, h, w], image.clone()).expect("tensor");
        let mut per_worker: Vec<ImageInference> = [1usize, 2, 4]
            .iter()
            .map(|&workers| {
                let pool = ThreadPool::new(workers);
                model
                    .model
                    .infer_on(&tensor, InferOptions { early_exit: true }, &pool)
                    .expect("solo inference")
                    .remove(0)
            })
            .collect();
        let canonical = per_worker.remove(0);
        for other in &per_worker {
            assert_eq!(&canonical, other, "solo early-exit differs across workers");
            assert_eq!(
                canonical.top_potential.to_bits(),
                other.top_potential.to_bits()
            );
        }
        references.push(canonical);
    }

    // Ladder runs: odd-indexed jobs ask full-window with a deadline and
    // a huge static force threshold (always forced onto the early-exit
    // rung); even-indexed jobs ask early-exit explicitly — both modes
    // share batches because the effective mode is the batch key.
    for max_batch in [1usize, 3, 8] {
        let queue = Queue::new(64);
        let metrics = Metrics::new(8);
        let now = Instant::now();
        let mut receivers = Vec::new();
        for (i, image) in images.iter().enumerate() {
            let explicit = i % 2 == 0;
            let deadline = (!explicit).then(|| now + Duration::from_secs(5));
            let (job, rx) = make_job(&model, image.clone(), explicit, deadline);
            assert!(queue.push(job).is_ok(), "queue push must succeed");
            receivers.push((rx, explicit));
        }
        queue.close();
        let config = BatcherConfig {
            max_batch,
            max_delay: Duration::from_micros(100),
            force_ee_slack_us: u64::MAX,
        };
        batcher::run(&queue, &metrics, &config, None, None);
        for (i, (rx, explicit)) in receivers.iter().enumerate() {
            let outcome = rx
                .try_recv()
                .expect("answered")
                .expect("executed, not shed");
            assert_eq!(
                outcome.degraded, !explicit,
                "max_batch {max_batch}: job {i} degraded flag wrong"
            );
            assert_eq!(
                &outcome.result, &references[i],
                "max_batch {max_batch}: job {i} bits differ from explicit early-exit"
            );
            assert_eq!(
                outcome.result.top_potential.to_bits(),
                references[i].top_potential.to_bits()
            );
        }
        if max_batch == 8 {
            assert!(
                metrics
                    .render()
                    .contains("t2fsnn_serve_forced_early_exit_total 4"),
                "forced-EE counter should see the 4 deadline jobs"
            );
        }
    }
}

/// The perturbation gate: a registry loaded under a severity-0 spec
/// (every knob scaled to zero) serves responses bit-identical to a
/// clean registry — the perturbed code path must be exactly the clean
/// path when the knobs are zero, not merely close.
#[test]
fn severity_zero_perturbed_registry_serves_identical_bits() {
    let (clean, images) = tiny();
    let spec = PerturbSpec::parse("5:igauss=0.1,jitter=3,drop=0.2,wgauss=0.1,wbitflip=0.01")
        .expect("spec")
        .scaled(0.0);
    assert!(spec.is_identity(), "severity 0 must scale to identity");
    let registry =
        Registry::load_perturbed(&["tiny".to_string()], Some(&spec)).expect("load perturbed");
    assert_eq!(registry.perturbed_models(), 0, "identity counts nothing");
    assert_eq!(registry.perturbed_weight_rows(), 0);
    let perturbed = registry.get(None).expect("tiny ready");
    let [c, h, w] = clean.image_dims();
    let pool = ThreadPool::new(2);
    for (i, image) in images.iter().enumerate() {
        let tensor = Tensor::from_vec(vec![1, c, h, w], image.clone()).expect("tensor");
        for options in [
            InferOptions { early_exit: false },
            InferOptions { early_exit: true },
        ] {
            let a = clean
                .model
                .infer_on(&tensor, options, &pool)
                .expect("clean inference")
                .remove(0);
            let b = perturbed
                .model
                .infer_on(&tensor, options, &pool)
                .expect("perturbed inference")
                .remove(0);
            assert_eq!(a, b, "image {i}: severity-0 bits differ (ee={options:?})");
            assert_eq!(a.top_potential.to_bits(), b.top_potential.to_bits());
        }
    }
}

/// The ladder composes with the perturbation subsystem: on a model
/// loaded with a non-identity event+weight perturbation, forced
/// early-exit still equals explicit early-exit bit-for-bit across batch
/// compositions and worker counts.
#[test]
fn forced_early_exit_matches_explicit_under_perturbation() {
    let spec = PerturbSpec::parse("5:jitter=1,drop=0.05,wgauss=0.02").expect("spec");
    let registry =
        Registry::load_perturbed(&["tiny".to_string()], Some(&spec)).expect("load perturbed");
    assert_eq!(registry.perturbed_models(), 1);
    let model = registry.get(None).expect("tiny ready");
    let data = t2fsnn_bench::Scenario::Tiny.dataset();
    let feature: usize = data.images.dims()[1..].iter().product();
    let images: Vec<Vec<f32>> = (0..6)
        .map(|i| data.images.data()[i * feature..(i + 1) * feature].to_vec())
        .collect();
    let [c, h, w] = model.image_dims();

    // Solo explicit-EE references, per worker count — the perturbed
    // model must stay worker-invariant (per-image content-keyed
    // streams), or the ladder identity below would be meaningless.
    let mut references: Vec<ImageInference> = Vec::new();
    for image in &images {
        let tensor = Tensor::from_vec(vec![1, c, h, w], image.clone()).expect("tensor");
        let mut per_worker: Vec<ImageInference> = [1usize, 2, 4]
            .iter()
            .map(|&workers| {
                let pool = ThreadPool::new(workers);
                model
                    .model
                    .infer_on(&tensor, InferOptions { early_exit: true }, &pool)
                    .expect("solo inference")
                    .remove(0)
            })
            .collect();
        let canonical = per_worker.remove(0);
        for other in &per_worker {
            assert_eq!(
                &canonical, other,
                "perturbed solo early-exit differs across workers"
            );
        }
        references.push(canonical);
    }

    for max_batch in [1usize, 3, 6] {
        let queue = Queue::new(64);
        let metrics = Metrics::new(8);
        let now = Instant::now();
        let mut receivers = Vec::new();
        for (i, image) in images.iter().enumerate() {
            let explicit = i % 2 == 0;
            let deadline = (!explicit).then(|| now + Duration::from_secs(5));
            let (job, rx) = make_job(&model, image.clone(), explicit, deadline);
            assert!(queue.push(job).is_ok(), "queue push must succeed");
            receivers.push((rx, explicit));
        }
        queue.close();
        let config = BatcherConfig {
            max_batch,
            max_delay: Duration::from_micros(100),
            force_ee_slack_us: u64::MAX,
        };
        batcher::run(&queue, &metrics, &config, None, None);
        for (i, (rx, explicit)) in receivers.iter().enumerate() {
            let outcome = rx
                .try_recv()
                .expect("answered")
                .expect("executed, not shed");
            assert_eq!(
                outcome.degraded, !explicit,
                "max_batch {max_batch}: job {i} degraded flag wrong"
            );
            assert_eq!(
                &outcome.result, &references[i],
                "max_batch {max_batch}: perturbed job {i} bits differ from explicit early-exit"
            );
        }
    }
}

/// Panic isolation: with `panic=1` every batch panics; each batch's own
/// jobs get `Failed`, the batcher survives all of them in one run, and
/// the panics are counted.
#[test]
fn injected_batch_panic_fails_only_its_batch() {
    let (model, images) = tiny();
    let faults = Faults::parse("1:panic=1").expect("spec");
    let queue = Queue::new(64);
    let metrics = Metrics::new(8);
    let mut receivers = Vec::new();
    for i in 0..6 {
        let (job, rx) = make_job(&model, images[i % images.len()].clone(), true, None);
        assert!(queue.push(job).is_ok(), "queue push must succeed");
        receivers.push(rx);
    }
    queue.close();
    let config = BatcherConfig {
        max_batch: 2,
        max_delay: Duration::from_micros(100),
        force_ee_slack_us: 0,
    };
    batcher::run(&queue, &metrics, &config, Some(&faults), None);
    for (i, rx) in receivers.iter().enumerate() {
        match rx.try_recv().expect("every job answered despite panics") {
            Err(JobError::Failed(message)) => {
                assert!(message.contains("panicked"), "job {i}: {message}")
            }
            Ok(_) => panic!("job {i}: expected Failed, got a successful outcome"),
            Err(JobError::Shed { .. }) => panic!("job {i}: expected Failed, got Shed"),
            Err(JobError::Late { .. }) => panic!("job {i}: expected Failed, got Late"),
            Err(JobError::Evicted { .. }) => panic!("job {i}: expected Failed, got Evicted"),
        }
    }
    let rendered = metrics.render();
    assert!(
        rendered.contains("t2fsnn_serve_worker_panics_total 3"),
        "three batches of two must have panicked: {rendered}"
    );
}

/// A second "model" for multi-model queue tests: the tiny scenario
/// loaded again under a different registry name, so jobs are
/// distinguishable by `model.name` while executing identically.
fn tiny_as(name: &str) -> Arc<ServeModel> {
    let registry = Registry::load(&["tiny".to_string()]).expect("load tiny");
    let arc = registry.get(None).expect("tiny ready");
    drop(registry);
    let mut model = Arc::try_unwrap(arc)
        .unwrap_or_else(|_| panic!("registry dropped; this must be the only Arc"));
    model.name = name.to_string();
    Arc::new(model)
}

/// Unload-under-load contract: draining a model's queued jobs answers
/// exactly that model's jobs `Evicted` (→ `503`) in admission order,
/// and the surviving jobs for other models are neither reordered nor
/// dropped — each is then executed and answers its own image's bits.
#[test]
fn unload_drains_only_the_named_model_in_admission_order() {
    let (keeper, images) = tiny();
    let doomed_model = tiny_as("tiny-b");
    let queue = Queue::new(64);
    let metrics = Metrics::new(8);

    // Solo references for the surviving model's jobs.
    let [c, h, w] = keeper.image_dims();
    let references: Vec<ImageInference> = images
        .iter()
        .map(|image| {
            let tensor = Tensor::from_vec(vec![1, c, h, w], image.clone()).expect("tensor");
            keeper
                .model
                .infer(&tensor, InferOptions { early_exit: true })
                .expect("solo inference")
                .remove(0)
        })
        .collect();

    // Interleave the two models' jobs: even indices tiny, odd tiny-b.
    let mut keeper_rx = Vec::new();
    let mut doomed_rx = Vec::new();
    for i in 0..12 {
        let image = images[(i / 2) % images.len()].clone();
        if i % 2 == 0 {
            let (job, rx) = make_job(&keeper, image, true, None);
            assert!(queue.push(job).is_ok());
            keeper_rx.push((rx, (i / 2) % images.len()));
        } else {
            let (job, rx) = make_job(&doomed_model, image, true, None);
            assert!(queue.push(job).is_ok());
            doomed_rx.push((rx, i));
        }
    }

    // The unload path: evict tiny-b's queued jobs, touch nothing else.
    let evicted =
        t2fsnn_serve::lifecycle::drain_model_jobs(&queue, "tiny-b", "was unloaded", &metrics);
    assert_eq!(evicted, doomed_rx.len(), "exactly tiny-b's jobs evicted");
    assert_eq!(queue.len(), keeper_rx.len(), "no survivor dropped");

    // Evictions answered immediately, in admission order: because the
    // drain replies in FIFO match order and each receiver is checked in
    // admission order, every receiver must already hold its answer.
    for (rx, i) in &doomed_rx {
        match rx.try_recv().expect("evicted job answered synchronously") {
            Err(JobError::Evicted { model, reason }) => {
                assert_eq!(model, "tiny-b", "job {i}");
                assert_eq!(reason, "was unloaded", "job {i}");
            }
            Ok(_) => panic!("job {i}: expected Evicted, got a successful outcome"),
            Err(e) => panic!("job {i}: expected Evicted, got {e:?}"),
        }
    }
    assert!(
        metrics
            .render()
            .contains(&format!("t2fsnn_serve_model_unavailable_total {evicted}")),
        "evictions must count as model-unavailable refusals"
    );

    // The survivors run as if the unload never happened: all answered,
    // none shed, each with its own image's solo bits.
    queue.close();
    let config = BatcherConfig {
        max_batch: 4,
        max_delay: Duration::from_micros(100),
        force_ee_slack_us: 0,
    };
    batcher::run(&queue, &metrics, &config, None, None);
    for (rx, image_index) in &keeper_rx {
        let outcome = rx
            .try_recv()
            .expect("surviving job answered")
            .expect("surviving job executed");
        assert_eq!(
            &outcome.result, &references[*image_index],
            "surviving job for image {image_index} lost bit-identity"
        );
    }
}
