//! Golden `/metrics` scrape: every exposed line must parse as
//! `name{labels} value`, series must be unique, and the documented
//! metric families must all be present — a pin against accidental
//! renames or malformed expositions (the README table and downstream
//! scrapers depend on these exact names).

use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use t2fsnn_serve::protocol::InferRequest;
use t2fsnn_serve::{start, Registry, ServeConfig, ServerHandle};

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(90)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head")
        + 4;
    let head = String::from_utf8_lossy(&raw[..head_end]);
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, raw[head_end..].to_vec())
}

fn test_server() -> (ServerHandle, Vec<f32>) {
    let registry = Registry::load(&["tiny".to_string()]).expect("load tiny model");
    let data = t2fsnn_bench::Scenario::Tiny.dataset();
    let feature: usize = data.images.dims()[1..].iter().product();
    let image = data.images.data()[..feature].to_vec();
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    };
    let handle = start(config, registry).expect("bind");
    (handle, image)
}

/// One parsed series: metric name + sorted label pairs.
fn parse_line(line: &str) -> (String, BTreeMap<String, String>, f64) {
    let (series, value) = line
        .rsplit_once(' ')
        .unwrap_or_else(|| panic!("no value separator in {line:?}"));
    let value: f64 = value
        .parse()
        .unwrap_or_else(|_| panic!("unparsable value in {line:?}"));
    let (name, labels) = match series.split_once('{') {
        None => (series.to_string(), BTreeMap::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("unclosed label set in {line:?}"));
            let mut labels = BTreeMap::new();
            for pair in body.split(',') {
                let (key, val) = pair
                    .split_once('=')
                    .unwrap_or_else(|| panic!("bad label pair {pair:?} in {line:?}"));
                let val = val
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .unwrap_or_else(|| panic!("unquoted label value in {line:?}"));
                assert!(
                    labels.insert(key.to_string(), val.to_string()).is_none(),
                    "duplicate label key {key:?} in {line:?}"
                );
            }
            (name.to_string(), labels)
        }
    };
    assert!(
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
        "metric name {name:?} is not snake_case in {line:?}"
    );
    (name, labels, value)
}

/// The documented metric families (the README `/metrics` reference
/// table): all must be present on a live server that has served at
/// least one request. Renaming any of these is a breaking change for
/// scrapers — update the README table *and* this list deliberately.
const DOCUMENTED: &[&str] = &[
    "t2fsnn_serve_responses_total",
    "t2fsnn_serve_queue_depth",
    "t2fsnn_serve_queue_rejections_total",
    "t2fsnn_serve_batches_total",
    "t2fsnn_serve_batch_size_total",
    "t2fsnn_serve_latency_us_bucket",
    "t2fsnn_serve_latency_us_sum",
    "t2fsnn_serve_latency_us_count",
    "t2fsnn_serve_latency_us",
    "t2fsnn_serve_request_stage_us_bucket",
    "t2fsnn_serve_request_stage_us_sum",
    "t2fsnn_serve_request_stage_us_count",
    "t2fsnn_serve_early_exit_decided_total",
    "t2fsnn_serve_infer_errors_total",
    "t2fsnn_serve_deadline_shed_total",
    "t2fsnn_serve_unmeetable_shed_total",
    "t2fsnn_serve_deadline_late_answers_total",
    "t2fsnn_serve_forced_early_exit_total",
    "t2fsnn_serve_worker_panics_total",
    "t2fsnn_serve_batcher_respawns_total",
    "t2fsnn_serve_model_unavailable_total",
    "t2fsnn_serve_faults_injected_total",
    "t2fsnn_serve_perturbed_models_total",
    "t2fsnn_serve_perturbed_weight_rows_total",
    "t2fsnn_serve_canary_rejections_total",
    "t2fsnn_serve_quarantine_trips_total",
    "t2fsnn_serve_quarantine_probes_total",
    "t2fsnn_serve_quarantine_readmissions_total",
    "t2fsnn_serve_model_loads_total",
    "t2fsnn_serve_model_unloads_total",
    "t2fsnn_serve_dispatch_slack_us_bucket",
];

#[test]
fn metrics_scrape_is_wellformed_unique_and_complete() {
    let (handle, image) = test_server();
    let addr = handle.addr();

    // Serve a couple of requests so request-scoped families (latency,
    // per-model stage histograms) have series.
    let body = serde_json::to_vec(&InferRequest {
        model: None,
        image,
        early_exit: Some(true),
        deadline_ms: None,
        timing: None,
    })
    .unwrap();
    for _ in 0..2 {
        let (status, reply) = request(addr, "POST", "/v1/infer", &body);
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&reply));
    }

    let (status, scrape) = request(addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    let text = String::from_utf8(scrape).expect("metrics must be UTF-8");

    let mut seen_series = BTreeSet::new();
    let mut seen_names = BTreeSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let (name, labels, value) = parse_line(line);
        assert!(
            value.is_finite() && value >= 0.0,
            "metric value out of range in {line:?}"
        );
        let series_key = format!("{name}{labels:?}");
        assert!(seen_series.insert(series_key), "duplicate series: {line:?}");
        seen_names.insert(name);
    }
    for family in DOCUMENTED {
        assert!(
            seen_names.contains(*family),
            "documented metric family `{family}` missing from scrape:\n{text}"
        );
    }
    // Label sanity on the structured families.
    let stage_lines: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("t2fsnn_serve_request_stage_us_bucket"))
        .collect();
    assert!(!stage_lines.is_empty());
    for line in &stage_lines {
        let (_, labels, _) = parse_line(line);
        assert_eq!(labels["model"], "tiny");
        assert!(matches!(
            labels["stage"].as_str(),
            "queue" | "exec" | "total"
        ));
        assert!(labels.contains_key("le"));
    }

    handle.shutdown();
    handle.join();
}
