//! Network layers: convolution, dense, ReLU, pooling, flatten.
//!
//! Layers are represented by a closed [`Layer`] enum rather than trait
//! objects: the DNN→SNN conversion needs to pattern-match on layer kinds
//! and lift their weights, which an enum makes direct and exhaustive.

mod batchnorm;
mod conv;
mod dropout;
mod linear;
mod simple;

pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use linear::Linear;
pub use simple::{Flatten, Pool, PoolKind, Relu};

use serde::{Deserialize, Serialize};
use t2fsnn_tensor::{Result, Tensor};

/// One network layer of any supported kind.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use t2fsnn_dnn::layers::{Layer, Relu};
/// use t2fsnn_tensor::Tensor;
///
/// # fn main() -> Result<(), t2fsnn_tensor::TensorError> {
/// let mut layer = Layer::from(Relu::new());
/// let y = layer.forward(&Tensor::from_vec([2], vec![-1.0, 1.0])?, false)?;
/// assert_eq!(y.data(), &[0.0, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Layer {
    /// 2-D convolution with bias.
    Conv2d(Conv2d),
    /// Fully connected layer.
    Linear(Linear),
    /// Rectified linear unit.
    Relu(Relu),
    /// Average or max pooling.
    Pool(Pool),
    /// Collapse spatial dims before dense layers.
    Flatten(Flatten),
    /// Inverted dropout (train-time only; identity at inference).
    Dropout(Dropout),
    /// Per-channel batch normalization (fold before SNN conversion).
    BatchNorm(BatchNorm2d),
}

impl Layer {
    /// Forward pass through the layer. `train` enables caching for a later
    /// [`Layer::backward`].
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the concrete layer.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        match self {
            Layer::Conv2d(l) => l.forward(input, train),
            Layer::Linear(l) => l.forward(input, train),
            Layer::Relu(l) => Ok(l.forward(input, train)),
            Layer::Pool(l) => l.forward(input, train),
            Layer::Flatten(l) => l.forward(input, train),
            Layer::Dropout(l) => Ok(l.forward(input, train)),
            Layer::BatchNorm(l) => l.forward(input, train),
        }
    }

    /// Backward pass; accumulates parameter gradients where applicable and
    /// returns the gradient with respect to the layer input.
    ///
    /// # Errors
    ///
    /// Returns an error if no `forward(train=true)` preceded this call.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        match self {
            Layer::Conv2d(l) => l.backward(grad_out),
            Layer::Linear(l) => l.backward(grad_out),
            Layer::Relu(l) => l.backward(grad_out),
            Layer::Pool(l) => l.backward(grad_out),
            Layer::Flatten(l) => l.backward(grad_out),
            Layer::Dropout(l) => l.backward(grad_out),
            Layer::BatchNorm(l) => l.backward(grad_out),
        }
    }

    /// Visits `(parameter, gradient)` pairs, in a deterministic order, for
    /// layers that have parameters. The gradient tensor is zeroed lazily if
    /// no backward pass has populated it.
    pub fn visit_params(&mut self, f: &mut impl FnMut(&mut Tensor, &mut Tensor)) {
        match self {
            Layer::Conv2d(l) => {
                let gw = l
                    .grad_weight
                    .get_or_insert_with(|| Tensor::zeros(l.weight.shape().clone()));
                f(&mut l.weight, gw);
                let gb = l
                    .grad_bias
                    .get_or_insert_with(|| Tensor::zeros(l.bias.shape().clone()));
                f(&mut l.bias, gb);
            }
            Layer::Linear(l) => {
                let gw = l
                    .grad_weight
                    .get_or_insert_with(|| Tensor::zeros(l.weight.shape().clone()));
                f(&mut l.weight, gw);
                let gb = l
                    .grad_bias
                    .get_or_insert_with(|| Tensor::zeros(l.bias.shape().clone()));
                f(&mut l.bias, gb);
            }
            Layer::BatchNorm(l) => {
                let gg = l
                    .grad_gamma
                    .get_or_insert_with(|| Tensor::zeros(l.gamma.shape().clone()));
                f(&mut l.gamma, gg);
                let gb = l
                    .grad_beta
                    .get_or_insert_with(|| Tensor::zeros(l.beta.shape().clone()));
                f(&mut l.beta, gb);
            }
            Layer::Relu(_) | Layer::Pool(_) | Layer::Flatten(_) | Layer::Dropout(_) => {}
        }
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        match self {
            Layer::Conv2d(l) => {
                l.grad_weight = None;
                l.grad_bias = None;
            }
            Layer::Linear(l) => {
                l.grad_weight = None;
                l.grad_bias = None;
            }
            Layer::BatchNorm(l) => {
                l.grad_gamma = None;
                l.grad_beta = None;
            }
            Layer::Relu(_) | Layer::Pool(_) | Layer::Flatten(_) | Layer::Dropout(_) => {}
        }
    }

    /// Returns `true` for layers carrying trainable parameters.
    /// Batch norm's γ/β are trainable but the layer is folded away before
    /// conversion, so it is *not* a weighted (neuron-bearing) layer.
    pub fn has_params(&self) -> bool {
        matches!(self, Layer::Conv2d(_) | Layer::Linear(_))
    }

    /// Short kind tag used in summaries ("conv", "linear", …).
    pub fn kind(&self) -> &'static str {
        match self {
            Layer::Conv2d(_) => "conv",
            Layer::Linear(_) => "linear",
            Layer::Relu(_) => "relu",
            Layer::Pool(_) => "pool",
            Layer::Flatten(_) => "flatten",
            Layer::Dropout(_) => "dropout",
            Layer::BatchNorm(_) => "batchnorm",
        }
    }

    /// Number of trainable scalars in the layer.
    pub fn param_count(&self) -> usize {
        match self {
            Layer::Conv2d(l) => l.weight.numel() + l.bias.numel(),
            Layer::Linear(l) => l.weight.numel() + l.bias.numel(),
            Layer::BatchNorm(l) => l.gamma.numel() + l.beta.numel(),
            _ => 0,
        }
    }
}

impl From<Conv2d> for Layer {
    fn from(l: Conv2d) -> Self {
        Layer::Conv2d(l)
    }
}

impl From<Linear> for Layer {
    fn from(l: Linear) -> Self {
        Layer::Linear(l)
    }
}

impl From<Relu> for Layer {
    fn from(l: Relu) -> Self {
        Layer::Relu(l)
    }
}

impl From<Pool> for Layer {
    fn from(l: Pool) -> Self {
        Layer::Pool(l)
    }
}

impl From<Flatten> for Layer {
    fn from(l: Flatten) -> Self {
        Layer::Flatten(l)
    }
}

impl From<Dropout> for Layer {
    fn from(l: Dropout) -> Self {
        Layer::Dropout(l)
    }
}

impl From<BatchNorm2d> for Layer {
    fn from(l: BatchNorm2d) -> Self {
        Layer::BatchNorm(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use t2fsnn_tensor::ops::Conv2dSpec;

    #[test]
    fn enum_dispatch_forwards() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut layer: Layer = Conv2d::new(&mut rng, 1, 2, 3, Conv2dSpec::new(1, 1)).into();
        let y = layer.forward(&Tensor::zeros([1, 1, 4, 4]), false).unwrap();
        assert_eq!(y.dims(), &[1, 2, 4, 4]);
        assert_eq!(layer.kind(), "conv");
        assert!(layer.has_params());
        assert_eq!(layer.param_count(), 2 * 9 + 2);
    }

    #[test]
    fn visit_params_provides_lazy_zero_grads() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut layer: Layer = Linear::new(&mut rng, 3, 2).into();
        let mut seen = 0;
        layer.visit_params(&mut |p, g| {
            assert_eq!(p.shape(), g.shape());
            assert!(g.iter().all(|&x| x == 0.0));
            seen += 1;
        });
        assert_eq!(seen, 2);
    }

    #[test]
    fn zero_grad_clears_accumulation() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut layer: Layer = Linear::new(&mut rng, 3, 2).into();
        let x = Tensor::ones([1, 3]);
        let y = layer.forward(&x, true).unwrap();
        layer.backward(&Tensor::ones(y.shape().clone())).unwrap();
        layer.zero_grad();
        layer.visit_params(&mut |_, g| assert!(g.iter().all(|&x| x == 0.0)));
    }

    #[test]
    fn parameter_free_layers_report_no_params() {
        assert!(!Layer::from(Relu::new()).has_params());
        assert!(!Layer::from(Flatten::new()).has_params());
        assert_eq!(Layer::from(Pool::down2(PoolKind::Avg)).param_count(), 0);
    }
}
