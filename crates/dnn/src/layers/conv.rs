//! Trainable 2-D convolution layer.

use rand::Rng;
use serde::{Deserialize, Serialize};
use t2fsnn_tensor::ops::{conv2d, conv2d_backward, Conv2dSpec};
use t2fsnn_tensor::{init, Result, Tensor, TensorError};

/// A 2-D convolution with bias, the workhorse of the VGG family.
///
/// Weight layout is `[out_channels, in_channels, kh, kw]`; forward input is
/// `[N, in_channels, H, W]`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use t2fsnn_dnn::layers::Conv2d;
/// use t2fsnn_tensor::{ops::Conv2dSpec, Tensor};
///
/// # fn main() -> Result<(), t2fsnn_tensor::TensorError> {
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let mut conv = Conv2d::new(&mut rng, 3, 8, 3, Conv2dSpec::new(1, 1));
/// let out = conv.forward(&Tensor::zeros([2, 3, 16, 16]), false)?;
/// assert_eq!(out.dims(), &[2, 8, 16, 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    /// Filter bank, `[O, I, K, K]`.
    pub weight: Tensor,
    /// Per-output-channel bias, `[O]`.
    pub bias: Tensor,
    /// Stride / padding configuration.
    pub spec: Conv2dSpec,
    /// Accumulated weight gradient (same shape as `weight`).
    #[serde(skip)]
    pub grad_weight: Option<Tensor>,
    /// Accumulated bias gradient (same shape as `bias`).
    #[serde(skip)]
    pub grad_bias: Option<Tensor>,
    #[serde(skip)]
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a He-initialized convolution with square `kernel`×`kernel`
    /// filters.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        spec: Conv2dSpec,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        Conv2d {
            weight: init::he_normal(rng, [out_channels, in_channels, kernel, kernel], fan_in),
            bias: Tensor::zeros([out_channels]),
            spec,
            grad_weight: None,
            grad_bias: None,
            cached_input: None,
        }
    }

    /// Creates a convolution from explicit weights (used by tests and by
    /// the DNN→SNN conversion round trip).
    ///
    /// # Errors
    ///
    /// Returns an error if `weight` is not rank 4 or `bias` length does not
    /// match the output channel count.
    pub fn from_parts(weight: Tensor, bias: Tensor, spec: Conv2dSpec) -> Result<Self> {
        if weight.rank() != 4 || bias.rank() != 1 || bias.dims()[0] != weight.dims()[0] {
            return Err(TensorError::ShapeMismatch {
                op: "Conv2d::from_parts",
                lhs: weight.shape().clone(),
                rhs: bias.shape().clone(),
            });
        }
        Ok(Conv2d {
            weight,
            bias,
            spec,
            grad_weight: None,
            grad_bias: None,
            cached_input: None,
        })
    }

    /// Forward pass. With `train == true` the input is cached for
    /// [`Conv2d::backward`].
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying convolution.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        if train {
            self.cached_input = Some(input.clone());
        }
        conv2d(input, &self.weight, &self.bias, self.spec)
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient with respect to the input.
    ///
    /// # Errors
    ///
    /// Returns an error if no forward pass with `train == true` preceded
    /// this call, or on shape inconsistencies.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(TensorError::InvalidArgument {
                op: "Conv2d::backward",
                message: "backward called before forward(train=true)".to_string(),
            })?;
        let (gi, gw, gb) = conv2d_backward(input, &self.weight, grad_out, self.spec)?;
        match &mut self.grad_weight {
            Some(g) => g.add_scaled(&gw, 1.0)?,
            None => self.grad_weight = Some(gw),
        }
        match &mut self.grad_bias {
            Some(g) => g.add_scaled(&gb, 1.0)?,
            None => self.grad_bias = Some(gb),
        }
        Ok(gi)
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.weight.dims()[0]
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.weight.dims()[1]
    }

    /// Multiply-accumulate count for one input of spatial size `h × w`
    /// (used by the Table III cost analysis).
    pub fn macs(&self, h: usize, w: usize) -> u64 {
        let k = self.weight.dims()[2];
        let oh = self.spec.output_dim(h, k) as u64;
        let ow = self.spec.output_dim(w, k) as u64;
        oh * ow * self.out_channels() as u64 * self.in_channels() as u64 * (k * k) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(1)
    }

    #[test]
    fn forward_shape() {
        let mut conv = Conv2d::new(&mut rng(), 3, 5, 3, Conv2dSpec::new(1, 1));
        let out = conv.forward(&Tensor::zeros([2, 3, 8, 8]), false).unwrap();
        assert_eq!(out.dims(), &[2, 5, 8, 8]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut conv = Conv2d::new(&mut rng(), 1, 1, 3, Conv2dSpec::default());
        assert!(conv.backward(&Tensor::zeros([1, 1, 2, 2])).is_err());
    }

    #[test]
    fn backward_accumulates_gradients() {
        let mut conv = Conv2d::new(&mut rng(), 1, 2, 3, Conv2dSpec::new(1, 1));
        let x = Tensor::ones([1, 1, 4, 4]);
        let y = conv.forward(&x, true).unwrap();
        let g = Tensor::ones(y.shape().clone());
        conv.backward(&g).unwrap();
        let first = conv.grad_weight.clone().unwrap();
        conv.forward(&x, true).unwrap();
        conv.backward(&g).unwrap();
        let doubled = conv.grad_weight.clone().unwrap();
        assert!(doubled.all_close(&first.scale(2.0), 1e-5));
    }

    #[test]
    fn from_parts_validates() {
        assert!(Conv2d::from_parts(
            Tensor::zeros([2, 1, 3, 3]),
            Tensor::zeros([3]),
            Conv2dSpec::default()
        )
        .is_err());
        assert!(Conv2d::from_parts(
            Tensor::zeros([2, 1, 3, 3]),
            Tensor::zeros([2]),
            Conv2dSpec::default()
        )
        .is_ok());
    }

    #[test]
    fn macs_formula() {
        let conv = Conv2d::new(&mut rng(), 3, 8, 3, Conv2dSpec::new(1, 1));
        // 16×16 output positions × 8 out × 3 in × 9 kernel
        assert_eq!(conv.macs(16, 16), 16 * 16 * 8 * 3 * 9);
    }
}
