//! 2-D batch normalization with conversion-time folding.
//!
//! Batch norm stabilizes training of the deeper scaled VGGs. It has no
//! spiking equivalent, so before DNN→SNN conversion it must be *folded*
//! into the preceding convolution (Rueckauer et al. 2017, Sec. 2.2):
//! `W' = γ/σ · W`, `b' = γ/σ·(b − μ) + β` — after which the network is
//! mathematically identical at inference time and converts as usual. See
//! [`crate::Network::fold_batchnorm`].

use serde::{Deserialize, Serialize};
use t2fsnn_tensor::{Result, Tensor, TensorError};

/// Per-channel batch normalization for `[N, C, H, W]` activations.
///
/// # Examples
///
/// ```
/// use t2fsnn_dnn::layers::BatchNorm2d;
/// use t2fsnn_tensor::Tensor;
///
/// # fn main() -> Result<(), t2fsnn_tensor::TensorError> {
/// let mut bn = BatchNorm2d::new(3);
/// let x = Tensor::from_fn([2, 3, 4, 4], |i| (i[1] * 10 + i[2]) as f32);
/// let y = bn.forward(&x, true)?;
/// assert_eq!(y.dims(), x.dims());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchNorm2d {
    /// Learnable per-channel scale γ.
    pub gamma: Tensor,
    /// Learnable per-channel shift β.
    pub beta: Tensor,
    /// Running mean (inference statistics).
    pub running_mean: Tensor,
    /// Running variance (inference statistics).
    pub running_var: Tensor,
    /// Exponential-average momentum for the running statistics.
    pub momentum: f32,
    /// Numerical-stability constant.
    pub eps: f32,
    /// Accumulated γ gradient.
    #[serde(skip)]
    pub grad_gamma: Option<Tensor>,
    /// Accumulated β gradient.
    #[serde(skip)]
    pub grad_beta: Option<Tensor>,
    #[serde(skip)]
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps
    /// (γ = 1, β = 0, running stats at the standard-normal prior).
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Tensor::ones([channels]),
            beta: Tensor::zeros([channels]),
            running_mean: Tensor::zeros([channels]),
            running_var: Tensor::ones([channels]),
            momentum: 0.1,
            eps: 1e-5,
            grad_gamma: None,
            grad_beta: None,
            cache: None,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.gamma.dims()[0]
    }

    fn check_input(&self, input: &Tensor) -> Result<(usize, usize, usize, usize)> {
        if input.rank() != 4 || input.dims()[1] != self.channels() {
            return Err(TensorError::InvalidArgument {
                op: "BatchNorm2d::forward",
                message: format!(
                    "expected [N, {}, H, W], got {}",
                    self.channels(),
                    input.shape()
                ),
            });
        }
        let d = input.dims();
        Ok((d[0], d[1], d[2], d[3]))
    }

    /// Forward pass. In training mode uses batch statistics and updates
    /// the running averages; in eval mode uses the running statistics.
    ///
    /// The per-channel reductions run sequentially in a fixed order (a
    /// deterministic f32 sum must pick *one* order; this is the cheap
    /// pass), and the normalization writes are parallelized over the
    /// batch on the scoped [`t2fsnn_tensor::ThreadPool`] into disjoint
    /// per-image slices — bit-identical for every worker count.
    ///
    /// # Errors
    ///
    /// Returns an error for inputs that are not `[N, C, H, W]` with the
    /// layer's channel count.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let (n, c, h, w) = self.check_input(input)?;
        let per_channel = (n * h * w) as f32;
        let plane = h * w;
        let id = input.data();
        // Sequential per-channel statistics (the reduction order is part
        // of the deterministic contract).
        let mut means = vec![0.0f32; c];
        let mut inv_stds = vec![0.0f32; c];
        for ci in 0..c {
            let (mean, var) = if train {
                let mut sum = 0.0f32;
                let mut sq = 0.0f32;
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    for &v in &id[base..base + plane] {
                        sum += v;
                        sq += v * v;
                    }
                }
                let mean = sum / per_channel;
                let var = (sq / per_channel - mean * mean).max(0.0);
                // Update running statistics.
                let rm = &mut self.running_mean.data_mut()[ci];
                *rm = (1.0 - self.momentum) * *rm + self.momentum * mean;
                let rv = &mut self.running_var.data_mut()[ci];
                *rv = (1.0 - self.momentum) * *rv + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean.data()[ci], self.running_var.data()[ci])
            };
            means[ci] = mean;
            inv_stds[ci] = 1.0 / (var + self.eps).sqrt();
        }
        // Batch-parallel normalization into disjoint per-image slices.
        let gamma = self.gamma.data();
        let beta = self.beta.data();
        let pool = t2fsnn_tensor::ThreadPool::global();
        let mut out = vec![0.0f32; id.len()];
        if id.is_empty() {
            // Zero-sized spatial input: nothing to normalize.
            if train {
                self.cache = Some(BnCache {
                    x_hat: Tensor::from_vec(input.shape().clone(), Vec::new())?,
                    inv_std: inv_stds,
                });
            }
            return Tensor::from_vec(input.shape().clone(), out);
        }
        if train {
            let mut x_hat = vec![0.0f32; id.len()];
            pool.scatter_items(&mut x_hat, c * plane, |ni, slot| {
                for ci in 0..c {
                    let base = (ni * c + ci) * plane;
                    t2fsnn_tensor::simd::normalize(
                        &mut slot[ci * plane..(ci + 1) * plane],
                        &id[base..base + plane],
                        means[ci],
                        inv_stds[ci],
                    );
                }
            });
            pool.scatter_items(&mut out, c * plane, |ni, slot| {
                let img = &x_hat[ni * c * plane..(ni + 1) * c * plane];
                for ci in 0..c {
                    t2fsnn_tensor::simd::affine(
                        &mut slot[ci * plane..(ci + 1) * plane],
                        &img[ci * plane..(ci + 1) * plane],
                        gamma[ci],
                        beta[ci],
                    );
                }
            });
            self.cache = Some(BnCache {
                x_hat: Tensor::from_vec(input.shape().clone(), x_hat)?,
                inv_std: inv_stds,
            });
        } else {
            pool.scatter_items(&mut out, c * plane, |ni, slot| {
                for ci in 0..c {
                    let base = (ni * c + ci) * plane;
                    t2fsnn_tensor::simd::normalize_affine(
                        &mut slot[ci * plane..(ci + 1) * plane],
                        &id[base..base + plane],
                        means[ci],
                        inv_stds[ci],
                        gamma[ci],
                        beta[ci],
                    );
                }
            });
        }
        Tensor::from_vec(input.shape().clone(), out)
    }

    /// Backward pass: accumulates γ/β gradients and returns the input
    /// gradient.
    ///
    /// # Errors
    ///
    /// Returns an error if called before `forward(train=true)`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache = self.cache.as_ref().ok_or(TensorError::InvalidArgument {
            op: "BatchNorm2d::backward",
            message: "backward called before forward(train=true)".to_string(),
        })?;
        let (n, c, h, w) = self.check_input(grad_out)?;
        let per_channel = (n * h * w) as f32;
        let plane = h * w;
        let gd = grad_out.data();
        let xh = cache.x_hat.data();
        let mut grad_in = vec![0.0f32; gd.len()];
        let mut ggamma = vec![0.0f32; c];
        let mut gbeta = vec![0.0f32; c];
        // Sequential per-channel reductions (fixed deterministic order),
        // then batch-parallel input-gradient writes into disjoint
        // per-image slices — bit-identical for every worker count.
        let mut mean_dy = vec![0.0f32; c];
        let mut mean_dy_xh = vec![0.0f32; c];
        for ci in 0..c {
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xh = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for j in base..base + plane {
                    sum_dy += gd[j];
                    sum_dy_xh += gd[j] * xh[j];
                }
            }
            ggamma[ci] = sum_dy_xh;
            gbeta[ci] = sum_dy;
            mean_dy[ci] = sum_dy / per_channel;
            mean_dy_xh[ci] = sum_dy_xh / per_channel;
        }
        let gamma = self.gamma.data();
        let inv_std = &cache.inv_std;
        if !grad_in.is_empty() {
            t2fsnn_tensor::ThreadPool::global().scatter_items(
                &mut grad_in,
                c * plane,
                |ni, slot| {
                    for ci in 0..c {
                        let base = (ni * c + ci) * plane;
                        t2fsnn_tensor::simd::bn_input_grad(
                            &mut slot[ci * plane..(ci + 1) * plane],
                            &gd[base..base + plane],
                            &xh[base..base + plane],
                            gamma[ci] * inv_std[ci],
                            mean_dy[ci],
                            mean_dy_xh[ci],
                        );
                    }
                },
            );
        }
        let ggamma = Tensor::from_vec([c], ggamma)?;
        let gbeta = Tensor::from_vec([c], gbeta)?;
        match &mut self.grad_gamma {
            Some(g) => g.add_scaled(&ggamma, 1.0)?,
            None => self.grad_gamma = Some(ggamma),
        }
        match &mut self.grad_beta {
            Some(g) => g.add_scaled(&gbeta, 1.0)?,
            None => self.grad_beta = Some(gbeta),
        }
        Tensor::from_vec(grad_out.shape().clone(), grad_in)
    }

    /// The per-channel `(scale, shift)` of the *inference-time* affine map
    /// `y = scale·x + shift` this layer applies — the quantities folded
    /// into the preceding convolution at conversion time.
    pub fn inference_affine(&self) -> (Vec<f32>, Vec<f32>) {
        let c = self.channels();
        let mut scales = Vec::with_capacity(c);
        let mut shifts = Vec::with_capacity(c);
        for ci in 0..c {
            let inv_std = 1.0 / (self.running_var.data()[ci] + self.eps).sqrt();
            let scale = self.gamma.data()[ci] * inv_std;
            scales.push(scale);
            shifts.push(self.beta.data()[ci] - scale * self.running_mean.data()[ci]);
        }
        (scales, shifts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_input() -> Tensor {
        Tensor::from_fn([2, 2, 3, 3], |i| {
            (i[0] * 20 + i[1] * 50 + i[2] * 3 + i[3]) as f32 * 0.1
        })
    }

    #[test]
    fn training_forward_standardizes_channels() {
        let mut bn = BatchNorm2d::new(2);
        let y = bn.forward(&sample_input(), true).unwrap();
        // Per channel: mean ≈ 0, var ≈ 1 (γ=1, β=0).
        let (n, c, h, w) = (2, 2, 3, 3);
        for ci in 0..c {
            let mut vals = Vec::new();
            for ni in 0..n {
                for hi in 0..h {
                    for wi in 0..w {
                        vals.push(y.get(&[ni, ci, hi, wi]).unwrap());
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ci} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ci} var {var}");
        }
    }

    #[test]
    fn eval_uses_running_statistics() {
        let mut bn = BatchNorm2d::new(2);
        // Before any training step, running stats are the (0, 1) prior, so
        // eval mode is the identity (γ=1, β=0).
        let x = sample_input();
        let y = bn.forward(&x, false).unwrap();
        assert!(y.all_close(&x, 1e-3));
        // After many training steps the running stats move toward the
        // batch stats.
        for _ in 0..200 {
            bn.forward(&x, true).unwrap();
        }
        let y = bn.forward(&x, false).unwrap();
        assert!(!y.all_close(&x, 1e-3));
    }

    #[test]
    fn backward_matches_finite_difference() {
        // With an all-ones upstream gradient the BN input gradient is
        // identically zero (Σx̂ = 0 per channel), which tests nothing —
        // use a varying upstream weighting instead: L = Σ gout ⊙ y.
        let mut bn = BatchNorm2d::new(2);
        bn.gamma = Tensor::from_vec([2], vec![1.5, 0.7]).unwrap();
        bn.beta = Tensor::from_vec([2], vec![0.1, -0.2]).unwrap();
        let x = sample_input();
        let gout = Tensor::from_fn(x.shape().clone(), |i| {
            ((i[0] + 2 * i[1] + 3 * i[2] + 5 * i[3]) % 7) as f32 * 0.3 - 0.8
        });
        let _ = bn.forward(&x, true).unwrap();
        let gx = bn.backward(&gout).unwrap();
        let loss = |bn: &mut BatchNorm2d, input: &Tensor| {
            bn.forward(input, true).unwrap().mul(&gout).unwrap().sum()
        };
        let eps = 1e-2f32;
        for &flat in &[0usize, 7, 19, 35] {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let fd = (loss(&mut bn.clone(), &xp) - loss(&mut bn.clone(), &xm)) / (2.0 * eps);
            assert!(
                (fd - gx.data()[flat]).abs() < 5e-2,
                "x[{flat}]: fd={fd} analytic={}",
                gx.data()[flat]
            );
        }
        // dβ = Σ gout per channel (exact).
        let gb = bn.grad_beta.as_ref().unwrap();
        for ci in 0..2 {
            let mut expect = 0.0f32;
            for ni in 0..2 {
                for hi in 0..3 {
                    for wi in 0..3 {
                        expect += gout.get(&[ni, ci, hi, wi]).unwrap();
                    }
                }
            }
            assert!((gb.data()[ci] - expect).abs() < 1e-3);
        }
        // dγ FD check on both channels.
        for ci in 0..2 {
            let mut bp = bn.clone();
            bp.gamma.data_mut()[ci] += eps;
            let mut bm = bn.clone();
            bm.gamma.data_mut()[ci] -= eps;
            let fd = (loss(&mut bp, &x) - loss(&mut bm, &x)) / (2.0 * eps);
            let analytic = bn.grad_gamma.as_ref().unwrap().data()[ci];
            assert!(
                (fd - analytic).abs() < 5e-2,
                "γ[{ci}]: fd={fd} vs {analytic}"
            );
        }
    }

    #[test]
    fn backward_requires_forward() {
        let mut bn = BatchNorm2d::new(1);
        assert!(bn.backward(&Tensor::zeros([1, 1, 2, 2])).is_err());
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let mut bn = BatchNorm2d::new(3);
        assert!(bn.forward(&Tensor::zeros([1, 2, 4, 4]), true).is_err());
        assert!(bn.forward(&Tensor::zeros([2, 4]), true).is_err());
    }

    #[test]
    fn inference_affine_reproduces_eval_forward() {
        let mut bn = BatchNorm2d::new(2);
        bn.gamma = Tensor::from_vec([2], vec![2.0, 0.5]).unwrap();
        bn.beta = Tensor::from_vec([2], vec![-1.0, 3.0]).unwrap();
        bn.running_mean = Tensor::from_vec([2], vec![0.3, -0.2]).unwrap();
        bn.running_var = Tensor::from_vec([2], vec![4.0, 0.25]).unwrap();
        let x = sample_input();
        let y = bn.forward(&x, false).unwrap();
        let (scales, shifts) = bn.inference_affine();
        let manual = Tensor::from_fn(x.shape().clone(), |i| {
            let v = x.get(i).unwrap();
            scales[i[1]] * v + shifts[i[1]]
        });
        assert!(y.all_close(&manual, 1e-4));
    }
}
