//! Inverted dropout for regularizing the source DNN.
//!
//! Dropout is inference-transparent (identity at eval time), so the
//! DNN→SNN conversion simply skips it — but training the deeper scaled
//! VGGs on small synthetic datasets benefits from it.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use t2fsnn_tensor::{Result, Tensor, TensorError};

/// Inverted dropout: at train time each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`; at eval time the
/// layer is the identity.
///
/// The RNG state is derived from `(seed, step)` so runs are deterministic
/// and the layer serializes cleanly.
///
/// # Examples
///
/// ```
/// use t2fsnn_dnn::layers::Dropout;
/// use t2fsnn_tensor::Tensor;
///
/// let mut drop = Dropout::new(0.5, 7);
/// let x = Tensor::ones([4, 8]);
/// let eval = drop.forward(&x, false);
/// assert_eq!(eval, x); // identity at inference
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub p: f32,
    /// Base RNG seed.
    pub seed: u64,
    step: u64,
    #[serde(skip)]
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1)"
        );
        Dropout {
            p,
            seed,
            step: 0,
            mask: None,
        }
    }

    /// Forward pass. Samples a fresh mask when `train` is set; identity
    /// otherwise.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed.wrapping_add(self.step));
        self.step = self.step.wrapping_add(1);
        let keep_scale = 1.0 / (1.0 - self.p);
        let mask = Tensor::from_vec(
            input.shape().clone(),
            (0..input.numel())
                .map(|_| {
                    if rng.gen::<f32>() < self.p {
                        0.0
                    } else {
                        keep_scale
                    }
                })
                .collect(),
        )
        .expect("sized by construction");
        let out = input.mul(&mask).expect("same shape");
        self.mask = Some(mask);
        out
    }

    /// Backward pass: routes gradient through the surviving units.
    ///
    /// # Errors
    ///
    /// Returns an error if called before `forward(train=true)`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        match &self.mask {
            Some(mask) => grad_out.mul(mask),
            None => Err(TensorError::InvalidArgument {
                op: "Dropout::backward",
                message: "backward called before forward(train=true)".to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut drop = Dropout::new(0.9, 1);
        let x = Tensor::from_fn([3, 3], |i| (i[0] + i[1]) as f32);
        assert_eq!(drop.forward(&x, false), x);
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let mut drop = Dropout::new(0.5, 2);
        let x = Tensor::ones([64, 64]);
        let y = drop.forward(&x, true);
        // Inverted dropout: mean stays ≈ 1.
        assert!((y.mean() - 1.0).abs() < 0.1, "mean {}", y.mean());
        // Roughly half the units are zero.
        let zeros = y.iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / y.numel() as f32;
        assert!((frac - 0.5).abs() < 0.1, "zero fraction {frac}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut drop = Dropout::new(0.5, 3);
        let x = Tensor::ones([8, 8]);
        let y = drop.forward(&x, true);
        let g = drop.backward(&Tensor::ones([8, 8])).unwrap();
        // Gradient is zero exactly where the output was zeroed.
        for (gy, gg) in y.iter().zip(g.iter()) {
            assert_eq!(*gy == 0.0, *gg == 0.0);
        }
    }

    #[test]
    fn backward_requires_forward() {
        let mut drop = Dropout::new(0.3, 4);
        assert!(drop.backward(&Tensor::ones([2])).is_err());
        // Eval-mode forward does not arm backward either.
        drop.forward(&Tensor::ones([2]), false);
        assert!(drop.backward(&Tensor::ones([2])).is_err());
    }

    #[test]
    fn masks_differ_across_steps() {
        let mut drop = Dropout::new(0.5, 5);
        let x = Tensor::ones([32]);
        let a = drop.forward(&x, true);
        let b = drop.forward(&x, true);
        assert_ne!(a, b, "each training step should sample a fresh mask");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn p_of_one_panics() {
        let _ = Dropout::new(1.0, 0);
    }
}
