//! Trainable fully connected layer.

use rand::Rng;
use serde::{Deserialize, Serialize};
use t2fsnn_tensor::ops::{matmul, matmul_a_bt, matmul_at_b};
use t2fsnn_tensor::{init, Result, Tensor, TensorError};

/// A fully connected (dense) layer: `y = x · Wᵀ + b`.
///
/// Weight layout is `[out_features, in_features]` so that a row of `W` is
/// one output neuron's fan-in — the layout the SNN conversion expects.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use t2fsnn_dnn::layers::Linear;
/// use t2fsnn_tensor::Tensor;
///
/// # fn main() -> Result<(), t2fsnn_tensor::TensorError> {
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let mut fc = Linear::new(&mut rng, 32, 10);
/// let out = fc.forward(&Tensor::zeros([4, 32]), false)?;
/// assert_eq!(out.dims(), &[4, 10]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weights, `[out_features, in_features]`.
    pub weight: Tensor,
    /// Bias, `[out_features]`.
    pub bias: Tensor,
    /// Accumulated weight gradient.
    #[serde(skip)]
    pub grad_weight: Option<Tensor>,
    /// Accumulated bias gradient.
    #[serde(skip)]
    pub grad_bias: Option<Tensor>,
    #[serde(skip)]
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a He-initialized dense layer.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, in_features: usize, out_features: usize) -> Self {
        Linear {
            weight: init::he_normal(rng, [out_features, in_features], in_features),
            bias: Tensor::zeros([out_features]),
            grad_weight: None,
            grad_bias: None,
            cached_input: None,
        }
    }

    /// Creates a dense layer from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns an error if `weight` is not rank 2 or `bias` length does not
    /// match the output feature count.
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Result<Self> {
        if weight.rank() != 2 || bias.rank() != 1 || bias.dims()[0] != weight.dims()[0] {
            return Err(TensorError::ShapeMismatch {
                op: "Linear::from_parts",
                lhs: weight.shape().clone(),
                rhs: bias.shape().clone(),
            });
        }
        Ok(Linear {
            weight,
            bias,
            grad_weight: None,
            grad_bias: None,
            cached_input: None,
        })
    }

    /// Forward pass for a `[batch, in_features]` input.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the input's feature dimension disagrees.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        if train {
            self.cached_input = Some(input.clone());
        }
        // y = x · Wᵀ
        let mut out = matmul_a_bt(input, &self.weight)?;
        let (n, o) = (out.dims()[0], out.dims()[1]);
        let od = out.data_mut();
        for i in 0..n {
            for j in 0..o {
                od[i * o + j] += self.bias.data()[j];
            }
        }
        Ok(out)
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient with respect to the input.
    ///
    /// # Errors
    ///
    /// Returns an error if no forward pass with `train == true` preceded
    /// this call.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(TensorError::InvalidArgument {
                op: "Linear::backward",
                message: "backward called before forward(train=true)".to_string(),
            })?;
        // dW = goutᵀ · x ; db = Σ_batch gout ; dx = gout · W
        let gw = matmul_at_b(grad_out, input)?;
        match &mut self.grad_weight {
            Some(g) => g.add_scaled(&gw, 1.0)?,
            None => self.grad_weight = Some(gw),
        }
        let (n, o) = (grad_out.dims()[0], grad_out.dims()[1]);
        let mut gb = vec![0.0f32; o];
        for i in 0..n {
            for (j, g) in gb.iter_mut().enumerate() {
                *g += grad_out.data()[i * o + j];
            }
        }
        let gb = Tensor::from_vec([o], gb)?;
        match &mut self.grad_bias {
            Some(g) => g.add_scaled(&gb, 1.0)?,
            None => self.grad_bias = Some(gb),
        }
        matmul(grad_out, &self.weight)
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.dims()[0]
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.dims()[1]
    }

    /// Multiply-accumulate count per input sample.
    pub fn macs(&self) -> u64 {
        (self.out_features() * self.in_features()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(3)
    }

    #[test]
    fn forward_applies_affine_map() {
        let weight = Tensor::from_vec([2, 3], vec![1., 0., 0., 0., 1., 0.]).unwrap();
        let bias = Tensor::from_vec([2], vec![10.0, 20.0]).unwrap();
        let mut fc = Linear::from_parts(weight, bias).unwrap();
        let x = Tensor::from_vec([1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let y = fc.forward(&x, false).unwrap();
        assert_eq!(y.data(), &[11.0, 22.0]);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut fc = Linear::new(&mut rng(), 4, 3);
        let x = Tensor::from_vec([2, 4], (0..8).map(|i| i as f32 * 0.1).collect()).unwrap();
        let y = fc.forward(&x, true).unwrap();
        let gout = Tensor::ones(y.shape().clone());
        let gx = fc.backward(&gout).unwrap();

        let eps = 1e-2f32;
        let loss = |fc: &mut Linear, x: &Tensor| fc.forward(x, false).unwrap().sum();
        for flat in 0..fc.weight.numel() {
            let mut p = fc.clone();
            p.weight.data_mut()[flat] += eps;
            let mut m = fc.clone();
            m.weight.data_mut()[flat] -= eps;
            let fd = (loss(&mut p, &x) - loss(&mut m, &x)) / (2.0 * eps);
            let analytic = fc.grad_weight.as_ref().unwrap().data()[flat];
            assert!(
                (fd - analytic).abs() < 1e-2,
                "w[{flat}]: {fd} vs {analytic}"
            );
        }
        for flat in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let fd = (loss(&mut fc.clone(), &xp) - loss(&mut fc.clone(), &xm)) / (2.0 * eps);
            assert!((fd - gx.data()[flat]).abs() < 1e-2);
        }
    }

    #[test]
    fn backward_requires_forward() {
        let mut fc = Linear::new(&mut rng(), 2, 2);
        assert!(fc.backward(&Tensor::zeros([1, 2])).is_err());
    }

    #[test]
    fn from_parts_validates() {
        assert!(Linear::from_parts(Tensor::zeros([2, 3]), Tensor::zeros([3])).is_err());
        assert!(Linear::from_parts(Tensor::zeros([3]), Tensor::zeros([3])).is_err());
    }

    #[test]
    fn macs_counts_weight_size() {
        let fc = Linear::new(&mut rng(), 32, 10);
        assert_eq!(fc.macs(), 320);
    }
}
